file(REMOVE_RECURSE
  "CMakeFiles/fig7_validation.dir/fig7_validation.cc.o"
  "CMakeFiles/fig7_validation.dir/fig7_validation.cc.o.d"
  "fig7_validation"
  "fig7_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
