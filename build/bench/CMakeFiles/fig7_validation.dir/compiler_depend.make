# Empty compiler generated dependencies file for fig7_validation.
# This may be replaced when dependencies are built.
