# Empty compiler generated dependencies file for ablation_voltage.
# This may be replaced when dependencies are built.
