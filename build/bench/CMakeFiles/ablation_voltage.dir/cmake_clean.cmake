file(REMOVE_RECURSE
  "CMakeFiles/ablation_voltage.dir/ablation_voltage.cc.o"
  "CMakeFiles/ablation_voltage.dir/ablation_voltage.cc.o.d"
  "ablation_voltage"
  "ablation_voltage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_voltage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
