# Empty dependencies file for fig2_dvfs_impact.
# This may be replaced when dependencies are built.
