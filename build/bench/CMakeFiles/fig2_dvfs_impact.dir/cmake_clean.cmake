file(REMOVE_RECURSE
  "CMakeFiles/fig2_dvfs_impact.dir/fig2_dvfs_impact.cc.o"
  "CMakeFiles/fig2_dvfs_impact.dir/fig2_dvfs_impact.cc.o.d"
  "fig2_dvfs_impact"
  "fig2_dvfs_impact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_dvfs_impact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
