# Empty dependencies file for bm_estimator.
# This may be replaced when dependencies are built.
