file(REMOVE_RECURSE
  "CMakeFiles/bm_estimator.dir/bm_estimator.cc.o"
  "CMakeFiles/bm_estimator.dir/bm_estimator.cc.o.d"
  "bm_estimator"
  "bm_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
