file(REMOVE_RECURSE
  "CMakeFiles/fig9_input_size.dir/fig9_input_size.cc.o"
  "CMakeFiles/fig9_input_size.dir/fig9_input_size.cc.o.d"
  "fig9_input_size"
  "fig9_input_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_input_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
