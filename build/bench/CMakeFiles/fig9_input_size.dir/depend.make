# Empty dependencies file for fig9_input_size.
# This may be replaced when dependencies are built.
