file(REMOVE_RECURSE
  "CMakeFiles/fig8_error_by_mem.dir/fig8_error_by_mem.cc.o"
  "CMakeFiles/fig8_error_by_mem.dir/fig8_error_by_mem.cc.o.d"
  "fig8_error_by_mem"
  "fig8_error_by_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_error_by_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
