# Empty dependencies file for fig8_error_by_mem.
# This may be replaced when dependencies are built.
