# Empty dependencies file for xval_simulators.
# This may be replaced when dependencies are built.
