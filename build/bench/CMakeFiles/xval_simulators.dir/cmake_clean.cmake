file(REMOVE_RECURSE
  "CMakeFiles/xval_simulators.dir/xval_simulators.cc.o"
  "CMakeFiles/xval_simulators.dir/xval_simulators.cc.o.d"
  "xval_simulators"
  "xval_simulators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/xval_simulators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
