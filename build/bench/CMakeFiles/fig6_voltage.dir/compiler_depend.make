# Empty compiler generated dependencies file for fig6_voltage.
# This may be replaced when dependencies are built.
