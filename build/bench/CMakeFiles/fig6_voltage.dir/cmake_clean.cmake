file(REMOVE_RECURSE
  "CMakeFiles/fig6_voltage.dir/fig6_voltage.cc.o"
  "CMakeFiles/fig6_voltage.dir/fig6_voltage.cc.o.d"
  "fig6_voltage"
  "fig6_voltage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_voltage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
