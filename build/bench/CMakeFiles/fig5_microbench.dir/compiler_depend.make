# Empty compiler generated dependencies file for fig5_microbench.
# This may be replaced when dependencies are built.
