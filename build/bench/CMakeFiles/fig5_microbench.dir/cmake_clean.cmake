file(REMOVE_RECURSE
  "CMakeFiles/fig5_microbench.dir/fig5_microbench.cc.o"
  "CMakeFiles/fig5_microbench.dir/fig5_microbench.cc.o.d"
  "fig5_microbench"
  "fig5_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
