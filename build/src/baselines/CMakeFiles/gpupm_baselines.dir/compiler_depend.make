# Empty compiler generated dependencies file for gpupm_baselines.
# This may be replaced when dependencies are built.
