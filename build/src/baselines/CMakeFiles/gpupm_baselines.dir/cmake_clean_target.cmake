file(REMOVE_RECURSE
  "libgpupm_baselines.a"
)
