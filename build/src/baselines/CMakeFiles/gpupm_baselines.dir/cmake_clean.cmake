file(REMOVE_RECURSE
  "CMakeFiles/gpupm_baselines.dir/baselines.cc.o"
  "CMakeFiles/gpupm_baselines.dir/baselines.cc.o.d"
  "libgpupm_baselines.a"
  "libgpupm_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
