# Empty compiler generated dependencies file for gpupm_sim.
# This may be replaced when dependencies are built.
