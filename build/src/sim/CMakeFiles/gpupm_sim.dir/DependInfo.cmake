
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cache_model.cc" "src/sim/CMakeFiles/gpupm_sim.dir/cache_model.cc.o" "gcc" "src/sim/CMakeFiles/gpupm_sim.dir/cache_model.cc.o.d"
  "/root/repo/src/sim/device_cycle_sim.cc" "src/sim/CMakeFiles/gpupm_sim.dir/device_cycle_sim.cc.o" "gcc" "src/sim/CMakeFiles/gpupm_sim.dir/device_cycle_sim.cc.o.d"
  "/root/repo/src/sim/kernel.cc" "src/sim/CMakeFiles/gpupm_sim.dir/kernel.cc.o" "gcc" "src/sim/CMakeFiles/gpupm_sim.dir/kernel.cc.o.d"
  "/root/repo/src/sim/perf_model.cc" "src/sim/CMakeFiles/gpupm_sim.dir/perf_model.cc.o" "gcc" "src/sim/CMakeFiles/gpupm_sim.dir/perf_model.cc.o.d"
  "/root/repo/src/sim/physical_gpu.cc" "src/sim/CMakeFiles/gpupm_sim.dir/physical_gpu.cc.o" "gcc" "src/sim/CMakeFiles/gpupm_sim.dir/physical_gpu.cc.o.d"
  "/root/repo/src/sim/ptx.cc" "src/sim/CMakeFiles/gpupm_sim.dir/ptx.cc.o" "gcc" "src/sim/CMakeFiles/gpupm_sim.dir/ptx.cc.o.d"
  "/root/repo/src/sim/sm_cycle_sim.cc" "src/sim/CMakeFiles/gpupm_sim.dir/sm_cycle_sim.cc.o" "gcc" "src/sim/CMakeFiles/gpupm_sim.dir/sm_cycle_sim.cc.o.d"
  "/root/repo/src/sim/voltage.cc" "src/sim/CMakeFiles/gpupm_sim.dir/voltage.cc.o" "gcc" "src/sim/CMakeFiles/gpupm_sim.dir/voltage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpupm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gpupm_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
