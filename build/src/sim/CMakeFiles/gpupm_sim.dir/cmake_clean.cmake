file(REMOVE_RECURSE
  "CMakeFiles/gpupm_sim.dir/cache_model.cc.o"
  "CMakeFiles/gpupm_sim.dir/cache_model.cc.o.d"
  "CMakeFiles/gpupm_sim.dir/device_cycle_sim.cc.o"
  "CMakeFiles/gpupm_sim.dir/device_cycle_sim.cc.o.d"
  "CMakeFiles/gpupm_sim.dir/kernel.cc.o"
  "CMakeFiles/gpupm_sim.dir/kernel.cc.o.d"
  "CMakeFiles/gpupm_sim.dir/perf_model.cc.o"
  "CMakeFiles/gpupm_sim.dir/perf_model.cc.o.d"
  "CMakeFiles/gpupm_sim.dir/physical_gpu.cc.o"
  "CMakeFiles/gpupm_sim.dir/physical_gpu.cc.o.d"
  "CMakeFiles/gpupm_sim.dir/ptx.cc.o"
  "CMakeFiles/gpupm_sim.dir/ptx.cc.o.d"
  "CMakeFiles/gpupm_sim.dir/sm_cycle_sim.cc.o"
  "CMakeFiles/gpupm_sim.dir/sm_cycle_sim.cc.o.d"
  "CMakeFiles/gpupm_sim.dir/voltage.cc.o"
  "CMakeFiles/gpupm_sim.dir/voltage.cc.o.d"
  "libgpupm_sim.a"
  "libgpupm_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
