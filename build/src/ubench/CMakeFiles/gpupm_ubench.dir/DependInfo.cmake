
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ubench/cuda_source.cc" "src/ubench/CMakeFiles/gpupm_ubench.dir/cuda_source.cc.o" "gcc" "src/ubench/CMakeFiles/gpupm_ubench.dir/cuda_source.cc.o.d"
  "/root/repo/src/ubench/l2_calibration.cc" "src/ubench/CMakeFiles/gpupm_ubench.dir/l2_calibration.cc.o" "gcc" "src/ubench/CMakeFiles/gpupm_ubench.dir/l2_calibration.cc.o.d"
  "/root/repo/src/ubench/suite.cc" "src/ubench/CMakeFiles/gpupm_ubench.dir/suite.cc.o" "gcc" "src/ubench/CMakeFiles/gpupm_ubench.dir/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpupm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpupm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cupti/CMakeFiles/gpupm_cupti.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gpupm_gpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
