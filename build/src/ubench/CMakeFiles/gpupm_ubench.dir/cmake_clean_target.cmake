file(REMOVE_RECURSE
  "libgpupm_ubench.a"
)
