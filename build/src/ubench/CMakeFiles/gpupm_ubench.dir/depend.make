# Empty dependencies file for gpupm_ubench.
# This may be replaced when dependencies are built.
