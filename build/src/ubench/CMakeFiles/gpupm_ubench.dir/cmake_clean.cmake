file(REMOVE_RECURSE
  "CMakeFiles/gpupm_ubench.dir/cuda_source.cc.o"
  "CMakeFiles/gpupm_ubench.dir/cuda_source.cc.o.d"
  "CMakeFiles/gpupm_ubench.dir/l2_calibration.cc.o"
  "CMakeFiles/gpupm_ubench.dir/l2_calibration.cc.o.d"
  "CMakeFiles/gpupm_ubench.dir/suite.cc.o"
  "CMakeFiles/gpupm_ubench.dir/suite.cc.o.d"
  "libgpupm_ubench.a"
  "libgpupm_ubench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_ubench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
