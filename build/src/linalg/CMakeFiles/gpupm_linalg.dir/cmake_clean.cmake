file(REMOVE_RECURSE
  "CMakeFiles/gpupm_linalg.dir/isotonic.cc.o"
  "CMakeFiles/gpupm_linalg.dir/isotonic.cc.o.d"
  "CMakeFiles/gpupm_linalg.dir/lstsq.cc.o"
  "CMakeFiles/gpupm_linalg.dir/lstsq.cc.o.d"
  "CMakeFiles/gpupm_linalg.dir/matrix.cc.o"
  "CMakeFiles/gpupm_linalg.dir/matrix.cc.o.d"
  "libgpupm_linalg.a"
  "libgpupm_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
