file(REMOVE_RECURSE
  "libgpupm_linalg.a"
)
