# Empty compiler generated dependencies file for gpupm_linalg.
# This may be replaced when dependencies are built.
