
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/backend.cc" "src/core/CMakeFiles/gpupm_core.dir/backend.cc.o" "gcc" "src/core/CMakeFiles/gpupm_core.dir/backend.cc.o.d"
  "/root/repo/src/core/campaign.cc" "src/core/CMakeFiles/gpupm_core.dir/campaign.cc.o" "gcc" "src/core/CMakeFiles/gpupm_core.dir/campaign.cc.o.d"
  "/root/repo/src/core/estimator.cc" "src/core/CMakeFiles/gpupm_core.dir/estimator.cc.o" "gcc" "src/core/CMakeFiles/gpupm_core.dir/estimator.cc.o.d"
  "/root/repo/src/core/governor.cc" "src/core/CMakeFiles/gpupm_core.dir/governor.cc.o" "gcc" "src/core/CMakeFiles/gpupm_core.dir/governor.cc.o.d"
  "/root/repo/src/core/latency_scaler.cc" "src/core/CMakeFiles/gpupm_core.dir/latency_scaler.cc.o" "gcc" "src/core/CMakeFiles/gpupm_core.dir/latency_scaler.cc.o.d"
  "/root/repo/src/core/metrics.cc" "src/core/CMakeFiles/gpupm_core.dir/metrics.cc.o" "gcc" "src/core/CMakeFiles/gpupm_core.dir/metrics.cc.o.d"
  "/root/repo/src/core/model_io.cc" "src/core/CMakeFiles/gpupm_core.dir/model_io.cc.o" "gcc" "src/core/CMakeFiles/gpupm_core.dir/model_io.cc.o.d"
  "/root/repo/src/core/power_model.cc" "src/core/CMakeFiles/gpupm_core.dir/power_model.cc.o" "gcc" "src/core/CMakeFiles/gpupm_core.dir/power_model.cc.o.d"
  "/root/repo/src/core/predictor.cc" "src/core/CMakeFiles/gpupm_core.dir/predictor.cc.o" "gcc" "src/core/CMakeFiles/gpupm_core.dir/predictor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpupm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gpupm_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gpupm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpupm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cupti/CMakeFiles/gpupm_cupti.dir/DependInfo.cmake"
  "/root/repo/build/src/nvml/CMakeFiles/gpupm_nvml.dir/DependInfo.cmake"
  "/root/repo/build/src/ubench/CMakeFiles/gpupm_ubench.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
