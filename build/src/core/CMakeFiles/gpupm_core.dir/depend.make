# Empty dependencies file for gpupm_core.
# This may be replaced when dependencies are built.
