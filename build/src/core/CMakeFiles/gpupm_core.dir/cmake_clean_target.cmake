file(REMOVE_RECURSE
  "libgpupm_core.a"
)
