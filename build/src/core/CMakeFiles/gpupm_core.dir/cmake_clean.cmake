file(REMOVE_RECURSE
  "CMakeFiles/gpupm_core.dir/backend.cc.o"
  "CMakeFiles/gpupm_core.dir/backend.cc.o.d"
  "CMakeFiles/gpupm_core.dir/campaign.cc.o"
  "CMakeFiles/gpupm_core.dir/campaign.cc.o.d"
  "CMakeFiles/gpupm_core.dir/estimator.cc.o"
  "CMakeFiles/gpupm_core.dir/estimator.cc.o.d"
  "CMakeFiles/gpupm_core.dir/governor.cc.o"
  "CMakeFiles/gpupm_core.dir/governor.cc.o.d"
  "CMakeFiles/gpupm_core.dir/latency_scaler.cc.o"
  "CMakeFiles/gpupm_core.dir/latency_scaler.cc.o.d"
  "CMakeFiles/gpupm_core.dir/metrics.cc.o"
  "CMakeFiles/gpupm_core.dir/metrics.cc.o.d"
  "CMakeFiles/gpupm_core.dir/model_io.cc.o"
  "CMakeFiles/gpupm_core.dir/model_io.cc.o.d"
  "CMakeFiles/gpupm_core.dir/power_model.cc.o"
  "CMakeFiles/gpupm_core.dir/power_model.cc.o.d"
  "CMakeFiles/gpupm_core.dir/predictor.cc.o"
  "CMakeFiles/gpupm_core.dir/predictor.cc.o.d"
  "libgpupm_core.a"
  "libgpupm_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
