# Empty dependencies file for gpupm_cupti.
# This may be replaced when dependencies are built.
