file(REMOVE_RECURSE
  "CMakeFiles/gpupm_cupti.dir/events.cc.o"
  "CMakeFiles/gpupm_cupti.dir/events.cc.o.d"
  "CMakeFiles/gpupm_cupti.dir/profiler.cc.o"
  "CMakeFiles/gpupm_cupti.dir/profiler.cc.o.d"
  "libgpupm_cupti.a"
  "libgpupm_cupti.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_cupti.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
