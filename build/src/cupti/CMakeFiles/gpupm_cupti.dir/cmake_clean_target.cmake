file(REMOVE_RECURSE
  "libgpupm_cupti.a"
)
