
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cupti/events.cc" "src/cupti/CMakeFiles/gpupm_cupti.dir/events.cc.o" "gcc" "src/cupti/CMakeFiles/gpupm_cupti.dir/events.cc.o.d"
  "/root/repo/src/cupti/profiler.cc" "src/cupti/CMakeFiles/gpupm_cupti.dir/profiler.cc.o" "gcc" "src/cupti/CMakeFiles/gpupm_cupti.dir/profiler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpupm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gpupm_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpupm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
