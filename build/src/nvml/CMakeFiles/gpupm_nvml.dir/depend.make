# Empty dependencies file for gpupm_nvml.
# This may be replaced when dependencies are built.
