file(REMOVE_RECURSE
  "CMakeFiles/gpupm_nvml.dir/device.cc.o"
  "CMakeFiles/gpupm_nvml.dir/device.cc.o.d"
  "libgpupm_nvml.a"
  "libgpupm_nvml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_nvml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
