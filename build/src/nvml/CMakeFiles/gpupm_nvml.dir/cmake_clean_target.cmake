file(REMOVE_RECURSE
  "libgpupm_nvml.a"
)
