file(REMOVE_RECURSE
  "CMakeFiles/gpupm_common.dir/logging.cc.o"
  "CMakeFiles/gpupm_common.dir/logging.cc.o.d"
  "CMakeFiles/gpupm_common.dir/stats.cc.o"
  "CMakeFiles/gpupm_common.dir/stats.cc.o.d"
  "CMakeFiles/gpupm_common.dir/table.cc.o"
  "CMakeFiles/gpupm_common.dir/table.cc.o.d"
  "libgpupm_common.a"
  "libgpupm_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
