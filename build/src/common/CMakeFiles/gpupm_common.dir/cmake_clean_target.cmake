file(REMOVE_RECURSE
  "libgpupm_common.a"
)
