file(REMOVE_RECURSE
  "CMakeFiles/gpupm_gpu.dir/device.cc.o"
  "CMakeFiles/gpupm_gpu.dir/device.cc.o.d"
  "libgpupm_gpu.a"
  "libgpupm_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
