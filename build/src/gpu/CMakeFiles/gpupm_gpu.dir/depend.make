# Empty dependencies file for gpupm_gpu.
# This may be replaced when dependencies are built.
