file(REMOVE_RECURSE
  "libgpupm_gpu.a"
)
