# Empty compiler generated dependencies file for gpupm_workloads.
# This may be replaced when dependencies are built.
