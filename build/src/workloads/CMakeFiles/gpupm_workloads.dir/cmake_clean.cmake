file(REMOVE_RECURSE
  "CMakeFiles/gpupm_workloads.dir/multi_kernel.cc.o"
  "CMakeFiles/gpupm_workloads.dir/multi_kernel.cc.o.d"
  "CMakeFiles/gpupm_workloads.dir/parametric.cc.o"
  "CMakeFiles/gpupm_workloads.dir/parametric.cc.o.d"
  "CMakeFiles/gpupm_workloads.dir/workloads.cc.o"
  "CMakeFiles/gpupm_workloads.dir/workloads.cc.o.d"
  "libgpupm_workloads.a"
  "libgpupm_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpupm_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
