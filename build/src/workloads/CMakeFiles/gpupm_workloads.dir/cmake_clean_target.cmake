file(REMOVE_RECURSE
  "libgpupm_workloads.a"
)
