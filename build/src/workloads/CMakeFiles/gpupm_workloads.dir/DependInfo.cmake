
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/multi_kernel.cc" "src/workloads/CMakeFiles/gpupm_workloads.dir/multi_kernel.cc.o" "gcc" "src/workloads/CMakeFiles/gpupm_workloads.dir/multi_kernel.cc.o.d"
  "/root/repo/src/workloads/parametric.cc" "src/workloads/CMakeFiles/gpupm_workloads.dir/parametric.cc.o" "gcc" "src/workloads/CMakeFiles/gpupm_workloads.dir/parametric.cc.o.d"
  "/root/repo/src/workloads/workloads.cc" "src/workloads/CMakeFiles/gpupm_workloads.dir/workloads.cc.o" "gcc" "src/workloads/CMakeFiles/gpupm_workloads.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpupm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gpupm_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpupm_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
