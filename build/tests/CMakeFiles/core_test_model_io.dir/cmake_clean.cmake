file(REMOVE_RECURSE
  "CMakeFiles/core_test_model_io.dir/core/test_model_io.cc.o"
  "CMakeFiles/core_test_model_io.dir/core/test_model_io.cc.o.d"
  "core_test_model_io"
  "core_test_model_io.pdb"
  "core_test_model_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_model_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
