file(REMOVE_RECURSE
  "CMakeFiles/workloads_test_parametric.dir/workloads/test_parametric.cc.o"
  "CMakeFiles/workloads_test_parametric.dir/workloads/test_parametric.cc.o.d"
  "workloads_test_parametric"
  "workloads_test_parametric.pdb"
  "workloads_test_parametric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_test_parametric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
