# Empty dependencies file for workloads_test_parametric.
# This may be replaced when dependencies are built.
