file(REMOVE_RECURSE
  "CMakeFiles/linalg_test_matrix.dir/linalg/test_matrix.cc.o"
  "CMakeFiles/linalg_test_matrix.dir/linalg/test_matrix.cc.o.d"
  "linalg_test_matrix"
  "linalg_test_matrix.pdb"
  "linalg_test_matrix[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_test_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
