file(REMOVE_RECURSE
  "CMakeFiles/sim_test_physical_gpu.dir/sim/test_physical_gpu.cc.o"
  "CMakeFiles/sim_test_physical_gpu.dir/sim/test_physical_gpu.cc.o.d"
  "sim_test_physical_gpu"
  "sim_test_physical_gpu.pdb"
  "sim_test_physical_gpu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_physical_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
