# Empty compiler generated dependencies file for sim_test_physical_gpu.
# This may be replaced when dependencies are built.
