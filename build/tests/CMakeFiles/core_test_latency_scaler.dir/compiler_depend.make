# Empty compiler generated dependencies file for core_test_latency_scaler.
# This may be replaced when dependencies are built.
