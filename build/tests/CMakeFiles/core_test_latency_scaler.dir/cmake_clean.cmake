file(REMOVE_RECURSE
  "CMakeFiles/core_test_latency_scaler.dir/core/test_latency_scaler.cc.o"
  "CMakeFiles/core_test_latency_scaler.dir/core/test_latency_scaler.cc.o.d"
  "core_test_latency_scaler"
  "core_test_latency_scaler.pdb"
  "core_test_latency_scaler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_latency_scaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
