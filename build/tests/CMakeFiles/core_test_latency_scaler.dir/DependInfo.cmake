
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_latency_scaler.cc" "tests/CMakeFiles/core_test_latency_scaler.dir/core/test_latency_scaler.cc.o" "gcc" "tests/CMakeFiles/core_test_latency_scaler.dir/core/test_latency_scaler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gpupm_common.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/gpupm_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/gpupm_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/gpupm_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cupti/CMakeFiles/gpupm_cupti.dir/DependInfo.cmake"
  "/root/repo/build/src/nvml/CMakeFiles/gpupm_nvml.dir/DependInfo.cmake"
  "/root/repo/build/src/ubench/CMakeFiles/gpupm_ubench.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/gpupm_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gpupm_core.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/gpupm_baselines.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
