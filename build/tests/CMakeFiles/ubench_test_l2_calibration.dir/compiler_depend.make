# Empty compiler generated dependencies file for ubench_test_l2_calibration.
# This may be replaced when dependencies are built.
