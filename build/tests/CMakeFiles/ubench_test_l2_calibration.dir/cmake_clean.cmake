file(REMOVE_RECURSE
  "CMakeFiles/ubench_test_l2_calibration.dir/ubench/test_l2_calibration.cc.o"
  "CMakeFiles/ubench_test_l2_calibration.dir/ubench/test_l2_calibration.cc.o.d"
  "ubench_test_l2_calibration"
  "ubench_test_l2_calibration.pdb"
  "ubench_test_l2_calibration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubench_test_l2_calibration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
