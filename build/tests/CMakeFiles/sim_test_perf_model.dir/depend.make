# Empty dependencies file for sim_test_perf_model.
# This may be replaced when dependencies are built.
