# Empty dependencies file for cupti_test_profiler.
# This may be replaced when dependencies are built.
