file(REMOVE_RECURSE
  "CMakeFiles/cupti_test_profiler.dir/cupti/test_profiler.cc.o"
  "CMakeFiles/cupti_test_profiler.dir/cupti/test_profiler.cc.o.d"
  "cupti_test_profiler"
  "cupti_test_profiler.pdb"
  "cupti_test_profiler[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cupti_test_profiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
