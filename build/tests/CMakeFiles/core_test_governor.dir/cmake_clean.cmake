file(REMOVE_RECURSE
  "CMakeFiles/core_test_governor.dir/core/test_governor.cc.o"
  "CMakeFiles/core_test_governor.dir/core/test_governor.cc.o.d"
  "core_test_governor"
  "core_test_governor.pdb"
  "core_test_governor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
