# Empty dependencies file for core_test_governor.
# This may be replaced when dependencies are built.
