# Empty compiler generated dependencies file for gpu_test_device.
# This may be replaced when dependencies are built.
