file(REMOVE_RECURSE
  "CMakeFiles/gpu_test_device.dir/gpu/test_device.cc.o"
  "CMakeFiles/gpu_test_device.dir/gpu/test_device.cc.o.d"
  "gpu_test_device"
  "gpu_test_device.pdb"
  "gpu_test_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_test_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
