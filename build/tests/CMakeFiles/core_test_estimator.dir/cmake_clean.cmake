file(REMOVE_RECURSE
  "CMakeFiles/core_test_estimator.dir/core/test_estimator.cc.o"
  "CMakeFiles/core_test_estimator.dir/core/test_estimator.cc.o.d"
  "core_test_estimator"
  "core_test_estimator.pdb"
  "core_test_estimator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
