# Empty dependencies file for core_test_estimator.
# This may be replaced when dependencies are built.
