# Empty compiler generated dependencies file for ubench_test_suite.
# This may be replaced when dependencies are built.
