file(REMOVE_RECURSE
  "CMakeFiles/ubench_test_suite.dir/ubench/test_suite.cc.o"
  "CMakeFiles/ubench_test_suite.dir/ubench/test_suite.cc.o.d"
  "ubench_test_suite"
  "ubench_test_suite.pdb"
  "ubench_test_suite[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubench_test_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
