file(REMOVE_RECURSE
  "CMakeFiles/sim_test_device_cycle_sim.dir/sim/test_device_cycle_sim.cc.o"
  "CMakeFiles/sim_test_device_cycle_sim.dir/sim/test_device_cycle_sim.cc.o.d"
  "sim_test_device_cycle_sim"
  "sim_test_device_cycle_sim.pdb"
  "sim_test_device_cycle_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_device_cycle_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
