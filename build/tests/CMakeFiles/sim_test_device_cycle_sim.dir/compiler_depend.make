# Empty compiler generated dependencies file for sim_test_device_cycle_sim.
# This may be replaced when dependencies are built.
