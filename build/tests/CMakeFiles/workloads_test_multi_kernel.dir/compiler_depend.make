# Empty compiler generated dependencies file for workloads_test_multi_kernel.
# This may be replaced when dependencies are built.
