file(REMOVE_RECURSE
  "CMakeFiles/workloads_test_multi_kernel.dir/workloads/test_multi_kernel.cc.o"
  "CMakeFiles/workloads_test_multi_kernel.dir/workloads/test_multi_kernel.cc.o.d"
  "workloads_test_multi_kernel"
  "workloads_test_multi_kernel.pdb"
  "workloads_test_multi_kernel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_test_multi_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
