# Empty dependencies file for common_test_random.
# This may be replaced when dependencies are built.
