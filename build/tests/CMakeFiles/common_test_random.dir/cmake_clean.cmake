file(REMOVE_RECURSE
  "CMakeFiles/common_test_random.dir/common/test_random.cc.o"
  "CMakeFiles/common_test_random.dir/common/test_random.cc.o.d"
  "common_test_random"
  "common_test_random.pdb"
  "common_test_random[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test_random.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
