file(REMOVE_RECURSE
  "CMakeFiles/integration_test_pipeline.dir/integration/test_pipeline.cc.o"
  "CMakeFiles/integration_test_pipeline.dir/integration/test_pipeline.cc.o.d"
  "integration_test_pipeline"
  "integration_test_pipeline.pdb"
  "integration_test_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
