# Empty dependencies file for integration_test_pipeline.
# This may be replaced when dependencies are built.
