# Empty compiler generated dependencies file for sim_test_cache_model.
# This may be replaced when dependencies are built.
