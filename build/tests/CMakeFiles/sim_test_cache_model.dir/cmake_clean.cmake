file(REMOVE_RECURSE
  "CMakeFiles/sim_test_cache_model.dir/sim/test_cache_model.cc.o"
  "CMakeFiles/sim_test_cache_model.dir/sim/test_cache_model.cc.o.d"
  "sim_test_cache_model"
  "sim_test_cache_model.pdb"
  "sim_test_cache_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_cache_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
