# Empty compiler generated dependencies file for cupti_test_events.
# This may be replaced when dependencies are built.
