file(REMOVE_RECURSE
  "CMakeFiles/cupti_test_events.dir/cupti/test_events.cc.o"
  "CMakeFiles/cupti_test_events.dir/cupti/test_events.cc.o.d"
  "cupti_test_events"
  "cupti_test_events.pdb"
  "cupti_test_events[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cupti_test_events.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
