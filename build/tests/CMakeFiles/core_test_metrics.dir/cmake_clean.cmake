file(REMOVE_RECURSE
  "CMakeFiles/core_test_metrics.dir/core/test_metrics.cc.o"
  "CMakeFiles/core_test_metrics.dir/core/test_metrics.cc.o.d"
  "core_test_metrics"
  "core_test_metrics.pdb"
  "core_test_metrics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
