# Empty compiler generated dependencies file for core_test_metrics.
# This may be replaced when dependencies are built.
