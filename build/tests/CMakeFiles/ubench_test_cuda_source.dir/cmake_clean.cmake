file(REMOVE_RECURSE
  "CMakeFiles/ubench_test_cuda_source.dir/ubench/test_cuda_source.cc.o"
  "CMakeFiles/ubench_test_cuda_source.dir/ubench/test_cuda_source.cc.o.d"
  "ubench_test_cuda_source"
  "ubench_test_cuda_source.pdb"
  "ubench_test_cuda_source[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ubench_test_cuda_source.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
