# Empty compiler generated dependencies file for ubench_test_cuda_source.
# This may be replaced when dependencies are built.
