# Empty dependencies file for baselines_test_baselines.
# This may be replaced when dependencies are built.
