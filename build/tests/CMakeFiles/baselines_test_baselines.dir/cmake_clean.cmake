file(REMOVE_RECURSE
  "CMakeFiles/baselines_test_baselines.dir/baselines/test_baselines.cc.o"
  "CMakeFiles/baselines_test_baselines.dir/baselines/test_baselines.cc.o.d"
  "baselines_test_baselines"
  "baselines_test_baselines.pdb"
  "baselines_test_baselines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baselines_test_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
