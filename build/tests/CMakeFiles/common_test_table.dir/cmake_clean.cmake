file(REMOVE_RECURSE
  "CMakeFiles/common_test_table.dir/common/test_table.cc.o"
  "CMakeFiles/common_test_table.dir/common/test_table.cc.o.d"
  "common_test_table"
  "common_test_table.pdb"
  "common_test_table[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
