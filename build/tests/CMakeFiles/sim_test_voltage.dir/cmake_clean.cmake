file(REMOVE_RECURSE
  "CMakeFiles/sim_test_voltage.dir/sim/test_voltage.cc.o"
  "CMakeFiles/sim_test_voltage.dir/sim/test_voltage.cc.o.d"
  "sim_test_voltage"
  "sim_test_voltage.pdb"
  "sim_test_voltage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_voltage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
