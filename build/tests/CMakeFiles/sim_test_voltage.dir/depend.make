# Empty dependencies file for sim_test_voltage.
# This may be replaced when dependencies are built.
