# Empty compiler generated dependencies file for workloads_test_workloads.
# This may be replaced when dependencies are built.
