file(REMOVE_RECURSE
  "CMakeFiles/workloads_test_workloads.dir/workloads/test_workloads.cc.o"
  "CMakeFiles/workloads_test_workloads.dir/workloads/test_workloads.cc.o.d"
  "workloads_test_workloads"
  "workloads_test_workloads.pdb"
  "workloads_test_workloads[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_test_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
