# Empty dependencies file for common_test_logging.
# This may be replaced when dependencies are built.
