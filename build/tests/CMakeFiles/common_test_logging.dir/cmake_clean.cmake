file(REMOVE_RECURSE
  "CMakeFiles/common_test_logging.dir/common/test_logging.cc.o"
  "CMakeFiles/common_test_logging.dir/common/test_logging.cc.o.d"
  "common_test_logging"
  "common_test_logging.pdb"
  "common_test_logging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_test_logging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
