file(REMOVE_RECURSE
  "CMakeFiles/linalg_test_isotonic.dir/linalg/test_isotonic.cc.o"
  "CMakeFiles/linalg_test_isotonic.dir/linalg/test_isotonic.cc.o.d"
  "linalg_test_isotonic"
  "linalg_test_isotonic.pdb"
  "linalg_test_isotonic[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_test_isotonic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
