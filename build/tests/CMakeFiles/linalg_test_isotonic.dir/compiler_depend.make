# Empty compiler generated dependencies file for linalg_test_isotonic.
# This may be replaced when dependencies are built.
