# Empty dependencies file for linalg_test_lstsq.
# This may be replaced when dependencies are built.
