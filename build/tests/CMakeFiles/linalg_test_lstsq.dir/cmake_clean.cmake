file(REMOVE_RECURSE
  "CMakeFiles/linalg_test_lstsq.dir/linalg/test_lstsq.cc.o"
  "CMakeFiles/linalg_test_lstsq.dir/linalg/test_lstsq.cc.o.d"
  "linalg_test_lstsq"
  "linalg_test_lstsq.pdb"
  "linalg_test_lstsq[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linalg_test_lstsq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
