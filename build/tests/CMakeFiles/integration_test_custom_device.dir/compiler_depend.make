# Empty compiler generated dependencies file for integration_test_custom_device.
# This may be replaced when dependencies are built.
