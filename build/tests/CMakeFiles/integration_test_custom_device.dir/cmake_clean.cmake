file(REMOVE_RECURSE
  "CMakeFiles/integration_test_custom_device.dir/integration/test_custom_device.cc.o"
  "CMakeFiles/integration_test_custom_device.dir/integration/test_custom_device.cc.o.d"
  "integration_test_custom_device"
  "integration_test_custom_device.pdb"
  "integration_test_custom_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_test_custom_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
