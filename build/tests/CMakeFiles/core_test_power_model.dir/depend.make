# Empty dependencies file for core_test_power_model.
# This may be replaced when dependencies are built.
