file(REMOVE_RECURSE
  "CMakeFiles/core_test_power_model.dir/core/test_power_model.cc.o"
  "CMakeFiles/core_test_power_model.dir/core/test_power_model.cc.o.d"
  "core_test_power_model"
  "core_test_power_model.pdb"
  "core_test_power_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_power_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
