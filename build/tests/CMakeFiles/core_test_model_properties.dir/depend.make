# Empty dependencies file for core_test_model_properties.
# This may be replaced when dependencies are built.
