file(REMOVE_RECURSE
  "CMakeFiles/core_test_model_properties.dir/core/test_model_properties.cc.o"
  "CMakeFiles/core_test_model_properties.dir/core/test_model_properties.cc.o.d"
  "core_test_model_properties"
  "core_test_model_properties.pdb"
  "core_test_model_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test_model_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
