# Empty dependencies file for nvml_test_device.
# This may be replaced when dependencies are built.
