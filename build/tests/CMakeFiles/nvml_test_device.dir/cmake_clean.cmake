file(REMOVE_RECURSE
  "CMakeFiles/nvml_test_device.dir/nvml/test_device.cc.o"
  "CMakeFiles/nvml_test_device.dir/nvml/test_device.cc.o.d"
  "nvml_test_device"
  "nvml_test_device.pdb"
  "nvml_test_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvml_test_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
