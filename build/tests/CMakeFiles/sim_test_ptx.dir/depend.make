# Empty dependencies file for sim_test_ptx.
# This may be replaced when dependencies are built.
