file(REMOVE_RECURSE
  "CMakeFiles/sim_test_ptx.dir/sim/test_ptx.cc.o"
  "CMakeFiles/sim_test_ptx.dir/sim/test_ptx.cc.o.d"
  "sim_test_ptx"
  "sim_test_ptx.pdb"
  "sim_test_ptx[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_test_ptx.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
