# Empty dependencies file for sim_test_sm_cycle_sim.
# This may be replaced when dependencies are built.
