# Empty dependencies file for power_virtual_sensor.
# This may be replaced when dependencies are built.
