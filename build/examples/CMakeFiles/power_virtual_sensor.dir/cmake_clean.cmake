file(REMOVE_RECURSE
  "CMakeFiles/power_virtual_sensor.dir/power_virtual_sensor.cpp.o"
  "CMakeFiles/power_virtual_sensor.dir/power_virtual_sensor.cpp.o.d"
  "power_virtual_sensor"
  "power_virtual_sensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_virtual_sensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
