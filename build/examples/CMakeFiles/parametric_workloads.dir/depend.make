# Empty dependencies file for parametric_workloads.
# This may be replaced when dependencies are built.
