file(REMOVE_RECURSE
  "CMakeFiles/parametric_workloads.dir/parametric_workloads.cpp.o"
  "CMakeFiles/parametric_workloads.dir/parametric_workloads.cpp.o.d"
  "parametric_workloads"
  "parametric_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parametric_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
