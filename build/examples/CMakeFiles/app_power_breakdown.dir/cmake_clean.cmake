file(REMOVE_RECURSE
  "CMakeFiles/app_power_breakdown.dir/app_power_breakdown.cpp.o"
  "CMakeFiles/app_power_breakdown.dir/app_power_breakdown.cpp.o.d"
  "app_power_breakdown"
  "app_power_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/app_power_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
