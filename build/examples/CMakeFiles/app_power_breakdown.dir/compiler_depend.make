# Empty compiler generated dependencies file for app_power_breakdown.
# This may be replaced when dependencies are built.
