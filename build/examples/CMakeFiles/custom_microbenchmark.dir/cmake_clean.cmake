file(REMOVE_RECURSE
  "CMakeFiles/custom_microbenchmark.dir/custom_microbenchmark.cpp.o"
  "CMakeFiles/custom_microbenchmark.dir/custom_microbenchmark.cpp.o.d"
  "custom_microbenchmark"
  "custom_microbenchmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_microbenchmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
