# Empty dependencies file for custom_microbenchmark.
# This may be replaced when dependencies are built.
