# Empty compiler generated dependencies file for online_governor.
# This may be replaced when dependencies are built.
