file(REMOVE_RECURSE
  "CMakeFiles/online_governor.dir/online_governor.cpp.o"
  "CMakeFiles/online_governor.dir/online_governor.cpp.o.d"
  "online_governor"
  "online_governor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/online_governor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
