# Empty compiler generated dependencies file for gpupm_cli.
# This may be replaced when dependencies are built.
