/**
 * @file
 * Reproduces Table II: summarized description of the used GPUs.
 */

#include <iostream>
#include <sstream>

#include "common/table.hh"
#include "gpu/device.hh"
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    gpupm::bench::BenchReporter bench_report(argc, argv,
                                             "table2_devices");
    using namespace gpupm;

    TextTable t({"Characteristic", "Titan Xp", "GTX Titan X",
                 "Tesla K40c"});
    t.setTitle("Table II: Summarized description of the used GPUs");

    const auto &xp = gpu::DeviceDescriptor::get(gpu::DeviceKind::TitanXp);
    const auto &tx =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
    const auto &k40 =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::TeslaK40c);

    const auto row = [&](const std::string &name, auto get) {
        t.addRow({name, get(xp), get(tx), get(k40)});
    };
    const auto str = [](auto v) { return std::to_string(v); };

    row("Base architecture", [](const gpu::DeviceDescriptor &d) {
        return std::string(architectureName(d.architecture));
    });
    row("Compute capability", [](const gpu::DeviceDescriptor &d) {
        return d.compute_capability;
    });
    row("Memory frequencies (MHz)", [](const gpu::DeviceDescriptor &d) {
        std::ostringstream os;
        for (std::size_t i = 0; i < d.mem_freqs_mhz.size(); ++i)
            os << (i ? ", " : "") << d.mem_freqs_mhz[i];
        return os.str();
    });
    row("Core freq. range (MHz)", [&](const gpu::DeviceDescriptor &d) {
        return "[" + str(d.maxCoreMhz()) + ":" + str(d.minCoreMhz()) +
               "]";
    });
    row("Number of core freq. levels",
        [&](const gpu::DeviceDescriptor &d) {
            return str(d.core_freqs_mhz.size());
        });
    row("Default Mem. Frequency", [&](const gpu::DeviceDescriptor &d) {
        return str(d.default_mem_mhz);
    });
    row("Default Core Frequency", [&](const gpu::DeviceDescriptor &d) {
        return str(d.default_core_mhz);
    });
    row("Threads per warp", [&](const gpu::DeviceDescriptor &d) {
        return str(d.warp_size);
    });
    row("Number of SMs", [&](const gpu::DeviceDescriptor &d) {
        return str(d.num_sms);
    });
    row("Memory Bus Width (B)", [&](const gpu::DeviceDescriptor &d) {
        return str(d.mem_bus_bytes);
    });
    row("Shared mem. banks", [&](const gpu::DeviceDescriptor &d) {
        return str(d.shared_banks);
    });
    row("SP/INT Units/SM", [&](const gpu::DeviceDescriptor &d) {
        return str(d.sp_int_units_per_sm);
    });
    row("DP Units/SM", [&](const gpu::DeviceDescriptor &d) {
        return str(d.dp_units_per_sm);
    });
    row("SF Units/SM", [&](const gpu::DeviceDescriptor &d) {
        return str(d.sf_units_per_sm);
    });
    row("TDP (W)", [&](const gpu::DeviceDescriptor &d) {
        return TextTable::num(d.tdp_w, 0);
    });
    row("V-F configurations", [&](const gpu::DeviceDescriptor &d) {
        return str(d.allConfigs().size());
    });

    t.print(std::cout);
    return 0;
}
