/**
 * @file
 * Reproduces Fig. 9: effects of the input-matrix size on the
 * matrixMulCUBLAS kernel (GTX Titan X) — utilizations at the
 * reference configuration per size, measured vs predicted power across
 * the core-frequency range, and the TDP-driven automatic frequency
 * fallback at the top clock for the largest size.
 *
 * Shape targets: utilization and power grow with the matrix size;
 * prediction MAE ~6.8%; the 4096x4096 case at the highest core level
 * falls back to a lower clock instead of violating TDP.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    gpupm::bench::BenchReporter bench_report(argc, argv,
                                             "fig9_input_size");
    using namespace gpupm;
    using bench::fitDevice;

    auto fd = fitDevice(gpu::DeviceKind::GtxTitanX);
    model::Predictor predictor(fd.fit.model);
    const auto &desc = fd.desc();

    model::CampaignOptions opts;
    opts.power_repetitions = 5;

    std::vector<double> all_pred, all_meas;
    bool tdp_seen = false;

    for (int n : {64, 512, 4096}) {
        const auto app = workloads::matrixMulCublas(n);
        // Sweep all core clocks at the reference memory clock.
        std::vector<gpu::FreqConfig> sweep;
        for (int fc : desc.core_freqs_mhz)
            sweep.push_back({fc, desc.default_mem_mhz});
        const auto meas =
                model::measureApp(*fd.board, app.demand, sweep, opts);

        std::cout << "\n=== matrixMulCUBLAS " << n << "x" << n
                  << " — utilization at (975, 3505):";
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
            std::cout << "  "
                      << componentName(static_cast<gpu::Component>(i))
                      << "=" << TextTable::num(meas.util[i], 2);
        std::cout << "\n";

        TextTable t({"fcore [MHz]", "effective [MHz]", "Measured [W]",
                     "Predicted [W]"});
        t.setTitle("Fig. 9: power vs core frequency, " +
                   std::to_string(n) + "x" + std::to_string(n));
        for (std::size_t i = 0; i < sweep.size(); ++i) {
            // Predict at the clocks the board actually ran (the
            // paper's footnote: the prediction considers the
            // automatic fallback level).
            const auto p =
                    predictor.at(meas.util, meas.effective[i]).total_w;
            all_pred.push_back(p);
            all_meas.push_back(meas.power_w[i]);
            if (meas.effective[i].core_mhz != sweep[i].core_mhz)
                tdp_seen = true;
            t.addRow({std::to_string(sweep[i].core_mhz),
                      std::to_string(meas.effective[i].core_mhz),
                      TextTable::num(meas.power_w[i], 1),
                      TextTable::num(p, 1)});
        }
        t.print(std::cout);
        bench::saveCsv(t, "fig9_n" + std::to_string(n));
    }

    std::cout << "\nMAE across sizes and core clocks: "
              << TextTable::num(bench::mape(all_pred, all_meas), 1)
              << "%  (paper: 6.8%)\n";
    std::cout << "TDP-driven core-clock fallback observed: "
              << (tdp_seen ? "yes" : "no")
              << "  (paper: 1164 -> 1126 MHz for the 4096 case)\n";
    return 0;
}
