/**
 * @file
 * Sec. VI comparison: the proposed DVFS-aware model against the
 * prior-art baselines, trained and evaluated on identical data.
 *
 * Literature anchors: Abe et al. [14] report 15% / 14% / 23.5%
 * (Tesla / Fermi / Kepler generations, their own setup); GPUWattch-
 * style approaches assume power linear in frequency. On our common
 * footing the proposed model wins clearly wherever the V-F grid is
 * rich (Titan boards); on the K40c (one memory clock, 1.3x core
 * range) counter quality dominates every model equally.
 */

#include <iostream>

#include "baselines/baselines.hh"
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    gpupm::bench::BenchReporter bench_report(argc, argv,
                                             "cmp_baselines");
    using namespace gpupm;
    using bench::fitDevice;

    TextTable t({"Device", "Proposed [%]", "Abe-style linear [%]",
                 "Cubic V~f [%]", "Ref-scaling [%]"});
    t.setTitle("Sec. VI: validation-set MAE, all models trained on "
               "the same campaign");

    const char *tokens[] = {"titanxp", "titanx", "k40c"};
    int device_idx = 0;
    for (auto kind : gpu::kAllDevices) {
        auto fd = fitDevice(kind);
        model::Predictor predictor(fd.fit.model);
        const auto abe = baselines::AbeLinearModel::train(fd.data);
        const auto cubic =
                baselines::CubicScalingModel::train(fd.data);
        const auto refscale =
                baselines::RefScalingModel::train(fd.data);
        const auto apps = bench::measureValidationSet(*fd.board);
        const auto ref = fd.desc().referenceConfig();

        std::vector<double> meas, ours, p_abe, p_cubic, p_ref;
        for (const auto &app : apps) {
            double app_ref_power = 0.0;
            for (std::size_t i = 0; i < app.configs.size(); ++i)
                if (app.configs[i] == ref)
                    app_ref_power = app.power_w[i];
            for (std::size_t i = 0; i < app.configs.size(); ++i) {
                const auto &cfg = app.configs[i];
                meas.push_back(app.power_w[i]);
                ours.push_back(predictor.at(app.util, cfg).total_w);
                p_abe.push_back(abe.predict(app.util, cfg));
                p_cubic.push_back(cubic.predict(app.util, cfg));
                p_ref.push_back(
                        refscale.predict(app_ref_power, cfg));
            }
        }
        const std::string tok = tokens[device_idx++];
        bench_report.stat("proposed_mae_pct_" + tok,
                          bench::mape(ours, meas));
        bench_report.stat("abe_mae_pct_" + tok,
                          bench::mape(p_abe, meas));
        bench_report.stat("cubic_mae_pct_" + tok,
                          bench::mape(p_cubic, meas));
        bench_report.stat("refscale_mae_pct_" + tok,
                          bench::mape(p_ref, meas));
        t.addRow({fd.desc().name,
                  TextTable::num(bench::mape(ours, meas), 1),
                  TextTable::num(bench::mape(p_abe, meas), 1),
                  TextTable::num(bench::mape(p_cubic, meas), 1),
                  TextTable::num(bench::mape(p_ref, meas), 1)});
    }
    t.print(std::cout);
    bench::saveCsv(t, "cmp_baselines");
    std::cout << "\n(Abe et al. report 23.5% on their Kepler setup; "
                 "the proposed model's paper numbers are 6.9/6.0/"
                 "12.4%.)\n";
    return 0;
}
