/**
 * @file
 * Reproduces Table I: the performance events required to compute the
 * model's metrics on each device, including the undisclosed numeric
 * ("W") events and their per-device ID prefixes.
 */

#include <iostream>
#include <sstream>

#include "common/table.hh"
#include "cupti/events.hh"
#include "bench_common.hh"

int
main(int argc, char **argv)
{
    gpupm::bench::BenchReporter bench_report(argc, argv,
                                             "table1_events");
    using namespace gpupm;
    using namespace gpupm::cupti;

    TextTable t({"Metric", "Titan Xp", "GTX Titan X", "Tesla K40c"});
    t.setTitle("Table I: Performance events per metric "
               "(W-prefix: 352321 / 335544 / 318767)");

    const auto names = [](gpu::DeviceKind kind, Metric m) {
        std::ostringstream os;
        const auto &events = EventTable::get(kind).eventsFor(m);
        for (std::size_t i = 0; i < events.size(); ++i)
            os << (i ? ", " : "") << events[i].name;
        return os.str();
    };

    for (Metric m : kAllMetrics) {
        t.addRow({std::string(metricName(m)),
                  names(gpu::DeviceKind::TitanXp, m),
                  names(gpu::DeviceKind::GtxTitanX, m),
                  names(gpu::DeviceKind::TeslaK40c, m)});
    }
    t.print(std::cout);

    std::cout << "\nAggregation (Sec. III-C): multi-event metrics are "
                 "summed; sector counters are 32 B, shared\n"
                 "transactions 128 B; warp counts are per-SM averages "
                 "for Eq. 8; the combined SP/INT warp\n"
                 "count is split by the InstINT/InstSP ratio "
                 "(Eq. 10).\n";
    return 0;
}
