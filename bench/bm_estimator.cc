/**
 * @file
 * Google-benchmark timings of the pipeline stages. The paper reports
 * the estimation converging in < 50 iterations, about 30 s on a 2013
 * laptop CPU; the anchor here is that model construction stays
 * interactive and prediction is effectively free (the property the
 * DVFS-management use case relies on).
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"

namespace
{

using namespace gpupm;

const model::TrainingData &
titanxData()
{
    static const model::TrainingData data = [] {
        sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
        model::CampaignOptions opts;
        opts.power_repetitions = 3;
        return model::runTrainingCampaign(board, ubench::buildSuite(),
                                          opts);
    }();
    return data;
}

void
BM_EstimatorFit(benchmark::State &state)
{
    const auto &data = titanxData();
    const model::ModelEstimator est;
    int iterations = 0;
    for (auto _ : state) {
        auto fit = est.estimate(data);
        iterations = fit.iterations;
        benchmark::DoNotOptimize(fit.rmse_w);
    }
    state.counters["iterations"] = iterations;
}
BENCHMARK(BM_EstimatorFit)->Unit(benchmark::kMillisecond);

void
BM_Prediction(benchmark::State &state)
{
    const auto &data = titanxData();
    static const model::EstimationResult fit =
            model::ModelEstimator().estimate(data);
    gpu::ComponentArray u{};
    u[1] = 0.5;
    u[6] = 0.7;
    std::size_t i = 0;
    for (auto _ : state) {
        const auto &cfg = data.configs[i++ % data.configs.size()];
        benchmark::DoNotOptimize(
                fit.model.predict(u, cfg).total_w);
    }
}
BENCHMARK(BM_Prediction);

void
BM_FullVfSweep(benchmark::State &state)
{
    const auto &data = titanxData();
    static const model::EstimationResult fit =
            model::ModelEstimator().estimate(data);
    const model::Predictor pred(fit.model);
    gpu::ComponentArray u{};
    u[1] = 0.5;
    u[6] = 0.7;
    for (auto _ : state)
        benchmark::DoNotOptimize(pred.sweep(u).size());
}
BENCHMARK(BM_FullVfSweep)->Unit(benchmark::kMicrosecond);

void
BM_TrainingCampaign(benchmark::State &state)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto suite = ubench::buildSuite();
    model::CampaignOptions opts;
    opts.power_repetitions = 3;
    for (auto _ : state) {
        auto data = model::runTrainingCampaign(board, suite, opts);
        benchmark::DoNotOptimize(data.power_w.size());
    }
}
BENCHMARK(BM_TrainingCampaign)->Unit(benchmark::kMillisecond);

void
BM_ProfilerCollect(benchmark::State &state)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    cupti::Profiler prof(board, 1);
    const auto app = workloads::blackScholes();
    const auto cfg = board.descriptor().referenceConfig();
    for (auto _ : state)
        benchmark::DoNotOptimize(
                prof.profile(app.demand, cfg).acycles);
}
BENCHMARK(BM_ProfilerCollect);

void
BM_AnalyticExecute(benchmark::State &state)
{
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto app = workloads::blackScholes();
    const auto cfg = board.descriptor().referenceConfig();
    for (auto _ : state)
        benchmark::DoNotOptimize(
                board.execute(app.demand, cfg).time_s);
}
BENCHMARK(BM_AnalyticExecute);

void
BM_SmCycleSim(benchmark::State &state)
{
    const auto &dev =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
    const auto mb = ubench::makeArithmetic(ubench::Family::SP, 64);
    for (auto _ : state) {
        sim::SmCycleSim simr(dev, {975, 3505}, 32);
        benchmark::DoNotOptimize(simr.run(*mb.loop).cycles);
    }
}
BENCHMARK(BM_SmCycleSim)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
