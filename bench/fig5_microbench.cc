/**
 * @file
 * Reproduces Fig. 5: per-component utilization rates (A) and the
 * model's per-component power breakdown against measured power (B) for
 * the 83-microbenchmark suite on the GTX Titan X at the default
 * configuration.
 *
 * Shape targets: each family's intensity sweep trades memory for
 * compute utilization; the constant (utilization-independent) power
 * contributes ~80 W; the maximum dynamic share is roughly half the
 * total (paper: 49%).
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    gpupm::bench::BenchReporter bench_report(argc, argv,
                                             "fig5_microbench");
    using namespace gpupm;
    using bench::fitDevice;

    auto fd = fitDevice(gpu::DeviceKind::GtxTitanX);
    const auto ref = fd.desc().referenceConfig();
    const std::size_t ref_ci = fd.data.configIndex(ref).value();
    const auto suite = ubench::buildSuite();

    TextTable a({"Microbenchmark", "INT", "SP", "DP", "SF", "Shared",
                 "L2", "DRAM"});
    a.setTitle("Fig. 5A: utilization rates at (975, 3505) MHz");
    for (std::size_t b = 0; b < suite.size(); ++b) {
        std::vector<std::string> row = {suite[b].name};
        for (double u : fd.data.utils[b])
            row.push_back(TextTable::num(u, 2));
        a.addRow(row);
    }
    a.print(std::cout);
    bench::saveCsv(a, "fig5a_utilizations");

    TextTable t({"Microbenchmark", "Measured [W]", "Model [W]",
                 "Constant", "INT", "SP", "DP", "SF", "Shared", "L2",
                 "DRAM"});
    t.setTitle("\nFig. 5B: per-component power breakdown at "
               "(975, 3505) MHz");
    std::vector<double> pred, meas;
    double max_dynamic_share = 0.0;
    double constant_w = 0.0;
    for (std::size_t b = 0; b < suite.size(); ++b) {
        const auto p = fd.fit.model.predict(fd.data.utils[b], ref);
        constant_w = p.constant_w;
        const double dyn = p.total_w - p.constant_w;
        if (p.total_w > 0.0)
            max_dynamic_share =
                    std::max(max_dynamic_share, dyn / p.total_w);
        pred.push_back(p.total_w);
        meas.push_back(fd.data.power_w[b][ref_ci]);
        std::vector<std::string> row = {
            suite[b].name,
            TextTable::num(fd.data.power_w[b][ref_ci], 1),
            TextTable::num(p.total_w, 1),
            TextTable::num(p.constant_w, 1)};
        for (double w : p.component_w)
            row.push_back(TextTable::num(w, 1));
        t.addRow(row);
    }
    t.print(std::cout);
    bench::saveCsv(t, "fig5b_breakdown");

    std::cout << "\nconstant (utilization-independent) power at the "
                 "reference: "
              << TextTable::num(constant_w, 1)
              << " W  (paper: ~84 W)\n";
    std::cout << "maximum dynamic-power share across the suite: "
              << TextTable::num(100.0 * max_dynamic_share, 0)
              << "%  (paper: ~49%)\n";
    std::cout << "suite fit MAE at the reference configuration: "
              << TextTable::num(bench::mape(pred, meas), 1) << "%\n";
    return 0;
}
