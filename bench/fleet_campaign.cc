/**
 * @file
 * Fleet-campaign benchmark: trains and validates a 48-device
 * simulated fleet (16 instances per architecture, seeded per-instance
 * ground-truth jitter) through the work-stealing supervisor, then
 * repeats the run under chaos injection (shard kills mid-checkpoint
 * plus poisoned devices) and reports both the merged accuracy
 * marginals and the determinism check — the chaos run's accuracy
 * payload over the surviving devices must equal the clean run's.
 *
 * Telemetry: overall and per-architecture MAE (gated against
 * bench/golden/BENCH_fleet.json), device accounting, supervisor
 * counters and wall-clock.
 */

#include <iostream>

#include "bench_common.hh"
#include "fleet/supervisor.hh"

int
main(int argc, char **argv)
{
    gpupm::bench::BenchReporter bench_report(argc, argv,
                                             "fleet_campaign");
    using namespace gpupm;

    fleet::FleetOptions opts;
    opts.devices = 48;
    opts.shards = 8;
    opts.seed = 42;

    const auto clean = fleet::runFleetCampaign(opts);
    std::cout << clean.summary() << '\n';

    TextTable t({"Architecture", "Devices", "MAE [%]", "RMSE [W]"});
    t.setTitle("Fleet accuracy marginals (48 devices, clean run)");
    for (const auto &agg : clean.scoreboard.per_arch) {
        t.addRow({agg.arch, std::to_string(agg.devices_ok),
                  TextTable::num(agg.stats.mae_pct, 2),
                  TextTable::num(agg.stats.rmse_w, 2)});
        bench_report.stat("mae_pct_" + agg.arch,
                          agg.stats.mae_pct);
    }
    t.print(std::cout);
    bench::saveCsv(t, "fleet_marginals");
    bench_report.stat("overall_mae_pct",
                      clean.scoreboard.overall.mae_pct);
    bench_report.stat("devices_ok",
                      static_cast<double>(
                              clean.scoreboard.devices_ok));

    // Chaos pass: the same fleet battered by shard kills and
    // poisoned instances. The supervisor must keep the surviving
    // devices' merged accuracy bit-identical to the clean run.
    fleet::FleetOptions chaos_opts = opts;
    chaos_opts.chaos.shard_kill_rate = 0.3;
    chaos_opts.chaos.poison_fraction = 0.1;
    const auto chaos = fleet::runFleetCampaign(chaos_opts);
    std::cout << "\nchaos pass: " << chaos.chaos_kills
              << " shard kills, " << chaos.shard_retries
              << " retries, " << chaos.scoreboard.devices_failed
              << " poisoned devices quarantined\n";

    const auto specs = fleet::buildFleetSpecs(chaos_opts);
    std::vector<fleet::DeviceSpec> survivors;
    for (const auto &spec : specs)
        if (!spec.poison_nan && !spec.poison_config)
            survivors.push_back(spec);
    const auto reference = fleet::runFleetCampaign(opts, survivors);
    const bool identical = chaos.scoreboard.toJson(false) ==
                           reference.scoreboard.toJson(false);
    std::cout << "chaos determinism: merged scoreboard "
              << (identical ? "BIT-IDENTICAL" : "DIVERGED")
              << " vs fault-free run over the survivors\n";
    bench_report.stat("chaos_bit_identical", identical ? 1.0 : 0.0);
    bench_report.stat("chaos_devices_failed",
                      static_cast<double>(
                              chaos.scoreboard.devices_failed));
    bench_report.stat("chaos_shard_retries",
                      static_cast<double>(chaos.shard_retries));
    return identical ? 0 : 1;
}
