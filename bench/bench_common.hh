/**
 * @file
 * Shared plumbing for the experiment-reproduction binaries: build a
 * simulated board, run the training campaign, fit the model, and
 * measure the validation applications — the steps every figure and
 * table of Sec. V starts from.
 *
 * Every binary additionally accepts `--json-out[=<path>]` (default
 * BENCH_<name>.json) through BenchReporter: a versioned JSON artifact
 * with build provenance, headline accuracy stats and per-phase
 * wall-clock derived from the span tracer, consumed by
 * tools/gpupm_bench_check to gate runtime and accuracy regressions.
 */

#ifndef GPUPM_BENCH_COMMON_HH
#define GPUPM_BENCH_COMMON_HH

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/numio.hh"
#include "common/provenance.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/campaign.hh"
#include "core/predictor.hh"
#include "obs/profiler.hh"
#include "obs/trace.hh"
#include "workloads/workloads.hh"

namespace gpupm
{
namespace bench
{

/** One device taken through training + estimation. */
struct FittedDevice
{
    std::unique_ptr<sim::PhysicalGpu> board;
    model::TrainingData data;
    model::EstimationResult fit;

    const gpu::DeviceDescriptor &desc() const
    {
        return board->descriptor();
    }
};

/** Run the Sec. V-A campaign and Sec. III-D estimation for a device. */
inline FittedDevice
fitDevice(gpu::DeviceKind kind, int power_repetitions = 5)
{
    FittedDevice fd;
    fd.board = std::make_unique<sim::PhysicalGpu>(kind);
    model::CampaignOptions opts;
    opts.power_repetitions = power_repetitions;
    fd.data = model::runTrainingCampaign(*fd.board,
                                         ubench::buildSuite(), opts);
    fd.fit = model::ModelEstimator().estimate(fd.data);
    return fd;
}

/** Measure every Fig. 7/10 validation application on a board. */
inline std::vector<model::AppMeasurement>
measureValidationSet(const sim::PhysicalGpu &board,
                     int power_repetitions = 5)
{
    model::CampaignOptions opts;
    opts.power_repetitions = power_repetitions;
    std::vector<model::AppMeasurement> out;
    for (const auto &w : workloads::fullValidationSet())
        out.push_back(model::measureApp(
                board, w.demand, board.descriptor().allConfigs(),
                opts));
    return out;
}

/**
 * Persist a rendered table as CSV under ./bench_csv/ so every figure's
 * data is plot-ready. Failures to write (e.g. read-only CWD) are
 * reported but never abort an experiment.
 */
inline void
saveCsv(const TextTable &table, const std::string &name)
{
    std::error_code ec;
    std::filesystem::create_directories("bench_csv", ec);
    std::ofstream f("bench_csv/" + name + ".csv");
    if (!f) {
        gpupm::warn("cannot write bench_csv/", name, ".csv");
        return;
    }
    table.printCsv(f);
}

/** Mean absolute percentage error of a prediction/measurement pair. */
inline double
mape(const std::vector<double> &pred, const std::vector<double> &meas)
{
    return stats::meanAbsPercentError(pred, meas);
}

/**
 * Bench-run telemetry: when the binary was invoked with
 * `--json-out[=<path>]`, collects headline stats (stat()) and, via
 * the span tracer enabled for the run's duration, per-category
 * wall-clock, and writes one versioned JSON artifact on destruction:
 *
 *     {"gpupm_bench_version":1, "name":..., "provenance":{...},
 *      "wall_ms":..., "phases_ms":{...}, "cpu":{...}, "stats":{...}}
 *
 * The `cpu` block is the sampling profiler's summary (obs/profiler.hh
 * renderJson: per-category sample shares, per-thread counts, top
 * functions by self time) — the artifact `gpupm_bench_check profile`
 * gates per-phase CPU budgets on. `--profile-out[=<path>]` (default
 * BENCH_<name>.folded) additionally writes the collapsed-stack
 * profile for flamegraph.pl / speedscope, with or without
 * `--json-out`.
 *
 * Without either flag the reporter is inert. Construct it first thing
 * in main() so the wall-clock and the profile cover the whole run.
 */
class BenchReporter
{
  public:
    BenchReporter(int argc, char **argv, std::string name)
        : name_(std::move(name)),
          start_(std::chrono::steady_clock::now())
    {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--json-out")
                path_ = "BENCH_" + name_ + ".json";
            else if (arg.rfind("--json-out=", 0) == 0)
                path_ = arg.substr(std::strlen("--json-out="));
            else if (arg == "--profile-out")
                profile_path_ = "BENCH_" + name_ + ".folded";
            else if (arg.rfind("--profile-out=", 0) == 0)
                profile_path_ =
                        arg.substr(std::strlen("--profile-out="));
        }
        if (!path_.empty())
            obs::Tracer::global().enable();
        if (!path_.empty() || !profile_path_.empty()) {
            std::string err;
            if (obs::Profiler::global().start({}, &err))
                profiling_ = true;
            else
                gpupm::warn("cpu profiler unavailable: ", err);
        }
    }

    BenchReporter(const BenchReporter &) = delete;
    BenchReporter &operator=(const BenchReporter &) = delete;

    /** Record one scalar result (e.g. a device's MAE in percent). */
    void stat(const std::string &key, double value)
    {
        stats_.emplace_back(key, value);
    }

    bool enabled() const { return !path_.empty(); }

    ~BenchReporter()
    {
        obs::CpuProfile prof;
        if (profiling_) {
            obs::Profiler::global().stop();
            prof = obs::Profiler::global().collect();
            if (!profile_path_.empty()) {
                if (prof.writeFolded(profile_path_))
                    gpupm::inform("cpu profile written to ",
                                  profile_path_);
                else
                    gpupm::warn("cannot write ", profile_path_);
            }
        }
        if (path_.empty())
            return;
        const double wall_ms =
                std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start_)
                        .count();
        auto &tracer = obs::Tracer::global();
        tracer.disable();

        // Per-category wall-clock: union of the category's span
        // intervals, so nested spans are not double-counted.
        std::map<std::string,
                 std::vector<std::pair<double, double>>> per_cat;
        for (const auto &ev : tracer.snapshot())
            per_cat[ev.cat].emplace_back(
                    static_cast<double>(ev.ts_us),
                    static_cast<double>(ev.dur_us));
        std::ofstream out(path_);
        if (!out) {
            gpupm::warn("cannot write ", path_);
            return;
        }
        out << "{\"gpupm_bench_version\":1,\n\"name\":\"" << name_
            << "\",\n\"provenance\":"
            << common::toJson(common::collectProvenance())
            << ",\n\"wall_ms\":" << numio::formatDouble(wall_ms)
            << ",\n\"phases_ms\":{";
        bool first = true;
        for (auto &kv : per_cat) {
            std::sort(kv.second.begin(), kv.second.end());
            double total = 0.0, lo = 0.0, hi = -1.0;
            for (const auto &iv : kv.second) {
                if (iv.first > hi) {
                    if (hi > lo)
                        total += hi - lo;
                    lo = iv.first;
                    hi = iv.first + iv.second;
                } else {
                    hi = std::max(hi, iv.first + iv.second);
                }
            }
            if (hi > lo)
                total += hi - lo;
            out << (first ? "" : ",") << "\"" << kv.first << "\":"
                << numio::formatDouble(total / 1000.0);
            first = false;
        }
        out << "}";
        if (profiling_)
            out << ",\n\"cpu\":" << prof.renderJson();
        out << ",\n\"stats\":{";
        first = true;
        for (const auto &kv : stats_) {
            out << (first ? "" : ",") << "\"" << kv.first << "\":"
                << numio::formatDouble(kv.second);
            first = false;
        }
        out << "}}\n";
        if (out)
            gpupm::inform("bench telemetry written to ", path_);
        else
            gpupm::warn("cannot write ", path_);
    }

  private:
    std::string name_;
    std::string path_;
    std::string profile_path_;
    bool profiling_ = false;
    std::chrono::steady_clock::time_point start_;
    std::vector<std::pair<std::string, double>> stats_;
};

} // namespace bench
} // namespace gpupm

#endif // GPUPM_BENCH_COMMON_HH
