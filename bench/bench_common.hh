/**
 * @file
 * Shared plumbing for the experiment-reproduction binaries: build a
 * simulated board, run the training campaign, fit the model, and
 * measure the validation applications — the steps every figure and
 * table of Sec. V starts from.
 */

#ifndef GPUPM_BENCH_COMMON_HH
#define GPUPM_BENCH_COMMON_HH

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "core/campaign.hh"
#include "core/predictor.hh"
#include "workloads/workloads.hh"

namespace gpupm
{
namespace bench
{

/** One device taken through training + estimation. */
struct FittedDevice
{
    std::unique_ptr<sim::PhysicalGpu> board;
    model::TrainingData data;
    model::EstimationResult fit;

    const gpu::DeviceDescriptor &desc() const
    {
        return board->descriptor();
    }
};

/** Run the Sec. V-A campaign and Sec. III-D estimation for a device. */
inline FittedDevice
fitDevice(gpu::DeviceKind kind, int power_repetitions = 5)
{
    FittedDevice fd;
    fd.board = std::make_unique<sim::PhysicalGpu>(kind);
    model::CampaignOptions opts;
    opts.power_repetitions = power_repetitions;
    fd.data = model::runTrainingCampaign(*fd.board,
                                         ubench::buildSuite(), opts);
    fd.fit = model::ModelEstimator().estimate(fd.data);
    return fd;
}

/** Measure every Fig. 7/10 validation application on a board. */
inline std::vector<model::AppMeasurement>
measureValidationSet(const sim::PhysicalGpu &board,
                     int power_repetitions = 5)
{
    model::CampaignOptions opts;
    opts.power_repetitions = power_repetitions;
    std::vector<model::AppMeasurement> out;
    for (const auto &w : workloads::fullValidationSet())
        out.push_back(model::measureApp(
                board, w.demand, board.descriptor().allConfigs(),
                opts));
    return out;
}

/**
 * Persist a rendered table as CSV under ./bench_csv/ so every figure's
 * data is plot-ready. Failures to write (e.g. read-only CWD) are
 * reported but never abort an experiment.
 */
inline void
saveCsv(const TextTable &table, const std::string &name)
{
    std::error_code ec;
    std::filesystem::create_directories("bench_csv", ec);
    std::ofstream f("bench_csv/" + name + ".csv");
    if (!f) {
        gpupm::warn("cannot write bench_csv/", name, ".csv");
        return;
    }
    table.printCsv(f);
}

/** Mean absolute percentage error of a prediction/measurement pair. */
inline double
mape(const std::vector<double> &pred, const std::vector<double> &meas)
{
    return stats::meanAbsPercentError(pred, meas);
}

} // namespace bench
} // namespace gpupm

#endif // GPUPM_BENCH_COMMON_HH
