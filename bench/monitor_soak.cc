/**
 * @file
 * Monitor-soak benchmark: 10k virtually-clocked sampler ticks with
 * the embedded time-series store and the alert engine enabled, over a
 * synthetic deterministic probe (no model training — this measures
 * the observability overhead, not the simulator).
 *
 * Gates, in order of importance:
 *  - the tsdb memory high-water must stay under the bound implied by
 *    its cardinality and capacity caps (exit 1 otherwise) — the
 *    store's "bounded by construction" claim, soaked;
 *  - the injected mid-run accuracy fault must take an alert rule
 *    through firing and back to resolved (exit 1 otherwise);
 *  - a second, traced pass replays the identical tick sequence with
 *    the tracer feeding a bounded TraceStore (per-tick root traces,
 *    retain-events off): the store must stay inside its byte bound
 *    and must not evict a single error trace (exit 1 otherwise), and
 *    the traced per-tick overhead is reported alongside the bare one;
 *  - wall-clock (the per-tick sampling overhead with the store and
 *    engine on the tick path) is gated generously against
 *    bench/golden/BENCH_monitor_soak.json via gpupm_bench_check.
 */

#include <cmath>
#include <cstdint>
#include <iostream>

#include "bench_common.hh"
#include "obs/alerts.hh"
#include "obs/metrics.hh"
#include "obs/sampler.hh"
#include "obs/standard.hh"
#include "obs/trace.hh"
#include "obs/trace_store.hh"
#include "obs/tsdb.hh"

int
main(int argc, char **argv)
{
    gpupm::bench::BenchReporter bench_report(argc, argv,
                                             "monitor_soak");
    using namespace gpupm;
    obs::Registry::global().reset();

    constexpr int kTicks = 10'000;
    constexpr std::int64_t kPeriodUs = 100'000; // 10 Hz virtual clock
    constexpr int kFaultFrom = 4'000;
    constexpr int kFaultTo = 5'000;

    // Synthetic probe: smooth measured power, ~4% prediction error in
    // steady state, 18% inside the fault window. Everything is a pure
    // function of the tick index — bit-identical across runs.
    long tick = 0;
    auto probe = [&tick](const std::string &app,
                         const gpu::FreqConfig &cfg) {
        obs::MonitorSample s;
        s.app = app;
        s.cfg = cfg;
        const double t = static_cast<double>(tick++);
        s.measured_w = 200.0 + 25.0 * std::sin(t * 0.01);
        const double err =
                (tick > kFaultFrom && tick <= kFaultTo) ? 0.18
                                                        : 0.04;
        s.predicted_w =
                s.measured_w * (1.0 + err * std::sin(t * 0.003 + 1.0));
        return s;
    };
    const std::vector<obs::SchedulePoint> schedule{
            {"SOAK1", {595, 3505}},
            {"SOAK2", {1000, 3505}},
            {"SOAK3", {1392, 3505}},
    };

    obs::Tsdb tsdb;
    const obs::TsdbOptions &topts = tsdb.options();

    obs::AlertRule rule;
    rule.name = "soak_mae_high";
    rule.series = "gpupm_accuracy_rolling_mae_pct";
    rule.op = obs::AlertOp::Gt;
    rule.threshold = 8.0; // between the 4% baseline and the 18% fault
    rule.window_us = 10 * kPeriodUs;
    rule.for_us = 5 * kPeriodUs;
    rule.cooldown_us = 50 * kPeriodUs;
    obs::AlertEngine engine(tsdb, {rule});

    obs::SamplerOptions sopts;
    sopts.period_ms = static_cast<int>(kPeriodUs / 1000);
    sopts.rolling_window = 64;
    sopts.device = 1;
    sopts.device_name = "Soak GPU";
    sopts.reference = {1000, 3505};
    obs::Sampler sampler(probe, schedule, sopts, nullptr, &tsdb,
                         &engine);

    // Fixed-accounting bound: a pure function of the configured caps.
    const std::size_t mem_bound =
            sizeof(obs::Tsdb) + topts.stripes * 512 +
            topts.max_series *
                    (topts.raw_capacity * sizeof(obs::TsPoint) +
                     2 * topts.tier_capacity * sizeof(obs::TsBucket) +
                     1024);

    std::size_t high_water = 0;
    const auto loop_start = std::chrono::steady_clock::now();
    for (int t = 0; t < kTicks; ++t) {
        sampler.tickSynchronously((t + 1) * kPeriodUs);
        if (t % 100 == 0)
            high_water =
                    std::max(high_water, tsdb.memoryBytes());
    }
    const double loop_ms =
            std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - loop_start)
                    .count();
    high_water = std::max(high_water, tsdb.memoryBytes());

    // The fault must have walked the rule through the whole
    // lifecycle: firing inside the window, resolved after it.
    bool fired = false, resolved = false;
    const auto statuses = engine.snapshot();
    for (const auto &tr : statuses[0].history) {
        if (tr.state == obs::AlertState::Firing)
            fired = true;
        if (tr.state == obs::AlertState::Resolved)
            resolved = true;
    }

    // Traced pass: replay the identical tick sequence (tick counter
    // rewound, fault window included) with per-tick root traces
    // feeding a bounded TraceStore in store-only mode — the monitor
    // daemon's exact configuration. Measures the tracing overhead on
    // the tick path and soaks the tail-sampler's two contracts: hard
    // byte bound, zero error-trace loss.
    tick = 0;
    obs::Tsdb traced_tsdb;
    obs::AlertEngine traced_engine(traced_tsdb, {rule});
    obs::Sampler traced_sampler(probe, schedule, sopts, nullptr,
                                &traced_tsdb, &traced_engine);
    obs::TraceStore trace_store;
    auto &tracer = obs::Tracer::global();
    tracer.seedIds(42);
    tracer.attachStore(&trace_store);
    tracer.setRetainEvents(false); // store-only, like the daemon
    // BenchReporter already enabled the tracer when reporting; only
    // enable it here (clearing the phase-1 span buffer) on bare runs.
    const bool was_enabled = tracer.enabled();
    if (!was_enabled)
        tracer.enable();
    std::size_t trace_high_water = 0;
    const auto traced_start = std::chrono::steady_clock::now();
    for (int t = 0; t < kTicks; ++t) {
        traced_sampler.tickSynchronously((t + 1) * kPeriodUs);
        if (t % 100 == 0)
            trace_high_water = std::max(trace_high_water,
                                        trace_store.memoryBytes());
    }
    const double traced_ms =
            std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - traced_start)
                    .count();
    trace_high_water =
            std::max(trace_high_water, trace_store.memoryBytes());
    if (!was_enabled)
        tracer.disable();
    tracer.attachStore(nullptr);
    tracer.setRetainEvents(true);

    const double tick_us = loop_ms * 1000.0 / kTicks;
    const double traced_tick_us = traced_ms * 1000.0 / kTicks;
    std::cout << "monitor soak: " << kTicks << " ticks, "
              << tsdb.seriesCount() << " series, "
              << tsdb.pointsAppended() << " points, high-water "
              << high_water << " B (bound " << mem_bound << " B), "
              << gpupm::numio::formatDouble(tick_us)
              << " us/tick\n";
    std::cout << "alert lifecycle: fired="
              << (fired ? "yes" : "NO") << " resolved="
              << (resolved ? "yes" : "NO") << " (transitions "
              << obs::alertTransitionsTotal().value() << ")\n";
    std::cout << "traced pass: "
              << gpupm::numio::formatDouble(traced_tick_us)
              << " us/tick (bare "
              << gpupm::numio::formatDouble(tick_us) << "), store "
              << trace_store.traceCount() << " traces, high-water "
              << trace_high_water << " B (bound "
              << trace_store.memoryBoundBytes() << " B), errors "
              << trace_store.errorsOfferedTotal() << " offered / "
              << trace_store.errorsEvictedTotal() << " evicted\n";

    bench_report.stat("ticks", kTicks);
    bench_report.stat("tick_overhead_us", tick_us);
    bench_report.stat("tsdb_series",
                      static_cast<double>(tsdb.seriesCount()));
    bench_report.stat("tsdb_points",
                      static_cast<double>(tsdb.pointsAppended()));
    bench_report.stat("tsdb_memory_high_water_bytes",
                      static_cast<double>(high_water));
    bench_report.stat("tsdb_memory_bound_bytes",
                      static_cast<double>(mem_bound));
    bench_report.stat("alert_transitions",
                      obs::alertTransitionsTotal().value());
    // _pct stats are the ones gpupm_bench_check gates tightly: the
    // steady-state rolling MAE of the synthetic probe and the memory
    // utilization against the configured bound.
    bench_report.stat("rolling_mae_pct",
                      obs::accuracyRollingMaePct().value());
    bench_report.stat("memory_of_bound_pct",
                      100.0 * static_cast<double>(high_water) /
                              static_cast<double>(mem_bound));
    bench_report.stat("tick_overhead_traced_us", traced_tick_us);
    bench_report.stat("trace_store_high_water_bytes",
                      static_cast<double>(trace_high_water));
    bench_report.stat("trace_store_bound_bytes",
                      static_cast<double>(
                              trace_store.memoryBoundBytes()));
    bench_report.stat("traces_kept",
                      static_cast<double>(trace_store.traceCount()));
    bench_report.stat(
            "traces_error_offered",
            static_cast<double>(trace_store.errorsOfferedTotal()));
    // Deterministically-zero gated stats: tail-sampling contract
    // violations show up as a nonzero pct against the golden's 0.
    bench_report.stat(
            "trace_memory_over_bound_pct",
            trace_high_water > trace_store.memoryBoundBytes()
                    ? 100.0 *
                              static_cast<double>(
                                      trace_high_water -
                                      trace_store.memoryBoundBytes()) /
                              static_cast<double>(
                                      trace_store.memoryBoundBytes())
                    : 0.0);
    bench_report.stat(
            "trace_error_loss_pct",
            trace_store.errorsOfferedTotal() > 0
                    ? 100.0 *
                              static_cast<double>(
                                      trace_store
                                              .errorsEvictedTotal()) /
                              static_cast<double>(
                                      trace_store
                                              .errorsOfferedTotal())
                    : 0.0);

    if (high_water > mem_bound) {
        std::cout << "FAIL: tsdb memory exceeded its bound\n";
        return 1;
    }
    if (!fired || !resolved) {
        std::cout << "FAIL: alert lifecycle incomplete\n";
        return 1;
    }
    if (trace_high_water > trace_store.memoryBoundBytes()) {
        std::cout << "FAIL: trace store exceeded its byte bound\n";
        return 1;
    }
    if (trace_store.errorsOfferedTotal() < 1 ||
        trace_store.errorsEvictedTotal() > 0) {
        std::cout << "FAIL: tail sampler lost error traces ("
                  << trace_store.errorsOfferedTotal()
                  << " offered, "
                  << trace_store.errorsEvictedTotal()
                  << " evicted)\n";
        return 1;
    }
    return 0;
}
