/**
 * @file
 * Ablation study of the estimator's design choices (the aspects the
 * paper argues for in Secs. II-III): per-configuration voltage
 * modelling, the Eq. 12 monotonicity constraint, the non-negativity
 * prior, memory-voltage freedom, and the idle-row weighting.
 *
 * Expected: removing voltage modelling hurts the most on the devices
 * with wide V-F ranges (the non-linear Fig. 2 behaviour is exactly
 * what V = 1 cannot express).
 */

#include <iostream>

#include "bench_common.hh"

namespace
{

using namespace gpupm;

double
validationMae(const bench::FittedDevice &fd,
              const model::EstimationResult &fit,
              const std::vector<model::AppMeasurement> &apps)
{
    model::Predictor predictor(fit.model);
    std::vector<double> pred, meas;
    for (const auto &app : apps) {
        for (std::size_t i = 0; i < app.configs.size(); ++i) {
            pred.push_back(
                    predictor.at(app.util, app.configs[i]).total_w);
            meas.push_back(app.power_w[i]);
        }
    }
    (void)fd;
    return bench::mape(pred, meas);
}

} // namespace

int
main(int argc, char **argv)
{
    gpupm::bench::BenchReporter bench_report(argc, argv,
                                             "ablation_voltage");
    using bench::fitDevice;

    struct Variant
    {
        const char *name;
        model::EstimatorOptions opts;
    };
    std::vector<Variant> variants;
    variants.push_back({"full model (paper)", {}});
    {
        model::EstimatorOptions o;
        o.fit_voltages = false;
        variants.push_back({"no voltage modelling (V=1)", o});
    }
    {
        model::EstimatorOptions o;
        o.monotonic_voltages = false;
        variants.push_back({"no Eq.12 monotonicity", o});
    }
    {
        model::EstimatorOptions o;
        o.fit_mem_voltage = false;
        variants.push_back({"memory voltage pinned to 1", o});
    }
    {
        model::EstimatorOptions o;
        o.nonnegative = false;
        variants.push_back({"plain LS (signed coefficients)", o});
    }
    {
        model::EstimatorOptions o;
        o.idle_row_weight = 1.0;
        variants.push_back({"idle row weight = 1", o});
    }

    TextTable t({"Estimator variant", "Titan Xp MAE [%]",
                 "GTX Titan X MAE [%]", "Fit RMSE TX [W]",
                 "Iter. TX"});
    t.setTitle("Ablation: estimator design choices "
               "(validation-set accuracy)");

    // Campaign + measurements once per device; re-fit per variant.
    auto xp = fitDevice(gpu::DeviceKind::TitanXp);
    auto tx = fitDevice(gpu::DeviceKind::GtxTitanX);
    const auto xp_apps = bench::measureValidationSet(*xp.board);
    const auto tx_apps = bench::measureValidationSet(*tx.board);

    for (const auto &v : variants) {
        const model::ModelEstimator est(v.opts);
        const auto fit_xp = est.estimate(xp.data);
        const auto fit_tx = est.estimate(tx.data);
        t.addRow({v.name,
                  TextTable::num(validationMae(xp, fit_xp, xp_apps),
                                 1),
                  TextTable::num(validationMae(tx, fit_tx, tx_apps),
                                 1),
                  TextTable::num(fit_tx.rmse_w, 1),
                  std::to_string(fit_tx.iterations)});
    }
    t.print(std::cout);
    bench::saveCsv(t, "ablation_voltage");
    return 0;
}
