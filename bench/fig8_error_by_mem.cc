/**
 * @file
 * Reproduces Fig. 8: per-application mean prediction error on the GTX
 * Titan X, one panel per memory frequency (all 16 core levels each).
 *
 * Shape targets: MAE ~4.8-5.4% at the three high memory clocks,
 * growing to ~8.7% at the 810 MHz clock furthest from the reference;
 * overall ~6.0%.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    gpupm::bench::BenchReporter bench_report(argc, argv,
                                             "fig8_error_by_mem");
    using namespace gpupm;
    using bench::fitDevice;

    auto fd = fitDevice(gpu::DeviceKind::GtxTitanX);
    model::Predictor predictor(fd.fit.model);
    const auto apps = bench::measureValidationSet(*fd.board);

    std::vector<double> all_pred, all_meas;

    for (int fm : fd.desc().mem_freqs_mhz) {
        TextTable t({"Application", "Mean error [%]",
                     "Mean abs error [%]"});
        t.setTitle("Fig. 8: core sweep [" +
                   std::to_string(fd.desc().minCoreMhz()) + ":" +
                   std::to_string(fd.desc().maxCoreMhz()) +
                   "] MHz at fmem = " + std::to_string(fm) + " MHz");
        std::vector<double> panel_pred, panel_meas;
        for (const auto &app : apps) {
            std::vector<double> ap, am;
            for (std::size_t i = 0; i < app.configs.size(); ++i) {
                if (app.configs[i].mem_mhz != fm)
                    continue;
                ap.push_back(predictor.at(app.util, app.configs[i])
                                     .total_w);
                am.push_back(app.power_w[i]);
            }
            panel_pred.insert(panel_pred.end(), ap.begin(), ap.end());
            panel_meas.insert(panel_meas.end(), am.begin(), am.end());
            t.addRow({app.name,
                      TextTable::num(
                              stats::meanPercentError(ap, am), 1),
                      TextTable::num(bench::mape(ap, am), 1)});
        }
        t.print(std::cout);
        bench::saveCsv(t, "fig8_fmem" + std::to_string(fm));
        bench_report.stat("mae_pct_fmem" + std::to_string(fm),
                          bench::mape(panel_pred, panel_meas));
        std::cout << "panel MAE: "
                  << TextTable::num(
                             bench::mape(panel_pred, panel_meas), 1)
                  << "%  (paper: 4.9% at 3505 MHz ... 8.7% at 810 "
                     "MHz)\n\n";
        all_pred.insert(all_pred.end(), panel_pred.begin(),
                        panel_pred.end());
        all_meas.insert(all_meas.end(), panel_meas.begin(),
                        panel_meas.end());
    }

    bench_report.stat("overall_mae_pct",
                      bench::mape(all_pred, all_meas));
    std::cout << "overall MAE across the 2x core / 4x memory range: "
              << TextTable::num(bench::mape(all_pred, all_meas), 1)
              << "%  (paper: 6.0%)\n";
    return 0;
}
