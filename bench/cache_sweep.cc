/**
 * @file
 * Working-set sweep: the generalized version of the paper's Fig. 9
 * input-size study. One L2-heavy kernel is run over working sets from
 * L2-resident to far-spilling; the bench reports the DRAM spill, the
 * measured power, and the fitted model's prediction from the
 * per-size profiled utilizations — showing the model tracks the
 * resident-to-streaming transition it was never explicitly taught.
 */

#include <iostream>

#include "bench_common.hh"
#include "core/metrics.hh"
#include "sim/cache_model.hh"

int
main(int argc, char **argv)
{
    gpupm::bench::BenchReporter bench_report(argc, argv,
                                             "cache_sweep");
    using namespace gpupm;
    using bench::fitDevice;

    auto fd = fitDevice(gpu::DeviceKind::GtxTitanX);
    model::Predictor predictor(fd.fit.model);
    const auto &desc = fd.desc();
    const auto ref = desc.referenceConfig();

    sim::KernelDemand base;
    base.name = "ws-sweep";
    base.warps_sp = 2e9;
    base.warps_int = 5e8;
    base.bytes_l2_rd = 8e9;
    base.bytes_l2_wr = 2e9;

    cupti::Profiler profiler(*fd.board, 91);
    nvml::Device dev(*fd.board, 92);

    TextTable t({"working set", "L2 miss rate", "DRAM util",
                 "measured [W]", "predicted [W]"});
    t.setTitle("Working-set sweep at (975, 3505) MHz — the Fig. 9 "
               "mechanism, generalized");

    std::vector<double> pred, meas;
    for (double ws :
         {0.25e6, 1e6, 3e6, 6e6, 12e6, 24e6, 48e6, 96e6, 192e6}) {
        const auto d = sim::applyCacheModel(base, ws, desc);
        const auto rm = profiler.profile(d, ref);
        const auto util =
                model::utilizationsFromMetrics(rm, desc, ref);
        const double p = predictor.at(util, ref).total_w;
        const auto m = dev.measureKernelPower(d, 5);
        pred.push_back(p);
        meas.push_back(m.power_w);
        t.addRow({TextTable::num(ws / 1e6, 2) + " MB",
                  TextTable::num(sim::l2MissRate(ws, desc), 2),
                  TextTable::num(
                          util[gpu::componentIndex(
                                  gpu::Component::Dram)],
                          2),
                  TextTable::num(m.power_w, 1),
                  TextTable::num(p, 1)});
    }
    t.print(std::cout);
    bench::saveCsv(t, "cache_sweep");
    std::cout << "\nsweep MAE: "
              << TextTable::num(bench::mape(pred, meas), 1) << "%\n";
    return 0;
}
