/**
 * @file
 * Reproduces Fig. 2: DVFS impact on the power consumption of
 * BlackScholes and CUTCP on the GTX Titan X — measured power across
 * the core-frequency range at fmem = 3505 and 810 MHz, plus the
 * per-component utilizations at the reference configuration.
 *
 * Shape targets: BlackScholes ~181 W at the reference, dropping ~52%
 * when fmem goes 3505 -> 810; CUTCP ~135 W dropping ~24%; power is
 * visibly non-linear in fcore (implicit voltage scaling).
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    gpupm::bench::BenchReporter bench_report(argc, argv,
                                             "fig2_dvfs_impact");
    using namespace gpupm;
    sim::PhysicalGpu board(gpu::DeviceKind::GtxTitanX);
    const auto &desc = board.descriptor();

    model::CampaignOptions opts;
    opts.power_repetitions = 5;

    for (const auto &app :
         {workloads::blackScholes(), workloads::cutcp()}) {
        // Utilizations at the reference configuration (right side of
        // the paper's figure).
        const auto meas = model::measureApp(
                board, app.demand, desc.allConfigs(), opts);
        std::cout << "\n=== " << app.name
                  << " (measured at fcore=975 MHz, fmem=3505 MHz)\n";
        std::cout << "per-component utilization:";
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i) {
            std::cout << "  "
                      << componentName(static_cast<gpu::Component>(i))
                      << "=" << TextTable::num(meas.util[i], 2);
        }
        std::cout << "\n\n";

        TextTable t({"fcore [MHz]", "P @ fmem=3505 [W]",
                     "P @ fmem=810 [W]"});
        t.setTitle("Fig. 2: average power vs core frequency, " +
                   app.name);
        double p_ref = 0.0, p_low = 0.0;
        for (int fc : desc.core_freqs_mhz) {
            double p3505 = 0.0, p810 = 0.0;
            for (std::size_t i = 0; i < meas.configs.size(); ++i) {
                if (meas.configs[i].core_mhz != fc)
                    continue;
                if (meas.configs[i].mem_mhz == 3505)
                    p3505 = meas.power_w[i];
                if (meas.configs[i].mem_mhz == 810)
                    p810 = meas.power_w[i];
            }
            if (fc == desc.default_core_mhz) {
                p_ref = p3505;
                p_low = p810;
            }
            t.addRow({std::to_string(fc), TextTable::num(p3505, 1),
                      TextTable::num(p810, 1)});
        }
        t.print(std::cout);
        bench::saveCsv(t, "fig2_" + app.name);
        std::cout << app.name << " at default core clock: "
                  << TextTable::num(p_ref, 0) << " W -> "
                  << TextTable::num(p_low, 0) << " W when fmem 3505 -> "
                  << "810 MHz ("
                  << TextTable::num(100.0 * (p_ref - p_low) / p_ref, 0)
                  << "% drop; paper: 52% for BlackScholes, 24% for "
                     "CUTCP)\n";
    }
    return 0;
}
