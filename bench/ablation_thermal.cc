/**
 * @file
 * Limitation study: what happens to the (temperature-blind) model when
 * the silicon exhibits thermal leakage feedback.
 *
 * The paper's model — like every event-based model — has no
 * temperature input. The substrate can simulate boards whose static
 * power grows with the die temperature (T = ambient + R*P, leakage
 * prop. to T). This bench fits the model on such boards with
 * increasing feedback strength and reports the validation MAE: the
 * degradation quantifies how far the event-only assumption carries,
 * and motivates the RAPL-style hardware integration the paper lists
 * as use case 4.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    gpupm::bench::BenchReporter bench_report(argc, argv,
                                             "ablation_thermal");
    using namespace gpupm;

    struct Level
    {
        const char *name;
        double resistance_c_w; // deg C per watt
        double coeff;          // static fraction per deg C
    };
    const std::vector<Level> levels = {
        {"no thermal feedback (default)", 0.0, 0.0},
        {"mild    (R=0.15 C/W, k=0.2%/C)", 0.15, 0.002},
        {"typical (R=0.25 C/W, k=0.4%/C)", 0.25, 0.004},
        {"strong  (R=0.35 C/W, k=0.7%/C)", 0.35, 0.007},
    };

    TextTable t({"Thermal feedback", "Validation MAE [%]",
                 "Fit RMSE [W]", "Peak die temp [C]"});
    t.setTitle("Limitation study: temperature-blind model vs thermal "
               "leakage (GTX Titan X)");

    for (const Level &lvl : levels) {
        auto truth = sim::PhysicalGpu::defaultGroundTruth(
                gpu::DeviceKind::GtxTitanX);
        truth.thermal_resistance_c_w = lvl.resistance_c_w;
        truth.leakage_temp_coeff = lvl.coeff;
        sim::PhysicalGpu board(
                gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX),
                truth);

        model::CampaignOptions opts;
        opts.power_repetitions = 3;
        const auto data = model::runTrainingCampaign(
                board, ubench::buildSuite(), opts);
        const auto fit = model::ModelEstimator().estimate(data);
        model::Predictor predictor(fit.model);

        std::vector<double> pred, meas;
        double peak_temp = 0.0;
        for (const auto &w : workloads::fullValidationSet()) {
            const auto m = model::measureApp(
                    board, w.demand, board.descriptor().allConfigs(),
                    opts);
            for (std::size_t i = 0; i < m.configs.size(); ++i) {
                pred.push_back(
                        predictor.at(m.util, m.configs[i]).total_w);
                meas.push_back(m.power_w[i]);
                const auto prof =
                        board.execute(w.demand, m.configs[i]);
                peak_temp = std::max(
                        peak_temp,
                        board.truePower(prof, m.configs[i])
                                .temperature_c);
            }
        }
        t.addRow({lvl.name,
                  TextTable::num(bench::mape(pred, meas), 1),
                  TextTable::num(fit.rmse_w, 1),
                  TextTable::num(peak_temp, 0)});
    }
    t.print(std::cout);
    bench::saveCsv(t, "ablation_thermal");
    std::cout << "\nTakeaway: moderate thermal feedback is largely "
                 "absorbed by the fitted constants; strong feedback "
                 "creates load-dependent power the event-only model "
                 "cannot attribute.\n";
    return 0;
}
