/**
 * @file
 * Reproduces Fig. 7: power prediction for all V-F configurations of
 * the validation benchmark set (not used in model construction) on
 * all three devices.
 *
 * Headline targets: mean absolute errors of ~6.9% (Titan Xp, 2 memory
 * x 22 core levels), ~6.0% (GTX Titan X, 4 x 16) and ~12.4% (Tesla
 * K40c, 1 x 4), with the measured power spanning ~40-250 W on the
 * Titan boards.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    gpupm::bench::BenchReporter bench_report(argc, argv,
                                             "fig7_validation");
    using namespace gpupm;
    using bench::fitDevice;

    TextTable summary({"Device", "Mem x Core levels", "Samples",
                       "Measured range [W]", "MAE [%]",
                       "Paper MAE [%]"});
    summary.setTitle("Fig. 7: validation-set prediction accuracy over "
                     "the full V-F grid");

    const char *paper_mae[] = {"6.9", "6.0", "12.4"};
    const char *tokens[] = {"titanxp", "titanx", "k40c"};
    int device_idx = 0;

    for (auto kind : gpu::kAllDevices) {
        auto fd = fitDevice(kind);
        model::Predictor predictor(fd.fit.model);
        const auto apps = bench::measureValidationSet(*fd.board);

        std::vector<double> pred, meas;
        TextTable per_app({"Application", "Suite", "MAE [%]",
                           "Measured @ref [W]", "Predicted @ref [W]"});
        per_app.setTitle("\n" + fd.desc().name +
                         ": per-application accuracy");
        const auto ref = fd.desc().referenceConfig();
        const auto all = workloads::fullValidationSet();
        for (std::size_t a = 0; a < apps.size(); ++a) {
            std::vector<double> ap, am;
            double m_ref = 0.0;
            for (std::size_t i = 0; i < apps[a].configs.size(); ++i) {
                const double p = predictor
                                         .at(apps[a].util,
                                             apps[a].configs[i])
                                         .total_w;
                ap.push_back(p);
                am.push_back(apps[a].power_w[i]);
                if (apps[a].configs[i] == ref)
                    m_ref = apps[a].power_w[i];
            }
            pred.insert(pred.end(), ap.begin(), ap.end());
            meas.insert(meas.end(), am.begin(), am.end());
            per_app.addRow(
                    {apps[a].name, all[a].suite,
                     TextTable::num(bench::mape(ap, am), 1),
                     TextTable::num(m_ref, 1),
                     TextTable::num(
                             predictor.at(apps[a].util, ref).total_w,
                             1)});
        }
        per_app.print(std::cout);
        bench::saveCsv(per_app,
                       "fig7_per_app_" + std::to_string(device_idx));

        const double mae = bench::mape(pred, meas);
        bench_report.stat(std::string("mae_pct_") +
                                  tokens[device_idx],
                          mae);
        summary.addRow(
                {fd.desc().name,
                 std::to_string(fd.desc().mem_freqs_mhz.size()) +
                         " x " +
                         std::to_string(
                                 fd.desc().core_freqs_mhz.size()),
                 std::to_string(pred.size()),
                 TextTable::num(stats::minimum(meas), 0) + " - " +
                         TextTable::num(stats::maximum(meas), 0),
                 TextTable::num(mae, 1),
                 paper_mae[device_idx++]});
    }

    std::cout << "\n";
    summary.print(std::cout);
    bench::saveCsv(summary, "fig7_summary");
    return 0;
}
