/**
 * @file
 * DVFS-management study (use case 3, quantified): for every
 * validation application, the fitted model + latency scaler pick the
 * minimum-energy configuration (optionally under a slowdown budget)
 * from one reference-configuration profiling pass. The chosen
 * configurations are then scored against the board's hidden ground
 * truth — the end-to-end value of the model the paper motivates.
 */

#include <algorithm>
#include <iostream>

#include "bench_common.hh"
#include "core/latency_scaler.hh"
#include "core/metrics.hh"

int
main(int argc, char **argv)
{
    gpupm::bench::BenchReporter bench_report(argc, argv,
                                             "energy_study");
    using namespace gpupm;
    using bench::fitDevice;

    auto fd = fitDevice(gpu::DeviceKind::GtxTitanX);
    model::Predictor predictor(fd.fit.model);
    const model::LatencyScaler scaler(fd.fit.model.reference());
    const auto &desc = fd.desc();
    const auto ref = desc.referenceConfig();

    cupti::Profiler profiler(*fd.board, 77);

    TextTable t({"Application", "chosen fcore", "chosen fmem",
                 "true energy saved [%]", "true slowdown [%]"});
    t.setTitle("Minimum-energy DVFS under a 15% slowdown budget "
               "(GTX Titan X, scored on ground truth)");

    double sum_savings = 0.0, sum_slowdown = 0.0;
    std::size_t wins = 0, n = 0;
    for (const auto &w : workloads::fullValidationSet()) {
        const auto rm = profiler.profile(w.demand, ref);
        const auto util = model::utilizationsFromMetrics(
                rm, desc, ref);

        // Choose by predicted energy under the slowdown budget.
        gpu::FreqConfig best = ref;
        double best_energy = 1e300;
        for (const auto &cfg : desc.allConfigs()) {
            const double slow = scaler.slowdown(util, cfg);
            if (slow > 1.15)
                continue;
            const double e =
                    predictor.at(util, cfg).total_w * slow;
            if (e < best_energy) {
                best_energy = e;
                best = cfg;
            }
        }

        // Score on the hidden ground truth.
        const auto ref_prof = fd.board->execute(w.demand, ref);
        const double e_ref =
                fd.board->truePower(ref_prof, ref).total_w *
                ref_prof.time_s;
        const auto prof = fd.board->execute(w.demand, best);
        const double e_best =
                fd.board->truePower(prof, best).total_w * prof.time_s;
        const double saved = 100.0 * (e_ref - e_best) / e_ref;
        const double slow =
                100.0 * (prof.time_s / ref_prof.time_s - 1.0);
        sum_savings += saved;
        sum_slowdown += slow;
        wins += e_best < e_ref;
        ++n;
        t.addRow({w.name, std::to_string(best.core_mhz),
                  std::to_string(best.mem_mhz),
                  TextTable::num(saved, 1), TextTable::num(slow, 1)});
    }
    t.print(std::cout);
    bench::saveCsv(t, "energy_study");
    std::cout << "\nmean true energy saving: "
              << TextTable::num(sum_savings / n, 1)
              << "%  (mean true slowdown "
              << TextTable::num(sum_slowdown / n, 1) << "%); "
              << wins << "/" << n
              << " applications strictly save energy\n";
    return 0;
}
