/**
 * @file
 * Reproduces Fig. 6: measured vs predicted core voltage on the GTX
 * Titan X and Titan Xp. The "measured" series is the simulated
 * board's hidden ground-truth curve (the role the NVIDIA
 * Inspector/MSI Afterburner probes play in the paper); the predicted
 * series is what the Sec. III-D estimator recovered from power
 * measurements alone.
 *
 * Shape target: two distinct regions — a constant-voltage region at
 * low clocks and a linear ramp above a knee — with the knee position
 * identified by the fit.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    gpupm::bench::BenchReporter bench_report(argc, argv,
                                             "fig6_voltage");
    using namespace gpupm;
    using bench::fitDevice;

    for (auto kind :
         {gpu::DeviceKind::GtxTitanX, gpu::DeviceKind::TitanXp}) {
        auto fd = fitDevice(kind);
        const auto &desc = fd.desc();

        TextTable t({"fcore [MHz]", "Measured V/Vref",
                     "Predicted V/Vref", "abs. error"});
        t.setTitle("Fig. 6: core voltage at fmem = " +
                   std::to_string(desc.default_mem_mhz) + " MHz, " +
                   desc.name);
        double max_err = 0.0;
        for (int fc : desc.core_freqs_mhz) {
            const double truth = fd.board->trueCoreVoltageNorm(fc);
            const double fitted =
                    fd.fit.model.voltages({fc, desc.default_mem_mhz})
                            .core;
            max_err = std::max(max_err, std::abs(fitted - truth));
            t.addRow({std::to_string(fc), TextTable::num(truth, 3),
                      TextTable::num(fitted, 3),
                      TextTable::num(std::abs(fitted - truth), 3)});
        }
        t.print(std::cout);
        bench::saveCsv(t, "fig6_" + std::string(
                desc.kind == gpu::DeviceKind::TitanXp
                        ? "titanxp" : "titanx"));
        std::cout << "ground-truth knee: "
                  << TextTable::num(
                             fd.board->groundTruth()
                                     .core_voltage.kneeMhz(), 0)
                  << " MHz; max abs voltage error: "
                  << TextTable::num(max_err, 3) << "\n\n";
    }

    std::cout << "(No voltage differences exist across memory "
                 "frequencies on any device, matching the paper's "
                 "observation.)\n";
    return 0;
}
