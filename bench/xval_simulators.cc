/**
 * @file
 * Cross-validation of the three performance models on the
 * microbenchmark suite: the analytic bottleneck engine (what every
 * experiment runs on), the single-SM cycle simulator and the
 * device-level cycle simulator must agree on the stressed-component
 * utilization of each loop family — three independent implementations
 * of the same microarchitectural story.
 */

#include <iostream>

#include "bench_common.hh"
#include "sim/device_cycle_sim.hh"
#include "sim/perf_model.hh"

int
main(int argc, char **argv)
{
    gpupm::bench::BenchReporter bench_report(argc, argv,
                                             "xval_simulators");
    using namespace gpupm;

    const auto &dev =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
    const gpu::FreqConfig ref = dev.referenceConfig();
    const sim::AnalyticPerfModel perf;

    struct Case
    {
        ubench::Microbenchmark mb;
        gpu::Component focus;
    };
    const std::vector<Case> cases = {
        {ubench::makeArithmetic(ubench::Family::Int, 512),
         gpu::Component::Int},
        {ubench::makeArithmetic(ubench::Family::SP, 512),
         gpu::Component::SP},
        {ubench::makeArithmetic(ubench::Family::DP, 64),
         gpu::Component::DP},
        {ubench::makeArithmetic(ubench::Family::SF, 256),
         gpu::Component::SF},
        {ubench::makeShared(0), gpu::Component::Shared},
        {ubench::makeDram(0), gpu::Component::Dram},
    };

    TextTable t({"Microbenchmark", "Component", "Analytic U",
                 "SM cycle-sim U", "Device cycle-sim U"});
    t.setTitle("Cross-validation of the three performance models "
               "(GTX Titan X, reference config)");

    for (const Case &c : cases) {
        const auto a = perf.execute(dev, c.mb.demand, ref);

        sim::SmCycleSim one_sm(dev, ref, 32);
        const auto s = one_sm.run(*c.mb.loop);

        sim::DeviceCycleSim whole(dev, ref);
        sim::LaunchConfig launch;
        launch.blocks = dev.num_sms * 2;
        launch.warps_per_block = 16;
        launch.blocks_per_sm = 2;
        const auto d = whole.run(*c.mb.loop, launch);

        const std::size_t i = gpu::componentIndex(c.focus);
        // The SM simulator reports compute-unit utilizations only
        // (Eq. 8); memory levels read "-" there.
        const bool compute =
                c.focus == gpu::Component::Int ||
                c.focus == gpu::Component::SP ||
                c.focus == gpu::Component::DP ||
                c.focus == gpu::Component::SF;
        t.addRow({c.mb.name,
                  std::string(gpu::componentName(c.focus)),
                  TextTable::num(a.util[i], 2),
                  compute ? TextTable::num(s.util[i], 2) : "-",
                  TextTable::num(d.util[i], 2)});
    }
    t.print(std::cout);
    bench::saveCsv(t, "xval_simulators");
    std::cout << "\nAll three agree on which component saturates and "
                 "to what degree; the experiment harnesses run on the "
                 "analytic engine (~1000x faster), with the cycle "
                 "simulators as the independent check.\n";
    return 0;
}
