/**
 * @file
 * Reproduces Fig. 10: utilization and per-component power breakdown of
 * the validation benchmarks on the GTX Titan X at two V-F
 * configurations, (975, 3505) and (975, 810) MHz.
 *
 * Shape targets: MAE ~5.2% at the reference and ~8.8% at the low
 * memory clock; the constant share is ~80 W at the reference and
 * ~50 W at 810 MHz; DRAM power varies strongly between the two
 * configurations while the core components stay nearly constant.
 */

#include <iostream>

#include "bench_common.hh"

int
main(int argc, char **argv)
{
    gpupm::bench::BenchReporter bench_report(argc, argv,
                                             "fig10_breakdown");
    using namespace gpupm;
    using bench::fitDevice;

    auto fd = fitDevice(gpu::DeviceKind::GtxTitanX);
    model::Predictor predictor(fd.fit.model);
    const auto apps = bench::measureValidationSet(*fd.board);

    for (int fm : {3505, 810}) {
        const gpu::FreqConfig cfg{975, fm};
        TextTable t({"Application", "Measured [W]", "Model [W]",
                     "Constant", "INT", "SP", "DP", "SF", "Shared",
                     "L2", "DRAM"});
        t.setTitle("Fig. 10: power breakdown at (975, " +
                   std::to_string(fm) + ") MHz");
        std::vector<double> pred, meas;
        double constant_w = 0.0;
        for (const auto &app : apps) {
            const auto p = predictor.at(app.util, cfg);
            constant_w = p.constant_w;
            double measured = 0.0;
            for (std::size_t i = 0; i < app.configs.size(); ++i)
                if (app.configs[i] == cfg)
                    measured = app.power_w[i];
            pred.push_back(p.total_w);
            meas.push_back(measured);
            std::vector<std::string> row = {
                app.name, TextTable::num(measured, 1),
                TextTable::num(p.total_w, 1),
                TextTable::num(p.constant_w, 1)};
            for (double w : p.component_w)
                row.push_back(TextTable::num(w, 1));
            t.addRow(row);
        }
        t.print(std::cout);
        bench::saveCsv(t, "fig10_fmem" + std::to_string(fm));
        std::cout << "constant share: " << TextTable::num(constant_w, 1)
                  << " W  (paper: ~80 W at 3505, ~50 W at 810)\n";
        std::cout << "MAE at this configuration: "
                  << TextTable::num(bench::mape(pred, meas), 1)
                  << "%  (paper: 5.2% / 8.8%)\n\n";
    }
    return 0;
}
