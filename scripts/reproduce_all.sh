#!/usr/bin/env bash
# Rebuild the library, run the full test suite and regenerate every
# table/figure of the paper's evaluation (EXPERIMENTS.md describes the
# expected outcomes).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Static analysis over the observability layer: clang-tidy is optional
# (the GPUPM_TIDY CMake option wires it into the build when present);
# here we run the same checks standalone so CI images that carry the
# tool fail on findings while leaner toolchains skip with a notice.
if command -v clang-tidy > /dev/null 2>&1; then
    echo "== clang-tidy: src/obs"
    clang-tidy -p build --quiet src/obs/*.cc
else
    echo "== clang-tidy not found; skipping static analysis pass"
fi

# Sanitizer pass: rebuild the core/linalg test binaries under
# ASan+UBSan and run them, so memory and UB bugs in the numerical
# kernels and the resilience machinery surface in CI. Skip with
# GPUPM_SKIP_SANITIZE=1 (e.g. on toolchains without libasan).
if [ "${GPUPM_SKIP_SANITIZE:-0}" != "1" ]; then
    cmake -B build-asan -G Ninja -DGPUPM_SANITIZE=ON
    cmake --build build-asan --target \
        core_test_metrics core_test_power_model core_test_estimator \
        core_test_campaign core_test_faults core_test_resilient \
        core_test_model_io core_test_validate linalg_test_matrix \
        linalg_test_lstsq linalg_test_isotonic \
        obs_test_trace obs_test_trace_store obs_test_metrics \
        obs_test_convergence \
        obs_test_scoreboard obs_test_http_server \
        obs_test_flight_recorder obs_test_sampler \
        obs_test_profiler obs_test_tsdb obs_test_alerts \
        core_test_scoreboard_io \
        gpupm_fuzz_smoke gpupm_cli gpupm_trace_check gpupm_bench_check \
        gpupm_scrape
    for t in build-asan/tests/core_test_* build-asan/tests/linalg_test_* \
             build-asan/tests/obs_test_*; do
        [ -f "$t" ] && [ -x "$t" ] || continue
        echo "== sanitize: $t"
        "$t"
    done
    # Parser fuzz smoke under ASan+UBSan: corrupt artifacts must come
    # back as typed errors, never as crashes or sanitizer findings.
    echo "== sanitize: gpupm_fuzz_smoke"
    build-asan/tools/gpupm_fuzz_smoke
    # The traced measure->fit pipeline under ASan+UBSan: the tracer,
    # metrics registry and convergence observer run concurrently with
    # the whole stack, then the artifacts are structurally validated.
    echo "== sanitize: traced fit pipeline"
    build-asan/tools/gpupm fit titanx build-asan/obs.model \
        --trace-out=build-asan/obs.trace.json \
        --metrics-out=build-asan/obs.metrics.prom \
        --convergence-out=build-asan/obs.convergence.csv
    build-asan/tools/gpupm_trace_check trace build-asan/obs.trace.json \
        campaign backend sim estimator io cli
    build-asan/tools/gpupm_trace_check metrics build-asan/obs.metrics.prom
    build-asan/tools/gpupm_trace_check convergence \
        build-asan/obs.convergence.csv
    # The accuracy audit under ASan+UBSan: campaign, fit, validation
    # residuals, scoreboard serialization and the regression gate all
    # exercise the same code ctest gates on, now with sanitizers
    # watching.
    echo "== sanitize: accuracy audit + scoreboard gate"
    build-asan/tools/gpupm audit titanx \
        --scoreboard-out=build-asan/titanx.scoreboard > /dev/null
    build-asan/tools/gpupm validate build-asan/titanx.scoreboard --strict
    build-asan/tools/gpupm_bench_check scoreboard \
        build-asan/titanx.scoreboard bench/golden/titanx.scoreboard.json
    # The live-telemetry daemon under ASan+UBSan: the HTTP server,
    # sampling loop and flight recorder run multi-threaded; the scrape
    # selftest starts the daemon, scrapes every endpoint and requires
    # a clean SIGTERM exit with the sanitizers watching.
    echo "== sanitize: gpupm monitor scrape selftest"
    mkdir -p build-asan/monitor_work
    build-asan/tools/gpupm_scrape monitor-selftest \
        build-asan/tools/gpupm titanx --work=build-asan/monitor_work
    # Profiler smoke under ASan+UBSan: the SIGPROF handler walks raw
    # frame-pointer chains (itself exempted via no_sanitize), but
    # start/stop/collect, symbolization and the span-context push/pop
    # all run instrumented through a real fit.
    echo "== sanitize: profiler smoke"
    build-asan/tools/gpupm fit titanx build-asan/prof.model \
        --profile-out=build-asan/prof.folded
    test -s build-asan/prof.folded
fi

# ThreadSanitizer pass: rebuild the concurrent machinery — the fleet
# work-stealing pool, watchdog and supervisor, plus the HTTP server
# and metrics registry it publishes through — under TSan and run
# their tests. A data race in the fleet stack is an accuracy bug (the
# chaos gate leans on deterministic merges), so this gate is not
# optional for fleet changes. Skip with GPUPM_SKIP_TSAN=1.
if [ "${GPUPM_SKIP_TSAN:-0}" != "1" ]; then
    cmake -B build-tsan -G Ninja -DGPUPM_TSAN=ON
    cmake --build build-tsan --target \
        fleet_test_pool fleet_test_watchdog fleet_test_chaos \
        fleet_test_shard_io fleet_test_supervisor \
        fleet_test_chaos_gate fleet_test_chaos_trace \
        obs_test_http_server obs_test_metrics obs_test_profiler \
        obs_test_tsdb obs_test_trace gpupm_cli
    for t in build-tsan/tests/fleet_test_* \
             build-tsan/tests/obs_test_http_server \
             build-tsan/tests/obs_test_metrics \
             build-tsan/tests/obs_test_profiler \
             build-tsan/tests/obs_test_tsdb \
             build-tsan/tests/obs_test_trace; do
        [ -f "$t" ] && [ -x "$t" ] || continue
        echo "== tsan: $t"
        "$t"
    done
    # A whole fleet campaign through the CLI with TSan watching the
    # pool, watchdog, checkpoint writers and metrics publication.
    echo "== tsan: gpupm fleet"
    build-tsan/tools/gpupm fleet 24 --shards=6 --faults > /dev/null
    # Profiler over the fleet pool under TSan: SIGPROF lands on worker
    # threads mid-task while the span context and sample ring are live.
    echo "== tsan: profiler smoke over fleet"
    build-tsan/tools/gpupm fleet 24 --shards=6 \
        --profile-out=build-tsan/fleet.folded > /dev/null
    test -s build-tsan/fleet.folded
fi

# Traced end-to-end reproduction run: campaign -> fit -> sweep with
# the tracer on, then a per-phase wall-clock table sourced from the
# trace (gpupm_trace_check summary merges overlapping spans, so the
# numbers are true per-category wall-clock).
echo "==================================================="
echo "== traced pipeline timing"
echo "==================================================="
work=build/reproduce_obs
mkdir -p "$work"
build/tools/gpupm campaign titanx "$work/tx.campaign" --retries=2 \
    --trace-out="$work/campaign.trace.json" \
    --metrics-out="$work/campaign.metrics.prom"
build/tools/gpupm fit "$work/tx.campaign" "$work/tx.model" \
    --trace-out="$work/fit.trace.json" \
    --convergence-out="$work/fit.convergence.csv"
build/tools/gpupm sweep "$work/tx.model" BLCKSC \
    --trace-out="$work/sweep.trace.json" > /dev/null
for phase in campaign fit sweep; do
    build/tools/gpupm_trace_check summary "$work/$phase.trace.json"
    # Referential integrity of the correlation ids: one root per
    # trace, no orphan parents, children nested in their parents.
    build/tools/gpupm_trace_check trace "$work/$phase.trace.json"
done

# Offline per-tick trace replay: every tick's measure -> predict ->
# audit chain assembles into one trace, the injected fault surfaces
# as a retained error trace, and the run is deterministic (the
# cli_traces_replay ctest diffs two runs byte for byte).
echo "==================================================="
echo "== per-tick trace replay (gpupm traces titanx)"
echo "==================================================="
build/tools/gpupm traces titanx --ticks=20 --period-ms=50 \
    --inject-drift=5:15:1.5

# Accuracy audit + regression gate: recompute the prediction-error
# scoreboard on the GTX Titan X and diff it against the checked-in
# golden. A model/simulator change that shifts the headline MAE by
# more than the tolerances aborts the reproduction here.
echo "==================================================="
echo "== accuracy audit (gpupm audit titanx)"
echo "==================================================="
build/tools/gpupm audit titanx \
    --scoreboard-out="$work/titanx.scoreboard" \
    --metrics-out="$work/audit.metrics.prom"
build/tools/gpupm_bench_check scoreboard "$work/titanx.scoreboard" \
    bench/golden/titanx.scoreboard.json

# Live-telemetry daemon: start `gpupm monitor` on an ephemeral port,
# scrape /metrics, /healthz, /scoreboard, /tracez, /alertz and
# /api/query with the bundled scrape client (no curl), and require a
# clean SIGTERM shutdown.
echo "==================================================="
echo "== live monitor scrape (gpupm monitor titanx)"
echo "==================================================="
mkdir -p "$work/monitor"
build/tools/gpupm_scrape monitor-selftest build/tools/gpupm titanx \
    --work="$work/monitor"

# Drift alerting end to end against the live daemon: an injected
# accuracy fault must take the built-in drift rule through firing
# (degraded /healthz, gauge at 1) and back to resolved, with the
# transitions in the NDJSON event log.
echo "==================================================="
echo "== drift-alert demo (gpupm monitor --inject-drift)"
echo "==================================================="
mkdir -p "$work/drift"
build/tools/gpupm_scrape drift-demo build/tools/gpupm titanx \
    --work="$work/drift"

# Every experiment binary runs with telemetry on; a non-zero exit or
# invalid telemetry artifact fails the reproduction, and the per-bench
# wall-clock is reported at the end.
bench_json=()
bench_report=""
for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    name=$(basename "$b")
    echo "==================================================="
    echo "== $b"
    echo "==================================================="
    start_ms=$(date +%s%3N)
    case "$name" in
        bm_estimator)
            # google-benchmark rejects unknown flags; no telemetry.
            "$b" || { echo "BENCH FAILED: $name" >&2; exit 1; }
            ;;
        *)
            "$b" --json-out="$work/BENCH_$name.json" \
                || { echo "BENCH FAILED: $name" >&2; exit 1; }
            bench_json+=("$work/BENCH_$name.json")
            ;;
    esac
    elapsed_ms=$(( $(date +%s%3N) - start_ms ))
    bench_report+=$(printf '%-24s %8d ms' "$name" "$elapsed_ms")$'\n'
done
build/tools/gpupm_bench_check validate "${bench_json[@]}"
# The fig7 telemetry is additionally gated against its golden:
# accuracy stats tightly (deterministic), wall-clock generously (the
# golden's timing came from a different machine).
build/tools/gpupm_bench_check bench "$work/BENCH_fig7_validation.json" \
    bench/golden/BENCH_fig7_validation.json --stat-tol=0.5 \
    --time-factor=50
# The fig7 run's CPU-attribution block (sampled while the bench ran)
# is gated against its golden: span attribution must hold the 90%
# floor and no span category may grow its CPU share past the budget.
build/tools/gpupm_bench_check profile "$work/BENCH_fig7_validation.json" \
    bench/golden/BENCH_fig7_validation.json --share-tol=15
# The fleet-campaign telemetry is gated the same way: merged accuracy
# marginals tightly (deterministic by design — the chaos gate depends
# on it), wall-clock generously. A missing golden is a named
# `missing-golden` failure (exit 3), never a silent skip.
build/tools/gpupm_bench_check bench "$work/BENCH_fleet_campaign.json" \
    bench/golden/BENCH_fleet.json --stat-tol=0.5 --time-factor=50
# The monitor-soak telemetry budgets the sampling overhead with the
# time-series store and alert engine on the tick path: deterministic
# accuracy/memory stats tightly, wall-clock generously. The soak
# binary itself exits non-zero if the store ever exceeds its memory
# bound or the injected fault fails to fire and resolve.
build/tools/gpupm_bench_check bench "$work/BENCH_monitor_soak.json" \
    bench/golden/BENCH_monitor_soak.json --stat-tol=0.5 \
    --time-factor=50
echo "==================================================="
echo "== per-bench wall-clock"
echo "==================================================="
printf '%s' "$bench_report"
