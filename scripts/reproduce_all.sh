#!/usr/bin/env bash
# Rebuild the library, run the full test suite and regenerate every
# table/figure of the paper's evaluation (EXPERIMENTS.md describes the
# expected outcomes).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

# Sanitizer pass: rebuild the core/linalg test binaries under
# ASan+UBSan and run them, so memory and UB bugs in the numerical
# kernels and the resilience machinery surface in CI. Skip with
# GPUPM_SKIP_SANITIZE=1 (e.g. on toolchains without libasan).
if [ "${GPUPM_SKIP_SANITIZE:-0}" != "1" ]; then
    cmake -B build-asan -G Ninja -DGPUPM_SANITIZE=ON
    cmake --build build-asan --target \
        core_test_metrics core_test_power_model core_test_estimator \
        core_test_campaign core_test_faults core_test_resilient \
        core_test_model_io core_test_validate linalg_test_matrix \
        linalg_test_lstsq linalg_test_isotonic gpupm_fuzz_smoke
    for t in build-asan/tests/core_test_* build-asan/tests/linalg_test_*; do
        [ -f "$t" ] && [ -x "$t" ] || continue
        echo "== sanitize: $t"
        "$t"
    done
    # Parser fuzz smoke under ASan+UBSan: corrupt artifacts must come
    # back as typed errors, never as crashes or sanitizer findings.
    echo "== sanitize: gpupm_fuzz_smoke"
    build-asan/tools/gpupm_fuzz_smoke
fi

for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "==================================================="
    echo "== $b"
    echo "==================================================="
    "$b"
done
