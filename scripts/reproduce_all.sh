#!/usr/bin/env bash
# Rebuild the library, run the full test suite and regenerate every
# table/figure of the paper's evaluation (EXPERIMENTS.md describes the
# expected outcomes).
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure

for b in build/bench/*; do
    [ -f "$b" ] && [ -x "$b" ] || continue
    echo "==================================================="
    echo "== $b"
    echo "==================================================="
    "$b"
done
