/**
 * @file
 * Minimal HTTP scrape client for the `gpupm monitor` endpoints.
 *
 * Exists so the test suite can exercise the live-telemetry daemon
 * without external tools (no curl dependency in CI). Two modes:
 *
 *   gpupm_scrape get <port> <path> [--expect=<substr>]...
 *                    [--status=<code>] [--method=<verb>]
 *       one GET (or <verb>) against 127.0.0.1:<port>, body on
 *       stdout; exits non-zero when the status or any expected
 *       substring does not match.
 *
 *   gpupm_scrape monitor-selftest <gpupm-binary> <device>
 *                    --work=<dir>
 *       the full acceptance flow of the cli_monitor_scrape ctest:
 *       fork/exec `gpupm monitor <device>` on an ephemeral port,
 *       wait for the port file, scrape /metrics, /healthz,
 *       /scoreboard and /tracez, assert sane values plus the 404/405
 *       error paths, SIGTERM the daemon and require a clean exit 0.
 *       A cmake -P script cannot background a process, so the
 *       orchestration lives here.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

namespace
{

/** One blocking HTTP exchange against 127.0.0.1:port. */
bool
httpExchange(int port, const std::string &method,
             const std::string &path, int *status, std::string *body,
             std::string *err)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        *err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    timeval tv{};
    tv.tv_sec = 5;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        *err = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }

    const std::string req = method + " " + path +
                            " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                            "Connection: close\r\n\r\n";
    std::size_t sent = 0;
    while (sent < req.size()) {
        const ssize_t n = ::send(fd, req.data() + sent,
                                 req.size() - sent, 0);
        if (n <= 0) {
            *err = std::string("send: ") + std::strerror(errno);
            ::close(fd);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }

    std::string response;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            *err = std::string("recv: ") + std::strerror(errno);
            ::close(fd);
            return false;
        }
        if (n == 0)
            break; // Connection: close — the server ends the stream
        response.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);

    // Status line: HTTP/1.1 NNN Reason
    const std::size_t sp = response.find(' ');
    if (response.rfind("HTTP/", 0) != 0 ||
        sp == std::string::npos || sp + 4 > response.size()) {
        *err = "malformed response: " + response.substr(0, 40);
        return false;
    }
    *status = std::atoi(response.c_str() + sp + 1);
    const std::size_t head_end = response.find("\r\n\r\n");
    *body = head_end == std::string::npos
                    ? ""
                    : response.substr(head_end + 4);
    return true;
}

int
fail(const std::string &what)
{
    std::fprintf(stderr, "gpupm_scrape: FAIL: %s\n", what.c_str());
    return 1;
}

/** Scrape once and require a status plus body substrings. */
int
checkEndpoint(int port, const std::string &method,
              const std::string &path, int want_status,
              const std::vector<std::string> &expects,
              std::string *body_out = nullptr)
{
    int status = 0;
    std::string body, err;
    if (!httpExchange(port, method, path, &status, &body, &err))
        return fail(method + " " + path + ": " + err);
    if (status != want_status)
        return fail(method + " " + path + ": status " +
                    std::to_string(status) + ", want " +
                    std::to_string(want_status));
    for (const auto &e : expects)
        if (body.find(e) == std::string::npos)
            return fail(method + " " + path + ": body lacks '" + e +
                        "'");
    if (body_out)
        *body_out = body;
    std::fprintf(stderr, "gpupm_scrape: ok %s %s (%d, %zu bytes)\n",
                 method.c_str(), path.c_str(), status, body.size());
    return 0;
}

/** Value of the first `name value` sample line in Prometheus text. */
double
metricValue(const std::string &prom, const std::string &name)
{
    std::size_t pos = 0;
    while ((pos = prom.find(name, pos)) != std::string::npos) {
        // Must start a line and not be a HELP/TYPE or _bucket line.
        if (pos > 0 && prom[pos - 1] != '\n') {
            pos += name.size();
            continue;
        }
        const std::size_t eol = prom.find('\n', pos);
        const std::string line = prom.substr(pos, eol - pos);
        const std::size_t sp = line.rfind(' ');
        if (sp == std::string::npos)
            return -1.0;
        const std::string head = line.substr(0, sp);
        if (head != name && head.rfind(name + "{", 0) != 0) {
            pos += name.size();
            continue;
        }
        return std::atof(line.c_str() + sp + 1);
    }
    return -1.0;
}

int
cmdGet(int argc, char **argv)
{
    if (argc < 4)
        return fail("usage: gpupm_scrape get <port> <path> "
                    "[--expect=<s>]... [--status=<n>] "
                    "[--method=<verb>]");
    const int port = std::atoi(argv[2]);
    const std::string path = argv[3];
    int want_status = 200;
    std::string method = "GET";
    std::vector<std::string> expects;
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--expect=", 0) == 0)
            expects.push_back(arg.substr(9));
        else if (arg.rfind("--status=", 0) == 0)
            want_status = std::atoi(arg.c_str() + 9);
        else if (arg.rfind("--method=", 0) == 0)
            method = arg.substr(9);
        else
            return fail("unknown argument '" + arg + "'");
    }
    std::string body;
    const int rc = checkEndpoint(port, method, path, want_status,
                                 expects, &body);
    if (rc == 0)
        std::fwrite(body.data(), 1, body.size(), stdout);
    return rc;
}

int
cmdMonitorSelftest(int argc, char **argv)
{
    if (argc < 4)
        return fail("usage: gpupm_scrape monitor-selftest "
                    "<gpupm-binary> <device> --work=<dir>");
    const std::string gpupm = argv[2];
    const std::string device = argv[3];
    std::string work = ".";
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--work=", 0) == 0)
            work = arg.substr(7);
        else
            return fail("unknown argument '" + arg + "'");
    }
    const std::string port_file = work + "/monitor.port";
    const std::string events_file = work + "/monitor.ndjson";
    std::remove(port_file.c_str());
    std::remove(events_file.c_str());

    // The daemon gets a generous self-destruct so a hung test cannot
    // leak a process past the ctest timeout.
    const pid_t pid = ::fork();
    if (pid < 0)
        return fail(std::string("fork: ") + std::strerror(errno));
    if (pid == 0) {
        const std::string port_arg = "--port-file=" + port_file;
        const std::string events_arg = "--events-out=" + events_file;
        ::execl(gpupm.c_str(), gpupm.c_str(), "monitor",
                device.c_str(), "--port=0", "--period-ms=50",
                "--duration=60s", port_arg.c_str(),
                events_arg.c_str(), static_cast<char *>(nullptr));
        std::fprintf(stderr, "exec %s: %s\n", gpupm.c_str(),
                     std::strerror(errno));
        _exit(127);
    }

    // The monitor trains its model before listening; poll the port
    // file until it appears (or the child dies).
    int port = 0;
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
        int wstatus = 0;
        if (::waitpid(pid, &wstatus, WNOHANG) == pid)
            return fail("monitor exited before listening (status " +
                        std::to_string(wstatus) + ")");
        std::ifstream pf(port_file);
        if (pf >> port && port > 0)
            break;
        port = 0;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    auto killAndFail = [&](const std::string &what) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        return fail(what);
    };
    if (port <= 0)
        return killAndFail("no port file after 30 s");
    std::fprintf(stderr, "gpupm_scrape: monitor up on port %d\n",
                 port);

    // Let the sampling loop land a handful of ticks first.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));

    std::string prom;
    if (checkEndpoint(port, "GET", "/metrics", 200,
                      {"gpupm_build_info{",
                       "gpupm_process_uptime_seconds",
                       "gpupm_accuracy_samples_total",
                       "gpupm_accuracy_abs_error_percent_bucket",
                       "gpupm_monitor_ticks_total",
                       "gpupm_http_request_seconds_bucket{path=\""
                       "/metrics\"",
                       "git_sha="},
                      &prom) != 0)
        return killAndFail("/metrics check failed");
    const double ticks =
            metricValue(prom, "gpupm_monitor_ticks_total");
    const double samples =
            metricValue(prom, "gpupm_accuracy_samples_total");
    const double measured =
            metricValue(prom, "gpupm_monitor_last_measured_watts");
    if (ticks < 1.0)
        return killAndFail("gpupm_monitor_ticks_total not > 0");
    if (samples < 1.0)
        return killAndFail("gpupm_accuracy_samples_total not > 0");
    if (measured < 10.0 || measured > 1000.0)
        return killAndFail("gpupm_monitor_last_measured_watts "
                           "implausible: " +
                           std::to_string(measured));

    if (checkEndpoint(port, "GET", "/healthz", 200,
                      {"\"status\":\"ok\"", "\"provenance\":",
                       "\"git_sha\"",
                       "\"device\":\"" + device + "\""}) != 0)
        return killAndFail("/healthz check failed");
    if (checkEndpoint(port, "GET", "/scoreboard", 200,
                      {"\"gpupm_scoreboard_version\"",
                       "\"summary\":", "\"per_app\":"}) != 0)
        return killAndFail("/scoreboard check failed");
    if (checkEndpoint(port, "GET", "/tracez", 200,
                      {"\"records\":", "monitor.sample",
                       "monitor.start"}) != 0)
        return killAndFail("/tracez check failed");

    // A second /metrics scrape must show the first one accounted.
    if (checkEndpoint(port, "GET", "/metrics", 200, {}, &prom) != 0)
        return killAndFail("second /metrics scrape failed");
    if (metricValue(prom, "gpupm_http_requests_total{path=\""
                          "/metrics\"}") < 1.0)
        return killAndFail("/metrics requests not counted");

    // Error paths: unknown route and non-GET method.
    if (checkEndpoint(port, "GET", "/nope", 404, {"unknown path"}) !=
        0)
        return killAndFail("404 check failed");
    if (checkEndpoint(port, "POST", "/metrics", 405,
                      {"method not allowed"}) != 0)
        return killAndFail("405 check failed");

    // Graceful shutdown: SIGTERM must produce a clean exit 0.
    if (::kill(pid, SIGTERM) != 0)
        return killAndFail(std::string("kill: ") +
                           std::strerror(errno));
    int wstatus = 0;
    for (int waited_ms = 0;; waited_ms += 50) {
        const pid_t r = ::waitpid(pid, &wstatus, WNOHANG);
        if (r == pid)
            break;
        if (waited_ms >= 10000)
            return killAndFail("monitor did not exit within 10 s of "
                               "SIGTERM");
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0)
        return fail("monitor exit status " +
                    std::to_string(wstatus) + " after SIGTERM");

    // The event log must hold at least one well-formed NDJSON line.
    std::ifstream ev(events_file);
    std::string line;
    if (!std::getline(ev, line) ||
        line.find("\"measured_w\":") == std::string::npos ||
        line.find("\"predicted_w\":") == std::string::npos)
        return fail("event log missing or malformed: " + events_file);

    std::fprintf(stderr,
                 "gpupm_scrape: monitor selftest passed (clean "
                 "SIGTERM exit)\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage:\n"
                     "  gpupm_scrape get <port> <path> "
                     "[--expect=<s>]... [--status=<n>] "
                     "[--method=<verb>]\n"
                     "  gpupm_scrape monitor-selftest <gpupm-binary> "
                     "<device> --work=<dir>\n");
        return 2;
    }
    const std::string mode = argv[1];
    if (mode == "get")
        return cmdGet(argc, argv);
    if (mode == "monitor-selftest")
        return cmdMonitorSelftest(argc, argv);
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
}
