/**
 * @file
 * Minimal HTTP scrape client for the `gpupm monitor` endpoints.
 *
 * Exists so the test suite can exercise the live-telemetry daemon
 * without external tools (no curl dependency in CI). Two modes:
 *
 *   gpupm_scrape get <port> <path> [--expect=<substr>]...
 *                    [--status=<code>] [--method=<verb>]
 *                    [--timeout-ms=<n>]
 *       one GET (or <verb>) against 127.0.0.1:<port>, body on
 *       stdout; exits non-zero when the status or any expected
 *       substring does not match. Without an explicit --status any
 *       HTTP error (status >= 400) fails, so a scripted scrape
 *       cannot mistake an error page for data; --timeout-ms bounds
 *       each socket operation (default 5000).
 *
 *   gpupm_scrape monitor-selftest <gpupm-binary> <device>
 *                    --work=<dir>
 *       the full acceptance flow of the cli_monitor_scrape ctest:
 *       fork/exec `gpupm monitor <device>` on an ephemeral port,
 *       wait for the port file, scrape /metrics, /healthz,
 *       /scoreboard, /tracez, /profilez, /alertz and /api/query
 *       (asserting the JSON bodies are brace-balanced and the folded
 *       profile parses), fire SIGUSR1 and require the live
 *       diagnostic dump on the daemon's stderr, assert the 404/405
 *       error paths, SIGTERM the daemon and require a clean exit 0.
 *       A cmake -P script cannot background a process, so the
 *       orchestration lives here.
 *
 *   gpupm_scrape drift-demo <gpupm-binary> <device> --work=<dir>
 *       end-to-end drift alerting: start the monitor with a seeded
 *       accuracy fault (--inject-drift), watch the rolling-MAE
 *       series degrade through /api/query, require the drift rule
 *       to go firing on /alertz (with gpupm_alerts_firing=1 in
 *       /metrics and /healthz degraded) and then resolve once the
 *       fault window passes, and require the alert transitions in
 *       the NDJSON event log after a clean SIGTERM exit.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <thread>
#include <vector>

namespace
{

/** One blocking HTTP exchange against 127.0.0.1:port. Every socket
 *  operation is bounded by timeout_ms so a wedged server turns into a
 *  typed failure instead of a hung scrape. */
bool
httpExchange(int port, const std::string &method,
             const std::string &path, int timeout_ms, int *status,
             std::string *body, std::string *err)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        *err = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (timeout_ms < 1)
        timeout_ms = 1;
    timeval tv{};
    tv.tv_sec = timeout_ms / 1000;
    tv.tv_usec = (timeout_ms % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        *err = std::string("connect: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }

    const std::string req = method + " " + path +
                            " HTTP/1.1\r\nHost: 127.0.0.1\r\n"
                            "Connection: close\r\n\r\n";
    std::size_t sent = 0;
    while (sent < req.size()) {
        const ssize_t n = ::send(fd, req.data() + sent,
                                 req.size() - sent, 0);
        if (n <= 0) {
            *err = std::string("send: ") + std::strerror(errno);
            ::close(fd);
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }

    std::string response;
    char chunk[4096];
    for (;;) {
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0) {
            *err = std::string("recv: ") + std::strerror(errno);
            ::close(fd);
            return false;
        }
        if (n == 0)
            break; // Connection: close — the server ends the stream
        response.append(chunk, static_cast<std::size_t>(n));
    }
    ::close(fd);

    // Status line: HTTP/1.1 NNN Reason
    const std::size_t sp = response.find(' ');
    if (response.rfind("HTTP/", 0) != 0 ||
        sp == std::string::npos || sp + 4 > response.size()) {
        *err = "malformed response: " + response.substr(0, 40);
        return false;
    }
    *status = std::atoi(response.c_str() + sp + 1);
    const std::size_t head_end = response.find("\r\n\r\n");
    *body = head_end == std::string::npos
                    ? ""
                    : response.substr(head_end + 4);
    return true;
}

int
fail(const std::string &what)
{
    std::fprintf(stderr, "gpupm_scrape: FAIL: %s\n", what.c_str());
    return 1;
}

/**
 * Scrape once and require a status plus body substrings.
 * want_status < 0 means "any non-error": the scrape fails on HTTP
 * status >= 400 instead of demanding one exact code.
 */
int
checkEndpoint(int port, const std::string &method,
              const std::string &path, int want_status,
              const std::vector<std::string> &expects,
              std::string *body_out = nullptr, int timeout_ms = 5000)
{
    int status = 0;
    std::string body, err;
    if (!httpExchange(port, method, path, timeout_ms, &status, &body,
                      &err))
        return fail(method + " " + path + ": " + err);
    if (want_status < 0 && status >= 400)
        return fail(method + " " + path + ": HTTP error status " +
                    std::to_string(status));
    if (want_status >= 0 && status != want_status)
        return fail(method + " " + path + ": status " +
                    std::to_string(status) + ", want " +
                    std::to_string(want_status));
    for (const auto &e : expects)
        if (body.find(e) == std::string::npos)
            return fail(method + " " + path + ": body lacks '" + e +
                        "'");
    if (body_out)
        *body_out = body;
    std::fprintf(stderr, "gpupm_scrape: ok %s %s (%d, %zu bytes)\n",
                 method.c_str(), path.c_str(), status, body.size());
    return 0;
}

/**
 * Structural well-formedness of a JSON body: non-empty, starts with
 * '{' or '[', and every brace/bracket closes (string-aware, so
 * braces inside values do not count). Not a full parser — the point
 * is catching a truncated or interleaved HTTP body, which substring
 * expectations alone would miss.
 */
bool
jsonBalanced(const std::string &body)
{
    std::size_t i = 0;
    while (i < body.size() && (body[i] == ' ' || body[i] == '\n'))
        ++i;
    if (i >= body.size() || (body[i] != '{' && body[i] != '['))
        return false;
    int depth = 0;
    bool in_str = false, esc = false;
    for (; i < body.size(); ++i) {
        const char c = body[i];
        if (esc) {
            esc = false;
        } else if (in_str) {
            if (c == '\\')
                esc = true;
            else if (c == '"')
                in_str = false;
        } else if (c == '"') {
            in_str = true;
        } else if (c == '{' || c == '[') {
            ++depth;
        } else if (c == '}' || c == ']') {
            if (--depth < 0)
                return false;
        }
    }
    return depth == 0 && !in_str;
}

/**
 * Structural well-formedness of a collapsed-stack profile: at least
 * one line, every line `frames... count` with a ;-separated stack
 * and a decimal sample count.
 */
bool
foldedWellFormed(const std::string &body)
{
    std::size_t pos = 0;
    int lines = 0;
    while (pos < body.size()) {
        std::size_t eol = body.find('\n', pos);
        if (eol == std::string::npos)
            eol = body.size();
        const std::string line = body.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty())
            continue;
        const std::size_t sp = line.rfind(' ');
        if (sp == std::string::npos || sp == 0 ||
            sp + 1 >= line.size())
            return false;
        for (std::size_t j = sp + 1; j < line.size(); ++j)
            if (line[j] < '0' || line[j] > '9')
                return false;
        ++lines;
    }
    return lines > 0;
}

/** Value of the first `name value` sample line in Prometheus text. */
double
metricValue(const std::string &prom, const std::string &name)
{
    std::size_t pos = 0;
    while ((pos = prom.find(name, pos)) != std::string::npos) {
        // Must start a line and not be a HELP/TYPE or _bucket line.
        if (pos > 0 && prom[pos - 1] != '\n') {
            pos += name.size();
            continue;
        }
        const std::size_t eol = prom.find('\n', pos);
        const std::string line = prom.substr(pos, eol - pos);
        const std::size_t sp = line.rfind(' ');
        if (sp == std::string::npos)
            return -1.0;
        const std::string head = line.substr(0, sp);
        if (head != name && head.rfind(name + "{", 0) != 0) {
            pos += name.size();
            continue;
        }
        return std::atof(line.c_str() + sp + 1);
    }
    return -1.0;
}

int
cmdGet(int argc, char **argv)
{
    if (argc < 4)
        return fail("usage: gpupm_scrape get <port> <path> "
                    "[--expect=<s>]... [--status=<n>] "
                    "[--method=<verb>]");
    const int port = std::atoi(argv[2]);
    const std::string path = argv[3];
    // No explicit --status: accept any non-error, fail on >= 400.
    int want_status = -1;
    int timeout_ms = 5000;
    std::string method = "GET";
    std::vector<std::string> expects;
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--expect=", 0) == 0)
            expects.push_back(arg.substr(9));
        else if (arg.rfind("--status=", 0) == 0)
            want_status = std::atoi(arg.c_str() + 9);
        else if (arg.rfind("--method=", 0) == 0)
            method = arg.substr(9);
        else if (arg.rfind("--timeout-ms=", 0) == 0)
            timeout_ms = std::atoi(arg.c_str() + 13);
        else
            return fail("unknown argument '" + arg + "'");
    }
    std::string body;
    const int rc = checkEndpoint(port, method, path, want_status,
                                 expects, &body, timeout_ms);
    if (rc == 0)
        std::fwrite(body.data(), 1, body.size(), stdout);
    return rc;
}

/** A forked `gpupm monitor` daemon under test. */
struct MonitorProc
{
    pid_t pid = -1;
    int port = 0;
    std::string port_file;
    std::string events_file;
    std::string stderr_file;
};

/**
 * Fork/exec `gpupm monitor <device>` on an ephemeral port with the
 * given extra flags and wait for the port file. The daemon gets a
 * generous self-destruct (--duration=60s) so a hung test cannot leak
 * a process past the ctest timeout; its stderr goes to a file so
 * diagnostics can be asserted on.
 */
bool
spawnMonitor(const std::string &gpupm, const std::string &device,
             const std::string &work,
             const std::vector<std::string> &extra_flags,
             MonitorProc *proc, std::string *err)
{
    ::mkdir(work.c_str(), 0755); // fine if it already exists
    proc->port_file = work + "/monitor.port";
    proc->events_file = work + "/monitor.ndjson";
    proc->stderr_file = work + "/monitor.stderr";
    std::remove(proc->port_file.c_str());
    std::remove(proc->events_file.c_str());
    std::remove(proc->stderr_file.c_str());

    proc->pid = ::fork();
    if (proc->pid < 0) {
        *err = std::string("fork: ") + std::strerror(errno);
        return false;
    }
    if (proc->pid == 0) {
        if (!std::freopen(proc->stderr_file.c_str(), "w", stderr))
            _exit(126);
        std::vector<std::string> args{gpupm,
                                      "monitor",
                                      device,
                                      "--port=0",
                                      "--period-ms=50",
                                      "--duration=60s",
                                      "--port-file=" + proc->port_file,
                                      "--events-out=" +
                                              proc->events_file};
        args.insert(args.end(), extra_flags.begin(),
                    extra_flags.end());
        std::vector<char *> argv;
        argv.reserve(args.size() + 1);
        for (auto &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        ::execv(gpupm.c_str(), argv.data());
        std::fprintf(stderr, "exec %s: %s\n", gpupm.c_str(),
                     std::strerror(errno));
        _exit(127);
    }

    // The monitor trains its model before listening; poll the port
    // file until it appears (or the child dies).
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(30);
    while (std::chrono::steady_clock::now() < deadline) {
        int wstatus = 0;
        if (::waitpid(proc->pid, &wstatus, WNOHANG) == proc->pid) {
            proc->pid = -1;
            *err = "monitor exited before listening (status " +
                   std::to_string(wstatus) + ")";
            return false;
        }
        std::ifstream pf(proc->port_file);
        if (pf >> proc->port && proc->port > 0)
            return true;
        proc->port = 0;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    *err = "no port file after 30 s";
    return false;
}

int
cmdMonitorSelftest(int argc, char **argv)
{
    if (argc < 4)
        return fail("usage: gpupm_scrape monitor-selftest "
                    "<gpupm-binary> <device> --work=<dir>");
    const std::string gpupm = argv[2];
    const std::string device = argv[3];
    std::string work = ".";
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--work=", 0) == 0)
            work = arg.substr(7);
        else
            return fail("unknown argument '" + arg + "'");
    }

    MonitorProc proc;
    std::string spawn_err;
    if (!spawnMonitor(gpupm, device, work, {}, &proc, &spawn_err)) {
        if (proc.pid > 0) {
            ::kill(proc.pid, SIGKILL);
            ::waitpid(proc.pid, nullptr, 0);
        }
        return fail(spawn_err);
    }
    const pid_t pid = proc.pid;
    const int port = proc.port;
    const std::string events_file = proc.events_file;
    const std::string stderr_file = proc.stderr_file;
    auto dumpStderr = [&] {
        std::ifstream se(stderr_file);
        std::string l;
        while (std::getline(se, l))
            std::fprintf(stderr, "monitor stderr| %s\n", l.c_str());
    };
    auto killAndFail = [&](const std::string &what) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        dumpStderr();
        return fail(what);
    };
    std::fprintf(stderr, "gpupm_scrape: monitor up on port %d\n",
                 port);

    // Let the sampling loop land a handful of ticks first.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));

    std::string prom;
    if (checkEndpoint(port, "GET", "/metrics", 200,
                      {"gpupm_build_info{",
                       "gpupm_process_uptime_seconds",
                       "gpupm_accuracy_samples_total",
                       "gpupm_accuracy_abs_error_percent_bucket",
                       "gpupm_monitor_ticks_total",
                       "gpupm_tsdb_series",
                       "gpupm_alerts_firing{rule=\"accuracy_drift_" +
                               device + "\"}",
                       "gpupm_http_request_seconds_bucket{path=\""
                       "/metrics\"",
                       "git_sha="},
                      &prom) != 0)
        return killAndFail("/metrics check failed");
    const double ticks =
            metricValue(prom, "gpupm_monitor_ticks_total");
    const double samples =
            metricValue(prom, "gpupm_accuracy_samples_total");
    const double measured =
            metricValue(prom, "gpupm_monitor_last_measured_watts");
    if (ticks < 1.0)
        return killAndFail("gpupm_monitor_ticks_total not > 0");
    if (samples < 1.0)
        return killAndFail("gpupm_accuracy_samples_total not > 0");
    if (measured < 10.0 || measured > 1000.0)
        return killAndFail("gpupm_monitor_last_measured_watts "
                           "implausible: " +
                           std::to_string(measured));

    if (checkEndpoint(port, "GET", "/healthz", 200,
                      {"\"status\":\"ok\"", "\"provenance\":",
                       "\"git_sha\"",
                       "\"device\":\"" + device + "\""}) != 0)
        return killAndFail("/healthz check failed");
    std::string json_body;
    if (checkEndpoint(port, "GET", "/scoreboard", 200,
                      {"\"gpupm_scoreboard_version\"",
                       "\"summary\":", "\"per_app\":"},
                      &json_body) != 0)
        return killAndFail("/scoreboard check failed");
    if (!jsonBalanced(json_body))
        return killAndFail("/scoreboard body is not balanced JSON");
    if (checkEndpoint(port, "GET", "/tracez", 200,
                      {"\"records\":", "monitor.sample",
                       "monitor.start"},
                      &json_body) != 0)
        return killAndFail("/tracez check failed");
    if (!jsonBalanced(json_body))
        return killAndFail("/tracez body is not balanced JSON");

    // The alert engine ships with the built-in drift rule; the
    // embedded store must answer range queries over the live series.
    if (checkEndpoint(port, "GET", "/alertz", 200,
                      {"\"rules\":[", "accuracy_drift_" + device,
                       "\"kind\":\"drift\"", "\"history\":["},
                      &json_body) != 0)
        return killAndFail("/alertz check failed");
    if (!jsonBalanced(json_body))
        return killAndFail("/alertz body is not balanced JSON");
    if (checkEndpoint(port, "GET", "/alertz?format=text", 200,
                      {"alerts @", "accuracy_drift_" + device}) != 0)
        return killAndFail("/alertz text check failed");
    if (checkEndpoint(port, "GET",
                      "/api/query?series=gpupm_accuracy_rolling_mae_"
                      "pct&range=60s&step=1s",
                      200,
                      {"\"ok\":true", "\"points\":[{", "\"avg\":"},
                      &json_body) != 0)
        return killAndFail("/api/query check failed");
    if (!jsonBalanced(json_body))
        return killAndFail("/api/query body is not balanced JSON");
    if (checkEndpoint(port, "GET", "/api/query", 400,
                      {"usage: /api/query"}) != 0)
        return killAndFail("/api/query missing-series check failed");
    if (checkEndpoint(port, "GET",
                      "/api/query?series=no_such_series&range=10s",
                      404, {}) != 0)
        return killAndFail("/api/query unknown-series check failed");

    // /api/traces serves the tail-sampled trace store: every sampler
    // tick roots a fresh trace, so assembled monitor.tick traces with
    // correlated span ids must be queryable, filters must compose and
    // bogus parameters must be rejected with the usage string.
    if (checkEndpoint(port, "GET", "/api/traces",
                      200,
                      {"\"traces\":[", "\"trace_id\":\"",
                       "monitor.tick", "\"spans\":[",
                       "\"memory_bound_bytes\":"},
                      &json_body) != 0)
        return killAndFail("/api/traces check failed");
    if (!jsonBalanced(json_body))
        return killAndFail("/api/traces body is not balanced JSON");
    if (checkEndpoint(port, "GET",
                      "/api/traces?category=monitor&min_ms=0&limit=2",
                      200, {"monitor.tick"}) != 0)
        return killAndFail("/api/traces filtered check failed");
    if (checkEndpoint(port, "GET", "/api/traces?error=2", 400,
                      {"usage: /api/traces"}) != 0)
        return killAndFail("/api/traces bad-param check failed");

    // /profilez runs the wall-clock sampling profiler in-place; the
    // idle daemon sits in its instrumented wait/tick spans, so the
    // folded profile must parse and carry monitor-attributed stacks.
    std::string folded;
    if (checkEndpoint(port, "GET", "/profilez?seconds=0.5", 200,
                      {"monitor"}, &folded) != 0)
        return killAndFail("/profilez check failed");
    if (!foldedWellFormed(folded))
        return killAndFail("/profilez body is not a folded profile");
    if (checkEndpoint(port, "GET", "/profilez?seconds=0.2&json=1",
                      200,
                      {"\"mode\":\"wall\"", "\"attributed_pct\":",
                       "\"categories\":"},
                      &json_body) != 0)
        return killAndFail("/profilez json check failed");
    if (!jsonBalanced(json_body))
        return killAndFail("/profilez json body is not balanced");

    // SIGUSR1 must produce a live diagnostic dump on the daemon's
    // stderr without disturbing the process.
    if (::kill(pid, SIGUSR1) != 0)
        return killAndFail(std::string("kill SIGUSR1: ") +
                           std::strerror(errno));
    bool dumped = false;
    for (int waited_ms = 0; waited_ms < 5000 && !dumped;
         waited_ms += 100) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        std::ifstream se(stderr_file);
        std::string text((std::istreambuf_iterator<char>(se)),
                         std::istreambuf_iterator<char>());
        dumped = text.find("=== live diagnostic (SIGUSR1) ===") !=
                         std::string::npos &&
                 text.find("=== end live diagnostic ===") !=
                         std::string::npos;
    }
    if (!dumped)
        return killAndFail("no SIGUSR1 diagnostic dump within 5 s");
    std::fprintf(stderr,
                 "gpupm_scrape: ok SIGUSR1 live diagnostic dump\n");

    // A second /metrics scrape must show the first one accounted,
    // the trace-store gauges live, and latency histograms carrying
    // OpenMetrics exemplars that link back to stored trace ids.
    if (checkEndpoint(port, "GET", "/metrics", 200, {}, &prom) != 0)
        return killAndFail("second /metrics scrape failed");
    if (metricValue(prom, "gpupm_http_requests_total{path=\""
                          "/metrics\"}") < 1.0)
        return killAndFail("/metrics requests not counted");
    if (metricValue(prom, "gpupm_trace_store_traces") < 1.0)
        return killAndFail("gpupm_trace_store_traces not > 0");
    if (prom.find(" # {trace_id=\"") == std::string::npos)
        return killAndFail("/metrics carries no trace exemplars");

    // Error paths: unknown route and non-GET method.
    if (checkEndpoint(port, "GET", "/nope", 404, {"unknown path"}) !=
        0)
        return killAndFail("404 check failed");
    if (checkEndpoint(port, "POST", "/metrics", 405,
                      {"method not allowed"}) != 0)
        return killAndFail("405 check failed");

    // Graceful shutdown: SIGTERM must produce a clean exit 0.
    if (::kill(pid, SIGTERM) != 0)
        return killAndFail(std::string("kill: ") +
                           std::strerror(errno));
    int wstatus = 0;
    for (int waited_ms = 0;; waited_ms += 50) {
        const pid_t r = ::waitpid(pid, &wstatus, WNOHANG);
        if (r == pid)
            break;
        if (waited_ms >= 10000)
            return killAndFail("monitor did not exit within 10 s of "
                               "SIGTERM");
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0)
        return fail("monitor exit status " +
                    std::to_string(wstatus) + " after SIGTERM");

    // The event log must hold at least one well-formed NDJSON line.
    std::ifstream ev(events_file);
    std::string line;
    if (!std::getline(ev, line) ||
        line.find("\"measured_w\":") == std::string::npos ||
        line.find("\"predicted_w\":") == std::string::npos)
        return fail("event log missing or malformed: " + events_file);

    std::fprintf(stderr,
                 "gpupm_scrape: monitor selftest passed (clean "
                 "SIGTERM exit)\n");
    return 0;
}

/**
 * End-to-end drift alerting against a live daemon: a seeded accuracy
 * fault degrades the rolling MAE, the drift rule must fire (visible
 * on /alertz, /metrics and /healthz) and then resolve once the fault
 * window passes, and the transitions must land in the NDJSON event
 * log.
 */
int
cmdDriftDemo(int argc, char **argv)
{
    if (argc < 4)
        return fail("usage: gpupm_scrape drift-demo <gpupm-binary> "
                    "<device> --work=<dir>");
    const std::string gpupm = argv[2];
    const std::string device = argv[3];
    std::string work = ".";
    for (int i = 4; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--work=", 0) == 0)
            work = arg.substr(7);
        else
            return fail("unknown argument '" + arg + "'");
    }
    const std::string rule = "accuracy_drift_" + device;

    // Injection window in probe ticks at 50 ms/tick: ~2 s healthy
    // baseline, ~2 s degraded measurements, recovery afterwards. The
    // alerting knobs mirror the deterministic `gpupm alerts` ctest;
    // here the same parameters run against the wall-clock daemon.
    MonitorProc proc;
    std::string spawn_err;
    if (!spawnMonitor(gpupm, device, work,
                      {"--inject-drift=40:80:1.5",
                       "--rolling-window=16", "--drift-window=1s",
                       "--drift-for=250ms", "--drift-cooldown=1s",
                       "--drift-tolerance=9",
                       "--healthz-degraded-503"},
                      &proc, &spawn_err)) {
        if (proc.pid > 0) {
            ::kill(proc.pid, SIGKILL);
            ::waitpid(proc.pid, nullptr, 0);
        }
        return fail(spawn_err);
    }
    const pid_t pid = proc.pid;
    const int port = proc.port;
    auto dumpStderr = [&] {
        std::ifstream se(proc.stderr_file);
        std::string l;
        while (std::getline(se, l))
            std::fprintf(stderr, "monitor stderr| %s\n", l.c_str());
    };
    auto killAndFail = [&](const std::string &what) {
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        dumpStderr();
        return fail(what);
    };
    std::fprintf(stderr, "gpupm_scrape: monitor up on port %d\n",
                 port);

    // Poll /alertz until the body carries the wanted marker. The
    // injection begins ~2 s in and the hysteresis adds ~250 ms, so
    // 30 s is generous even on a loaded CI box.
    auto waitAlertz = [&](const std::string &marker,
                          const char *label) {
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(30);
        while (std::chrono::steady_clock::now() < deadline) {
            int status = 0;
            std::string body, err;
            if (httpExchange(port, "GET", "/alertz", 2000, &status,
                             &body, &err) &&
                status == 200 &&
                body.find(marker) != std::string::npos)
                return true;
            std::this_thread::sleep_for(
                    std::chrono::milliseconds(100));
        }
        std::fprintf(stderr,
                     "gpupm_scrape: timed out waiting for %s\n",
                     label);
        return false;
    };

    if (!waitAlertz("\"firing\":[\"" + rule + "\"]",
                    "drift rule firing"))
        return killAndFail("drift rule never fired");
    std::fprintf(stderr, "gpupm_scrape: ok drift rule firing\n");

    // While firing: the gauge must read 1, /healthz must degrade
    // with the rule name (and 503, since the flag is set), and the
    // MAE series must be queryable with degraded points in range.
    std::string prom;
    if (checkEndpoint(port, "GET", "/metrics", 200, {}, &prom) != 0)
        return killAndFail("/metrics scrape while firing failed");
    if (metricValue(prom, "gpupm_alerts_firing{rule=\"" + rule +
                                  "\"}") != 1.0)
        return killAndFail("gpupm_alerts_firing not 1 while firing");
    if (checkEndpoint(port, "GET", "/healthz", 503,
                      {"\"status\":\"degraded\"", rule}) != 0)
        return killAndFail("/healthz not degraded while firing");
    std::string query_body;
    if (checkEndpoint(port, "GET",
                      "/api/query?series=gpupm_accuracy_rolling_mae_"
                      "pct&range=60s&step=1s",
                      200, {"\"ok\":true", "\"points\":[{"},
                      &query_body) != 0)
        return killAndFail("/api/query while firing failed");
    if (!jsonBalanced(query_body))
        return killAndFail("/api/query body is not balanced JSON");

    if (!waitAlertz("\"state\":\"resolved\"", "drift rule resolved"))
        return killAndFail("drift rule never resolved");
    std::fprintf(stderr, "gpupm_scrape: ok drift rule resolved\n");

    if (checkEndpoint(port, "GET", "/metrics", 200, {}, &prom) != 0)
        return killAndFail("/metrics scrape after resolve failed");
    if (metricValue(prom, "gpupm_alerts_firing{rule=\"" + rule +
                                  "\"}") != 0.0)
        return killAndFail("gpupm_alerts_firing not 0 after resolve");
    if (checkEndpoint(port, "GET", "/healthz", 200,
                      {"\"status\":\"ok\""}) != 0)
        return killAndFail("/healthz not ok after resolve");

    // Graceful shutdown, then the alert transitions must be in the
    // NDJSON event log alongside the samples.
    if (::kill(pid, SIGTERM) != 0)
        return killAndFail(std::string("kill: ") +
                           std::strerror(errno));
    int wstatus = 0;
    for (int waited_ms = 0;; waited_ms += 50) {
        const pid_t r = ::waitpid(pid, &wstatus, WNOHANG);
        if (r == pid)
            break;
        if (waited_ms >= 10000)
            return killAndFail("monitor did not exit within 10 s of "
                               "SIGTERM");
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    if (!WIFEXITED(wstatus) || WEXITSTATUS(wstatus) != 0)
        return fail("monitor exit status " +
                    std::to_string(wstatus) + " after SIGTERM");

    std::ifstream ev(proc.events_file);
    std::string line;
    bool saw_firing = false, saw_resolved = false;
    while (std::getline(ev, line)) {
        if (line.find("\"event\":\"alert\"") == std::string::npos ||
            line.find("\"rule\":\"" + rule + "\"") ==
                    std::string::npos)
            continue;
        if (line.find("\"state\":\"firing\"") != std::string::npos)
            saw_firing = true;
        if (line.find("\"state\":\"resolved\"") != std::string::npos)
            saw_resolved = true;
    }
    if (!saw_firing || !saw_resolved)
        return fail("event log lacks alert firing/resolved "
                    "transitions: " +
                    proc.events_file);

    std::fprintf(stderr,
                 "gpupm_scrape: drift demo passed (fired, resolved, "
                 "clean SIGTERM exit)\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        std::fprintf(stderr,
                     "usage:\n"
                     "  gpupm_scrape get <port> <path> "
                     "[--expect=<s>]... [--status=<n>] "
                     "[--method=<verb>] [--timeout-ms=<n>]\n"
                     "  gpupm_scrape monitor-selftest <gpupm-binary> "
                     "<device> --work=<dir>\n"
                     "  gpupm_scrape drift-demo <gpupm-binary> "
                     "<device> --work=<dir>\n");
        return 2;
    }
    const std::string mode = argv[1];
    if (mode == "get")
        return cmdGet(argc, argv);
    if (mode == "monitor-selftest")
        return cmdMonitorSelftest(argc, argv);
    if (mode == "drift-demo")
        return cmdDriftDemo(argc, argv);
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
}
