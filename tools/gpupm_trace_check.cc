/**
 * @file
 * gpupm_trace_check: validator for the observability artifacts the
 * gpupm CLI emits, so tests (and scripts) can assert on them without
 * a Python or jq dependency.
 *
 *   gpupm_trace_check trace <t.json> [cat...]
 *       Parse a Chrome trace-event JSON file and structurally
 *       validate every event (complete "X" phase, non-negative
 *       timestamps and durations, name/cat present). Extra arguments
 *       are span categories that must appear at least once. When
 *       spans carry trace IDs (DESIGN.md §15) their referential
 *       integrity is validated too: span IDs globally unique, every
 *       parent resolving inside the same trace, exactly one root per
 *       trace (span ID == trace ID), and children nested inside
 *       their parent's timespan.
 *
 *   gpupm_trace_check summary <t.json>
 *       Per-category wall-clock table: span count, union wall-clock
 *       of the category's spans (overlap-merged, so nesting does not
 *       double-count), and the longest single span.
 *
 *   gpupm_trace_check metrics <m.prom> [name...]
 *       Validate Prometheus text exposition format line by line.
 *       Extra arguments are metric names that must be exposed.
 *
 *   gpupm_trace_check convergence <c.csv>
 *       Validate an estimator convergence CSV: expected header,
 *       iterations numbered 0..n without gaps, finite fields, and
 *       SSE non-increasing from the first real iteration on.
 *
 * Exit status: 0 valid, 1 validation failure, 2 usage.
 */

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "common/numio.hh"
#include "common/table.hh"
#include "json_lite.hh"

namespace
{

using namespace gpupm;
using jsonlite::JsonParser;
using jsonlite::JsonValue;
using jsonlite::readFile;

// -- trace -----------------------------------------------------------

/** One span's checked essentials, for summary and validation. */
struct Span
{
    std::string cat;
    double ts = 0.0;
    double dur = 0.0;
    unsigned long long trace_id = 0; ///< 0 when the file has no IDs
    unsigned long long span_id = 0;
    unsigned long long parent_span_id = 0;
};

/** Parse a 16-digit lowercase-hex ID string; 0 on malformed input. */
unsigned long long
parseHexId(const std::string &s)
{
    if (s.size() != 16)
        return 0;
    unsigned long long v = 0;
    for (char c : s) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<unsigned long long>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<unsigned long long>(c - 'a' + 10);
        else
            return 0;
    }
    return v;
}

/** Parse + structurally validate a trace file. */
bool
loadTrace(const std::string &path, std::vector<Span> &spans)
{
    std::string text;
    if (!readFile(path, text))
        return false;
    JsonValue root;
    std::string err;
    if (!JsonParser(text).parse(root, err)) {
        std::fprintf(stderr, "%s: invalid JSON: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    if (root.kind != JsonValue::Kind::Object) {
        std::fprintf(stderr, "%s: top level is not an object\n",
                     path.c_str());
        return false;
    }
    const JsonValue *events = root.find("traceEvents");
    if (!events || events->kind != JsonValue::Kind::Array) {
        std::fprintf(stderr, "%s: missing traceEvents array\n",
                     path.c_str());
        return false;
    }
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &ev = events->array[i];
        auto bad = [&](const char *what) {
            std::fprintf(stderr, "%s: event %zu: %s\n", path.c_str(),
                         i, what);
            return false;
        };
        if (ev.kind != JsonValue::Kind::Object)
            return bad("not an object");
        const JsonValue *name = ev.find("name");
        const JsonValue *cat = ev.find("cat");
        const JsonValue *ph = ev.find("ph");
        const JsonValue *ts = ev.find("ts");
        const JsonValue *dur = ev.find("dur");
        if (!name || name->kind != JsonValue::Kind::String ||
            name->str.empty())
            return bad("missing name");
        if (!cat || cat->kind != JsonValue::Kind::String ||
            cat->str.empty())
            return bad("missing cat");
        if (!ph || ph->str != "X")
            return bad("phase is not 'X' (complete event)");
        if (!ts || ts->kind != JsonValue::Kind::Number ||
            !(ts->number >= 0))
            return bad("bad ts");
        if (!dur || dur->kind != JsonValue::Kind::Number ||
            !(dur->number >= 0))
            return bad("bad dur");
        Span span;
        span.cat = cat->str;
        span.ts = ts->number;
        span.dur = dur->number;
        // Correlation IDs travel as 16-hex-digit strings; a span
        // either carries a (trace, span) pair or neither.
        const JsonValue *tid_v = ev.find("trace_id");
        const JsonValue *sid_v = ev.find("span_id");
        const JsonValue *pid_v = ev.find("parent_span_id");
        if (tid_v || sid_v || pid_v) {
            if (!tid_v || tid_v->kind != JsonValue::Kind::String ||
                !(span.trace_id = parseHexId(tid_v->str)))
                return bad("bad trace_id");
            if (!sid_v || sid_v->kind != JsonValue::Kind::String ||
                !(span.span_id = parseHexId(sid_v->str)))
                return bad("bad span_id");
            if (pid_v) {
                if (pid_v->kind != JsonValue::Kind::String ||
                    !(span.parent_span_id = parseHexId(pid_v->str)))
                    return bad("bad parent_span_id");
            }
        }
        spans.push_back(std::move(span));
    }
    return true;
}

/**
 * Referential integrity of the span IDs in a trace dump. A file with
 * no IDs at all (pre-correlation artifact) passes vacuously.
 */
bool
checkTraceIds(const std::string &path, const std::vector<Span> &spans)
{
    std::map<unsigned long long, const Span *> by_span_id;
    for (const auto &s : spans) {
        if (!s.trace_id)
            continue;
        if (!by_span_id.emplace(s.span_id, &s).second) {
            std::fprintf(stderr,
                         "%s: duplicate span id %016llx\n",
                         path.c_str(), s.span_id);
            return false;
        }
    }
    if (by_span_id.empty()) {
        std::printf("%s: no trace ids (pre-correlation artifact)\n",
                    path.c_str());
        return true;
    }
    std::map<unsigned long long, long> roots_per_trace;
    for (const auto &kv : by_span_id) {
        const Span &s = *kv.second;
        if (s.parent_span_id == 0) {
            if (s.span_id != s.trace_id) {
                std::fprintf(stderr,
                             "%s: root span %016llx does not name "
                             "its trace %016llx\n",
                             path.c_str(), s.span_id, s.trace_id);
                return false;
            }
            ++roots_per_trace[s.trace_id];
            continue;
        }
        const auto parent = by_span_id.find(s.parent_span_id);
        if (parent == by_span_id.end()) {
            std::fprintf(stderr,
                         "%s: span %016llx has orphan parent "
                         "%016llx\n",
                         path.c_str(), s.span_id, s.parent_span_id);
            return false;
        }
        const Span &p = *parent->second;
        if (p.trace_id != s.trace_id) {
            std::fprintf(stderr,
                         "%s: span %016llx (trace %016llx) has "
                         "parent in trace %016llx\n",
                         path.c_str(), s.span_id, s.trace_id,
                         p.trace_id);
            return false;
        }
        if (s.ts < p.ts || s.ts + s.dur > p.ts + p.dur) {
            std::fprintf(stderr,
                         "%s: span %016llx [%g, %g) escapes parent "
                         "%016llx [%g, %g)\n",
                         path.c_str(), s.span_id, s.ts, s.ts + s.dur,
                         p.span_id, p.ts, p.ts + p.dur);
            return false;
        }
    }
    long traces = 0;
    for (const auto &kv : by_span_id) {
        const Span &s = *kv.second;
        const auto it = roots_per_trace.find(s.trace_id);
        const long n = it == roots_per_trace.end() ? 0 : it->second;
        if (n != 1) {
            std::fprintf(stderr,
                         "%s: trace %016llx has %ld roots "
                         "(expected exactly 1)\n",
                         path.c_str(), s.trace_id, n);
            return false;
        }
    }
    traces = static_cast<long>(roots_per_trace.size());
    std::printf("%s: %zu correlated spans across %ld traces, ids "
                "consistent\n",
                path.c_str(), by_span_id.size(), traces);
    return true;
}

int
cmdTrace(const std::string &path,
         const std::vector<std::string> &required)
{
    std::vector<Span> spans;
    if (!loadTrace(path, spans))
        return 1;
    if (!checkTraceIds(path, spans))
        return 1;
    std::map<std::string, long> per_cat;
    for (const auto &s : spans)
        ++per_cat[s.cat];
    for (const auto &cat : required) {
        if (!per_cat.count(cat)) {
            std::fprintf(stderr,
                         "%s: required span category '%s' absent\n",
                         path.c_str(), cat.c_str());
            return 1;
        }
    }
    std::printf("%s: %zu spans, %zu categories:", path.c_str(),
                spans.size(), per_cat.size());
    for (const auto &kv : per_cat)
        std::printf(" %s=%ld", kv.first.c_str(), kv.second);
    std::printf("\n");
    return 0;
}

/**
 * Wall-clock of a set of spans: union of their [ts, ts+dur)
 * intervals, so nested and overlapping spans are not double-counted.
 */
double
unionUs(std::vector<std::pair<double, double>> &ivals)
{
    std::sort(ivals.begin(), ivals.end());
    double total = 0.0, lo = 0.0, hi = -1.0;
    for (const auto &iv : ivals) {
        if (iv.first > hi) {
            if (hi > lo)
                total += hi - lo;
            lo = iv.first;
            hi = iv.first + iv.second;
        } else {
            hi = std::max(hi, iv.first + iv.second);
        }
    }
    if (hi > lo)
        total += hi - lo;
    return total;
}

int
cmdSummary(const std::string &path)
{
    std::vector<Span> spans;
    if (!loadTrace(path, spans))
        return 1;
    std::map<std::string,
             std::vector<std::pair<double, double>>> per_cat;
    std::map<std::string, double> longest;
    for (const auto &s : spans) {
        per_cat[s.cat].emplace_back(s.ts, s.dur);
        longest[s.cat] = std::max(longest[s.cat], s.dur);
    }
    TextTable t({"category", "spans", "wall-clock ms", "longest ms"});
    t.setTitle("per-category wall-clock (from " + path + ")");
    for (auto &kv : per_cat)
        t.addRow({kv.first, std::to_string(kv.second.size()),
                  TextTable::num(unionUs(kv.second) / 1000.0, 2),
                  TextTable::num(longest[kv.first] / 1000.0, 2)});
    t.print(std::cout);
    return 0;
}

// -- metrics ---------------------------------------------------------

int
cmdMetrics(const std::string &path,
           const std::vector<std::string> &required)
{
    std::string text;
    if (!readFile(path, text))
        return 1;
    std::istringstream in(text);
    std::string line;
    std::set<std::string> exposed;
    long lineno = 0, samples = 0;
    auto bad = [&](const char *what) {
        std::fprintf(stderr, "%s:%ld: %s: %s\n", path.c_str(), lineno,
                     what, line.c_str());
        return 1;
    };
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        if (line[0] == '#') {
            // "# HELP <name> <text>" / "# TYPE <name> <kind>"
            std::istringstream ls(line);
            std::string hash, verb, name;
            ls >> hash >> verb >> name;
            if (verb != "HELP" && verb != "TYPE")
                return bad("unknown comment verb");
            if (name.empty())
                return bad("comment without metric name");
            if (verb == "TYPE") {
                std::string kind;
                ls >> kind;
                if (kind != "counter" && kind != "gauge" &&
                    kind != "histogram")
                    return bad("unknown metric type");
            }
            continue;
        }
        // "<name>[{labels}] <value>[ # {labels} <exemplar-value>]"
        std::string sample = line;
        const auto ex = line.find(" # ");
        if (ex != std::string::npos) {
            // OpenMetrics-style exemplar after the sample value:
            // validate its shape, then strip it.
            const std::string exemplar = line.substr(ex + 3);
            const auto close = exemplar.find('}');
            double exv = 0.0;
            if (exemplar.empty() || exemplar[0] != '{' ||
                close == std::string::npos ||
                close + 2 >= exemplar.size() ||
                exemplar[close + 1] != ' ' ||
                !numio::parseDouble(exemplar.substr(close + 2), exv))
                return bad("malformed exemplar");
            sample = line.substr(0, ex);
        }
        const auto sp = sample.rfind(' ');
        if (sp == std::string::npos)
            return bad("sample without value");
        double v = 0.0;
        std::string val = sample.substr(sp + 1);
        if (val != "+Inf" && !numio::parseDouble(val, v))
            return bad("unparseable sample value");
        std::string name = sample.substr(0, sp);
        const auto brace = name.find('{');
        if (brace != std::string::npos) {
            if (name.back() != '}')
                return bad("unterminated label set");
            name = name.substr(0, brace);
        }
        if (name.empty())
            return bad("sample without name");
        ++samples;
        // Strip histogram-series suffixes so `foo` covers
        // foo_bucket / foo_sum / foo_count.
        for (const char *suffix : {"_bucket", "_sum", "_count"}) {
            const std::string s(suffix);
            if (name.size() > s.size() &&
                name.compare(name.size() - s.size(), s.size(), s) ==
                        0)
                exposed.insert(name.substr(0, name.size() - s.size()));
        }
        exposed.insert(name);
    }
    for (const auto &name : required) {
        if (!exposed.count(name)) {
            std::fprintf(stderr,
                         "%s: required metric '%s' absent\n",
                         path.c_str(), name.c_str());
            return 1;
        }
    }
    std::printf("%s: %ld samples, %zu metric names\n", path.c_str(),
                samples, exposed.size());
    return 0;
}

// -- convergence -----------------------------------------------------

int
cmdConvergence(const std::string &path)
{
    std::string text;
    if (!readFile(path, text))
        return 1;
    std::istringstream in(text);
    std::string line;
    if (!std::getline(in, line) ||
        line !=
                "iteration,sse,delta_sse,max_dv,als_residual,"
                "condition") {
        std::fprintf(stderr, "%s: bad header: %s\n", path.c_str(),
                     line.c_str());
        return 1;
    }
    long expected_it = 0, rows = 0;
    double prev_sse = 0.0;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        std::vector<double> fields;
        std::istringstream ls(line);
        std::string cell;
        while (std::getline(ls, cell, ',')) {
            double v = 0.0;
            if (!numio::parseDouble(cell, v) || !std::isfinite(v)) {
                std::fprintf(stderr, "%s: bad field '%s' in: %s\n",
                             path.c_str(), cell.c_str(),
                             line.c_str());
                return 1;
            }
            fields.push_back(v);
        }
        if (fields.size() != 6) {
            std::fprintf(stderr, "%s: expected 6 fields: %s\n",
                         path.c_str(), line.c_str());
            return 1;
        }
        if (static_cast<long>(fields[0]) != expected_it) {
            std::fprintf(stderr,
                         "%s: iteration gap: got %ld, expected %ld\n",
                         path.c_str(), static_cast<long>(fields[0]),
                         expected_it);
            return 1;
        }
        // The alternation only accepts SSE-improving steps, so from
        // the first real iteration on SSE must not increase (tiny
        // slack for the final, sub-tolerance step).
        if (expected_it >= 2 &&
            fields[1] > prev_sse * (1.0 + 1e-9)) {
            std::fprintf(stderr,
                         "%s: SSE increased at iteration %ld "
                         "(%g -> %g)\n",
                         path.c_str(), expected_it, prev_sse,
                         fields[1]);
            return 1;
        }
        prev_sse = fields[1];
        ++expected_it;
        ++rows;
    }
    if (rows < 2) {
        std::fprintf(stderr,
                     "%s: only %ld rows (need init + >=1 iteration)\n",
                     path.c_str(), rows);
        return 1;
    }
    std::printf("%s: %ld iterations, final SSE %g\n", path.c_str(),
                rows - 1, prev_sse);
    return 0;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  gpupm_trace_check trace <t.json> [required-cat...]"
                 "\n"
                 "  gpupm_trace_check summary <t.json>\n"
                 "  gpupm_trace_check metrics <m.prom> "
                 "[required-name...]\n"
                 "  gpupm_trace_check convergence <c.csv>\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3)
        return usage();
    const std::string cmd = argv[1];
    const std::string path = argv[2];
    std::vector<std::string> rest(argv + 3, argv + argc);
    if (cmd == "trace")
        return cmdTrace(path, rest);
    if (cmd == "summary" && rest.empty())
        return cmdSummary(path);
    if (cmd == "metrics")
        return cmdMetrics(path, rest);
    if (cmd == "convergence" && rest.empty())
        return cmdConvergence(path);
    return usage();
}
