/**
 * @file
 * gpupm_bench_check: regression gate over the accuracy/telemetry
 * artifacts the bench harness and `gpupm audit` emit, so ctest and
 * scripts/reproduce_all.sh can fail a build on an accuracy or runtime
 * regression without a Python or jq dependency.
 *
 *   gpupm_bench_check validate <BENCH_*.json>...
 *       Structurally validate bench telemetry files (version, name,
 *       provenance, finite non-negative wall-clock and stats).
 *
 *   gpupm_bench_check bench <run.json> <golden.json>
 *                     [--stat-tol=<pp>] [--time-factor=<x>]
 *       Diff one bench telemetry run against a golden: every stat
 *       whose key contains "_pct" (an error metric, lower is better)
 *       may not exceed the golden by more than --stat-tol
 *       (default 2.0 percentage points), and the run's wall-clock may
 *       not exceed --time-factor (default 2.0) times the golden's.
 *
 *   gpupm_bench_check scoreboard <run> <golden>
 *                     [--mae-tol=<pp>] [--app-tol=<pp>]
 *                     [--max-tol=<pp>]
 *       Diff two accuracy scoreboards (v2 envelope or raw JSON)
 *       through obs::compareScoreboards: overall MAE, per-app MAE and
 *       max error are gated by the tolerances (defaults 0.5 / 2.0 /
 *       5.0 percentage points).
 *
 *   gpupm_bench_check profile <run.json> <golden.json>
 *                     [--share-tol=<pp>] [--min-attributed=<pct>]
 *       Gate the `cpu` attribution block (sampling-profiler summary)
 *       of a bench telemetry run: span attribution must reach
 *       --min-attributed (default 90%), and no span category's CPU
 *       share may exceed the golden's by more than --share-tol
 *       (default 10 percentage points) — the per-phase CPU budget a
 *       hot-path regression trips even when wall-clock noise hides it.
 *
 * Exit status: 0 pass, 1 regression or invalid artifact, 2 usage,
 * 3 missing or unreadable golden (named `missing-golden` error): a
 * gate whose golden vanished must fail loudly, never skip.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <vector>

#include "core/model_io.hh"
#include "json_lite.hh"
#include "obs/scoreboard.hh"

namespace
{

using namespace gpupm;
using jsonlite::JsonParser;
using jsonlite::JsonValue;
using jsonlite::readFile;

/** Parsed `cpu` attribution block of a bench telemetry file. */
struct CpuBlock
{
    bool present = false;
    double samples = 0.0;
    double dropped = 0.0;
    double attributed_pct = 0.0;
    /** category -> CPU share in percent of all samples. */
    std::vector<std::pair<std::string, double>> shares;
};

/** Parsed essentials of one BENCH_<name>.json telemetry file. */
struct BenchRun
{
    std::string name;
    double wall_ms = 0.0;
    std::vector<std::pair<std::string, double>> stats;
    CpuBlock cpu;
};

/**
 * Exit status for a missing/unreadable golden reference. Distinct
 * from a regression (1) so callers can tell "the gate fired" from
 * "the gate could not run at all".
 */
constexpr int kMissingGoldenExit = 3;

/**
 * Named error for an absent or unreadable golden file. The gate must
 * not silently pass (or be skipped) just because the golden is gone —
 * that is exactly when a regression would slip through.
 */
int
missingGolden(const std::string &path)
{
    std::fprintf(stderr,
                 "error [missing-golden]: golden file '%s' is "
                 "missing or unreadable; refusing to skip the gate\n",
                 path.c_str());
    return kMissingGoldenExit;
}

/** True when the path is a regular file whose bytes can be read. */
bool
readable(const std::string &path)
{
    std::error_code ec;
    if (!std::filesystem::is_regular_file(path, ec) || ec)
        return false;
    std::string text;
    return readFile(path, text);
}

/** Load + structurally validate one bench telemetry file. */
bool
loadBenchRun(const std::string &path, BenchRun &run)
{
    std::string text;
    if (!readFile(path, text)) {
        std::fprintf(stderr, "%s: cannot read file\n", path.c_str());
        return false;
    }
    JsonValue root;
    std::string err;
    if (!JsonParser(text).parse(root, err)) {
        std::fprintf(stderr, "%s: invalid JSON: %s\n", path.c_str(),
                     err.c_str());
        return false;
    }
    auto bad = [&](const std::string &what) {
        std::fprintf(stderr, "%s: %s\n", path.c_str(), what.c_str());
        return false;
    };
    if (root.kind != JsonValue::Kind::Object)
        return bad("top level is not an object");
    const JsonValue *ver = root.find("gpupm_bench_version");
    if (!ver || ver->kind != JsonValue::Kind::Number ||
        ver->number != 1.0)
        return bad("missing or unsupported gpupm_bench_version");
    const JsonValue *name = root.find("name");
    if (!name || name->kind != JsonValue::Kind::String ||
        name->str.empty())
        return bad("missing name");
    run.name = name->str;
    const JsonValue *prov = root.find("provenance");
    if (!prov || prov->kind != JsonValue::Kind::Object)
        return bad("missing provenance object");
    for (const char *key :
         {"version", "build_type", "device", "timestamp"}) {
        const JsonValue *f = prov->find(key);
        if (!f || f->kind != JsonValue::Kind::String)
            return bad(std::string("provenance missing '") + key +
                       "'");
    }
    const JsonValue *wall = root.find("wall_ms");
    if (!wall || wall->kind != JsonValue::Kind::Number ||
        !std::isfinite(wall->number) || wall->number < 0)
        return bad("missing or implausible wall_ms");
    run.wall_ms = wall->number;
    const JsonValue *phases = root.find("phases_ms");
    if (!phases || phases->kind != JsonValue::Kind::Object)
        return bad("missing phases_ms object");
    for (const auto &kv : phases->object)
        if (kv.second.kind != JsonValue::Kind::Number ||
            !std::isfinite(kv.second.number) || kv.second.number < 0)
            return bad("implausible phase duration '" + kv.first +
                       "'");
    const JsonValue *stats = root.find("stats");
    if (!stats || stats->kind != JsonValue::Kind::Object)
        return bad("missing stats object");
    for (const auto &kv : stats->object) {
        if (kv.second.kind != JsonValue::Kind::Number ||
            !std::isfinite(kv.second.number))
            return bad("non-finite stat '" + kv.first + "'");
        run.stats.emplace_back(kv.first, kv.second.number);
    }
    // The `cpu` block (sampling-profiler summary) is optional — older
    // goldens predate it — but when present it must be well-formed so
    // `profile` gates never compare garbage.
    const JsonValue *cpu = root.find("cpu");
    if (cpu) {
        if (cpu->kind != JsonValue::Kind::Object)
            return bad("cpu block is not an object");
        auto num = [&](const char *key, double &out) {
            const JsonValue *f = cpu->find(key);
            if (!f || f->kind != JsonValue::Kind::Number ||
                !std::isfinite(f->number) || f->number < 0)
                return false;
            out = f->number;
            return true;
        };
        if (!num("samples", run.cpu.samples) ||
            !num("dropped", run.cpu.dropped) ||
            !num("attributed_pct", run.cpu.attributed_pct))
            return bad("cpu block missing samples/dropped/"
                       "attributed_pct");
        const JsonValue *cats = cpu->find("categories");
        if (!cats || cats->kind != JsonValue::Kind::Object)
            return bad("cpu block missing categories object");
        for (const auto &kv : cats->object) {
            if (kv.second.kind != JsonValue::Kind::Object)
                return bad("cpu category '" + kv.first +
                           "' is not an object");
            const JsonValue *share = kv.second.find("share_pct");
            if (!share || share->kind != JsonValue::Kind::Number ||
                !std::isfinite(share->number) || share->number < 0)
                return bad("cpu category '" + kv.first +
                           "' missing share_pct");
            run.cpu.shares.emplace_back(kv.first, share->number);
        }
        run.cpu.present = true;
    }
    return true;
}

int
cmdValidate(const std::vector<std::string> &paths)
{
    int rc = 0;
    for (const auto &path : paths) {
        BenchRun run;
        if (!loadBenchRun(path, run)) {
            rc = 1;
            continue;
        }
        std::printf("%s: OK (%s, %zu stats, %.0f ms)\n", path.c_str(),
                    run.name.c_str(), run.stats.size(), run.wall_ms);
    }
    return rc;
}

/**
 * Gate a bench run against its golden. Error stats (keys containing
 * "_pct" — MAE-style, lower is better) may not exceed the golden by
 * more than stat_tol percentage points; wall-clock may not exceed
 * time_factor times the golden's. Stats present on only one side are
 * noted.
 */
int
cmdBench(const std::string &run_path, const std::string &golden_path,
         double stat_tol, double time_factor)
{
    if (!readable(golden_path))
        return missingGolden(golden_path);
    BenchRun run, golden;
    if (!loadBenchRun(run_path, run) ||
        !loadBenchRun(golden_path, golden))
        return 1;
    if (run.name != golden.name)
        std::fprintf(stderr,
                     "note: comparing different benches "
                     "('%s' vs '%s')\n",
                     run.name.c_str(), golden.name.c_str());

    int regressions = 0;
    for (const auto &gkv : golden.stats) {
        const double *rv = nullptr;
        for (const auto &rkv : run.stats)
            if (rkv.first == gkv.first)
                rv = &rkv.second;
        if (!rv) {
            std::printf("note: stat '%s' absent from run\n",
                        gkv.first.c_str());
            continue;
        }
        const bool error_stat =
                gkv.first.find("_pct") != std::string::npos;
        if (error_stat && *rv > gkv.second + stat_tol) {
            std::printf("REGRESSION: %s %.3f -> %.3f "
                        "(tolerance +%.2f pp)\n",
                        gkv.first.c_str(), gkv.second, *rv, stat_tol);
            ++regressions;
        }
    }
    if (golden.wall_ms > 0 &&
        run.wall_ms > golden.wall_ms * time_factor) {
        std::printf("REGRESSION: wall-clock %.0f ms exceeds %.1fx "
                    "the golden's %.0f ms\n",
                    run.wall_ms, time_factor, golden.wall_ms);
        ++regressions;
    }
    std::printf("%s vs %s: %s (%d regression(s))\n", run_path.c_str(),
                golden_path.c_str(), regressions ? "FAIL" : "PASS",
                regressions);
    return regressions ? 1 : 0;
}

/**
 * Gate the run's CPU-attribution block against the golden's. Two
 * checks, both on ratios so they hold across machine speeds:
 *  - span attribution (percent of samples tagged with a taxonomy
 *    category) must not fall below min_attributed — instrumentation
 *    rot (a hot path losing its span) shows up here;
 *  - each category's CPU share may not exceed the golden's by more
 *    than share_tol percentage points — a phase silently eating a
 *    bigger slice of the pie is a budget breach even when total
 *    wall-clock still fits under `bench`'s time-factor.
 * Categories that shrank or are new-but-small are fine; a new
 * category is gated against a zero baseline.
 */
int
cmdProfile(const std::string &run_path,
           const std::string &golden_path, double share_tol,
           double min_attributed)
{
    if (!readable(golden_path))
        return missingGolden(golden_path);
    BenchRun run, golden;
    if (!loadBenchRun(run_path, run) ||
        !loadBenchRun(golden_path, golden))
        return 1;
    if (!run.cpu.present) {
        std::fprintf(stderr,
                     "%s: no cpu block (bench must run with "
                     "--json-out to embed the profiler summary)\n",
                     run_path.c_str());
        return 1;
    }
    if (!golden.cpu.present) {
        std::fprintf(stderr,
                     "%s: golden has no cpu block; refresh it from a "
                     "run that embeds the profiler summary\n",
                     golden_path.c_str());
        return kMissingGoldenExit;
    }
    if (run.cpu.samples < 1) {
        std::fprintf(stderr,
                     "%s: cpu block has zero samples; profiler never "
                     "fired\n",
                     run_path.c_str());
        return 1;
    }

    int regressions = 0;
    if (run.cpu.attributed_pct < min_attributed) {
        std::printf("REGRESSION: span attribution %.2f%% below the "
                    "%.2f%% floor\n",
                    run.cpu.attributed_pct, min_attributed);
        ++regressions;
    }
    auto goldenShare = [&](const std::string &cat) {
        for (const auto &kv : golden.cpu.shares)
            if (kv.first == cat)
                return kv.second;
        return 0.0; // new category: budget starts at zero
    };
    for (const auto &rkv : run.cpu.shares) {
        const double budget = goldenShare(rkv.first) + share_tol;
        if (rkv.second > budget) {
            std::printf("REGRESSION: category '%s' CPU share %.2f%% "
                        "exceeds budget %.2f%% (golden %.2f%% + "
                        "%.2f pp)\n",
                        rkv.first.c_str(), rkv.second, budget,
                        goldenShare(rkv.first), share_tol);
            ++regressions;
        }
    }
    for (const auto &gkv : golden.cpu.shares) {
        bool found = false;
        for (const auto &rkv : run.cpu.shares)
            if (rkv.first == gkv.first)
                found = true;
        if (!found)
            std::printf("note: category '%s' absent from run\n",
                        gkv.first.c_str());
    }
    std::printf("%s vs %s: %s (%.0f samples, %.2f%% attributed, "
                "%d regression(s))\n",
                run_path.c_str(), golden_path.c_str(),
                regressions ? "FAIL" : "PASS", run.cpu.samples,
                run.cpu.attributed_pct, regressions);
    return regressions ? 1 : 0;
}

int
cmdScoreboard(const std::string &run_path,
              const std::string &golden_path,
              const obs::ScoreboardTolerances &tol)
{
    if (!readable(golden_path))
        return missingGolden(golden_path);
    auto run = model::tryLoadScoreboard(run_path);
    if (!run.ok()) {
        std::fprintf(stderr, "%s: load failed [%s]: %s\n",
                     run_path.c_str(),
                     std::string(model::ioErrcName(run.error().code))
                             .c_str(),
                     run.error().message.c_str());
        return 1;
    }
    auto golden = model::tryLoadScoreboard(golden_path);
    if (!golden.ok()) {
        std::fprintf(stderr, "%s: load failed [%s]: %s\n",
                     golden_path.c_str(),
                     std::string(
                             model::ioErrcName(golden.error().code))
                             .c_str(),
                     golden.error().message.c_str());
        return 1;
    }
    const auto diff = obs::compareScoreboards(run.value(),
                                              golden.value(), tol);
    std::printf("%s", diff.summary().c_str());
    return diff.ok ? 0 : 1;
}

int
usage()
{
    std::fprintf(
            stderr,
            "usage:\n"
            "  gpupm_bench_check validate <BENCH.json>...\n"
            "  gpupm_bench_check bench <run.json> <golden.json> "
            "[--stat-tol=<pp>] [--time-factor=<x>]\n"
            "  gpupm_bench_check scoreboard <run> <golden> "
            "[--mae-tol=<pp>] [--app-tol=<pp>] [--max-tol=<pp>]\n"
            "  gpupm_bench_check profile <run.json> <golden.json> "
            "[--share-tol=<pp>] [--min-attributed=<pct>]\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> positional;
    double stat_tol = 2.0, time_factor = 2.0;
    double share_tol = 10.0, min_attributed = 90.0;
    obs::ScoreboardTolerances tol;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional.push_back(arg);
            continue;
        }
        const auto eq = arg.find('=');
        const std::string key = arg.substr(0, eq);
        const double val = eq == std::string::npos
                                   ? 0.0
                                   : std::atof(arg.c_str() + eq + 1);
        if (key == "--stat-tol")
            stat_tol = val;
        else if (key == "--time-factor")
            time_factor = val;
        else if (key == "--mae-tol")
            tol.overall_mae_pp = val;
        else if (key == "--app-tol")
            tol.per_app_mae_pp = val;
        else if (key == "--max-tol")
            tol.max_err_pp = val;
        else if (key == "--share-tol")
            share_tol = val;
        else if (key == "--min-attributed")
            min_attributed = val;
        else {
            std::fprintf(stderr, "unknown flag '%s'\n", key.c_str());
            return usage();
        }
    }
    if (positional.size() < 2)
        return usage();
    const std::string cmd = positional.front();
    if (cmd == "validate")
        return cmdValidate(
                {positional.begin() + 1, positional.end()});
    if (cmd == "bench" && positional.size() == 3)
        return cmdBench(positional[1], positional[2], stat_tol,
                        time_factor);
    if (cmd == "scoreboard" && positional.size() == 3)
        return cmdScoreboard(positional[1], positional[2], tol);
    if (cmd == "profile" && positional.size() == 3)
        return cmdProfile(positional[1], positional[2], share_tol,
                          min_attributed);
    return usage();
}
