/**
 * @file
 * gpupm command-line tool.
 *
 * Drives the pipeline stages the way a host-side deployment would:
 *
 *   gpupm campaign  <device> <out.campaign>   run the training campaign
 *   gpupm fit       <in.campaign> <out.model> fit the DVFS-aware model
 *   gpupm train     <device> <out.model>      campaign + fit in one go
 *   gpupm info      <in.model>                summarize a fitted model
 *   gpupm predict   <in.model> <app> [fc fm]  predict an application
 *   gpupm sweep     <in.model> <app>          full V-F sweep table
 *   gpupm devices                             list supported devices
 *   gpupm export-cuda <out.cu>                emit the suite as CUDA
 *   gpupm validate  <file>...                 check artifact integrity
 *   gpupm metrics   [--json]                  dump the metric catalog
 *   gpupm audit     <model|device>            replay the validation set
 *                                             and score prediction error
 *
 * `audit` reproduces the paper's accuracy evaluation (Table III,
 * Figs. 7-8) as an operational artifact: it measures every validation
 * application over the device's full V-F grid, predicts each cell with
 * the model and the Sec. VI baselines, and aggregates the residuals
 * into a scoreboard (overall / per-app / per-config error). Output is
 * human tables by default, --json for the summary payload, --csv for
 * raw residuals, and --scoreboard-out=<file> persists the full
 * scoreboard for tools/gpupm_bench_check to gate against a golden.
 *
 * Observability flags (every command):
 *   --trace-out=<file>        write a Chrome trace-event JSON of the
 *                             run (open in chrome://tracing/Perfetto)
 *   --metrics-out=<file>      write Prometheus text metrics on exit
 *   --convergence-out=<file>  write a per-iteration estimator
 *                             convergence CSV (fit/train)
 *   --verbose / --quiet       log level (also GPUPM_LOG=debug|warn|..)
 *
 * `fit` also accepts a device name in place of a campaign file: it
 * then runs the bundled synthetic resilient campaign in-process and
 * fits from it, exercising the whole measure→fit→save pipeline in one
 * traced command.
 *
 * File-trust flags (validate, and every command that loads a file):
 *   --strict            reject legacy (pre-envelope) files and run
 *                       physical-plausibility validation on load
 *   --allow-legacy      with --strict, still accept legacy files
 *   --json              machine-readable `validate` output
 *
 * campaign/train accept resilience flags:
 *   --faults=<rate>     inject faults at the given per-call rate
 *   --fault-seed=<n>    seed of the fault-injection stream
 *   --retries=<n>       retry budget per measurement call
 *   --resume=<file>     checkpoint campaign progress to <file> and
 *                       resume from it when it already exists
 *
 * Any of these selects the resilient campaign runner (typed errors,
 * retry/backoff, MAD outlier rejection, quarantine) and prints its
 * CampaignReport; without them the legacy fail-fast path runs.
 *
 * <device> is one of: titanxp, titanx, k40c. <app> is a Table III
 * abbreviation (e.g. BLCKSC) — the tool profiles it on a fresh
 * simulated board at the reference configuration before predicting.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <map>
#include <optional>
#include <sstream>
#include <thread>

#include <string>
#include <vector>

#include "baselines/baselines.hh"
#include "common/logging.hh"
#include "common/numio.hh"
#include "common/provenance.hh"
#include "common/table.hh"
#include "core/campaign.hh"
#include "core/faults.hh"
#include "core/metrics.hh"
#include "core/model_io.hh"
#include "core/predictor.hh"
#include "core/validate.hh"
#include "fleet/supervisor.hh"
#include "json_lite.hh"
#include "obs/alerts.hh"
#include "obs/convergence.hh"
#include "obs/flight_recorder.hh"
#include "obs/http_server.hh"
#include "obs/metrics.hh"
#include "obs/profiler.hh"
#include "obs/sampler.hh"
#include "obs/standard.hh"
#include "obs/trace.hh"
#include "obs/trace_store.hh"
#include "obs/tsdb.hh"
#include "ubench/cuda_source.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace gpupm;

// Defined with the monitor helpers below; cmdFleet reuses them for
// the fleet-serve /api/query and /api/traces endpoints.
obs::HttpServer::Handler makeQueryHandler(const obs::Tsdb &tsdb);
obs::HttpServer::Handler
makeTracesHandler(const obs::TraceStore &store);

/** Resilience-related flags shared by campaign/train. */
struct CliFlags
{
    bool resilient = false;      ///< any flag below was given
    double fault_rate = 0.0;
    std::uint64_t fault_seed = 2026;
    int retries = -1;            ///< -1 = policy default
    std::string checkpoint;
    bool strict = false;         ///< reject legacy files, validate
    bool allow_legacy = false;   ///< soften --strict for old files
    bool json = false;           ///< machine-readable output
    bool csv = false;            ///< per-sample CSV (audit)
    std::string scoreboard_out;  ///< audit scoreboard file path
    std::string trace_out;       ///< Chrome trace-event JSON path
    std::string metrics_out;     ///< Prometheus text dump path
    std::string convergence_out; ///< estimator convergence CSV path
    std::string profile_out;     ///< collapsed-stack CPU profile path
    bool verbose = false;        ///< log level: debug
    bool quiet = false;          ///< log level: warnings and errors
    bool show_version = false;   ///< --version anywhere on the line

    // `monitor` flags.
    int port = 9090;          ///< HTTP port; 0 = ephemeral
    int period_ms = 250;      ///< sampling period
    double duration_s = 0.0;  ///< stop after this long; 0 = forever
    std::string events_out;   ///< NDJSON event log path
    std::string port_file;    ///< write the bound port here (tests)

    // `monitor`/`alerts` history + alerting flags.
    long events_max_bytes = 0;    ///< rotate event log past this; 0=off
    int events_max_files = 1;     ///< rotated generations kept (.1..N)
    bool healthz_degraded_503 = false; ///< firing alerts -> HTTP 503
    std::vector<std::string> alert_specs; ///< --alert rule specs
    bool no_drift_rule = false;   ///< drop the built-in drift rule
    // The monitor schedule visits the V-F corners (slowest/ref/
    // fastest), where model error runs above the full-grid Fig. 7
    // MAE, so the default tolerance leaves the live baseline
    // (~8.5/8.7/15 pct for titanxp/titanx/k40c) comfortably inside
    // the envelope+tolerance threshold.
    double drift_tolerance = 5.0; ///< pp over the fig7 envelope
    double drift_window_s = 30.0; ///< drift rule window
    double drift_for_s = 10.0;    ///< pending -> firing
    double drift_cooldown_s = 30.0; ///< clear -> resolved
    std::string drift_golden;     ///< fig7 golden refreshing envelope
    long rolling_window = 64;     ///< rolling-MAE residual window
    std::string inject_drift;     ///< from:to:scale fault injection
    long alert_ticks = 120;       ///< `alerts` one-shot tick count

    // `fleet` flags.
    int shards = 4;           ///< shard count
    int threads = 0;          ///< pool workers; 0 = auto
    double chaos_kill = 0.0;  ///< shard kill probability per attempt
    double chaos_stall = 0.0; ///< shard stall probability per attempt
    double chaos_poison = 0.0; ///< poisoned-device fraction
    double deadline_s = 120.0; ///< watchdog deadline per attempt
    std::string fleet_out;    ///< merged fleet report file path
};

/**
 * Turn the global tracer into the store-backed assembly pipeline a
 * long-lived daemon wants: deterministic ids seeded from the fault
 * seed, completed traces offered to `store`, and — unless --trace-out
 * asked for the full Chrome dump — no unbounded in-memory event list.
 * Returns whether this call enabled the tracer (it must not re-enable
 * when --trace-out already did: enable() clears the buffer and would
 * corrupt the straddling `cli.<cmd>` root span).
 */
bool
attachTraceStore(obs::TraceStore &store, const CliFlags &flags)
{
    auto &tracer = obs::Tracer::global();
    tracer.seedIds(flags.fault_seed);
    tracer.attachStore(&store);
    if (flags.trace_out.empty())
        tracer.setRetainEvents(false);
    if (!tracer.enabled()) {
        tracer.enable();
        return true;
    }
    return false;
}

/** Undo attachTraceStore before `store` goes out of scope. */
void
detachTraceStore(bool disable_tracer)
{
    auto &tracer = obs::Tracer::global();
    if (disable_tracer)
        tracer.disable();
    tracer.attachStore(nullptr);
    tracer.setRetainEvents(true);
}

/**
 * Scoped trace-store attachment: the store plus the global-tracer
 * wiring, detached in the destructor so no early return can leave the
 * tracer pointing at a dead store.
 */
struct TraceStoreAttachment
{
    obs::TraceStore store;
    bool enabled_here;

    explicit TraceStoreAttachment(
            const CliFlags &flags,
            obs::TraceStoreOptions opts = obs::TraceStoreOptions{})
        : store(opts), enabled_here(attachTraceStore(store, flags))
    {
    }
    ~TraceStoreAttachment() { detachTraceStore(enabled_here); }

    TraceStoreAttachment(const TraceStoreAttachment &) = delete;
    TraceStoreAttachment &
    operator=(const TraceStoreAttachment &) = delete;
};

/** Loader policy implied by the file-trust flags. */
model::LoadOptions
loadOptionsOf(const CliFlags &flags)
{
    model::LoadOptions opts;
    opts.allow_legacy = !flags.strict || flags.allow_legacy;
    opts.validate = flags.strict;
    return opts;
}

/**
 * Parse a human duration: "2s", "500ms", "1m", or a bare number of
 * seconds. Negative on malformed input.
 */
double
parseDuration(const std::string &text)
{
    char *end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || value < 0.0)
        return -1.0;
    const std::string unit(end);
    if (unit.empty() || unit == "s")
        return value;
    if (unit == "ms")
        return value * 1e-3;
    if (unit == "m")
        return value * 60.0;
    return -1.0;
}

/** True when the flag consumes a value (`--key=v` or `--key v`). */
bool
flagTakesValue(const std::string &key)
{
    // `--faults` is absent on purpose: it accepts an optional rate
    // (`--faults=0.08`) but also works bare as a chaos shorthand.
    static const char *value_flags[] = {
            "--fault-seed",     "--retries",
            "--resume",         "--checkpoint",  "--scoreboard-out",
            "--trace-out",      "--metrics-out", "--convergence-out",
            "--profile-out",
            "--port",           "--period-ms",   "--duration",
            "--events-out",     "--port-file",   "--shards",
            "--threads",        "--chaos-kill-rate",
            "--chaos-stall-rate", "--chaos-poison", "--deadline",
            "--fleet-out",      "--events-max-bytes",
            "--events-max-files", "--alert",
            "--drift-tolerance", "--drift-window", "--drift-for",
            "--drift-cooldown", "--drift-golden", "--rolling-window",
            "--inject-drift",   "--ticks",
    };
    for (const char *f : value_flags)
        if (key == f)
            return true;
    return false;
}

/**
 * Strip `--key=value` / `--key value` flags from the argument list,
 * returning the positional arguments. Flags may appear anywhere,
 * including before the subcommand or positionals. An unknown flag (or
 * a value flag missing its value) is reported by name on stderr and
 * the sentinel "--bad-flag" is returned as the only positional; the
 * caller exits 2 without the generic usage text, so the message names
 * the actual problem.
 */
std::vector<std::string>
parseFlags(int argc, char **argv, CliFlags &flags)
{
    const auto bad = [](const char *what, const std::string &key) {
        std::fprintf(stderr, "gpupm: %s '%s' (run 'gpupm' with no "
                             "arguments for usage)\n",
                     what, key.c_str());
        return std::vector<std::string>{"--bad-flag"};
    };

    std::vector<std::string> positional;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional.push_back(arg);
            continue;
        }
        const auto eq = arg.find('=');
        const std::string key = arg.substr(0, eq);
        std::string val =
                eq == std::string::npos ? "" : arg.substr(eq + 1);
        if (eq == std::string::npos && flagTakesValue(key)) {
            if (i + 1 >= argc)
                return bad("flag is missing its value", key);
            val = argv[++i];
        }
        if (key == "--faults") {
            // Bare --faults means "inject at a sensible demo rate".
            flags.fault_rate =
                    val.empty() ? 0.1 : std::atof(val.c_str());
            flags.resilient = true;
        } else if (key == "--fault-seed") {
            flags.fault_seed = std::strtoull(val.c_str(), nullptr, 10);
            flags.resilient = true;
        } else if (key == "--retries") {
            flags.retries = std::atoi(val.c_str());
            flags.resilient = true;
        } else if (key == "--resume" || key == "--checkpoint") {
            flags.checkpoint = val;
            flags.resilient = true;
        } else if (key == "--strict") {
            flags.strict = true;
        } else if (key == "--allow-legacy") {
            flags.allow_legacy = true;
        } else if (key == "--json") {
            flags.json = true;
        } else if (key == "--csv") {
            flags.csv = true;
        } else if (key == "--scoreboard-out") {
            flags.scoreboard_out = val;
        } else if (key == "--trace-out") {
            flags.trace_out = val;
        } else if (key == "--metrics-out") {
            flags.metrics_out = val;
        } else if (key == "--convergence-out") {
            flags.convergence_out = val;
        } else if (key == "--profile-out") {
            flags.profile_out = val;
        } else if (key == "--verbose") {
            flags.verbose = true;
        } else if (key == "--quiet") {
            flags.quiet = true;
        } else if (key == "--version") {
            flags.show_version = true;
        } else if (key == "--port") {
            flags.port = std::atoi(val.c_str());
        } else if (key == "--period-ms") {
            flags.period_ms = std::atoi(val.c_str());
        } else if (key == "--duration") {
            const double d = parseDuration(val);
            if (d < 0.0)
                return bad("bad duration for flag", key);
            flags.duration_s = d;
        } else if (key == "--events-out") {
            flags.events_out = val;
        } else if (key == "--port-file") {
            flags.port_file = val;
        } else if (key == "--shards") {
            flags.shards = std::atoi(val.c_str());
        } else if (key == "--threads") {
            flags.threads = std::atoi(val.c_str());
        } else if (key == "--chaos-kill-rate") {
            flags.chaos_kill = std::atof(val.c_str());
        } else if (key == "--chaos-stall-rate") {
            flags.chaos_stall = std::atof(val.c_str());
        } else if (key == "--chaos-poison") {
            flags.chaos_poison = std::atof(val.c_str());
        } else if (key == "--deadline") {
            const double d = parseDuration(val);
            if (d < 0.0)
                return bad("bad duration for flag", key);
            flags.deadline_s = d;
        } else if (key == "--fleet-out") {
            flags.fleet_out = val;
        } else if (key == "--events-max-bytes") {
            flags.events_max_bytes = std::atol(val.c_str());
        } else if (key == "--events-max-files") {
            flags.events_max_files = std::atoi(val.c_str());
            if (flags.events_max_files < 1)
                return bad("bad value for flag", key);
        } else if (key == "--healthz-degraded-503") {
            flags.healthz_degraded_503 = true;
        } else if (key == "--alert") {
            flags.alert_specs.push_back(val);
        } else if (key == "--no-drift-rule") {
            flags.no_drift_rule = true;
        } else if (key == "--drift-tolerance") {
            flags.drift_tolerance = std::atof(val.c_str());
        } else if (key == "--drift-window") {
            const double d = parseDuration(val);
            if (d < 0.0)
                return bad("bad duration for flag", key);
            flags.drift_window_s = d;
        } else if (key == "--drift-for") {
            const double d = parseDuration(val);
            if (d < 0.0)
                return bad("bad duration for flag", key);
            flags.drift_for_s = d;
        } else if (key == "--drift-cooldown") {
            const double d = parseDuration(val);
            if (d < 0.0)
                return bad("bad duration for flag", key);
            flags.drift_cooldown_s = d;
        } else if (key == "--drift-golden") {
            flags.drift_golden = val;
        } else if (key == "--rolling-window") {
            flags.rolling_window = std::atol(val.c_str());
            if (flags.rolling_window <= 0)
                return bad("bad value for flag", key);
        } else if (key == "--inject-drift") {
            flags.inject_drift = val;
        } else if (key == "--ticks") {
            flags.alert_ticks = std::atol(val.c_str());
            if (flags.alert_ticks <= 0)
                return bad("bad value for flag", key);
        } else {
            return bad("unknown flag", key);
        }
    }
    return positional;
}

std::optional<gpu::DeviceKind>
parseDevice(const std::string &name)
{
    if (name == "titanxp")
        return gpu::DeviceKind::TitanXp;
    if (name == "titanx")
        return gpu::DeviceKind::GtxTitanX;
    if (name == "k40c")
        return gpu::DeviceKind::TeslaK40c;
    return std::nullopt;
}

/** CLI token of a device kind (inverse of parseDevice). */
const char *
deviceToken(gpu::DeviceKind kind)
{
    switch (kind) {
      case gpu::DeviceKind::TitanXp: return "titanxp";
      case gpu::DeviceKind::GtxTitanX: return "titanx";
      case gpu::DeviceKind::TeslaK40c: return "k40c";
    }
    return "unknown";
}

std::optional<workloads::Workload>
findApp(const std::string &name)
{
    for (const auto &w : workloads::fullValidationSet())
        if (w.name == name)
            return w;
    return std::nullopt;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  gpupm devices\n"
                 "  gpupm campaign <titanxp|titanx|k40c> <out>\n"
                 "  gpupm fit <campaign-file|device> <out-model>\n"
                 "  gpupm train <titanxp|titanx|k40c> <out-model>\n"
                 "      campaign/train flags: --faults=<rate> "
                 "--fault-seed=<n> --retries=<n> --resume=<file>\n"
                 "  gpupm metrics [--json]\n"
                 "  gpupm info <model-file>\n"
                 "  gpupm predict <model-file> <APP> [fcore fmem]\n"
                 "  gpupm sweep <model-file> <APP>\n"
                 "  gpupm export-cuda <out.cu>\n"
                 "  gpupm audit <model-file|device> [--json|--csv] "
                 "[--scoreboard-out=<file>]\n"
                 "  gpupm monitor <titanxp|titanx|k40c> "
                 "[--port=<n>] [--period-ms=<n>] "
                 "[--duration=<2s|500ms>] [--events-out=<file>]\n"
                 "      [--events-max-bytes=<n>] "
                 "[--events-max-files=<n>] "
                 "[--rolling-window=<n>] [--healthz-degraded-503]\n"
                 "  gpupm alerts <titanxp|titanx|k40c> [--json] "
                 "[--ticks=<n>] [--period-ms=<n>] "
                 "[--rolling-window=<n>]\n"
                 "  gpupm traces <titanxp|titanx|k40c> [--json] "
                 "[--ticks=<n>] [--period-ms=<n>] "
                 "[--inject-drift=FROM:TO:SCALE]\n"
                 "      (offline per-tick trace replay; deterministic "
                 "output, error traces always retained)\n"
                 "      alerting flags (monitor/alerts): "
                 "--alert=NAME:KIND:SERIES:OP:THRESH[:WIN[:FOR[:COOL]]] "
                 "--no-drift-rule\n"
                 "      --drift-tolerance=<pp> --drift-window=<dur> "
                 "--drift-for=<dur> --drift-cooldown=<dur> "
                 "--drift-golden=<file>\n"
                 "      --inject-drift=FROM:TO:SCALE   "
                 "(scale measured power for ticks in [FROM,TO))\n"
                 "  gpupm fleet <num-devices> [--shards=<k>] "
                 "[--threads=<n>] [--resume=<dir>] "
                 "[--deadline=<dur>]\n"
                 "      [--chaos-kill-rate=<p>] "
                 "[--chaos-stall-rate=<p>] [--chaos-poison=<frac>] "
                 "[--faults=<rate>]\n"
                 "      [--fleet-out=<file>] [--json] [--port=<n> "
                 "--duration=<dur>]   (serve /metrics and /fleet)\n"
                 "  gpupm version [--json]   (also: gpupm --version)\n"
                 "  gpupm validate [--json] <file>...\n"
                 "      file-trust flags (all loading commands): "
                 "--strict --allow-legacy\n"
                 "      observability flags (all commands): "
                 "--trace-out=<file> --metrics-out=<file> "
                 "--convergence-out=<file> --profile-out=<file> "
                 "--verbose --quiet\n");
    return 2;
}

model::TrainingData
runCampaign(gpu::DeviceKind kind)
{
    sim::PhysicalGpu board(kind);
    std::fprintf(stderr, "running campaign on %s...\n",
                 board.descriptor().name.c_str());
    return model::runTrainingCampaign(board, ubench::buildSuite());
}

/**
 * Run the fault-tolerant campaign path selected by any resilience
 * flag. Prints the CampaignReport; exits non-zero when a max_cells /
 * checkpoint split stopped the run before the grid was complete.
 */
std::optional<model::TrainingData>
runResilientCampaign(gpu::DeviceKind kind, const CliFlags &flags)
{
    sim::PhysicalGpu board(kind);
    model::SimulatedBackend backend(board);
    std::optional<model::FaultInjectingBackend> faulty;
    model::MeasurementBackend *target = &backend;
    if (flags.fault_rate > 0.0) {
        faulty.emplace(backend,
                       model::FaultSpec::uniform(flags.fault_rate,
                                                 flags.fault_seed));
        target = &*faulty;
    }

    model::ResilientCampaignOptions opts;
    if (flags.retries >= 0)
        opts.resilience.max_retries = flags.retries;
    opts.checkpoint_path = flags.checkpoint;

    std::fprintf(stderr, "running resilient campaign on %s...\n",
                 board.descriptor().name.c_str());
    auto result = model::runResilientTrainingCampaign(
            *target, ubench::buildSuite(), opts);
    std::fprintf(stderr, "%s", result.report.summary().c_str());
    if (flags.json)
        std::printf("%s\n", result.report.toJson().c_str());
    if (!result.complete) {
        std::fprintf(stderr,
                     "campaign interrupted; progress saved to %s\n",
                     flags.checkpoint.c_str());
        return std::nullopt;
    }
    return std::move(result.data);
}

/** Print a typed load failure and return the CLI exit code. */
int
reportLoadFailure(const model::IoStatus &status)
{
    std::fprintf(stderr, "error [%s]: %s\n",
                 std::string(model::ioErrcName(status.code)).c_str(),
                 status.message.c_str());
    return 1;
}

// -- validate --------------------------------------------------------

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default: out += c;
        }
    }
    return out;
}

/** Outcome of checking one file: either a load failure or a report. */
struct FileCheck
{
    bool loaded = false;
    std::string kind;
    model::IoStatus load_error;
    model::ValidationReport report;
};

FileCheck
checkFile(const std::string &path, const model::LoadOptions &opts)
{
    FileCheck fc;
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        fc.load_error = {model::IoErrc::IoError,
                         "cannot open '" + path + "' for reading"};
        return fc;
    }
    std::ostringstream os;
    os << in.rdbuf();
    const std::string text = os.str();

    const auto kind = model::detectFileKind(text);
    if (!kind.ok()) {
        fc.load_error = kind.error();
        return fc;
    }
    fc.kind = std::string(model::fileKindName(kind.value()));
    switch (kind.value()) {
      case model::FileKind::Model: {
        auto res = model::tryParseModel(text, opts);
        if (!res.ok()) {
            fc.load_error = res.error();
            return fc;
        }
        fc.loaded = true;
        fc.report = model::validateModel(res.value());
        break;
      }
      case model::FileKind::Campaign: {
        auto res = model::tryParseTrainingData(text, opts);
        if (!res.ok()) {
            fc.load_error = res.error();
            return fc;
        }
        fc.loaded = true;
        fc.report = model::validateTrainingData(res.value());
        break;
      }
      case model::FileKind::Checkpoint: {
        auto res = model::tryParseCampaignCheckpoint(text, opts);
        if (!res.ok()) {
            fc.load_error = res.error();
            return fc;
        }
        fc.loaded = true;
        fc.report = model::validateCheckpoint(res.value());
        break;
      }
      case model::FileKind::Scoreboard: {
        auto res = model::tryParseScoreboard(text, opts);
        if (!res.ok()) {
            fc.load_error = res.error();
            return fc;
        }
        fc.loaded = true;
        fc.report = model::validateScoreboard(res.value());
        break;
      }
      case model::FileKind::FleetShard:
      case model::FileKind::Fleet: {
        // Fleet artifacts are envelope-checked here (magic, kind,
        // size, CRC32); the payload can only be interpreted against
        // its fleet configuration, which the supervisor does on
        // resume via the embedded fingerprint.
        auto payload = model::tryUnwrapEnvelope(text, kind.value());
        if (!payload.ok()) {
            fc.load_error = payload.error();
            return fc;
        }
        fc.loaded = true;
        break;
      }
    }
    return fc;
}

int
cmdValidate(const std::vector<std::string> &paths,
            const CliFlags &flags)
{
    // Deliberately no `validate` in the LoadOptions: the checks run
    // explicitly below so the full report is printed, not just the
    // first-error summary a strict load would produce.
    model::LoadOptions opts;
    opts.allow_legacy = !flags.strict || flags.allow_legacy;

    int rc = 0;
    if (flags.json)
        std::printf("[");
    for (std::size_t i = 0; i < paths.size(); ++i) {
        const FileCheck fc = checkFile(paths[i], opts);
        if (!fc.loaded || !fc.report.ok())
            rc = 1;
        if (flags.json) {
            std::string line = "{\"file\":\"" +
                               jsonEscape(paths[i]) + "\"";
            if (!fc.kind.empty())
                line += ",\"kind\":\"" + fc.kind + "\"";
            if (fc.loaded) {
                std::string rep = fc.report.toJson();
                while (!rep.empty() &&
                       (rep.back() == '\n' || rep.back() == '\r'))
                    rep.pop_back();
                line += ",\"loaded\":true,\"report\":" + rep;
            } else {
                line += ",\"loaded\":false,\"error\":{\"code\":\"";
                line += std::string(
                        model::ioErrcName(fc.load_error.code));
                line += "\",\"message\":\"" +
                        jsonEscape(fc.load_error.message) + "\"}";
            }
            line += "}";
            std::printf("%s%s", i ? "," : "", line.c_str());
        } else if (!fc.loaded) {
            std::printf("%s: load failed [%s]: %s\n",
                        paths[i].c_str(),
                        std::string(model::ioErrcName(
                                fc.load_error.code)).c_str(),
                        fc.load_error.message.c_str());
        } else {
            std::printf("%s: %s", paths[i].c_str(),
                        fc.report.summary().c_str());
        }
    }
    if (flags.json)
        std::printf("]\n");
    return rc;
}

int
cmdInfo(const std::string &path, const CliFlags &flags)
{
    auto res = model::tryLoadModel(path, loadOptionsOf(flags));
    if (!res.ok())
        return reportLoadFailure(res.error());
    const auto m = res.value();
    const auto &desc = gpu::DeviceDescriptor::get(m.deviceKind());
    std::printf("device: %s\n", desc.name.c_str());
    std::printf("reference: (%d, %d) MHz\n", m.reference().core_mhz,
                m.reference().mem_mhz);
    const auto &p = m.params();
    std::printf("beta: %.2f %.2f %.2f %.2f (W | W/GHz)\n", p.beta0,
                p.beta1, p.beta2, p.beta3);
    std::printf("omega (W/GHz):");
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
        std::printf(" %s=%.1f",
                    std::string(gpu::componentName(
                            static_cast<gpu::Component>(i))).c_str(),
                    p.omega[i]);
    std::printf("\nfitted configurations: %zu\n",
                m.voltageTable().size());
    std::printf("core voltage at fmem=%d: %.3f (min clock) .. %.3f "
                "(max clock)\n",
                m.reference().mem_mhz,
                m.voltages({desc.minCoreMhz(), m.reference().mem_mhz})
                        .core,
                m.voltages({desc.maxCoreMhz(), m.reference().mem_mhz})
                        .core);
    return 0;
}

gpu::ComponentArray
profileApp(const model::DvfsPowerModel &m,
           const workloads::Workload &app)
{
    sim::PhysicalGpu board(m.deviceKind());
    cupti::Profiler profiler(board, 11);
    const auto rm = profiler.profile(app.demand, m.reference());
    return model::utilizationsFromMetrics(rm, board.descriptor(),
                                          m.reference());
}

int
cmdPredict(const std::string &path, const std::string &app_name,
           std::optional<gpu::FreqConfig> cfg, const CliFlags &flags)
{
    auto res = model::tryLoadModel(path, loadOptionsOf(flags));
    if (!res.ok())
        return reportLoadFailure(res.error());
    const auto m = res.value();
    const auto app = findApp(app_name);
    if (!app) {
        std::fprintf(stderr, "unknown application '%s'\n",
                     app_name.c_str());
        return 2;
    }
    const auto util = profileApp(m, *app);
    const gpu::FreqConfig target = cfg.value_or(m.reference());
    const auto p = m.hasVoltages(target)
                           ? m.predict(util, target)
                           : m.predictInterpolated(util, target);
    std::printf("%s @ (%d, %d) MHz: %.1f W total (constant %.1f W)\n",
                app->name.c_str(), target.core_mhz, target.mem_mhz,
                p.total_w, p.constant_w);
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
        std::printf("  %-7s %.1f W\n",
                    std::string(gpu::componentName(
                            static_cast<gpu::Component>(i))).c_str(),
                    p.component_w[i]);
    return 0;
}

int
cmdSweep(const std::string &path, const std::string &app_name,
         const CliFlags &flags)
{
    auto res = model::tryLoadModel(path, loadOptionsOf(flags));
    if (!res.ok())
        return reportLoadFailure(res.error());
    const auto m = res.value();
    const auto app = findApp(app_name);
    if (!app) {
        std::fprintf(stderr, "unknown application '%s'\n",
                     app_name.c_str());
        return 2;
    }
    const auto util = profileApp(m, *app);
    model::Predictor pred(m);
    TextTable t({"fcore", "fmem", "predicted W"});
    t.setTitle(app->name + " across the fitted V-F grid");
    for (const auto &pt : pred.sweep(util))
        t.addRow({std::to_string(pt.cfg.core_mhz),
                  std::to_string(pt.cfg.mem_mhz),
                  TextTable::num(pt.prediction.total_w, 1)});
    t.print(std::cout);
    return 0;
}

/**
 * Fit a model from campaign data through the typed estimator path and
 * persist it: numerical failures print their error code and iteration
 * trace instead of aborting. With --convergence-out, a per-iteration
 * telemetry CSV is written whether or not the fit succeeded.
 */
int
fitAndSave(const model::TrainingData &data, const std::string &out,
           const CliFlags &flags)
{
    obs::ConvergenceRecorder recorder;
    model::EstimatorOptions eopts;
    if (!flags.convergence_out.empty())
        eopts.observer = &recorder;
    auto res = model::ModelEstimator(eopts).tryEstimate(data);
    if (!flags.convergence_out.empty()) {
        if (recorder.writeCsv(flags.convergence_out))
            std::fprintf(stderr, "convergence CSV written to %s\n",
                         flags.convergence_out.c_str());
        else
            std::fprintf(stderr, "cannot write %s\n",
                         flags.convergence_out.c_str());
    }
    if (!res.ok()) {
        const auto &fe = res.error();
        std::fprintf(stderr, "fit failed [%s]: %s\n",
                     std::string(
                             model::fitErrcName(fe.code)).c_str(),
                     fe.message.c_str());
        for (std::size_t i = 0; i < fe.sse_history.size(); ++i)
            std::fprintf(stderr, "  iteration %zu: SSE %.6g\n",
                         i + 1, fe.sse_history[i]);
        return 1;
    }
    const auto &fit = res.value();
    std::fprintf(stderr,
                 "fit: %d iterations, RMSE %.2f W (design rank %zu, "
                 "condition %.1e)\n",
                 fit.iterations, fit.rmse_w, fit.design_rank,
                 fit.condition_number);
    model::saveModel(fit.model, out);
    std::fprintf(stderr, "model written to %s\n", out.c_str());
    return 0;
}

/** True when `path` names a readable file. */
bool
fileExists(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    return static_cast<bool>(in);
}

/**
 * `gpupm audit <model-file|device>`: replay the full validation set
 * over the device's V-F grid and score the model's prediction error —
 * the paper's Table III / Figs. 7-8 evaluation as a repeatable
 * operational check. With a device name, the bundled campaign is run
 * and the model fitted in-process (the exact bench/fig7_validation
 * procedure, 5 power repetitions); with a model file, the stored model
 * is audited on its own device. The campaign additionally trains the
 * Sec. VI baselines so the scoreboard carries their deltas.
 */
int
cmdAudit(const std::string &target, const CliFlags &flags)
{
    // Same repetition count as the Fig. 7 reproduction, so the audit
    // MAE is comparable against bench_csv/fig7_summary.csv.
    model::CampaignOptions copts;
    copts.power_repetitions = 5;

    auto kind = parseDevice(target);
    std::optional<model::DvfsPowerModel> m;
    if (!kind || fileExists(target)) {
        auto res = model::tryLoadModel(target, loadOptionsOf(flags));
        if (!res.ok())
            return reportLoadFailure(res.error());
        m = res.value();
        kind = m->deviceKind();
    }
    common::setProvenanceDevice(deviceToken(*kind));

    sim::PhysicalGpu board(*kind);
    const auto &desc = board.descriptor();
    const auto configs = desc.allConfigs();
    const auto ref = desc.referenceConfig();
    std::fprintf(stderr,
                 "auditing %s: %zu validation apps x %zu V-F "
                 "configs...\n",
                 desc.name.c_str(),
                 workloads::fullValidationSet().size(),
                 configs.size());

    // The training campaign fits the proposed model when none was
    // given, and always trains the Sec. VI baselines.
    model::TrainingData data;
    {
        GPUPM_TRACE_SPAN("audit", "audit.campaign");
        data = model::runTrainingCampaign(board, ubench::buildSuite(),
                                          copts);
    }
    if (!m) {
        GPUPM_TRACE_SPAN("audit", "audit.fit");
        auto fit = model::ModelEstimator().tryEstimate(data);
        if (!fit.ok()) {
            std::fprintf(stderr, "fit failed [%s]: %s\n",
                         std::string(model::fitErrcName(
                                 fit.error().code)).c_str(),
                         fit.error().message.c_str());
            return 1;
        }
        m = fit.value().model;
    }
    const auto abe = baselines::AbeLinearModel::train(data);
    const auto cubic = baselines::CubicScalingModel::train(data);
    const auto refscale = baselines::RefScalingModel::train(data);

    model::Predictor predictor(*m);
    std::vector<obs::ResidualSample> samples;
    samples.reserve(workloads::fullValidationSet().size() *
                    configs.size());
    for (const auto &w : workloads::fullValidationSet()) {
        GPUPM_TRACE_SPAN("audit", "audit.measure." + w.name);
        const auto meas =
                model::measureApp(board, w.demand, configs, copts);
        double ref_power_w = 0.0;
        for (std::size_t i = 0; i < meas.configs.size(); ++i)
            if (meas.configs[i] == ref)
                ref_power_w = meas.power_w[i];
        for (std::size_t i = 0; i < meas.configs.size(); ++i) {
            const auto &cfg = meas.configs[i];
            const auto p = predictor.at(meas.util, cfg);
            obs::ResidualSample s;
            s.app = w.name;
            s.cfg = cfg;
            s.measured_w = meas.power_w[i];
            s.predicted_w = p.total_w;
            s.constant_w = p.constant_w;
            s.component_w = p.component_w;
            s.baseline_w = {
                    {"abe", abe.predict(meas.util, cfg)},
                    {"cubic", cubic.predict(meas.util, cfg)},
                    {"refscale", refscale.predict(ref_power_w, cfg)},
            };
            samples.push_back(std::move(s));
        }
    }

    const auto sb = obs::Scoreboard::fromSamples(
            static_cast<int>(*kind), desc.name, ref,
            std::move(samples));
    sb.publishMetrics();
    std::fprintf(stderr,
                 "audit: %ld samples, overall MAE %.2f%%, RMSE "
                 "%.2f W, max error %.2f%%\n",
                 sb.overall.samples, sb.overall.mae_pct,
                 sb.overall.rmse_w, sb.overall.max_err_pct);

    if (!flags.scoreboard_out.empty()) {
        auto saved = model::trySaveScoreboard(sb,
                                              flags.scoreboard_out);
        if (!saved.ok())
            return reportLoadFailure(saved.error());
        std::fprintf(stderr, "scoreboard written to %s\n",
                     flags.scoreboard_out.c_str());
    }
    if (flags.json)
        std::printf("%s", sb.toJson(false).c_str());
    else if (flags.csv)
        std::printf("%s", sb.samplesCsv().c_str());
    else
        std::printf("%s", sb.summaryText().c_str());
    return 0;
}

/**
 * `gpupm fleet <N>`: the fault-tolerant fleet campaign. N simulated
 * device instances (three architectures, per-instance ground-truth
 * jitter) are sharded across the work-stealing pool; each shard runs
 * under a watchdog deadline with seeded retry/backoff, checkpoints
 * crash-safely when --resume names a directory, and is quarantined —
 * with explicit per-device accounting — past its retry budget. Chaos
 * flags inject shard kills, stalls and poisoned devices; --faults is
 * shorthand for kills + poison at one rate. With --port/--duration
 * the merged result is served on /fleet next to /metrics for the
 * monitor's scrape interval.
 */
int
cmdFleet(const std::string &count, const CliFlags &flags)
{
    const long n = std::atol(count.c_str());
    if (n <= 0) {
        std::fprintf(stderr,
                     "fleet needs a positive device count, got "
                     "'%s'\n",
                     count.c_str());
        return 2;
    }
    obs::registerStandardMetrics();

    // The campaign runs under one root trace (fleet.campaign) with
    // every shard attempt, pool hop and watchdog fire inside it;
    // assembled traces land here and are served on /api/traces while
    // --duration keeps the process up. One campaign is one giant
    // request (~350 spans per device), so the fleet store is sized
    // for a few hundred devices where the monitor's per-tick store
    // keeps its tight 1 MiB default.
    obs::TraceStoreOptions tsopts;
    tsopts.max_bytes = 32u << 20;
    TraceStoreAttachment tracing(flags, tsopts);

    fleet::FleetOptions fopts;
    fopts.devices = n;
    fopts.shards = flags.shards;
    fopts.threads = flags.threads;
    fopts.watchdog_deadline_s = flags.deadline_s;
    fopts.checkpoint_dir = flags.checkpoint;
    fopts.chaos.seed = flags.fault_seed;
    fopts.chaos.shard_kill_rate = flags.chaos_kill;
    fopts.chaos.shard_stall_rate = flags.chaos_stall;
    fopts.chaos.poison_fraction = flags.chaos_poison;
    if (flags.fault_rate > 0.0) {
        if (fopts.chaos.shard_kill_rate == 0.0)
            fopts.chaos.shard_kill_rate = flags.fault_rate;
        if (fopts.chaos.poison_fraction == 0.0)
            fopts.chaos.poison_fraction = flags.fault_rate;
    }

    const fleet::FleetResult result = fleet::runFleetCampaign(fopts);
    std::fprintf(stderr, "%s", result.summary().c_str());

    if (!flags.fleet_out.empty()) {
        auto saved = model::tryWriteFileAtomic(
                flags.fleet_out,
                model::wrapEnvelope(model::FileKind::Fleet,
                                    result.toJson() + "\n"));
        if (!saved.ok())
            return reportLoadFailure(saved.error());
        std::fprintf(stderr, "fleet report written to %s\n",
                     flags.fleet_out.c_str());
    }
    if (flags.json)
        std::printf("%s\n", result.toJson().c_str());

    if (flags.duration_s > 0.0) {
        // Per-architecture aggregate series: fleet-level drift
        // (outlier devices, arch marginals moving) is queryable from
        // the same /api/query shape the monitor serves. Declared
        // before the server so handlers never outlive the store.
        obs::Tsdb fleet_tsdb;
        fleet::publishFleetSeries(result, fleet_tsdb);

        obs::HttpServer server;
        server.route("/metrics", [](const obs::HttpRequest &) {
            obs::touchProcessMetrics();
            obs::HttpResponse resp;
            resp.content_type =
                    "text/plain; version=0.0.4; charset=utf-8";
            resp.body = obs::Registry::global().renderPrometheus();
            return resp;
        });
        const std::string fleet_json = result.toJson();
        server.route("/fleet", [fleet_json](const obs::HttpRequest &) {
            obs::HttpResponse resp;
            resp.content_type = "application/json";
            resp.body = fleet_json;
            return resp;
        });
        server.route("/api/query", makeQueryHandler(fleet_tsdb));
        server.route("/api/traces",
                     makeTracesHandler(tracing.store));
        std::string err;
        if (!server.start(flags.port, &err)) {
            std::fprintf(stderr,
                         "fleet: cannot start HTTP server: %s\n",
                         err.c_str());
            return 1;
        }
        if (!flags.port_file.empty()) {
            std::ofstream pf(flags.port_file, std::ios::trunc);
            pf << server.port() << "\n";
        }
        std::fprintf(stderr,
                     "fleet: serving /metrics and /fleet on "
                     "127.0.0.1:%d for %.1fs\n",
                     server.port(), flags.duration_s);
        std::this_thread::sleep_for(
                std::chrono::duration<double>(flags.duration_s));
        server.stop();
    }

    // Graceful degradation is success; a fleet with zero healthy
    // devices is not.
    return result.scoreboard.devices_ok > 0 ? 0 : 1;
}

/** `gpupm metrics`: dump the full pre-registered metric catalog. */
int
cmdMetrics(const CliFlags &flags)
{
    obs::registerStandardMetrics();
    obs::touchProcessMetrics();
    auto &reg = obs::Registry::global();
    std::printf("%s", flags.json ? reg.renderJson().c_str()
                                 : reg.renderPrometheus().c_str());
    return 0;
}

/** `gpupm version` / `gpupm --version`: the build-info block. */
int
cmdVersion(const CliFlags &flags)
{
    const auto p = common::collectProvenance();
    if (flags.json) {
        std::printf("%s\n", common::toJson(p).c_str());
        return 0;
    }
    std::printf("gpupm %s (%s)\n", p.version.c_str(),
                p.build_type.c_str());
    std::printf("git sha:  %s\n", p.git_sha.c_str());
    std::printf("compiler: %s\n", p.compiler.c_str());
    if (!p.device.empty())
        std::printf("device:   %s\n", p.device.c_str());
    return 0;
}

// -- monitor ---------------------------------------------------------

/** Set by SIGINT/SIGTERM; the monitor main loop polls it. */
volatile std::sig_atomic_t g_monitor_stop = 0;

/** Set by SIGUSR1; the main loop dumps a live diagnostic and clears. */
volatile std::sig_atomic_t g_monitor_dump = 0;

extern "C" void
monitorSignalHandler(int)
{
    g_monitor_stop = 1;
}

extern "C" void
monitorDumpHandler(int)
{
    g_monitor_dump = 1;
}

/** JSON number or -1 when not finite (age before the first sample). */
std::string
jsonFiniteOr(double v, const char *fallback)
{
    if (!std::isfinite(v))
        return fallback;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    return buf;
}

/**
 * Parse one `--alert` rule spec. Grammar (DESIGN.md §14):
 *
 *   NAME:KIND:SERIES:OP:THRESHOLD[:WINDOW[:FOR[:COOLDOWN]]]
 *
 * KIND is `threshold` or `rate` (rate compares the per-second slope
 * over the window), OP is `gt` or `lt`, durations use the usual
 * `30s`/`500ms`/`1m` forms. Series names carry no colons, so a plain
 * split is unambiguous.
 */
bool
parseAlertSpec(const std::string &spec, obs::AlertRule &rule,
               std::string &err)
{
    std::vector<std::string> parts;
    std::string cur;
    std::istringstream is(spec);
    while (std::getline(is, cur, ':'))
        parts.push_back(cur);
    if (parts.size() < 5 || parts.size() > 8) {
        err = "expected NAME:KIND:SERIES:OP:THRESHOLD"
              "[:WINDOW[:FOR[:COOLDOWN]]], got '" +
              spec + "'";
        return false;
    }
    rule.name = parts[0];
    if (rule.name.empty()) {
        err = "rule name must not be empty";
        return false;
    }
    if (parts[1] == "threshold") {
        rule.kind = obs::AlertKind::Threshold;
    } else if (parts[1] == "rate") {
        rule.kind = obs::AlertKind::Rate;
    } else {
        err = "unknown rule kind '" + parts[1] +
              "' (expected threshold or rate)";
        return false;
    }
    rule.series = parts[2];
    if (parts[3] == "gt") {
        rule.op = obs::AlertOp::Gt;
    } else if (parts[3] == "lt") {
        rule.op = obs::AlertOp::Lt;
    } else {
        err = "unknown op '" + parts[3] + "' (expected gt or lt)";
        return false;
    }
    if (!numio::parseDouble(parts[4], rule.threshold)) {
        err = "bad threshold '" + parts[4] + "'";
        return false;
    }
    const auto duration_us = [&](const std::string &text,
                                 std::int64_t &out) {
        const double d = parseDuration(text);
        if (d < 0.0)
            return false;
        out = static_cast<std::int64_t>(d * 1e6);
        return true;
    };
    if (parts.size() > 5 && !duration_us(parts[5], rule.window_us)) {
        err = "bad window duration '" + parts[5] + "'";
        return false;
    }
    if (parts.size() > 6 && !duration_us(parts[6], rule.for_us)) {
        err = "bad for duration '" + parts[6] + "'";
        return false;
    }
    if (parts.size() > 7 && !duration_us(parts[7], rule.cooldown_us)) {
        err = "bad cooldown duration '" + parts[7] + "'";
        return false;
    }
    return true;
}

/**
 * Per-device MAE envelope from a bench/golden fig7 telemetry file
 * (`stats.mae_pct_<device>`); nullopt (with a warning) when the file
 * or the key is missing, falling back to the hard-coded envelope.
 */
std::optional<double>
driftEnvelopeFromGolden(const std::string &path,
                        const std::string &device)
{
    std::string text;
    if (!jsonlite::readFile(path, text))
        return std::nullopt;
    jsonlite::JsonValue root;
    std::string err;
    if (!jsonlite::JsonParser(text).parse(root, err)) {
        std::fprintf(stderr, "drift golden '%s': %s\n", path.c_str(),
                     err.c_str());
        return std::nullopt;
    }
    const auto *stats = root.find("stats");
    if (!stats) {
        std::fprintf(stderr, "drift golden '%s': no stats block\n",
                     path.c_str());
        return std::nullopt;
    }
    const auto *mae = stats->find("mae_pct_" + device);
    if (!mae ||
        mae->kind != jsonlite::JsonValue::Kind::Number) {
        std::fprintf(stderr,
                     "drift golden '%s': no mae_pct_%s stat\n",
                     path.c_str(), device.c_str());
        return std::nullopt;
    }
    return mae->number;
}

/**
 * Assemble the alert rule set for a monitor/alerts run: the built-in
 * drift rule (unless --no-drift-rule) plus every --alert spec.
 * Returns false after printing the offending spec.
 */
bool
buildAlertRules(const CliFlags &flags, const std::string &device,
                std::vector<obs::AlertRule> &rules)
{
    if (!flags.no_drift_rule) {
        std::optional<double> envelope;
        if (!flags.drift_golden.empty())
            envelope = driftEnvelopeFromGolden(flags.drift_golden,
                                               device);
        rules.push_back(obs::makeDriftRule(
                device, flags.drift_tolerance,
                static_cast<std::int64_t>(flags.drift_window_s * 1e6),
                static_cast<std::int64_t>(flags.drift_for_s * 1e6),
                static_cast<std::int64_t>(flags.drift_cooldown_s *
                                          1e6),
                envelope));
    }
    for (const std::string &spec : flags.alert_specs) {
        obs::AlertRule rule;
        std::string err;
        if (!parseAlertSpec(spec, rule, err)) {
            std::fprintf(stderr, "bad --alert spec: %s\n",
                         err.c_str());
            return false;
        }
        rules.push_back(std::move(rule));
    }
    return true;
}

/** Parsed --inject-drift=FROM:TO:SCALE (ticks, measured-W factor). */
struct DriftInjection
{
    long from_tick = 0;
    long to_tick = 0;
    double scale = 1.0;
};

std::optional<DriftInjection>
parseInjectDrift(const std::string &spec)
{
    DriftInjection inj;
    char extra = 0;
    if (std::sscanf(spec.c_str(), "%ld:%ld:%lf%c", &inj.from_tick,
                    &inj.to_tick, &inj.scale, &extra) != 3 ||
        inj.from_tick < 0 || inj.to_tick < inj.from_tick ||
        inj.scale <= 0.0)
        return std::nullopt;
    return inj;
}

/**
 * `/api/query` handler over a time-series store. Query parameters:
 * `series` (required), `range`/`step` (durations, default 60s / 1s),
 * or explicit `start_us`/`end_us` for reproducible test queries; the
 * implicit end is the store's newest timestamp.
 */
obs::HttpServer::Handler
makeQueryHandler(const obs::Tsdb &tsdb)
{
    return [&tsdb](const obs::HttpRequest &req) {
        std::string series;
        double range_s = 60.0;
        double step_s = 1.0;
        std::int64_t start_us = -1;
        std::int64_t end_us = -1;
        bool bad = false;
        std::istringstream qs(req.query);
        std::string kv;
        while (std::getline(qs, kv, '&')) {
            const auto eq = kv.find('=');
            if (eq == std::string::npos)
                continue;
            const std::string key = kv.substr(0, eq);
            const std::string val = kv.substr(eq + 1);
            if (key == "series") {
                series = val;
            } else if (key == "range") {
                range_s = parseDuration(val);
                bad = bad || range_s < 0.0;
            } else if (key == "step") {
                step_s = parseDuration(val);
                bad = bad || step_s <= 0.0;
            } else if (key == "start_us") {
                long v = 0;
                bad = bad || !numio::parseLong(val, v);
                start_us = v;
            } else if (key == "end_us") {
                long v = 0;
                bad = bad || !numio::parseLong(val, v);
                end_us = v;
            }
        }
        obs::HttpResponse resp;
        resp.content_type = "application/json";
        if (series.empty() || bad) {
            resp.status = 400;
            resp.body = "{\"ok\":false,\"error\":\"usage: /api/query"
                        "?series=<name>&range=60s&step=1s (or "
                        "start_us/end_us)\"}\n";
            return resp;
        }
        obs::TsQuery q;
        q.series = series;
        if (end_us < 0)
            end_us = tsdb.latestTimestamp();
        if (end_us == std::numeric_limits<std::int64_t>::min()) {
            resp.status = 404;
            resp.body = "{\"ok\":false,\"error\":\"store is "
                        "empty\"}\n";
            return resp;
        }
        q.end_us = end_us;
        q.start_us = start_us >= 0
                             ? start_us
                             : end_us - static_cast<std::int64_t>(
                                                range_s * 1e6);
        q.step_us = static_cast<std::int64_t>(step_s * 1e6);
        const obs::TsQueryResult res = tsdb.query(q);
        if (!res.ok)
            resp.status = 404;
        resp.body = res.toJson(series) + "\n";
        return resp;
    };
}

/**
 * `/api/traces` handler over a tail-sampled trace store. Query
 * parameters (all optional): `category` (root span category),
 * `min_ms` (minimum root duration), `error` (0/1 — error traces
 * only), `trace_id` (16-hex-digit id), `limit` (max traces, default
 * 50). Malformed values are a 400, never a silent empty result.
 */
obs::HttpServer::Handler
makeTracesHandler(const obs::TraceStore &store)
{
    return [&store](const obs::HttpRequest &req) {
        obs::TraceQuery q;
        bool bad = false;
        std::istringstream qs(req.query);
        std::string kv;
        while (std::getline(qs, kv, '&')) {
            const auto eq = kv.find('=');
            if (eq == std::string::npos)
                continue;
            const std::string key = kv.substr(0, eq);
            const std::string val = kv.substr(eq + 1);
            if (key == "category") {
                q.category = val;
            } else if (key == "min_ms") {
                const double ms = std::atof(val.c_str());
                bad = bad || ms < 0.0;
                q.min_dur_us =
                        static_cast<std::int64_t>(ms * 1000.0);
            } else if (key == "error") {
                bad = bad || (val != "0" && val != "1");
                q.error_only = val == "1";
            } else if (key == "trace_id") {
                char *end = nullptr;
                q.trace_id =
                        std::strtoull(val.c_str(), &end, 16);
                bad = bad || val.empty() || *end != '\0' ||
                      q.trace_id == 0;
            } else if (key == "limit") {
                long n = 0;
                bad = bad || !numio::parseLong(val, n) || n <= 0;
                q.limit = static_cast<std::size_t>(n > 0 ? n : 1);
            } else {
                bad = true;
            }
        }
        obs::HttpResponse resp;
        resp.content_type = "application/json";
        if (bad) {
            resp.status = 400;
            resp.body = "{\"ok\":false,\"error\":\"usage: "
                        "/api/traces?category=<cat>&min_ms=<ms>&"
                        "error=1&trace_id=<hex>&limit=<n>\"}\n";
            return resp;
        }
        resp.body = store.renderJson(q);
        return resp;
    };
}

/**
 * `gpupm monitor <device>`: the long-running telemetry daemon. Trains
 * a model of the device in-process (same procedure as
 * `gpupm fit <device>`), then runs the online sampling loop — measure
 * the simulated NVML device, predict with the model, feed the residual
 * into the live aggregators — while an embedded HTTP server exposes
 * /metrics, /healthz, /scoreboard and /tracez on loopback. SIGINT or
 * SIGTERM (or --duration elapsing) shuts everything down cleanly and
 * dumps the flight recorder's recent past to stderr.
 */
int
cmdMonitor(const std::string &device, const CliFlags &flags)
{
    const auto kind = parseDevice(device);
    if (!kind) {
        std::fprintf(stderr,
                     "unknown device '%s' (expected titanxp, titanx "
                     "or k40c)\n",
                     device.c_str());
        return 2;
    }
    if (flags.period_ms <= 0) {
        std::fprintf(stderr, "--period-ms must be positive\n");
        return 2;
    }
    common::setProvenanceDevice(deviceToken(*kind));
    obs::registerStandardMetrics();

    // Request tracing is always on for the daemon: every tick becomes
    // one assembled trace in the tail-sampled store behind
    // /api/traces. Declared before sampler and server so neither the
    // sampler's spans nor the HTTP handlers outlive the store.
    TraceStoreAttachment tracing(flags);

    sim::PhysicalGpu board(*kind);
    const auto &desc = board.descriptor();

    // A fresh model of the board under watch, fitted in-process.
    std::fprintf(stderr, "monitor: training %s model in-process...\n",
                 desc.name.c_str());
    model::CampaignOptions copts;
    copts.power_repetitions = 3;
    const auto data = model::runTrainingCampaign(
            board, ubench::buildSuite(), copts);
    auto fit = model::ModelEstimator().tryEstimate(data);
    if (!fit.ok()) {
        std::fprintf(stderr, "fit failed [%s]: %s\n",
                     std::string(model::fitErrcName(
                             fit.error().code)).c_str(),
                     fit.error().message.c_str());
        return 1;
    }
    const model::DvfsPowerModel m = fit.value().model;
    model::Predictor predictor(m);

    // Schedule: every validation app at the slowest, reference and
    // fastest V-F configuration, round-robinned. Utilizations are
    // profiled once at the reference configuration (Sec. III-E); the
    // run-time loop never re-profiles, exactly as the paper's
    // operational use case prescribes.
    const auto configs = desc.allConfigs();
    const auto ref = desc.referenceConfig();
    const std::vector<gpu::FreqConfig> points{configs.front(), ref,
                                              configs.back()};
    std::map<std::string, gpu::ComponentArray> utils;
    std::map<std::string, sim::KernelDemand> demands;
    std::vector<obs::SchedulePoint> schedule;
    {
        cupti::Profiler profiler(board, 11);
        for (const auto &w : workloads::fullValidationSet()) {
            const auto rm = profiler.profile(w.demand, ref);
            utils[w.name] =
                    model::utilizationsFromMetrics(rm, desc, ref);
            demands[w.name] = w.demand;
            for (const auto &cfg : points)
                schedule.push_back({w.name, cfg});
        }
    }

    std::optional<DriftInjection> injection;
    if (!flags.inject_drift.empty()) {
        injection = parseInjectDrift(flags.inject_drift);
        if (!injection) {
            std::fprintf(stderr,
                         "bad --inject-drift spec '%s' (expected "
                         "FROM:TO:SCALE)\n",
                         flags.inject_drift.c_str());
            return 2;
        }
    }

    obs::FlightRecorder recorder(256);
    nvml::Device dev(board);
    auto probe_tick = std::make_shared<std::atomic<long>>(0);
    auto probe = [&, probe_tick](const std::string &app,
                                 const gpu::FreqConfig &cfg) {
        obs::MonitorSample s;
        s.app = app;
        s.cfg = cfg;
        dev.setApplicationClocks(cfg.mem_mhz, cfg.core_mhz);
        const auto pm =
                dev.measureKernelPower(demands.at(app), 2, 0.05);
        s.measured_w = pm.power_w;
        // Seeded accuracy fault: scale the measurement inside the
        // tick window so the residuals — and the rolling MAE the
        // drift rule watches — degrade and recover deterministically.
        const long tick =
                probe_tick->fetch_add(1, std::memory_order_relaxed);
        if (injection && tick >= injection->from_tick &&
            tick < injection->to_tick)
            s.measured_w *= injection->scale;
        s.predicted_w = predictor.at(utils.at(app), cfg).total_w;
        return s;
    };

    obs::Tsdb tsdb;
    std::vector<obs::AlertRule> rules;
    if (!buildAlertRules(flags, deviceToken(*kind), rules))
        return 2;
    obs::AlertEngine engine(tsdb, std::move(rules), &recorder);

    obs::SamplerOptions sopts;
    sopts.period_ms = flags.period_ms;
    sopts.duration_s = flags.duration_s;
    sopts.events_out = flags.events_out;
    sopts.events_max_bytes = flags.events_max_bytes;
    sopts.events_max_files = flags.events_max_files;
    sopts.rolling_window =
            static_cast<std::size_t>(flags.rolling_window);
    sopts.device = static_cast<int>(*kind);
    sopts.device_name = desc.name;
    sopts.reference = ref;
    obs::Sampler sampler(probe, std::move(schedule), sopts, &recorder,
                         &tsdb, &engine);

    const auto started = std::chrono::steady_clock::now();
    obs::HttpServer server;
    server.route("/", [](const obs::HttpRequest &) {
        obs::HttpResponse resp;
        resp.body = "gpupm monitor endpoints:\n"
                    "  /metrics     Prometheus text exposition\n"
                    "  /healthz     JSON liveness + provenance\n"
                    "  /scoreboard  live accuracy scoreboard JSON\n"
                    "  /tracez      flight recorder (recent spans)\n"
                    "  /profilez    on-demand CPU profile "
                    "(?seconds=N, collapsed-stack text)\n"
                    "  /api/query   tsdb range query (?series=...&"
                    "range=60s&step=1s)\n"
                    "  /api/traces  tail-sampled request traces "
                    "(?category=...&min_ms=...&error=1&trace_id=...)\n"
                    "  /alertz      alert rules + firing state "
                    "(?format=text for human output)\n";
        return resp;
    });
    server.route("/metrics", [&](const obs::HttpRequest &) {
        obs::touchProcessMetrics();
        const double age = sampler.lastSampleAgeSeconds();
        if (std::isfinite(age))
            obs::monitorSampleAgeSeconds().set(age);
        obs::HttpResponse resp;
        resp.content_type =
                "text/plain; version=0.0.4; charset=utf-8";
        resp.body = obs::Registry::global().renderPrometheus();
        return resp;
    });
    server.route("/healthz", [&](const obs::HttpRequest &) {
        const bool stale = sampler.stale();
        const auto firing = engine.firingRuleNames();
        // Staleness outranks degradation: a wedged sampler can no
        // longer evaluate its own rules, so report the harder fault.
        const char *status = stale ? "stale"
                             : firing.empty() ? "ok"
                                              : "degraded";
        const double uptime =
                std::chrono::duration<double>(
                        std::chrono::steady_clock::now() - started)
                        .count();
        std::ostringstream os;
        os << "{\"status\":\"" << status
           << "\",\"uptime_seconds\":" << jsonFiniteOr(uptime, "0")
           << ",\"ticks\":" << sampler.ticks()
           << ",\"last_sample_age_seconds\":"
           << jsonFiniteOr(sampler.lastSampleAgeSeconds(), "-1")
           << ",\"firing\":[";
        for (std::size_t i = 0; i < firing.size(); ++i)
            os << (i ? "," : "") << "\"" << jsonEscape(firing[i])
               << "\"";
        os << "],\"provenance\":"
           << common::toJson(common::collectProvenance()) << "}\n";
        obs::HttpResponse resp;
        resp.status = stale ? 503
                      : (!firing.empty() && flags.healthz_degraded_503)
                              ? 503
                              : 200;
        resp.content_type = "application/json";
        resp.body = os.str();
        return resp;
    });
    server.route("/api/query", makeQueryHandler(tsdb));
    server.route("/api/traces", makeTracesHandler(tracing.store));
    server.route("/alertz", [&](const obs::HttpRequest &req) {
        const std::int64_t now = engine.lastEvaluatedUs();
        obs::HttpResponse resp;
        if (req.query.find("format=text") != std::string::npos) {
            resp.content_type = "text/plain; charset=utf-8";
            resp.body = engine.renderText(now);
        } else {
            resp.content_type = "application/json";
            resp.body = engine.renderJson(now) + "\n";
        }
        return resp;
    });
    server.route("/scoreboard", [&](const obs::HttpRequest &) {
        obs::HttpResponse resp;
        resp.content_type = "application/json";
        resp.body = sampler.scoreboardSnapshot().toJson(false);
        return resp;
    });
    server.route("/tracez", [&](const obs::HttpRequest &) {
        obs::HttpResponse resp;
        resp.content_type = "application/json";
        resp.body = recorder.renderJson();
        return resp;
    });
    server.route("/profilez", [&](const obs::HttpRequest &req) {
        // On-demand profile: sample the live daemon for N seconds
        // (?seconds=N, clamped to [0.1, 30], default 1) and return
        // the collapsed-stack text. Wall-clock sampling by default —
        // a healthy monitor is mostly idle, and CPU-time sampling of
        // an idle process truthfully returns nothing; ?mode=cpu
        // selects it anyway for busy daemons. The sampling sleep runs
        // on the HTTP worker, so other endpoints queue for the
        // duration — acceptable for a diagnostic; ?json=1 returns the
        // summary instead of the folded stacks.
        double seconds = 1.0;
        bool as_json = false;
        obs::ProfilerOptions popts;
        popts.wall = true;
        popts.hz = 499;
        std::istringstream qs(req.query);
        std::string kv;
        while (std::getline(qs, kv, '&')) {
            if (kv.rfind("seconds=", 0) == 0)
                seconds = std::atof(kv.c_str() + 8);
            else if (kv == "json" || kv == "json=1")
                as_json = true;
            else if (kv == "mode=cpu") {
                popts.wall = false;
                popts.hz = 997;
            }
        }
        seconds = std::min(30.0, std::max(0.1, seconds));
        obs::HttpResponse resp;
        auto &profiler = obs::Profiler::global();
        std::string err;
        if (!profiler.start(popts, &err)) {
            resp.status = 409;
            resp.body = "profiler unavailable: " + err + "\n";
            return resp;
        }
        recorder.recordSpan("monitor.profile", 0,
                            "sampling " + std::to_string(seconds) +
                                    "s");
        std::this_thread::sleep_for(
                std::chrono::duration<double>(seconds));
        profiler.stop();
        const auto prof = profiler.collect();
        obs::profilerRunsTotal().inc();
        obs::profilerSamplesTotal().inc(
                static_cast<double>(prof.samples));
        obs::profilerSamplesDroppedTotal().inc(
                static_cast<double>(prof.dropped));
        obs::profilerLastAttributedPct().set(prof.attributedPct());
        if (as_json) {
            resp.content_type = "application/json";
            resp.body = prof.renderJson() + "\n";
        } else {
            resp.content_type = "text/plain; charset=utf-8";
            resp.body = prof.renderFolded();
        }
        return resp;
    });

    std::string err;
    if (!server.start(flags.port, &err)) {
        std::fprintf(stderr,
                     "monitor: cannot start HTTP server: %s\n",
                     err.c_str());
        return 1;
    }
    if (!flags.port_file.empty()) {
        std::ofstream pf(flags.port_file, std::ios::trunc);
        pf << server.port() << "\n";
        if (!pf)
            std::fprintf(stderr, "monitor: cannot write %s\n",
                         flags.port_file.c_str());
    }
    if (!sampler.start(&err)) {
        std::fprintf(stderr, "monitor: %s\n", err.c_str());
        server.stop();
        return 1;
    }
    recorder.recordSpan("monitor.start", 0,
                        desc.name + " on 127.0.0.1:" +
                                std::to_string(server.port()));
    std::fprintf(stderr,
                 "monitor: listening on 127.0.0.1:%d (period %d ms, "
                 "%zu schedule points)\n",
                 server.port(), flags.period_ms,
                 utils.size() * points.size());

    // SIGUSR1 diagnostic: everything a stuck daemon's operator needs,
    // dumped to stderr without stopping anything — the recorder's
    // recent past plus a full metrics snapshot. The handler only sets
    // a flag; the dump itself runs here on the main loop.
    const auto dumpDiagnostic = [&recorder, &sampler, &server]() {
        std::fprintf(stderr,
                     "monitor: === live diagnostic (SIGUSR1) ===\n");
        std::fprintf(stderr,
                     "monitor: %ld ticks, %ld requests served\n",
                     sampler.ticks(), server.requestsServed());
        const auto tail = recorder.snapshot();
        const std::size_t show =
                std::min<std::size_t>(tail.size(), 10);
        std::fprintf(stderr,
                     "monitor: flight recorder tail (%zu of %lld "
                     "recorded):\n",
                     show,
                     static_cast<long long>(recorder.recorded()));
        for (std::size_t i = tail.size() - show; i < tail.size(); ++i)
            std::fprintf(stderr, "  #%lld +%.3fs [%s] %s: %s\n",
                         static_cast<long long>(tail[i].seq),
                         static_cast<double>(tail[i].ts_us) * 1e-6,
                         tail[i].kind.c_str(), tail[i].name.c_str(),
                         tail[i].detail.c_str());
        obs::touchProcessMetrics();
        std::fprintf(stderr, "monitor: metrics snapshot:\n%s",
                     obs::Registry::global().renderJson().c_str());
        std::fprintf(stderr,
                     "monitor: === end live diagnostic ===\n");
    };

    g_monitor_stop = 0;
    g_monitor_dump = 0;
    std::signal(SIGINT, monitorSignalHandler);
    std::signal(SIGTERM, monitorSignalHandler);
    std::signal(SIGUSR1, monitorDumpHandler);
    while (!g_monitor_stop && sampler.running()) {
        if (g_monitor_dump) {
            g_monitor_dump = 0;
            dumpDiagnostic();
        }
        // A fresh span per iteration (not one for the whole loop):
        // /profilez arms the profiler mid-run, and only spans opened
        // while it runs land in its thread-local context — so an
        // on-demand wall profile attributes the idle wait too.
        GPUPM_TRACE_SPAN("monitor", "monitor.wait");
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    std::fprintf(stderr,
                 "monitor: shutting down (%ld ticks, %ld requests "
                 "served)\n",
                 sampler.ticks(), server.requestsServed());
    sampler.stop();
    server.stop();
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    std::signal(SIGUSR1, SIG_DFL);
    recorder.recordSpan("monitor.stop", 0, "clean shutdown");

    // Post-mortem: the recorder's recent past, oldest of the tail
    // first, so a crash log always ends with what just happened.
    const auto tail = recorder.snapshot();
    const std::size_t show = std::min<std::size_t>(tail.size(), 5);
    std::fprintf(stderr,
                 "monitor: flight recorder tail (%zu of %lld "
                 "recorded):\n",
                 show, static_cast<long long>(recorder.recorded()));
    for (std::size_t i = tail.size() - show; i < tail.size(); ++i)
        std::fprintf(stderr, "  #%lld +%.3fs [%s] %s: %s\n",
                     static_cast<long long>(tail[i].seq),
                     static_cast<double>(tail[i].ts_us) * 1e-6,
                     tail[i].kind.c_str(), tail[i].name.c_str(),
                     tail[i].detail.c_str());
    return 0;
}

/**
 * `gpupm alerts <device>`: one-shot alert evaluation. Runs the same
 * in-process train + sample pipeline as `gpupm monitor`, but drives
 * the sampler synchronously for --ticks virtual ticks (tick i lands
 * at t = i * period) instead of on a wall-clock thread — no HTTP
 * server, no sleeps. Virtual time plus the seeded simulated device
 * make the run a pure function of its flags: two invocations emit
 * byte-identical JSON, which the cli_alerts_drift ctest gate asserts.
 * Exit code 1 when any rule is still firing at the final tick, else
 * 0 — scriptable as a health probe.
 */
int
cmdAlerts(const std::string &device, const CliFlags &flags)
{
    const auto kind = parseDevice(device);
    if (!kind) {
        std::fprintf(stderr,
                     "unknown device '%s' (expected titanxp, titanx "
                     "or k40c)\n",
                     device.c_str());
        return 2;
    }
    if (flags.period_ms <= 0) {
        std::fprintf(stderr, "--period-ms must be positive\n");
        return 2;
    }
    std::optional<DriftInjection> injection;
    if (!flags.inject_drift.empty()) {
        injection = parseInjectDrift(flags.inject_drift);
        if (!injection) {
            std::fprintf(stderr,
                         "bad --inject-drift spec '%s' (expected "
                         "FROM:TO:SCALE)\n",
                         flags.inject_drift.c_str());
            return 2;
        }
    }
    common::setProvenanceDevice(deviceToken(*kind));
    obs::registerStandardMetrics();

    sim::PhysicalGpu board(*kind);
    const auto &desc = board.descriptor();
    std::fprintf(stderr, "alerts: training %s model in-process...\n",
                 desc.name.c_str());
    model::CampaignOptions copts;
    copts.power_repetitions = 3;
    const auto data = model::runTrainingCampaign(
            board, ubench::buildSuite(), copts);
    auto fit = model::ModelEstimator().tryEstimate(data);
    if (!fit.ok()) {
        std::fprintf(stderr, "fit failed [%s]: %s\n",
                     std::string(model::fitErrcName(
                             fit.error().code)).c_str(),
                     fit.error().message.c_str());
        return 1;
    }
    const model::DvfsPowerModel m = fit.value().model;
    model::Predictor predictor(m);

    const auto configs = desc.allConfigs();
    const auto ref = desc.referenceConfig();
    const std::vector<gpu::FreqConfig> points{configs.front(), ref,
                                              configs.back()};
    std::map<std::string, gpu::ComponentArray> utils;
    std::map<std::string, sim::KernelDemand> demands;
    std::vector<obs::SchedulePoint> schedule;
    {
        cupti::Profiler profiler(board, 11);
        for (const auto &w : workloads::fullValidationSet()) {
            const auto rm = profiler.profile(w.demand, ref);
            utils[w.name] =
                    model::utilizationsFromMetrics(rm, desc, ref);
            demands[w.name] = w.demand;
            for (const auto &cfg : points)
                schedule.push_back({w.name, cfg});
        }
    }

    obs::FlightRecorder recorder(256);
    nvml::Device dev(board);
    long probe_tick = 0;
    auto probe = [&](const std::string &app,
                     const gpu::FreqConfig &cfg) {
        obs::MonitorSample s;
        s.app = app;
        s.cfg = cfg;
        dev.setApplicationClocks(cfg.mem_mhz, cfg.core_mhz);
        const auto pm =
                dev.measureKernelPower(demands.at(app), 2, 0.05);
        s.measured_w = pm.power_w;
        const long tick = probe_tick++;
        if (injection && tick >= injection->from_tick &&
            tick < injection->to_tick)
            s.measured_w *= injection->scale;
        s.predicted_w = predictor.at(utils.at(app), cfg).total_w;
        return s;
    };

    obs::Tsdb tsdb;
    std::vector<obs::AlertRule> rules;
    if (!buildAlertRules(flags, deviceToken(*kind), rules))
        return 2;
    obs::AlertEngine engine(tsdb, std::move(rules), &recorder);

    obs::SamplerOptions sopts;
    sopts.period_ms = flags.period_ms;
    sopts.events_out = flags.events_out;
    sopts.events_max_bytes = flags.events_max_bytes;
    sopts.events_max_files = flags.events_max_files;
    sopts.rolling_window =
            static_cast<std::size_t>(flags.rolling_window);
    sopts.device = static_cast<int>(*kind);
    sopts.device_name = desc.name;
    sopts.reference = ref;
    obs::Sampler sampler(probe, std::move(schedule), sopts, &recorder,
                         &tsdb, &engine);
    std::string err;
    if (!sampler.openEvents(&err)) {
        std::fprintf(stderr, "alerts: %s\n", err.c_str());
        return 1;
    }

    const std::int64_t period_us =
            static_cast<std::int64_t>(flags.period_ms) * 1000;
    for (long tick = 0; tick < flags.alert_ticks; ++tick)
        sampler.tickSynchronously((tick + 1) * period_us);

    const std::int64_t now = engine.lastEvaluatedUs();
    if (flags.json)
        std::printf("%s\n", engine.renderJson(now).c_str());
    else
        std::printf("%s", engine.renderText(now).c_str());
    const auto firing = engine.firingRuleNames();
    if (!firing.empty()) {
        std::fprintf(stderr, "alerts: %zu rule(s) firing after %ld "
                             "ticks\n",
                     firing.size(), flags.alert_ticks);
        return 1;
    }
    return 0;
}

/**
 * `gpupm traces <device>`: offline request-trace replay. Runs the
 * same in-process train + synchronous-tick pipeline as `gpupm
 * alerts`, but enables request tracing (trace IDs re-seeded from
 * --fault-seed) for the tick loop and prints the assembled traces
 * from the tail-sampled store — one trace per tick, spans in
 * completion order with parent links. Only deterministic fields are
 * printed (IDs, names, categories, error flags, args — no wall-clock
 * timestamps or durations), so two invocations with the same flags
 * emit byte-identical output; the cli_traces ctest gate asserts it.
 * Exit 1 when the store violated its error-retention invariant
 * (an error trace was evicted), else 0.
 */
int
cmdTraces(const std::string &device, const CliFlags &flags)
{
    const auto kind = parseDevice(device);
    if (!kind) {
        std::fprintf(stderr,
                     "unknown device '%s' (expected titanxp, titanx "
                     "or k40c)\n",
                     device.c_str());
        return 2;
    }
    if (flags.period_ms <= 0) {
        std::fprintf(stderr, "--period-ms must be positive\n");
        return 2;
    }
    std::optional<DriftInjection> injection;
    if (!flags.inject_drift.empty()) {
        injection = parseInjectDrift(flags.inject_drift);
        if (!injection) {
            std::fprintf(stderr,
                         "bad --inject-drift spec '%s' (expected "
                         "FROM:TO:SCALE)\n",
                         flags.inject_drift.c_str());
            return 2;
        }
    }
    common::setProvenanceDevice(deviceToken(*kind));
    obs::registerStandardMetrics();

    sim::PhysicalGpu board(*kind);
    const auto &desc = board.descriptor();
    std::fprintf(stderr, "traces: training %s model in-process...\n",
                 desc.name.c_str());
    model::CampaignOptions copts;
    copts.power_repetitions = 3;
    const auto data = model::runTrainingCampaign(
            board, ubench::buildSuite(), copts);
    auto fit = model::ModelEstimator().tryEstimate(data);
    if (!fit.ok()) {
        std::fprintf(stderr, "fit failed [%s]: %s\n",
                     std::string(model::fitErrcName(
                             fit.error().code)).c_str(),
                     fit.error().message.c_str());
        return 1;
    }
    const model::DvfsPowerModel m = fit.value().model;
    model::Predictor predictor(m);

    const auto configs = desc.allConfigs();
    const auto ref = desc.referenceConfig();
    const std::vector<gpu::FreqConfig> points{configs.front(), ref,
                                              configs.back()};
    std::map<std::string, gpu::ComponentArray> utils;
    std::map<std::string, sim::KernelDemand> demands;
    std::vector<obs::SchedulePoint> schedule;
    {
        cupti::Profiler profiler(board, 11);
        for (const auto &w : workloads::fullValidationSet()) {
            const auto rm = profiler.profile(w.demand, ref);
            utils[w.name] =
                    model::utilizationsFromMetrics(rm, desc, ref);
            demands[w.name] = w.demand;
            for (const auto &cfg : points)
                schedule.push_back({w.name, cfg});
        }
    }

    obs::FlightRecorder recorder(256);
    nvml::Device dev(board);
    long probe_tick = 0;
    auto probe = [&](const std::string &app,
                     const gpu::FreqConfig &cfg) {
        obs::MonitorSample s;
        s.app = app;
        s.cfg = cfg;
        dev.setApplicationClocks(cfg.mem_mhz, cfg.core_mhz);
        const auto pm =
                dev.measureKernelPower(demands.at(app), 2, 0.05);
        s.measured_w = pm.power_w;
        const long tick = probe_tick++;
        if (injection && tick >= injection->from_tick &&
            tick < injection->to_tick)
            s.measured_w *= injection->scale;
        s.predicted_w = predictor.at(utils.at(app), cfg).total_w;
        return s;
    };

    obs::Tsdb tsdb;
    std::vector<obs::AlertRule> rules;
    if (!buildAlertRules(flags, deviceToken(*kind), rules))
        return 2;
    obs::AlertEngine engine(tsdb, std::move(rules), &recorder);

    obs::SamplerOptions sopts;
    sopts.period_ms = flags.period_ms;
    sopts.events_out = flags.events_out;
    sopts.events_max_bytes = flags.events_max_bytes;
    sopts.events_max_files = flags.events_max_files;
    sopts.rolling_window =
            static_cast<std::size_t>(flags.rolling_window);
    sopts.device = static_cast<int>(*kind);
    sopts.device_name = desc.name;
    sopts.reference = ref;
    obs::Sampler sampler(probe, std::move(schedule), sopts, &recorder,
                         &tsdb, &engine);
    std::string err;
    if (!sampler.openEvents(&err)) {
        std::fprintf(stderr, "traces: %s\n", err.c_str());
        return 1;
    }

    // Tracing turns on here, after training, so the store holds
    // exactly the tick traces: seedIds() inside resets the ID counter
    // and makes the minted IDs a pure function of the fault seed and
    // the (single-threaded) span order.
    TraceStoreAttachment tracing(flags);

    const std::int64_t period_us =
            static_cast<std::int64_t>(flags.period_ms) * 1000;
    for (long tick = 0; tick < flags.alert_ticks; ++tick)
        sampler.tickSynchronously((tick + 1) * period_us);

    obs::TraceQuery all;
    all.limit = static_cast<std::size_t>(flags.alert_ticks) + 16;
    auto traces = tracing.store.query(all); // newest first
    std::reverse(traces.begin(), traces.end()); // arrival order

    const auto &store = tracing.store;
    if (flags.json) {
        std::ostringstream os;
        os << "{\"device\":\"" << deviceToken(*kind)
           << "\",\"ticks\":" << flags.alert_ticks
           << ",\"offered\":" << store.offeredTotal()
           << ",\"stored\":" << traces.size()
           << ",\"errors_offered\":" << store.errorsOfferedTotal()
           << ",\"errors_evicted\":" << store.errorsEvictedTotal()
           << ",\"traces\":[";
        for (std::size_t i = 0; i < traces.size(); ++i) {
            const auto &t = traces[i];
            os << (i ? ",\n" : "\n") << "{\"trace_id\":\""
               << obs::traceIdHex(t.trace_id) << "\",\"root\":\""
               << jsonEscape(t.root_name) << "\",\"cat\":\""
               << jsonEscape(t.root_cat) << "\",\"error\":"
               << (t.error ? "true" : "false") << ",\"spans\":[";
            for (std::size_t k = 0; k < t.spans.size(); ++k) {
                const auto &s = t.spans[k];
                os << (k ? "," : "") << "{\"name\":\""
                   << jsonEscape(s.name) << "\",\"cat\":\""
                   << jsonEscape(s.cat) << "\",\"span_id\":\""
                   << obs::traceIdHex(s.span_id) << "\"";
                if (s.parent_span_id)
                    os << ",\"parent_span_id\":\""
                       << obs::traceIdHex(s.parent_span_id) << "\"";
                if (s.error)
                    os << ",\"error\":true";
                if (!s.args.empty()) {
                    os << ",\"args\":{";
                    for (std::size_t a = 0; a < s.args.size(); ++a) {
                        if (a)
                            os << ",";
                        os << "\"" << jsonEscape(s.args[a].first)
                           << "\":\""
                           << jsonEscape(s.args[a].second) << "\"";
                    }
                    os << "}";
                }
                os << "}";
            }
            os << "]}";
        }
        os << "\n]}\n";
        std::printf("%s", os.str().c_str());
    } else {
        std::printf("%zu trace(s) stored of %ld offered (%ld error "
                    "trace(s), %ld evicted)\n",
                    traces.size(), store.offeredTotal(),
                    store.errorsOfferedTotal(),
                    store.evictedTotal());
        for (const auto &t : traces) {
            std::printf("trace %s %s [%s]%s %zu span(s)\n",
                        obs::traceIdHex(t.trace_id).c_str(),
                        t.root_name.c_str(), t.root_cat.c_str(),
                        t.error ? " ERROR" : "", t.spans.size());
            for (const auto &s : t.spans) {
                std::printf("  %s", obs::traceIdHex(s.span_id).c_str());
                if (s.parent_span_id)
                    std::printf(" <- %s",
                                obs::traceIdHex(s.parent_span_id)
                                        .c_str());
                else
                    std::printf(" (root)");
                std::printf(" %s [%s]%s", s.name.c_str(),
                            s.cat.c_str(), s.error ? " ERROR" : "");
                for (const auto &a : s.args)
                    std::printf(" %s=%s", a.first.c_str(),
                                a.second.c_str());
                std::printf("\n");
            }
        }
    }

    if (store.errorsEvictedTotal() > 0) {
        std::fprintf(stderr,
                     "traces: tail-sampling invariant violated: %ld "
                     "error trace(s) evicted\n",
                     store.errorsEvictedTotal());
        return 1;
    }
    return 0;
}

/**
 * Write the observability artifacts requested by --trace-out,
 * --metrics-out and --profile-out. Runs after the command (and its
 * root span) finished so the trace and profile are complete; the
 * metric catalog is pre-registered so every standard counter appears
 * even when its path never ran.
 */
void
writeObservabilityArtifacts(const CliFlags &flags)
{
    if (!flags.profile_out.empty() &&
        obs::Profiler::global().running()) {
        auto &profiler = obs::Profiler::global();
        profiler.stop();
        const auto prof = profiler.collect();
        obs::profilerRunsTotal().inc();
        obs::profilerSamplesTotal().inc(
                static_cast<double>(prof.samples));
        obs::profilerSamplesDroppedTotal().inc(
                static_cast<double>(prof.dropped));
        obs::profilerLastAttributedPct().set(prof.attributedPct());
        if (prof.writeFolded(flags.profile_out))
            std::fprintf(stderr,
                         "cpu profile (%ld samples, %.1f%% "
                         "span-attributed) written to %s\n",
                         prof.samples, prof.attributedPct(),
                         flags.profile_out.c_str());
        else
            std::fprintf(stderr, "cannot write %s\n",
                         flags.profile_out.c_str());
    }
    if (!flags.trace_out.empty()) {
        auto &tracer = obs::Tracer::global();
        tracer.disable();
        if (tracer.writeChromeTrace(flags.trace_out))
            std::fprintf(stderr, "trace (%zu spans) written to %s\n",
                         tracer.eventCount(),
                         flags.trace_out.c_str());
        else
            std::fprintf(stderr, "cannot write %s\n",
                         flags.trace_out.c_str());
    }
    if (!flags.metrics_out.empty()) {
        obs::registerStandardMetrics();
        obs::touchProcessMetrics();
        if (obs::Registry::global().writePrometheus(flags.metrics_out))
            std::fprintf(stderr, "metrics written to %s\n",
                         flags.metrics_out.c_str());
        else
            std::fprintf(stderr, "cannot write %s\n",
                         flags.metrics_out.c_str());
    }
}

int
dispatch(const std::vector<std::string> &args, const CliFlags &flags)
{
    const std::string cmd = args.front();
    const int nargs = static_cast<int>(args.size());

    {
        if (cmd == "devices") {
            for (auto kind : gpu::kAllDevices) {
                const auto &d = gpu::DeviceDescriptor::get(kind);
                std::printf("%-8s %s (%s, %zu V-F configs)\n",
                            deviceToken(kind), d.name.c_str(),
                            std::string(architectureName(
                                    d.architecture)).c_str(),
                            d.allConfigs().size());
            }
            return 0;
        }
        if (cmd == "campaign" && nargs == 3) {
            const auto kind = parseDevice(args[1]);
            if (!kind)
                return usage();
            if (flags.resilient) {
                const auto data = runResilientCampaign(*kind, flags);
                if (!data)
                    return 3;
                model::saveTrainingData(*data, args[2]);
            } else {
                model::saveTrainingData(runCampaign(*kind), args[2]);
            }
            std::fprintf(stderr, "campaign written to %s\n",
                         args[2].c_str());
            return 0;
        }
        if (cmd == "fit" && nargs == 3) {
            // Device name instead of a campaign file: run the bundled
            // synthetic resilient campaign in-process, then fit —
            // the whole measure→fit→save pipeline in one command.
            const auto kind = parseDevice(args[1]);
            if (kind && !fileExists(args[1])) {
                std::fprintf(stderr,
                             "no campaign file '%s'; running the "
                             "bundled synthetic campaign\n",
                             args[1].c_str());
                const auto data = runResilientCampaign(*kind, flags);
                if (!data)
                    return 3;
                return fitAndSave(*data, args[2], flags);
            }
            auto data = model::tryLoadTrainingData(
                    args[1], loadOptionsOf(flags));
            if (!data.ok())
                return reportLoadFailure(data.error());
            return fitAndSave(data.value(), args[2], flags);
        }
        if (cmd == "train" && nargs == 3) {
            const auto kind = parseDevice(args[1]);
            if (!kind)
                return usage();
            std::optional<model::TrainingData> data;
            if (flags.resilient) {
                data = runResilientCampaign(*kind, flags);
                if (!data)
                    return 3;
            } else {
                data = runCampaign(*kind);
            }
            return fitAndSave(*data, args[2], flags);
        }
        if (cmd == "info" && nargs == 2)
            return cmdInfo(args[1], flags);
        if (cmd == "predict" && (nargs == 3 || nargs == 5)) {
            std::optional<gpu::FreqConfig> cfg;
            if (nargs == 5)
                cfg = gpu::FreqConfig{std::atoi(args[3].c_str()),
                                      std::atoi(args[4].c_str())};
            return cmdPredict(args[1], args[2], cfg, flags);
        }
        if (cmd == "sweep" && nargs == 3)
            return cmdSweep(args[1], args[2], flags);
        if (cmd == "validate" && nargs >= 2)
            return cmdValidate({args.begin() + 1, args.end()},
                               flags);
        if (cmd == "metrics" && nargs == 1)
            return cmdMetrics(flags);
        if (cmd == "version" && nargs == 1)
            return cmdVersion(flags);
        if (cmd == "monitor" && nargs == 2)
            return cmdMonitor(args[1], flags);
        if (cmd == "alerts" && nargs == 2)
            return cmdAlerts(args[1], flags);
        if (cmd == "alerts") {
            std::fprintf(stderr,
                         "alerts needs exactly one device argument "
                         "(titanxp, titanx or k40c), got %d\n",
                         nargs - 1);
            return 2;
        }
        if (cmd == "traces" && nargs == 2)
            return cmdTraces(args[1], flags);
        if (cmd == "traces") {
            std::fprintf(stderr,
                         "traces needs exactly one device argument "
                         "(titanxp, titanx or k40c), got %d\n",
                         nargs - 1);
            return 2;
        }
        if (cmd == "fleet" && nargs == 2)
            return cmdFleet(args[1], flags);
        if (cmd == "fleet") {
            std::fprintf(stderr,
                         "fleet needs exactly one <num-devices> "
                         "argument, got %d\n",
                         nargs - 1);
            return 2;
        }
        if (cmd == "monitor") {
            std::fprintf(stderr,
                         "monitor needs exactly one device argument "
                         "(titanxp, titanx or k40c), got %d\n",
                         nargs - 1);
            return 2;
        }
        if (cmd == "audit") {
            // Flags are stripped by parseFlags wherever they appear,
            // so the only way to get here with nargs != 2 is a wrong
            // positional count — say so instead of the generic usage.
            if (nargs != 2) {
                std::fprintf(stderr,
                             "audit needs exactly one "
                             "<model-file|device> argument, got %d\n",
                             nargs - 1);
                return 2;
            }
            return cmdAudit(args[1], flags);
        }
        if (cmd == "export-cuda" && nargs == 2) {
            std::ofstream out(args[1]);
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n",
                             args[1].c_str());
                return 1;
            }
            out << ubench::cudaSuiteSource();
            std::fprintf(stderr,
                         "microbenchmark suite written to %s\n",
                         args[1].c_str());
            return 0;
        }
    }
    return usage();
}

} // namespace

int
main(int argc, char **argv)
{
    CliFlags flags;
    const auto args = parseFlags(argc, argv, flags);
    if (!args.empty() && args.front() == "--bad-flag")
        return 2; // parseFlags already named the offending flag
    if (flags.show_version)
        return cmdVersion(flags);
    if (args.empty())
        return usage();

    if (flags.verbose)
        gpupm::setLogLevel(gpupm::LogLevel::Debug);
    else if (flags.quiet)
        gpupm::setLogLevel(gpupm::LogLevel::Warn);
    if (!flags.trace_out.empty())
        gpupm::obs::Tracer::global().enable();
    if (!flags.profile_out.empty()) {
        std::string err;
        if (!gpupm::obs::Profiler::global().start({}, &err))
            std::fprintf(stderr, "cpu profiler unavailable: %s\n",
                         err.c_str());
    }

    int rc = 1;
    try {
        // Scoped so the root span completes before the trace is
        // written.
        GPUPM_TRACE_SPAN_NAMED(root, "cli", "cli." + args.front());
        rc = dispatch(args, flags);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        rc = 1;
    }
    writeObservabilityArtifacts(flags);
    return rc;
}
