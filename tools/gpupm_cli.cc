/**
 * @file
 * gpupm command-line tool.
 *
 * Drives the pipeline stages the way a host-side deployment would:
 *
 *   gpupm campaign  <device> <out.campaign>   run the training campaign
 *   gpupm fit       <in.campaign> <out.model> fit the DVFS-aware model
 *   gpupm train     <device> <out.model>      campaign + fit in one go
 *   gpupm info      <in.model>                summarize a fitted model
 *   gpupm predict   <in.model> <app> [fc fm]  predict an application
 *   gpupm sweep     <in.model> <app>          full V-F sweep table
 *   gpupm devices                             list supported devices
 *   gpupm export-cuda <out.cu>                emit the suite as CUDA
 *
 * <device> is one of: titanxp, titanx, k40c. <app> is a Table III
 * abbreviation (e.g. BLCKSC) — the tool profiles it on a fresh
 * simulated board at the reference configuration before predicting.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>

#include "common/table.hh"
#include "core/campaign.hh"
#include "core/metrics.hh"
#include "core/model_io.hh"
#include "core/predictor.hh"
#include "ubench/cuda_source.hh"
#include "workloads/workloads.hh"

namespace
{

using namespace gpupm;

std::optional<gpu::DeviceKind>
parseDevice(const std::string &name)
{
    if (name == "titanxp")
        return gpu::DeviceKind::TitanXp;
    if (name == "titanx")
        return gpu::DeviceKind::GtxTitanX;
    if (name == "k40c")
        return gpu::DeviceKind::TeslaK40c;
    return std::nullopt;
}

std::optional<workloads::Workload>
findApp(const std::string &name)
{
    for (const auto &w : workloads::fullValidationSet())
        if (w.name == name)
            return w;
    return std::nullopt;
}

int
usage()
{
    std::fprintf(stderr,
                 "usage:\n"
                 "  gpupm devices\n"
                 "  gpupm campaign <titanxp|titanx|k40c> <out>\n"
                 "  gpupm fit <campaign-file> <out-model>\n"
                 "  gpupm train <titanxp|titanx|k40c> <out-model>\n"
                 "  gpupm info <model-file>\n"
                 "  gpupm predict <model-file> <APP> [fcore fmem]\n"
                 "  gpupm sweep <model-file> <APP>\n"
                 "  gpupm export-cuda <out.cu>\n");
    return 2;
}

model::TrainingData
runCampaign(gpu::DeviceKind kind)
{
    sim::PhysicalGpu board(kind);
    std::fprintf(stderr, "running campaign on %s...\n",
                 board.descriptor().name.c_str());
    return model::runTrainingCampaign(board, ubench::buildSuite());
}

int
cmdInfo(const std::string &path)
{
    const auto m = model::loadModel(path);
    const auto &desc = gpu::DeviceDescriptor::get(m.deviceKind());
    std::printf("device: %s\n", desc.name.c_str());
    std::printf("reference: (%d, %d) MHz\n", m.reference().core_mhz,
                m.reference().mem_mhz);
    const auto &p = m.params();
    std::printf("beta: %.2f %.2f %.2f %.2f (W | W/GHz)\n", p.beta0,
                p.beta1, p.beta2, p.beta3);
    std::printf("omega (W/GHz):");
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
        std::printf(" %s=%.1f",
                    std::string(gpu::componentName(
                            static_cast<gpu::Component>(i))).c_str(),
                    p.omega[i]);
    std::printf("\nfitted configurations: %zu\n",
                m.voltageTable().size());
    std::printf("core voltage at fmem=%d: %.3f (min clock) .. %.3f "
                "(max clock)\n",
                m.reference().mem_mhz,
                m.voltages({desc.minCoreMhz(), m.reference().mem_mhz})
                        .core,
                m.voltages({desc.maxCoreMhz(), m.reference().mem_mhz})
                        .core);
    return 0;
}

gpu::ComponentArray
profileApp(const model::DvfsPowerModel &m,
           const workloads::Workload &app)
{
    sim::PhysicalGpu board(m.deviceKind());
    cupti::Profiler profiler(board, 11);
    const auto rm = profiler.profile(app.demand, m.reference());
    return model::utilizationsFromMetrics(rm, board.descriptor(),
                                          m.reference());
}

int
cmdPredict(const std::string &path, const std::string &app_name,
           std::optional<gpu::FreqConfig> cfg)
{
    const auto m = model::loadModel(path);
    const auto app = findApp(app_name);
    if (!app) {
        std::fprintf(stderr, "unknown application '%s'\n",
                     app_name.c_str());
        return 2;
    }
    const auto util = profileApp(m, *app);
    const gpu::FreqConfig target = cfg.value_or(m.reference());
    const auto p = m.hasVoltages(target)
                           ? m.predict(util, target)
                           : m.predictInterpolated(util, target);
    std::printf("%s @ (%d, %d) MHz: %.1f W total (constant %.1f W)\n",
                app->name.c_str(), target.core_mhz, target.mem_mhz,
                p.total_w, p.constant_w);
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
        std::printf("  %-7s %.1f W\n",
                    std::string(gpu::componentName(
                            static_cast<gpu::Component>(i))).c_str(),
                    p.component_w[i]);
    return 0;
}

int
cmdSweep(const std::string &path, const std::string &app_name)
{
    const auto m = model::loadModel(path);
    const auto app = findApp(app_name);
    if (!app) {
        std::fprintf(stderr, "unknown application '%s'\n",
                     app_name.c_str());
        return 2;
    }
    const auto util = profileApp(m, *app);
    model::Predictor pred(m);
    TextTable t({"fcore", "fmem", "predicted W"});
    t.setTitle(app->name + " across the fitted V-F grid");
    for (const auto &pt : pred.sweep(util))
        t.addRow({std::to_string(pt.cfg.core_mhz),
                  std::to_string(pt.cfg.mem_mhz),
                  TextTable::num(pt.prediction.total_w, 1)});
    t.print(std::cout);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage();
    const std::string cmd = argv[1];

    try {
        if (cmd == "devices") {
            for (auto kind : gpu::kAllDevices) {
                const auto &d = gpu::DeviceDescriptor::get(kind);
                std::printf("%-8s %s (%s, %zu V-F configs)\n",
                            kind == gpu::DeviceKind::TitanXp ? "titanxp"
                            : kind == gpu::DeviceKind::GtxTitanX
                                    ? "titanx"
                                    : "k40c",
                            d.name.c_str(),
                            std::string(architectureName(
                                    d.architecture)).c_str(),
                            d.allConfigs().size());
            }
            return 0;
        }
        if (cmd == "campaign" && argc == 4) {
            const auto kind = parseDevice(argv[2]);
            if (!kind)
                return usage();
            model::saveTrainingData(runCampaign(*kind), argv[3]);
            std::fprintf(stderr, "campaign written to %s\n", argv[3]);
            return 0;
        }
        if (cmd == "fit" && argc == 4) {
            const auto data = model::loadTrainingData(argv[2]);
            const auto fit = model::ModelEstimator().estimate(data);
            std::fprintf(stderr,
                         "fit: %d iterations, RMSE %.2f W\n",
                         fit.iterations, fit.rmse_w);
            model::saveModel(fit.model, argv[3]);
            std::fprintf(stderr, "model written to %s\n", argv[3]);
            return 0;
        }
        if (cmd == "train" && argc == 4) {
            const auto kind = parseDevice(argv[2]);
            if (!kind)
                return usage();
            const auto data = runCampaign(*kind);
            const auto fit = model::ModelEstimator().estimate(data);
            std::fprintf(stderr,
                         "fit: %d iterations, RMSE %.2f W\n",
                         fit.iterations, fit.rmse_w);
            model::saveModel(fit.model, argv[3]);
            std::fprintf(stderr, "model written to %s\n", argv[3]);
            return 0;
        }
        if (cmd == "info" && argc == 3)
            return cmdInfo(argv[2]);
        if (cmd == "predict" && (argc == 4 || argc == 6)) {
            std::optional<gpu::FreqConfig> cfg;
            if (argc == 6)
                cfg = gpu::FreqConfig{std::atoi(argv[4]),
                                      std::atoi(argv[5])};
            return cmdPredict(argv[2], argv[3], cfg);
        }
        if (cmd == "sweep" && argc == 4)
            return cmdSweep(argv[2], argv[3]);
        if (cmd == "export-cuda" && argc == 3) {
            std::ofstream out(argv[2]);
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n", argv[2]);
                return 1;
            }
            out << ubench::cudaSuiteSource();
            std::fprintf(stderr,
                         "microbenchmark suite written to %s\n",
                         argv[2]);
            return 0;
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    return usage();
}
