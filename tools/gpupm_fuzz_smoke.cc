/**
 * @file
 * Deterministic parser fuzz smoke test.
 *
 * The file loaders are a trust boundary: a corrupt artifact must come
 * back as a typed error, never as a crash, an assertion abort, an OOM
 * from a fuzzed size field, or a sanitizer finding. This tool applies
 * N seeded mutations (truncation, bit flips, byte stomps, splices,
 * "nan" smuggling, deletions, garbage) to golden copies of all three
 * file formats — both the v2 envelope and the legacy payload form —
 * and feeds every mutant to the matching try* parser and to
 * detectFileKind. Any exception escaping the typed API fails the run.
 *
 * Runs as a plain test and, via scripts/reproduce_all.sh, under the
 * ASan+UBSan build. Fully deterministic: fixed seed, no time or
 * environment dependence.
 */

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "common/random.hh"
#include "core/model_io.hh"
#include "core/validate.hh"
#include "obs/scoreboard.hh"

namespace
{

using namespace gpupm;

constexpr int kMutantsPerFormat = 1000;
constexpr std::uint64_t kSeed = 0xF0221u;

model::DvfsPowerModel
goldenModel()
{
    model::ModelParams p;
    p.beta0 = 52.0;
    p.beta1 = 10.5;
    p.beta2 = 15.0;
    p.beta3 = 7.25;
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
        p.omega[i] = 3.0 + static_cast<double>(i);
    model::DvfsPowerModel m(gpu::DeviceKind::GtxTitanX, {975, 3505},
                            p);
    m.setVoltages({975, 3505}, {1.0, 1.0});
    m.setVoltages({595, 3505}, {0.85, 1.0});
    m.setVoltages({975, 810}, {1.0, 0.9});
    m.setVoltages({595, 810}, {0.85, 0.9});
    return m;
}

model::TrainingData
goldenCampaign()
{
    model::TrainingData data;
    data.device = gpu::DeviceKind::GtxTitanX;
    data.reference = {975, 3505};
    data.configs = {{975, 3505}, {595, 3505}, {975, 810},
                    {595, 810}};
    for (int b = 0; b < 3; ++b) {
        gpu::ComponentArray u{};
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
            u[i] = b == 0 ? 0.0 : 0.1 * static_cast<double>(b + i);
        data.utils.push_back(u);
        std::vector<double> row;
        for (std::size_t c = 0; c < data.configs.size(); ++c)
            row.push_back(80.0 + 10.0 * b +
                          5.0 * static_cast<double>(c));
        data.power_w.push_back(row);
    }
    return data;
}

model::CampaignCheckpoint
goldenCheckpoint()
{
    model::CampaignCheckpoint ck;
    ck.seed = 7;
    ck.device = gpu::DeviceKind::GtxTitanX;
    ck.reference = {975, 3505};
    ck.configs = {{975, 3505}, {595, 3505}};
    ck.benchmark_names = {"add-sweep", "dram-stream"};
    ck.utils_done.push_back(1);
    ck.utils_done.push_back(0);
    for (int b = 0; b < 2; ++b) {
        gpu::ComponentArray u{};
        u[0] = 0.5 * b;
        ck.utils.push_back(u);
        std::vector<char> done;
        done.push_back(1);
        done.push_back(b == 0 ? 1 : 0);
        ck.power_done.push_back(done);
        ck.power_w.push_back({120.5, b == 0 ? 97.25 : 0.0});
    }
    ck.report.cells_total = 4;
    ck.report.cells_done = 3;
    for (const auto &name : ck.benchmark_names) {
        model::BenchmarkReport br;
        br.name = name;
        ck.report.benchmarks.push_back(br);
    }
    return ck;
}

obs::Scoreboard
goldenScoreboard()
{
    std::vector<obs::ResidualSample> samples;
    for (const char *app : {"stream", "dgemm"})
        for (int core : {595, 975})
            for (int mem : {810, 3505}) {
                obs::ResidualSample s;
                s.app = app;
                s.cfg = {core, mem};
                s.measured_w = 100.0 + core * 0.05 + mem * 0.01;
                s.predicted_w = s.measured_w * 1.05;
                s.constant_w = 40.0;
                for (std::size_t i = 0; i < s.component_w.size(); ++i)
                    s.component_w[i] = 0.5 * static_cast<double>(i);
                s.baseline_w = {{"abe", s.measured_w * 1.15}};
                samples.push_back(std::move(s));
            }
    return obs::Scoreboard::fromSamples(1, "GTX Titan X", {975, 3505},
                                        std::move(samples));
}

std::string
mutate(const std::string &orig, Rng &rng)
{
    std::string s = orig;
    switch (rng.next() % 7) {
      case 0: // truncate
        s = s.substr(0, rng.next() % (s.size() + 1));
        break;
      case 1: // single bit flip
        if (!s.empty())
            s[rng.next() % s.size()] ^=
                    static_cast<char>(1 << (rng.next() % 8));
        break;
      case 2: // byte stomp
        if (!s.empty())
            s[rng.next() % s.size()] =
                    static_cast<char>(rng.next() % 256);
        break;
      case 3: { // splice a block of the file over another
        if (s.size() >= 2) {
            const std::size_t len = 1 + rng.next() % (s.size() / 2);
            const std::size_t from =
                    rng.next() % (s.size() - len + 1);
            const std::size_t to = rng.next() % (s.size() - len + 1);
            s.replace(to, len, s.substr(from, len));
        }
        break;
      }
      case 4: { // NaN smuggling over an arbitrary position
        if (!s.empty()) {
            const std::size_t pos = rng.next() % s.size();
            s.replace(pos, std::min<std::size_t>(3, s.size() - pos),
                      rng.next() % 2 ? "nan" : "inf");
        }
        break;
      }
      case 5: { // delete a range
        if (!s.empty()) {
            const std::size_t a = rng.next() % s.size();
            const std::size_t len = 1 + rng.next() % (s.size() - a);
            s.erase(a, len);
        }
        break;
      }
      case 6: // empty or pure garbage
        if (rng.next() % 2) {
            s.clear();
        } else {
            s.assign(rng.next() % 64,
                     static_cast<char>(rng.next() % 256));
        }
        break;
    }
    return s;
}

/**
 * Feed mutants of one golden text to one typed parser. Returns 0 when
 * every mutant came back as a value or a typed error; 1 when anything
 * escaped as an exception.
 */
template <typename ParseFn, typename ValidateFn>
int
fuzzFormat(const char *name, const std::string &golden,
           ParseFn parse, ValidateFn validate)
{
    // The unmutated golden must parse.
    {
        auto res = parse(golden);
        if (!res.ok()) {
            std::fprintf(stderr, "%s: golden does not parse: %s\n",
                         name, res.error().message.c_str());
            return 1;
        }
    }

    Rng rng(kSeed);
    int accepted = 0;
    for (int i = 0; i < kMutantsPerFormat; ++i) {
        const std::string mutant = mutate(golden, rng);
        try {
            auto res = parse(mutant);
            if (res.ok()) {
                ++accepted;
                // A surviving mutant still goes through validation;
                // the report must build without throwing.
                (void)validate(res.value()).summary();
            }
            (void)model::detectFileKind(mutant);
        } catch (const std::exception &e) {
            std::fprintf(stderr,
                         "%s: mutant %d escaped the typed API: %s\n",
                         name, i, e.what());
            return 1;
        } catch (...) {
            std::fprintf(stderr,
                         "%s: mutant %d threw a non-std exception\n",
                         name, i);
            return 1;
        }
    }
    std::printf("%s: %d mutants, %d parsed clean\n", name,
                kMutantsPerFormat, accepted);
    return 0;
}

} // namespace

int
main()
{
    const auto model_text = model::serializeModel(goldenModel());
    const auto campaign_text =
            model::serializeTrainingData(goldenCampaign());
    const auto checkpoint_text =
            model::serializeCampaignCheckpoint(goldenCheckpoint());
    const auto scoreboard_text =
            model::serializeScoreboard(goldenScoreboard());
    // Legacy (pre-envelope) forms exercise the v0 compatibility path.
    const auto legacy_model = goldenModel().serialize();
    const auto legacy_campaign =
            campaign_text.substr(campaign_text.find('\n') + 1);
    const auto legacy_checkpoint =
            checkpoint_text.substr(checkpoint_text.find('\n') + 1);
    // A scoreboard's legacy form is the raw JSON payload (what
    // `gpupm audit --json` prints and bench/golden/ stores).
    const auto legacy_scoreboard = goldenScoreboard().toJson(true);

    const auto parse_model = [](const std::string &t) {
        return model::tryParseModel(t);
    };
    const auto parse_campaign = [](const std::string &t) {
        return model::tryParseTrainingData(t);
    };
    const auto parse_checkpoint = [](const std::string &t) {
        return model::tryParseCampaignCheckpoint(t);
    };
    const auto parse_scoreboard = [](const std::string &t) {
        return model::tryParseScoreboard(t);
    };

    int rc = 0;
    rc |= fuzzFormat("model.v2", model_text, parse_model,
                     model::validateModel);
    rc |= fuzzFormat("model.legacy", legacy_model, parse_model,
                     model::validateModel);
    rc |= fuzzFormat("campaign.v2", campaign_text, parse_campaign,
                     model::validateTrainingData);
    rc |= fuzzFormat("campaign.legacy", legacy_campaign,
                     parse_campaign, model::validateTrainingData);
    rc |= fuzzFormat("checkpoint.v2", checkpoint_text,
                     parse_checkpoint, model::validateCheckpoint);
    rc |= fuzzFormat("checkpoint.legacy", legacy_checkpoint,
                     parse_checkpoint, model::validateCheckpoint);
    rc |= fuzzFormat("scoreboard.v2", scoreboard_text,
                     parse_scoreboard, model::validateScoreboard);
    rc |= fuzzFormat("scoreboard.legacy", legacy_scoreboard,
                     parse_scoreboard, model::validateScoreboard);
    return rc;
}
