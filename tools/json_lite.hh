/**
 * @file
 * Minimal tree-owning JSON parser shared by the artifact-checking
 * tools (gpupm_trace_check, gpupm_bench_check), so tests and scripts
 * can assert on JSON artifacts without a Python or jq dependency.
 * Tolerates any JSON the repo's emitters produce; rejects trailing
 * garbage. Errors carry the byte offset so a truncated file is
 * diagnosable.
 */

#ifndef GPUPM_TOOLS_JSON_LITE_HH
#define GPUPM_TOOLS_JSON_LITE_HH

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/numio.hh"

namespace gpupm
{
namespace jsonlite
{

/** A parsed JSON value (tree-owning, no sharing). */
struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &kv : object)
            if (kv.first == key)
                return &kv.second;
        return nullptr;
    }
};

/** Recursive-descent parser over the whole document. */
class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    bool
    parse(JsonValue &out, std::string &err)
    {
        pos_ = 0;
        if (!value(out, err))
            return false;
        skipWs();
        if (pos_ != text_.size()) {
            err = "trailing garbage at byte " + std::to_string(pos_);
            return false;
        }
        return true;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    fail(std::string &err, const std::string &what)
    {
        err = what + " at byte " + std::to_string(pos_);
        return false;
    }

    bool
    literal(const char *word, std::string &err)
    {
        const std::size_t n = std::strlen(word);
        if (text_.compare(pos_, n, word) != 0)
            return fail(err, std::string("expected '") + word + "'");
        pos_ += n;
        return true;
    }

    bool
    string(std::string &out, std::string &err)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail(err, "expected string");
        ++pos_;
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail(err, "unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail(err, "truncated \\u escape");
                // The emitters never write non-ASCII; keep the
                // codepoint as '?' rather than decoding UTF-16.
                pos_ += 4;
                out += '?';
                break;
              }
              default: return fail(err, "bad escape");
            }
        }
        if (pos_ >= text_.size())
            return fail(err, "unterminated string");
        ++pos_; // closing quote
        return true;
    }

    bool
    number(double &out, std::string &err)
    {
        std::size_t end = pos_;
        if (end < text_.size() && (text_[end] == '-'))
            ++end;
        while (end < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[end])) ||
                text_[end] == '.' || text_[end] == 'e' ||
                text_[end] == 'E' || text_[end] == '+' ||
                text_[end] == '-'))
            ++end;
        if (!numio::parseDouble(
                    std::string_view(text_).substr(pos_, end - pos_),
                    out))
            return fail(err, "bad number");
        pos_ = end;
        return true;
    }

    bool
    value(JsonValue &out, std::string &err)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail(err, "unexpected end of input");
        switch (text_[pos_]) {
          case '{': {
            out.kind = JsonValue::Kind::Object;
            ++pos_;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!string(key, err))
                    return false;
                skipWs();
                if (pos_ >= text_.size() || text_[pos_] != ':')
                    return fail(err, "expected ':'");
                ++pos_;
                JsonValue v;
                if (!value(v, err))
                    return false;
                out.object.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (pos_ < text_.size() && text_[pos_] == '}') {
                    ++pos_;
                    return true;
                }
                return fail(err, "expected ',' or '}'");
            }
          }
          case '[': {
            out.kind = JsonValue::Kind::Array;
            ++pos_;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            for (;;) {
                JsonValue v;
                if (!value(v, err))
                    return false;
                out.array.push_back(std::move(v));
                skipWs();
                if (pos_ < text_.size() && text_[pos_] == ',') {
                    ++pos_;
                    continue;
                }
                if (pos_ < text_.size() && text_[pos_] == ']') {
                    ++pos_;
                    return true;
                }
                return fail(err, "expected ',' or ']'");
            }
          }
          case '"':
            out.kind = JsonValue::Kind::String;
            return string(out.str, err);
          case 't':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            return literal("true", err);
          case 'f':
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            return literal("false", err);
          case 'n':
            out.kind = JsonValue::Kind::Null;
            return literal("null", err);
          default:
            out.kind = JsonValue::Kind::Number;
            return number(out.number, err);
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** Slurp a file; diagnoses open failures on stderr. */
inline bool
readFile(const std::string &path, std::string &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return false;
    }
    std::ostringstream os;
    os << in.rdbuf();
    out = os.str();
    return true;
}

} // namespace jsonlite
} // namespace gpupm

#endif // GPUPM_TOOLS_JSON_LITE_HH
