/**
 * @file
 * Prior-art comparison models (Sec. VI of the paper).
 *
 * - AbeLinearModel: the Abe et al. [14] approach — per-domain power
 *   linear in the domain frequency with event-derived utilizations,
 *   no voltage modelling, plain least squares trained on a 3x3
 *   frequency subset. The paper reports 15/14/23.5% errors for this
 *   family.
 * - CubicScalingModel: the classic V-proportional-to-f assumption
 *   behind GPUWattch-style DVFS scaling [12]: core dynamic power
 *   scales with (f/f_ref)^3.
 * - RefScalingModel: application-agnostic scaling of the measured
 *   reference power, P(cfg) = P_ref * (s + c*fc/fcr + m*fm/fmr) —
 *   what a counters-free DVFS governor would use.
 */

#ifndef GPUPM_BASELINES_BASELINES_HH
#define GPUPM_BASELINES_BASELINES_HH

#include "core/estimator.hh"

namespace gpupm
{
namespace baselines
{

/** Abe et al.-style per-domain linear-frequency regression. */
class AbeLinearModel
{
  public:
    /**
     * Train on a 3-core x 3-mem frequency subset of the campaign (the
     * paper's baseline methodology), falling back to every available
     * frequency when fewer exist.
     */
    static AbeLinearModel train(const model::TrainingData &data);

    /** Predict total power at a configuration. */
    double predict(const gpu::ComponentArray &util,
                   const gpu::FreqConfig &cfg) const;

  private:
    // Same feature layout as the proposed model with V = 1.
    model::ModelParams params_{};
};

/** V-proportional-to-f cubic-scaling model. */
class CubicScalingModel
{
  public:
    /** Train over the full campaign. */
    static CubicScalingModel train(const model::TrainingData &data);

    double predict(const gpu::ComponentArray &util,
                   const gpu::FreqConfig &cfg) const;

  private:
    model::ModelParams params_{};
    gpu::FreqConfig reference_{};
};

/** Reference-power scaling without counters. */
class RefScalingModel
{
  public:
    static RefScalingModel train(const model::TrainingData &data);

    /**
     * Predict from the application's measured power at the reference
     * configuration.
     */
    double predict(double ref_power_w, const gpu::FreqConfig &cfg) const;

  private:
    double s_ = 0.0; ///< static share
    double c_ = 0.0; ///< core-scaling share
    double m_ = 0.0; ///< memory-scaling share
    gpu::FreqConfig reference_{};
};

} // namespace baselines
} // namespace gpupm

#endif // GPUPM_BASELINES_BASELINES_HH
