#include "baselines.hh"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.hh"
#include "linalg/lstsq.hh"

namespace gpupm
{
namespace baselines
{

using gpu::Component;
using gpu::componentIndex;
using linalg::Matrix;
using linalg::Vector;

namespace
{

constexpr std::array<Component, 6> kCoreComponents = {
    Component::Int, Component::SP, Component::DP,
    Component::SF, Component::Shared, Component::L2,
};

/**
 * Shared trainer for the per-domain regressions: fit
 * P = b0 + gc(fc)*(b1 + sum w_i u_i) + gm(fm)*(b3 + w_mem u_dram)
 * where gc/gm are the domain frequency transforms (identity for Abe,
 * cubic-core for the GPUWattch-style variant).
 */
template <typename Gc, typename Gm>
model::ModelParams
fitDomainRegression(const model::TrainingData &data,
                    const std::vector<std::size_t> &config_subset,
                    Gc gc, Gm gm)
{
    const std::size_t nb = data.utils.size();
    // Features: 1, gc, gc*u_core(6), gm, gm*u_dram  -> 10 columns.
    const std::size_t ncols = 2 + kCoreComponents.size() + 2;
    Matrix a(nb * config_subset.size(), ncols);
    Vector rhs(nb * config_subset.size());

    std::size_t row = 0;
    for (std::size_t b = 0; b < nb; ++b) {
        for (std::size_t ci : config_subset) {
            const auto &cfg = data.configs[ci];
            const double fc = gc(1e-3 * cfg.core_mhz);
            const double fm = gm(1e-3 * cfg.mem_mhz);
            std::size_t col = 0;
            a(row, col++) = 1.0;
            a(row, col++) = fc;
            for (Component c : kCoreComponents)
                a(row, col++) =
                        fc * data.utils[b][componentIndex(c)];
            a(row, col++) = fm;
            a(row, col++) =
                    fm *
                    data.utils[b][componentIndex(Component::Dram)];
            rhs[row] = data.power_w[b][ci];
            ++row;
        }
    }

    const Vector x = linalg::leastSquares(a, rhs);

    model::ModelParams p;
    std::size_t col = 0;
    p.beta0 = x[col++];
    p.beta1 = x[col++];
    for (Component c : kCoreComponents)
        p.omega[componentIndex(c)] = x[col++];
    p.beta3 = x[col++];
    p.omega[componentIndex(Component::Dram)] = x[col++];
    p.beta2 = 0.0; // merged into beta0 (no voltage split to resolve)
    return p;
}

template <typename Gc, typename Gm>
double
predictDomainRegression(const model::ModelParams &p,
                        const gpu::ComponentArray &util,
                        const gpu::FreqConfig &cfg, Gc gc, Gm gm)
{
    const double fc = gc(1e-3 * cfg.core_mhz);
    const double fm = gm(1e-3 * cfg.mem_mhz);
    double core = p.beta1;
    for (Component c : kCoreComponents)
        core += p.omega[componentIndex(c)] * util[componentIndex(c)];
    const double mem =
            p.beta3 + p.omega[componentIndex(Component::Dram)] *
                              util[componentIndex(Component::Dram)];
    return p.beta0 + fc * core + fm * mem;
}

/** Pick <= n roughly evenly spaced values from a sorted unique set. */
std::vector<int>
pickSpread(std::vector<int> values, std::size_t n)
{
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()),
                 values.end());
    if (values.size() <= n)
        return values;
    std::vector<int> out;
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t idx =
                i * (values.size() - 1) / (n - 1);
        out.push_back(values[idx]);
    }
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

} // namespace

AbeLinearModel
AbeLinearModel::train(const model::TrainingData &data)
{
    // Abe et al. train on 3 core and 3 memory frequencies.
    std::vector<int> cores, mems;
    for (const auto &cfg : data.configs) {
        cores.push_back(cfg.core_mhz);
        mems.push_back(cfg.mem_mhz);
    }
    const auto core_sel = pickSpread(cores, 3);
    const auto mem_sel = pickSpread(mems, 3);

    std::vector<std::size_t> subset;
    for (std::size_t ci = 0; ci < data.configs.size(); ++ci) {
        const auto &cfg = data.configs[ci];
        const bool core_in =
                std::find(core_sel.begin(), core_sel.end(),
                          cfg.core_mhz) != core_sel.end();
        const bool mem_in =
                std::find(mem_sel.begin(), mem_sel.end(),
                          cfg.mem_mhz) != mem_sel.end();
        if (core_in && mem_in)
            subset.push_back(ci);
    }
    GPUPM_ASSERT(!subset.empty(), "no training subset");

    AbeLinearModel m;
    const auto id = [](double f) { return f; };
    m.params_ = fitDomainRegression(data, subset, id, id);
    return m;
}

double
AbeLinearModel::predict(const gpu::ComponentArray &util,
                        const gpu::FreqConfig &cfg) const
{
    const auto id = [](double f) { return f; };
    return predictDomainRegression(params_, util, cfg, id, id);
}

CubicScalingModel
CubicScalingModel::train(const model::TrainingData &data)
{
    std::vector<std::size_t> all(data.configs.size());
    for (std::size_t i = 0; i < all.size(); ++i)
        all[i] = i;

    CubicScalingModel m;
    m.reference_ = data.reference;
    const double fcr = 1e-3 * data.reference.core_mhz;
    // V ~ f on the core domain => dynamic ~ f^3; memory stays linear
    // (its voltage genuinely does not scale).
    const auto gc = [fcr](double f) { return f * f * f / (fcr * fcr); };
    const auto gm = [](double f) { return f; };
    m.params_ = fitDomainRegression(data, all, gc, gm);
    return m;
}

double
CubicScalingModel::predict(const gpu::ComponentArray &util,
                           const gpu::FreqConfig &cfg) const
{
    const double fcr = 1e-3 * reference_.core_mhz;
    const auto gc = [fcr](double f) { return f * f * f / (fcr * fcr); };
    const auto gm = [](double f) { return f; };
    return predictDomainRegression(params_, util, cfg, gc, gm);
}

RefScalingModel
RefScalingModel::train(const model::TrainingData &data)
{
    RefScalingModel m;
    m.reference_ = data.reference;
    const auto ref_lookup = data.configIndex(data.reference);
    GPUPM_ASSERT(ref_lookup.has_value(),
                 "reference configuration not in training data");
    const std::size_t ref_ci = *ref_lookup;

    // P(cfg)/P(ref) = s + c * fc/fcr + m * fm/fmr over all
    // microbenchmarks and configs.
    Matrix a(data.utils.size() * data.configs.size(), 3);
    Vector rhs(data.utils.size() * data.configs.size());
    std::size_t row = 0;
    for (std::size_t b = 0; b < data.utils.size(); ++b) {
        const double pref = data.power_w[b][ref_ci];
        for (std::size_t ci = 0; ci < data.configs.size(); ++ci) {
            const auto &cfg = data.configs[ci];
            a(row, 0) = 1.0;
            a(row, 1) = static_cast<double>(cfg.core_mhz) /
                        data.reference.core_mhz;
            a(row, 2) = static_cast<double>(cfg.mem_mhz) /
                        data.reference.mem_mhz;
            rhs[row] = pref > 0.0 ? data.power_w[b][ci] / pref : 1.0;
            ++row;
        }
    }
    const Vector x = linalg::leastSquares(a, rhs);
    m.s_ = x[0];
    m.c_ = x[1];
    m.m_ = x[2];
    return m;
}

double
RefScalingModel::predict(double ref_power_w,
                         const gpu::FreqConfig &cfg) const
{
    const double rc = static_cast<double>(cfg.core_mhz) /
                      reference_.core_mhz;
    const double rm = static_cast<double>(cfg.mem_mhz) /
                      reference_.mem_mhz;
    return ref_power_w * (s_ + c_ * rc + m_ * rm);
}

} // namespace baselines
} // namespace gpupm
