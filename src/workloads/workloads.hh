/**
 * @file
 * The validation applications of the paper's Table III, expressed as
 * synthetic kernel demands.
 *
 * Each application is authored as a *utilization signature*: the
 * per-component utilization it exhibits on the GTX Titan X at the
 * reference configuration (975, 3505) MHz, taken from the values the
 * paper reports in Figs. 2, 9 and 10 where labelled and from the
 * qualitative behaviour of the original benchmarks elsewhere. The
 * signature is inverted through the analytic performance model into a
 * resource demand, after which the workload behaves physically on every
 * device and configuration: utilizations shift with frequency, other
 * devices see different bottlenecks, and no model-side quantity is ever
 * fed directly into the estimator.
 */

#ifndef GPUPM_WORKLOADS_WORKLOADS_HH
#define GPUPM_WORKLOADS_WORKLOADS_HH

#include <string>
#include <vector>

#include "gpu/components.hh"
#include "sim/kernel.hh"

namespace gpupm
{
namespace workloads
{

/** One validation application. */
struct Workload
{
    std::string name;   ///< figure-axis abbreviation (e.g. "BLCKSC")
    std::string suite;  ///< Rodinia / Parboil / Polybench / CUDA SDK
    sim::KernelDemand demand;
};

/** Target utilization signature used to author a workload. */
struct UtilSignature
{
    gpu::ComponentArray util{};   ///< target utilizations at reference
    double other_frac = 0.15;     ///< extra issue traffic vs unit work
    /** Read share of the DRAM / L2 traffic. */
    double rd_frac = 0.7;
};

/**
 * Invert a utilization signature into a kernel demand through the
 * analytic model at the GTX Titan X reference configuration. The
 * exposed-latency term is sized so the execution time matches the
 * signature exactly (utilizations come out at their target values).
 *
 * @param name  kernel name.
 * @param sig   target signature.
 * @param time_s  execution time of one launch at the reference.
 */
sim::KernelDemand demandFromSignature(const std::string &name,
                                      const UtilSignature &sig,
                                      double time_s = 0.02);

/** The 26 validation applications (the Fig. 8 x-axis set). */
std::vector<Workload> validationSet();

/** Validation set plus matrixMulCUBLAS (the Fig. 7/10 set). */
std::vector<Workload> fullValidationSet();

/** matrixMulCUBLAS with n-by-n inputs (Fig. 9: 64, 512, 4096). */
Workload matrixMulCublas(int n);

/** The Fig. 2 subjects. */
Workload blackScholes();
Workload cutcp();

} // namespace workloads
} // namespace gpupm

#endif // GPUPM_WORKLOADS_WORKLOADS_HH
