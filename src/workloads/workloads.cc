#include "workloads.hh"

#include <cmath>
#include <cstdint>

#include "common/logging.hh"
#include "gpu/device.hh"
#include "sim/perf_model.hh"

namespace gpupm
{
namespace workloads
{

using gpu::Component;
using gpu::componentIndex;

sim::KernelDemand
demandFromSignature(const std::string &name, const UtilSignature &sig,
                    double time_s)
{
    GPUPM_ASSERT(time_s > 0.0, "non-positive target time");
    const gpu::DeviceDescriptor &dev =
            gpu::DeviceDescriptor::get(gpu::DeviceKind::GtxTitanX);
    const gpu::FreqConfig ref = dev.referenceConfig();
    const sim::AnalyticPerfModel perf;
    const double p = perf.overlapP();

    sim::KernelDemand d;
    d.name = name;

    // Unit demands: U_x * peak_rate * T.
    const auto unit_warps = [&](Component c) {
        return sig.util[componentIndex(c)] *
               dev.peakWarpsPerSecond(c, ref.core_mhz) * time_s;
    };
    d.warps_int = unit_warps(Component::Int);
    d.warps_sp = unit_warps(Component::SP);
    d.warps_dp = unit_warps(Component::DP);
    d.warps_sf = unit_warps(Component::SF);
    d.warps_other = sig.other_frac *
                    (d.warps_int + d.warps_sp + d.warps_dp +
                     d.warps_sf);

    const auto level_bytes = [&](Component c) {
        return sig.util[componentIndex(c)] * dev.peakBandwidth(c, ref) *
               time_s;
    };
    const double l2 = level_bytes(Component::L2);
    d.bytes_l2_rd = sig.rd_frac * l2;
    d.bytes_l2_wr = (1.0 - sig.rd_frac) * l2;
    const double dram = level_bytes(Component::Dram);
    d.bytes_dram_rd = sig.rd_frac * dram;
    d.bytes_dram_wr = (1.0 - sig.rd_frac) * dram;
    const double sh = level_bytes(Component::Shared);
    d.bytes_shared_ld = 0.5 * sh;
    d.bytes_shared_st = 0.5 * sh;

    // Exposed latency sized so the p-norm of all service-time shares
    // equals 1, i.e. the execution time lands exactly on time_s and
    // every utilization on its target.
    const double fc_hz = 1e6 * ref.core_mhz;
    const double u_issue = d.totalWarpInstructions() /
                           (fc_hz * dev.num_sms * perf.issueSlots()) /
                           time_s;
    double sum_p = std::pow(u_issue, p);
    for (double u : sig.util)
        sum_p += std::pow(u, p);
    if (sum_p < 1.0) {
        const double lambda = std::pow(1.0 - sum_p, 1.0 / p);
        d.latency_cycles = lambda * time_s * fc_hz;
    } else {
        warn("signature '", name, "' over-commits the reference ",
             "configuration (p-sum ", sum_p, "); utilizations will ",
             "deflate");
    }
    return d;
}

namespace
{

/** Compact builder for the signature tables below. */
Workload
make(const char *name, const char *suite, double u_int, double u_sp,
     double u_dp, double u_sf, double u_sh, double u_l2, double u_dram,
     double other_frac = 0.15, double time_s = 0.02)
{
    UtilSignature sig;
    sig.util[componentIndex(Component::Int)] = u_int;
    sig.util[componentIndex(Component::SP)] = u_sp;
    sig.util[componentIndex(Component::DP)] = u_dp;
    sig.util[componentIndex(Component::SF)] = u_sf;
    sig.util[componentIndex(Component::Shared)] = u_sh;
    sig.util[componentIndex(Component::L2)] = u_l2;
    sig.util[componentIndex(Component::Dram)] = u_dram;
    sig.other_frac = other_frac;
    Workload w;
    w.name = name;
    w.suite = suite;
    w.demand = demandFromSignature(name, sig, time_s);
    // Deterministic per-application replay/divergence signature in
    // [-0.25, +0.35]; real kernels differ widely in how much replay
    // traffic they generate.
    std::uint64_t h = 1469598103934665603ull;
    for (char c : w.name) {
        h ^= static_cast<unsigned char>(c);
        h *= 1099511628211ull;
    }
    w.demand.counter_distortion =
            -0.25 + 0.60 * static_cast<double>(h % 10000) / 10000.0;
    return w;
}

} // namespace

std::vector<Workload>
validationSet()
{
    // Signatures at the GTX Titan X reference configuration. Labelled
    // values in Figs. 2/10 are matched where the paper prints them;
    // the rest follow the known behaviour of the original benchmarks.
    //                 name      suite        INT   SP    DP    SF    SH    L2    DRAM
    std::vector<Workload> v;
    v.push_back(make("STCL", "Rodinia", 0.15, 0.20, 0.00, 0.00, 0.02,
                     0.30, 0.80, 0.45));
    v.push_back(make("BCKP", "Rodinia", 0.14, 0.30, 0.00, 0.00, 0.30,
                     0.35, 0.50, 0.25));
    v.push_back(make("LUD", "Rodinia", 0.20, 0.35, 0.00, 0.00, 0.49,
                     0.14, 0.11, 0.35));
    v.push_back(make("2MM", "Polybench", 0.19, 0.49, 0.00, 0.00, 0.13,
                     0.68, 0.30, 0.10));
    v.push_back(make("FDTD", "Polybench", 0.20, 0.30, 0.00, 0.00, 0.02,
                     0.52, 0.71, 0.30));
    v.push_back(make("SYRK", "Polybench", 0.25, 0.37, 0.00, 0.00, 0.05,
                     0.86, 0.14, 0.12));
    v.push_back(make("CORR", "Polybench", 0.35, 0.30, 0.00, 0.00, 0.04,
                     0.58, 0.17, 0.40));
    v.push_back(make("GEMM", "Polybench", 0.20, 0.52, 0.00, 0.00, 0.10,
                     0.69, 0.14, 0.08));
    v.push_back(make("GESUMV", "Polybench", 0.13, 0.19, 0.00, 0.00,
                     0.02, 0.56, 0.83, 0.28));
    v.push_back(make("GRAMS", "Polybench", 0.17, 0.24, 0.00, 0.00,
                     0.03, 0.61, 0.19, 0.50));
    v.push_back(make("SYRK_D", "Polybench", 0.12, 0.05, 0.85, 0.00,
                     0.04, 0.20, 0.12, 0.15));
    v.push_back(make("3MM", "Polybench", 0.18, 0.52, 0.00, 0.00, 0.11,
                     0.72, 0.24, 0.09));
    v.push_back(make("GAUSS", "Rodinia", 0.11, 0.12, 0.00, 0.00, 0.02,
                     0.25, 0.23, 0.55));
    v.push_back(make("HOTS", "Rodinia", 0.20, 0.47, 0.00, 0.00, 0.25,
                     0.30, 0.30, 0.18));
    v.push_back(make("COVAR", "Polybench", 0.50, 0.23, 0.00, 0.00,
                     0.03, 0.64, 0.21, 0.30));
    v.push_back(make("PF_N", "Rodinia", 0.51, 0.15, 0.00, 0.00, 0.03,
                     0.47, 0.30, 0.48));
    v.push_back(make("PF_F", "Rodinia", 0.25, 0.30, 0.00, 0.04, 0.05,
                     0.35, 0.25, 0.38));
    v.push_back(make("K-M", "Rodinia", 0.26, 0.20, 0.00, 0.00, 0.02,
                     0.52, 0.71, 0.33));
    v.push_back(make("K-M_2", "Rodinia", 0.11, 0.10, 0.00, 0.00, 0.02,
                     0.24, 0.83, 0.20));
    v.push_back(make("SRAD_1", "Rodinia", 0.19, 0.35, 0.00, 0.02,
                     0.03, 0.51, 0.61, 0.26));
    v.push_back(make("SRAD_2", "Rodinia", 0.23, 0.30, 0.00, 0.00,
                     0.04, 0.47, 0.54, 0.42));
    v.push_back(make("3DCNV", "Polybench", 0.17, 0.26, 0.00, 0.00,
                     0.02, 0.56, 0.72, 0.22));
    // BlackScholes: the Fig. 2A per-component labels.
    v.push_back(make("BLCKSC", "CUDA SDK", 0.10, 0.25, 0.00, 0.19,
                     0.02, 0.47, 0.85, 0.15));
    v.push_back(make("CGUM", "CUDA SDK", 0.11, 0.14, 0.00, 0.00, 0.02,
                     0.37, 0.86, 0.35));
    v.push_back(make("LBM", "Parboil", 0.14, 0.26, 0.00, 0.00, 0.02,
                     0.58, 0.92, 0.24));
    // CUTCP: the Fig. 2B per-component labels.
    v.push_back(make("CUTCP", "Parboil", 0.15, 0.28, 0.00, 0.11, 0.51,
                     0.15, 0.17, 0.20));
    GPUPM_ASSERT(v.size() == 26, "validation set has ", v.size(),
                 " entries, expected 26");
    return v;
}

std::vector<Workload>
fullValidationSet()
{
    std::vector<Workload> v = validationSet();
    v.push_back(matrixMulCublas(4096));
    v.back().name = "CUBLAS";
    return v;
}

Workload
matrixMulCublas(int n)
{
    // Fig. 9: the SP / shared / L2 / DRAM utilizations grow with the
    // input size as the GEMM shifts from launch-latency-bound tiles to
    // a dense compute-bound sweep.
    Workload w;
    switch (n) {
      case 64:
        w = make("CUBLAS-64", "CUDA SDK", 0.06, 0.12, 0.00, 0.00, 0.12,
                 0.50, 0.28, 0.15, 0.002);
        break;
      case 512:
        w = make("CUBLAS-512", "CUDA SDK", 0.10, 0.58, 0.00, 0.00,
                 0.30, 0.28, 0.13, 0.12, 0.005);
        break;
      case 4096:
        w = make("CUBLAS-4096", "CUDA SDK", 0.25, 0.92, 0.00, 0.00,
                 0.60, 0.38, 0.23, 0.05, 0.05);
        break;
      default:
        GPUPM_FATAL("matrixMulCublas sizes are 64, 512 and 4096; got ",
                    n);
    }
    return w;
}

Workload
blackScholes()
{
    auto v = validationSet();
    for (auto &w : v)
        if (w.name == "BLCKSC")
            return w;
    GPUPM_PANIC("BLCKSC missing from the validation set");
}

Workload
cutcp()
{
    auto v = validationSet();
    for (auto &w : v)
        if (w.name == "CUTCP")
            return w;
    GPUPM_PANIC("CUTCP missing from the validation set");
}

} // namespace workloads
} // namespace gpupm
