#include "parametric.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "sim/cache_model.hh"

namespace gpupm
{
namespace workloads
{

namespace
{

constexpr double kWarp = 32.0;
/** Register-blocking factor of the tiled GEMM inner loop. */
constexpr double kRegBlock = 16.0;
/** Kernel launch overhead, core cycles. */
constexpr double kLaunchCycles = 8000.0;

/**
 * Exposed-latency floor for a grid of `blocks` thread blocks: launch
 * overhead plus, when the grid cannot fill every SM, the work of the
 * critical block serialized on the occupied SMs only.
 */
double
underfillLatency(double unit_warps, double blocks,
                 const gpu::DeviceDescriptor &dev)
{
    double lat = kLaunchCycles;
    if (blocks < dev.num_sms && blocks > 0.0) {
        // 4 warps/cycle per SM on `blocks` SMs.
        lat += unit_warps / (4.0 * blocks);
    }
    return lat;
}

} // namespace

sim::KernelDemand
gemm(int n, const gpu::DeviceDescriptor &dev, int tile)
{
    GPUPM_ASSERT(n >= 1 && tile >= 1, "bad GEMM parameters");
    const double nn = static_cast<double>(n);

    sim::KernelDemand d;
    d.name = "gemm-" + std::to_string(n);
    // 2 n^3 flops as fused multiply-adds.
    d.warps_sp = nn * nn * nn / kWarp;
    // Tiled operands staged through shared memory, amortized by
    // register blocking.
    d.bytes_shared_ld = 2.0 * 4.0 * nn * nn * nn / kRegBlock;
    d.bytes_shared_st = 2.0 * 4.0 * nn * nn * tile / tile; // tile fill
    // Each K-tile pass re-reads the A and B panels from global memory
    // once per tile row/column of blocks.
    d.bytes_l2_rd = 2.0 * 4.0 * nn * nn * nn / tile;
    d.bytes_l2_wr = 4.0 * nn * nn;
    // Address arithmetic and loop bookkeeping.
    d.warps_int = 0.15 * d.warps_sp;
    d.warps_other = 0.15 * d.warps_sp;

    // GEMM's reuse is structured, not random: with cache blocking at
    // edge b (3 b^2 floats resident), the communication lower bound
    // gives ~2 n^3 / b words of DRAM traffic plus the cold/output
    // n^2-scale terms. The L2 acts as the blocking level.
    const double b = std::sqrt(dev.l2_capacity_bytes / (3.0 * 4.0));
    d.bytes_dram_rd = std::max(2.0 * 4.0 * nn * nn,
                               2.0 * 4.0 * nn * nn * nn / b);
    d.bytes_dram_rd = std::min(d.bytes_dram_rd, d.bytes_l2_rd);
    d.bytes_dram_wr = 4.0 * nn * nn;

    // Small grids cannot fill the device (the Fig. 9 64x64 case).
    const double blocks = std::ceil(nn / tile) * std::ceil(nn / tile);
    d.latency_cycles = underfillLatency(d.warps_sp, blocks, dev);
    return d;
}

sim::KernelDemand
stencil2d(int n, const gpu::DeviceDescriptor &dev)
{
    GPUPM_ASSERT(n >= 1, "bad stencil size");
    const double cells = static_cast<double>(n) * n;

    sim::KernelDemand d;
    d.name = "stencil2d-" + std::to_string(n);
    d.warps_sp = 5.0 * cells / kWarp;
    d.bytes_l2_rd = 5.0 * 4.0 * cells;
    d.bytes_l2_wr = 4.0 * cells;
    d.warps_int = 2.0 * cells / kWarp;       // index arithmetic
    d.warps_other = 6.0 * cells / kWarp;     // the loads and the store

    d.latency_cycles = kLaunchCycles;
    const double working_set = 2.0 * 4.0 * cells;
    return sim::applyCacheModel(d, working_set, dev);
}

sim::KernelDemand
streamTriad(int n, const gpu::DeviceDescriptor &dev)
{
    GPUPM_ASSERT(n >= 1, "bad stream size");
    const double nn = static_cast<double>(n);

    sim::KernelDemand d;
    d.name = "triad-" + std::to_string(n);
    d.warps_sp = nn / kWarp; // one FMA per element
    d.bytes_l2_rd = 2.0 * 4.0 * nn;
    d.bytes_l2_wr = 4.0 * nn;
    d.warps_other = 3.0 * nn / kWarp;

    d.latency_cycles = kLaunchCycles;
    const double working_set = 3.0 * 4.0 * nn;
    return sim::applyCacheModel(d, working_set, dev);
}

sim::KernelDemand
reduction(int n, const gpu::DeviceDescriptor &dev)
{
    GPUPM_ASSERT(n >= 2, "bad reduction size");
    const double nn = static_cast<double>(n);

    sim::KernelDemand d;
    d.name = "reduce-" + std::to_string(n);
    d.warps_sp = nn / kWarp; // n-1 adds
    d.bytes_l2_rd = 4.0 * nn;
    // Tree levels exchange partials through shared memory.
    d.bytes_shared_ld = 2.0 * 4.0 * nn / kWarp;
    d.bytes_shared_st = 2.0 * 4.0 * nn / kWarp;
    d.warps_other = nn / kWarp;
    d.latency_cycles = kLaunchCycles;

    return sim::applyCacheModel(d, 4.0 * nn, dev);
}

sim::KernelDemand
spmv(int n, long long nnz, const gpu::DeviceDescriptor &dev)
{
    GPUPM_ASSERT(n >= 1 && nnz >= n, "bad SpMV parameters");
    const double nn = static_cast<double>(n);
    const double z = static_cast<double>(nnz);

    sim::KernelDemand d;
    d.name = "spmv-" + std::to_string(n);
    d.warps_sp = z / kWarp; // one FMA per non-zero
    d.warps_int = 2.0 * z / kWarp; // column/row index handling

    // Streaming arrays (values, column indices, row pointers, y) miss
    // always; the gathered x vector enjoys reuse governed by its own
    // working set.
    const double stream_rd = 4.0 * z /*vals*/ + 4.0 * z /*colidx*/ +
                             4.0 * nn /*rowptr*/;
    const double x_traffic = 4.0 * z;
    const double x_miss = sim::l2MissRate(4.0 * nn, dev);

    d.bytes_l2_rd = stream_rd + x_traffic;
    d.bytes_l2_wr = 4.0 * nn;
    d.bytes_dram_rd =
            stream_rd + std::max(x_miss * x_traffic, 4.0 * nn);
    d.bytes_dram_wr = 4.0 * nn;
    d.warps_other = 4.0 * z / kWarp;
    d.latency_cycles = kLaunchCycles;
    return d;
}

} // namespace workloads
} // namespace gpupm
