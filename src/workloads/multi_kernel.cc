#include "multi_kernel.hh"

#include "gpu/components.hh"
#include "workloads.hh"

namespace gpupm
{
namespace workloads
{

using gpu::Component;
using gpu::componentIndex;

namespace
{

/** Signature-based kernel builder with an explicit time share. */
sim::KernelDemand
kernel(const std::string &name, double u_int, double u_sp, double u_dp,
       double u_sf, double u_sh, double u_l2, double u_dram,
       double time_s)
{
    UtilSignature sig;
    sig.util[componentIndex(Component::Int)] = u_int;
    sig.util[componentIndex(Component::SP)] = u_sp;
    sig.util[componentIndex(Component::DP)] = u_dp;
    sig.util[componentIndex(Component::SF)] = u_sf;
    sig.util[componentIndex(Component::Shared)] = u_sh;
    sig.util[componentIndex(Component::L2)] = u_l2;
    sig.util[componentIndex(Component::Dram)] = u_dram;
    sig.other_frac = 0.2;
    return demandFromSignature(name, sig, time_s);
}

} // namespace

std::vector<MultiKernelApp>
multiKernelApps()
{
    std::vector<MultiKernelApp> out;

    // SRAD: a memory-heavy gradient extraction followed by a shorter
    // compute-heavy update.
    out.push_back(
            {"SRAD-multi",
             {kernel("srad_extract", 0.18, 0.30, 0.0, 0.02, 0.03,
                     0.52, 0.70, 0.030),
              kernel("srad_update", 0.25, 0.55, 0.0, 0.00, 0.10, 0.40,
                     0.25, 0.012)}});

    // K-Means: long membership scan (DRAM-bound) + short centroid
    // accumulation (INT/L2).
    out.push_back(
            {"KMEANS-multi",
             {kernel("kmeans_membership", 0.22, 0.20, 0.0, 0.0, 0.02,
                     0.50, 0.80, 0.040),
              kernel("kmeans_sums", 0.45, 0.15, 0.0, 0.0, 0.08, 0.55,
                     0.30, 0.008)}});

    // ParticleFilter: SF-flavoured likelihood, a tiny normalize, and
    // an INT-heavy resample.
    out.push_back(
            {"PF-multi",
             {kernel("pf_likelihood", 0.20, 0.35, 0.0, 0.15, 0.04,
                     0.35, 0.30, 0.020),
              kernel("pf_normalize", 0.10, 0.15, 0.0, 0.0, 0.02, 0.20,
                     0.15, 0.004),
              kernel("pf_resample", 0.50, 0.10, 0.0, 0.0, 0.03, 0.45,
                     0.35, 0.012)}});

    // 3MM: three chained GEMMs of similar shape.
    MultiKernelApp mm{"3MM-multi", {}};
    for (int i = 0; i < 3; ++i)
        mm.kernels.push_back(kernel("mm" + std::to_string(i + 1),
                                    0.18, 0.52, 0.0, 0.0, 0.11, 0.72,
                                    0.24, 0.015));
    out.push_back(std::move(mm));

    return out;
}

} // namespace workloads
} // namespace gpupm
