/**
 * @file
 * Parametric first-principles workload generators.
 *
 * Unlike the signature-authored Table III set (whose utilizations are
 * calibrated to the paper's printed values), these kernels derive
 * their demands from the algorithm itself: flop and byte counts as a
 * function of the problem size, with DRAM traffic produced by the
 * working-set L2 miss model. They exercise the "input data size"
 * dimension of Sec. V-B for arbitrary sizes and give users a template
 * for describing their own applications to the model.
 */

#ifndef GPUPM_WORKLOADS_PARAMETRIC_HH
#define GPUPM_WORKLOADS_PARAMETRIC_HH

#include "gpu/device.hh"
#include "sim/kernel.hh"

namespace gpupm
{
namespace workloads
{

/**
 * Tiled SGEMM, C = A*B with n-by-n matrices: 2n^3 flops, inputs
 * staged through shared memory with tile-sized reuse, n^2-scale
 * working set.
 *
 * @param n  matrix dimension.
 * @param dev  device whose L2 capacity shapes the DRAM traffic.
 * @param tile  square tile edge (shared-memory blocking factor).
 */
sim::KernelDemand gemm(int n, const gpu::DeviceDescriptor &dev,
                       int tile = 128);

/**
 * 5-point Jacobi stencil over an n-by-n single-precision grid:
 * 5 flops and 5 reads + 1 write per cell, 2n^2 floats of working set.
 */
sim::KernelDemand stencil2d(int n, const gpu::DeviceDescriptor &dev);

/** STREAM triad a = b + s*c over n elements: 2 flops, 3 accesses. */
sim::KernelDemand streamTriad(int n, const gpu::DeviceDescriptor &dev);

/**
 * Tree reduction over n single-precision elements: n-1 adds, one
 * streaming read pass, negligible output.
 */
sim::KernelDemand reduction(int n, const gpu::DeviceDescriptor &dev);

/**
 * CSR SpMV with nnz non-zeros over an n-row matrix: 2 flops per
 * non-zero, irregular value/column reads, dense vector reuse governed
 * by the cache model.
 */
sim::KernelDemand spmv(int n, long long nnz,
                       const gpu::DeviceDescriptor &dev);

} // namespace workloads
} // namespace gpupm

#endif // GPUPM_WORKLOADS_PARAMETRIC_HH
