/**
 * @file
 * Multi-kernel applications.
 *
 * Several Table III benchmarks launch more than one kernel (SRAD,
 * K-Means, ParticleFilter, the Polybench -MM chains). The paper's
 * methodology (Sec. V-A): "For benchmarks with multiple kernels the
 * total power consumption was obtained by weighting the consumption of
 * each kernel with its relative execution time." This module provides
 * the application container and the composite variants of the
 * validation benchmarks.
 */

#ifndef GPUPM_WORKLOADS_MULTI_KERNEL_HH
#define GPUPM_WORKLOADS_MULTI_KERNEL_HH

#include <string>
#include <vector>

#include "sim/kernel.hh"

namespace gpupm
{
namespace workloads
{

/** An application consisting of several kernels run back-to-back. */
struct MultiKernelApp
{
    std::string name;
    std::vector<sim::KernelDemand> kernels;
};

/**
 * Composite versions of the multi-kernel Table III applications:
 * SRAD (extract + reduce/update), K-Means (membership + sums),
 * ParticleFilter (likelihood + normalize + resample) and 3MM
 * (three chained GEMMs).
 */
std::vector<MultiKernelApp> multiKernelApps();

} // namespace workloads
} // namespace gpupm

#endif // GPUPM_WORKLOADS_MULTI_KERNEL_HH
