#include "pool.hh"

#include "obs/profiler.hh"
#include "obs/trace.hh"

namespace gpupm
{
namespace fleet
{

WorkStealingPool::WorkStealingPool(int threads)
{
    const std::size_t n =
            static_cast<std::size_t>(threads < 1 ? 1 : threads);
    queues_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        queues_.push_back(std::make_unique<Queue>());
    workers_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
        workers_.emplace_back([this, i] { workerLoop(i); });
}

WorkStealingPool::~WorkStealingPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
WorkStealingPool::submit(Task task)
{
    const std::uint64_t slot =
            next_queue_.fetch_add(1, std::memory_order_relaxed);
    submitTo(static_cast<int>(slot % queues_.size()),
             std::move(task));
}

void
WorkStealingPool::submitTo(int worker, Task task)
{
    const std::size_t slot = static_cast<std::size_t>(
            worker < 0 ? 0 : worker) % queues_.size();
    {
        std::lock_guard<std::mutex> lock(mu_);
        ++pending_;
    }
    {
        std::lock_guard<std::mutex> lock(queues_[slot]->mu);
        queues_[slot]->tasks.push_back(
                Entry{obs::currentTraceContext(), std::move(task)});
    }
    work_cv_.notify_one();
}

void
WorkStealingPool::wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

bool
WorkStealingPool::popOwn(std::size_t self, Entry &out)
{
    Queue &q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mu);
    if (q.tasks.empty())
        return false;
    out = std::move(q.tasks.back());
    q.tasks.pop_back();
    return true;
}

bool
WorkStealingPool::stealOther(std::size_t self, Entry &out)
{
    const std::size_t n = queues_.size();
    for (std::size_t step = 1; step < n; ++step)
    {
        Queue &q = *queues_[(self + step) % n];
        std::lock_guard<std::mutex> lock(q.mu);
        if (q.tasks.empty())
            continue;
        out = std::move(q.tasks.front());
        q.tasks.pop_front();
        steals_.fetch_add(1, std::memory_order_relaxed);
        return true;
    }
    return false;
}

void
WorkStealingPool::workerLoop(std::size_t self)
{
    // Per-worker CPU attribution when a profiling run is active
    // (fleet bench --profile-out, /profilez during a fleet serve).
    obs::Profiler::setThreadLabel("fleet.worker" +
                                  std::to_string(self));
    for (;;)
    {
        Entry task;
        if (!popOwn(self, task) && !stealOther(self, task))
        {
            std::unique_lock<std::mutex> lock(mu_);
            // Re-check under the lock: a task may have landed
            // between the failed scan and taking the mutex.
            work_cv_.wait(lock, [this, self] {
                if (stop_)
                    return true;
                for (const auto &q : queues_)
                {
                    std::lock_guard<std::mutex> ql(q->mu);
                    if (!q->tasks.empty())
                        return true;
                }
                return false;
            });
            if (stop_)
                return;
            continue;
        }
        {
            // Adopt the submitter's trace context across the thread
            // hop, then tag the task's CPU self-time with the fleet
            // taxonomy; spans the task opens itself
            // (campaign/estimator/...) override it for their
            // duration.
            obs::TraceContextScope handoff(task.ctx);
            GPUPM_TRACE_SPAN("fleet", "fleet.task");
            task.task();
        }
        executed_.fetch_add(1, std::memory_order_relaxed);
        {
            std::lock_guard<std::mutex> lock(mu_);
            if (--pending_ == 0)
                idle_cv_.notify_all();
        }
    }
}

} // namespace fleet
} // namespace gpupm
