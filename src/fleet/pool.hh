/**
 * @file
 * Work-stealing thread pool of the fleet supervisor.
 *
 * Each worker owns a deque protected by its own mutex: it pushes and
 * pops work at the back (LIFO, cache-warm), and when empty steals
 * from the *front* of a sibling's deque (FIFO, the oldest — least
 * cache-relevant — task). External submissions round-robin across
 * queues. A starved pool therefore self-balances: one queue loaded
 * with long tasks drains through every idle worker, which the fleet
 * chaos harness exploits by front-loading sleeper tasks.
 *
 * The design goal is simplicity under TSan, not peak throughput:
 * every queue access is under a mutex (no lock-free deque), which at
 * fleet-campaign granularity (milliseconds per task) is invisible.
 */

#ifndef GPUPM_FLEET_POOL_HH
#define GPUPM_FLEET_POOL_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.hh"

namespace gpupm
{
namespace fleet
{

class WorkStealingPool
{
  public:
    using Task = std::function<void()>;

    /** Start `threads` workers (clamped to at least 1). */
    explicit WorkStealingPool(int threads);

    /** Waits for submitted work, then joins the workers. */
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /** Enqueue a task (round-robin across worker queues). */
    void submit(Task task);

    /**
     * Enqueue to a specific worker's queue (modulo thread count).
     * Tests use this to force an imbalance that must be stolen.
     */
    void submitTo(int worker, Task task);

    /** Block until every submitted task has finished. */
    void wait();

    int threadCount() const
    {
        return static_cast<int>(workers_.size());
    }

    /** Tasks executed by a worker other than the enqueued one. */
    long stealCount() const
    {
        return steals_.load(std::memory_order_relaxed);
    }

    /** Tasks executed so far. */
    long executedCount() const
    {
        return executed_.load(std::memory_order_relaxed);
    }

  private:
    /** A queued task plus the submitter's trace context, captured at
     *  submitTo() and re-adopted on the executing worker — the hop
     *  that keeps a shard retry inside its campaign's trace. */
    struct Entry
    {
        obs::TraceContext ctx;
        Task task;
    };

    struct Queue
    {
        std::mutex mu;
        std::deque<Entry> tasks;
    };

    void workerLoop(std::size_t self);
    bool popOwn(std::size_t self, Entry &out);
    bool stealOther(std::size_t self, Entry &out);

    std::vector<std::unique_ptr<Queue>> queues_;
    std::vector<std::thread> workers_;

    // Sleep/wake and completion tracking. `pending_` counts
    // submitted-but-unfinished tasks; both condition variables hang
    // off the same mutex so wait() cannot miss the last decrement.
    std::mutex mu_;
    std::condition_variable work_cv_; ///< workers: new work / stop
    std::condition_variable idle_cv_; ///< wait(): pending_ hit zero
    long pending_ = 0;
    bool stop_ = false;

    std::atomic<std::uint64_t> next_queue_{0};
    std::atomic<long> steals_{0};
    std::atomic<long> executed_{0};
};

} // namespace fleet
} // namespace gpupm

#endif // GPUPM_FLEET_POOL_HH
