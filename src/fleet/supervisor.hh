/**
 * @file
 * The fleet-campaign supervisor (tentpole of DESIGN.md §12).
 *
 * runFleetCampaign() instantiates N simulated device instances,
 * shards them across the work-stealing pool, and survives injected
 * failure at every level of the stack:
 *
 *  - a shard attempt that hangs is cancelled by the watchdog;
 *  - a failed or cancelled attempt is retried under seeded
 *    exponential backoff up to the shard retry budget;
 *  - a shard past its budget is quarantined — its devices appear in
 *    the report as shard-quarantined failures, never silently gone;
 *  - completed shards are checkpointed crash-safely (v2 fleetshard
 *    envelope, write-to-temp + atomic rename) and resumed on the
 *    next run, so a killed fleet campaign re-runs only what it lost;
 *  - poisoned devices (chaos) fail their own mini campaign and are
 *    reported per-device without taking their shard down.
 *
 * The merged scoreboard is deterministic: outcomes depend only on
 * (DeviceSpec, campaign knobs) and the merge sorts by device id, so
 * completion order, steal pattern, retries and chaos leave the
 * accuracy payload bit-identical over the surviving devices.
 */

#ifndef GPUPM_FLEET_SUPERVISOR_HH
#define GPUPM_FLEET_SUPERVISOR_HH

#include <string>
#include <vector>

#include "fleet/fleet.hh"
#include "fleet/merge.hh"

namespace gpupm
{
namespace obs
{
class Tsdb;
} // namespace obs

namespace fleet
{

/** Everything a fleet campaign produced and survived. */
struct FleetResult
{
    FleetScoreboard scoreboard;
    /** Per-shard results, ascending shard index. */
    std::vector<ShardResult> shards;

    long shard_retries = 0;
    int shards_quarantined = 0;
    int shards_resumed = 0;
    long watchdog_fires = 0;
    long chaos_kills = 0;
    long chaos_stalls = 0;
    long pool_steals = 0;

    /** Human-readable campaign + scoreboard summary. */
    std::string summary() const;

    /** Full JSON report (accuracy + failure + supervisor counters). */
    std::string toJson() const;
};

/**
 * The fleet's device instances: architectures round-robined in the
 * paper's device order, per-instance seeds derived from (fleet seed,
 * id), poison flags drawn from the chaos spec.
 */
std::vector<DeviceSpec> buildFleetSpecs(const FleetOptions &opts);

/** Contiguous near-even sharding of the device list. */
std::vector<ShardSpec> shardDevices(
        const std::vector<DeviceSpec> &devices, int shards);

/** Run a fleet campaign over buildFleetSpecs(opts). */
FleetResult runFleetCampaign(const FleetOptions &opts);

/**
 * Run a fleet campaign over an explicit device list (the chaos gate
 * re-runs exactly the surviving devices of a chaos run).
 */
FleetResult runFleetCampaign(const FleetOptions &opts,
                             const std::vector<DeviceSpec> &devices);

/** Publish gpupm_fleet_* metrics to Registry::global(). */
void publishFleetMetrics(const FleetResult &result);

/**
 * Publish per-architecture aggregate series into a time-series store
 * (`gpupm fleet --serve`): for each architecture, the per-device MAE
 * (`gpupm_fleet_device_mae_pct{arch=...}`) and the cumulative
 * sample-weighted marginal as devices accrue in id order
 * (`gpupm_fleet_arch_mae_pct{arch=...}`), plus the fleet-wide
 * cumulative MAE (`gpupm_fleet_mae_pct`). Device index stands in for
 * time (device i lands at t = (i+1) s), so the series are a pure
 * function of the merged scoreboard — queryable drift over the fleet,
 * deterministic across runs.
 */
void publishFleetSeries(const FleetResult &result, obs::Tsdb &tsdb);

} // namespace fleet
} // namespace gpupm

#endif // GPUPM_FLEET_SUPERVISOR_HH
