#include "watchdog.hh"

namespace gpupm
{
namespace fleet
{

Watchdog::Watchdog()
{
    scanner_ = std::thread([this] { scanLoop(); });
}

Watchdog::~Watchdog()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        stop_ = true;
    }
    cv_.notify_all();
    scanner_.join();
}

long
Watchdog::arm(double deadline_s, CancelToken token)
{
    const auto deadline =
            Clock::now() +
            std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(
                            deadline_s < 0.0 ? 0.0 : deadline_s));
    long id;
    {
        std::lock_guard<std::mutex> lock(mu_);
        id = next_id_++;
        armed_.emplace(id, Entry{deadline, std::move(token),
                                 obs::currentTraceContext()});
    }
    cv_.notify_all();
    return id;
}

bool
Watchdog::disarm(long id)
{
    std::lock_guard<std::mutex> lock(mu_);
    return armed_.erase(id) > 0;
}

void
Watchdog::scanLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_)
    {
        // Sleep until the earliest armed deadline (or indefinitely
        // when nothing is armed); arm() and the destructor notify.
        auto next = Clock::time_point::max();
        for (const auto &[id, entry] : armed_)
            if (entry.deadline < next)
                next = entry.deadline;
        if (next == Clock::time_point::max())
            cv_.wait(lock);
        else
            cv_.wait_until(lock, next);
        if (stop_)
            return;

        const auto now = Clock::now();
        for (auto it = armed_.begin(); it != armed_.end();)
        {
            if (it->second.deadline <= now)
            {
                if (it->second.token)
                    it->second.token->store(
                            true, std::memory_order_release);
                // An instant error span inside the stalled shard's
                // trace: the cancellation shows up (tail-kept) when
                // asking /api/traces?error=1 what the watchdog did.
                {
                    obs::TraceContextScope attributed(it->second.ctx);
                    obs::SpanGuard fire("fleet",
                                        "fleet.watchdog_fire");
                    fire.markError();
                }
                fired_.fetch_add(1, std::memory_order_relaxed);
                it = armed_.erase(it);
            }
            else
            {
                ++it;
            }
        }
    }
}

} // namespace fleet
} // namespace gpupm
