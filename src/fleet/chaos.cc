#include "chaos.hh"

namespace gpupm
{
namespace fleet
{

namespace
{

/** splitmix64 finalizer: avalanche a composed decision key. */
std::uint64_t
mix(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Uniform [0,1) derived from a decision key. */
double
unit(std::uint64_t key)
{
    return static_cast<double>(mix(key) >> 11) * 0x1.0p-53;
}

} // namespace

ChaosDecision
chaosForAttempt(const ChaosSpec &spec, int shard, int attempt)
{
    ChaosDecision d;
    if (attempt >= spec.max_faulty_attempts)
        return d;
    const std::uint64_t key =
            mix(spec.seed ^ 0xc4a05u) ^
            (static_cast<std::uint64_t>(shard) << 20) ^
            static_cast<std::uint64_t>(attempt);
    // One draw decides both, mutually exclusively, so the combined
    // fault rate is simply kill + stall.
    const double roll = unit(key);
    d.kill = roll < spec.shard_kill_rate;
    d.stall = !d.kill &&
              roll < spec.shard_kill_rate + spec.shard_stall_rate;
    return d;
}

bool
chaosPoisonsDevice(const ChaosSpec &spec, long device_id)
{
    if (spec.poison_fraction <= 0.0)
        return false;
    const std::uint64_t key = mix(spec.seed ^ 0xde7ec7u) ^
                              static_cast<std::uint64_t>(device_id);
    return unit(key) < spec.poison_fraction;
}

bool
chaosPoisonIsNan(const ChaosSpec &spec, long device_id)
{
    const std::uint64_t key = mix(spec.seed ^ 0xf1a7u) ^
                              static_cast<std::uint64_t>(device_id);
    return (mix(key) & 1u) == 0u;
}

} // namespace fleet
} // namespace gpupm
