/**
 * @file
 * Deterministic merge of shard results into the fleet scoreboard.
 *
 * Shards finish in whatever order the work-stealing pool and the
 * retry machinery produce; the merge sorts every device outcome by
 * fleet id before aggregating, so the merged scoreboard is a pure
 * function of the outcome *set* — the chaos gate compares the
 * accuracy JSON of a chaos-battered run bit-for-bit against a
 * fault-free run over the surviving devices.
 *
 * Aggregation reuses the single-GPU accuracy vocabulary: per-device
 * ScoreStats roll up into per-architecture marginals and an overall
 * row via obs::combineScoreStats (exact, sample-weighted), and
 * devices whose MAE is a robust (MAD) outlier among their peers are
 * flagged — the fleet-health signal that a board's model fit quietly
 * went bad even though nothing threw.
 */

#ifndef GPUPM_FLEET_MERGE_HH
#define GPUPM_FLEET_MERGE_HH

#include <string>
#include <vector>

#include "fleet/fleet.hh"

namespace gpupm
{
namespace fleet
{

/** One healthy device's row of the fleet scoreboard. */
struct DeviceScore
{
    long id = 0;
    gpu::DeviceKind kind = gpu::DeviceKind::GtxTitanX;
    obs::ScoreStats stats;
    double fit_rmse_w = 0.0;
    int fit_iterations = 0;
};

/** Accuracy marginal of one architecture (healthy devices). */
struct ArchAggregate
{
    std::string arch;
    long devices_ok = 0;
    obs::ScoreStats stats;
};

/** One failed device's accounting row. */
struct DeviceFailure
{
    long id = 0;
    gpu::DeviceKind kind = gpu::DeviceKind::GtxTitanX;
    DeviceFailKind fail = DeviceFailKind::None;
    std::string message;
};

/** The merged fleet-wide result. */
struct FleetScoreboard
{
    long devices_total = 0;
    long devices_ok = 0;
    long devices_failed = 0;

    /** Healthy devices, ascending id. */
    std::vector<DeviceScore> devices;
    /** Sample-weighted accuracy over every healthy device. */
    obs::ScoreStats overall;
    /** Architectures in the paper's order; only those present. */
    std::vector<ArchAggregate> per_arch;
    /** Ids of healthy devices whose MAE is a MAD outlier. */
    std::vector<long> outliers;

    /** Failed devices, ascending id (explicit accounting). */
    std::vector<DeviceFailure> failures;
    /** (failure kind name, count), nonzero kinds only. */
    std::vector<std::pair<std::string, long>> failures_by_kind;

    /**
     * JSON object. include_failures=false emits only the
     * accuracy-bearing fields (healthy devices, overall, marginals,
     * outliers) — the deterministic payload the chaos gate compares
     * bit-for-bit; true adds the failure accounting, which
     * legitimately differs between a chaos run and a clean one.
     */
    std::string toJson(bool include_failures) const;

    /** Human-readable fleet summary tables. */
    std::string summaryText() const;
};

/**
 * Merge shard results (any order, duplicates by shard index are a
 * programming error) into the fleet scoreboard.
 */
FleetScoreboard mergeShardResults(
        const std::vector<ShardResult> &shards);

} // namespace fleet
} // namespace gpupm

#endif // GPUPM_FLEET_MERGE_HH
