#include "shard_io.hh"

#include <sstream>
#include <string_view>

#include "common/checksum.hh"
#include "common/numio.hh"

namespace gpupm
{
namespace fleet
{

namespace
{

using model::IoErrc;
using model::IoExpected;
using model::IoStatus;

constexpr std::string_view kPayloadMagic = "gpupm-fleetshard-v1";

IoStatus
parseError(const std::string &message)
{
    return IoStatus{IoErrc::ParseError, message};
}

std::string
deviceLine(const DeviceSpec &spec)
{
    std::ostringstream os;
    os << spec.id << ' ' << static_cast<int>(spec.kind) << ' '
       << spec.seed << ' ' << (spec.poison_nan ? 1 : 0) << ' '
       << (spec.poison_config ? 1 : 0);
    return os.str();
}

} // namespace

std::string
shardCheckpointPath(const std::string &dir, int index)
{
    return dir + "/shard-" + std::to_string(index) + ".ck";
}

std::string
fleetFingerprint(const FleetOptions &opts, const ShardSpec &shard)
{
    std::ostringstream os;
    os << "fleet-fingerprint-v1\n"
       << opts.seed << ' ' << numio::formatDouble(opts.jitter_frac)
       << ' ' << opts.power_repetitions << ' '
       << numio::formatDouble(opts.min_duration_s) << ' '
       << opts.suite_stride << ' ' << opts.max_configs << ' '
       << opts.validation_apps << ' ' << opts.validation_configs
       << '\n'
       << "shard " << shard.index << '\n';
    for (const DeviceSpec &spec : shard.devices)
        os << deviceLine(spec) << '\n';
    return checksum::crc32Hex(
            checksum::crc32(os.str()));
}

std::string
serializeShardResult(const ShardResult &result,
                     const FleetOptions &opts, const ShardSpec &shard)
{
    std::ostringstream os;
    os << kPayloadMagic << '\n'
       << "fingerprint " << fleetFingerprint(opts, shard) << '\n'
       << "shard " << result.index << " attempts " << result.attempts
       << " devices " << result.outcomes.size() << '\n';
    for (const DeviceOutcome &o : result.outcomes)
    {
        os << "device " << o.id << ' ' << static_cast<int>(o.kind)
           << ' ' << (o.ok ? 1 : 0) << ' '
           << deviceFailKindName(o.fail) << ' ' << o.stats.samples
           << ' ' << numio::formatDouble(o.stats.mae_pct)
           << ' ' << numio::formatDouble(o.stats.rmse_w)
           << ' '
           << numio::formatDouble(o.stats.max_err_pct) << ' '
           << numio::formatDouble(o.stats.mean_measured_w)
           << ' ' << numio::formatDouble(o.fit_rmse_w) << ' '
           << o.fit_iterations << '\n';
        os << "message " << o.message << '\n';
    }
    return model::wrapEnvelope(model::FileKind::FleetShard, os.str());
}

model::IoExpected<ShardResult>
tryParseShardResult(const std::string &text, const FleetOptions &opts,
                    const ShardSpec &shard)
{
    IoExpected<std::string> payload = model::tryUnwrapEnvelope(
            text, model::FileKind::FleetShard);
    if (!payload.ok())
        return payload.error();

    std::istringstream is(payload.value());
    std::string line;
    if (!std::getline(is, line) || line != kPayloadMagic)
        return parseError("missing fleetshard payload magic");

    if (!std::getline(is, line))
        return parseError("missing fingerprint line");
    {
        std::istringstream ls(line);
        std::string tag, fp;
        if (!(ls >> tag >> fp) || tag != "fingerprint")
            return parseError("malformed fingerprint line");
        if (fp != fleetFingerprint(opts, shard))
            return IoStatus{
                    IoErrc::ValidationError,
                    "checkpoint fingerprint does not match this "
                    "fleet configuration"};
    }

    ShardResult result;
    long n_devices = 0;
    {
        if (!std::getline(is, line))
            return parseError("missing shard header line");
        std::istringstream ls(line);
        std::string t1, t2, t3;
        if (!(ls >> t1 >> result.index >> t2 >> result.attempts >>
              t3 >> n_devices) ||
            t1 != "shard" || t2 != "attempts" || t3 != "devices")
            return parseError("malformed shard header line");
        if (result.index != shard.index)
            return IoStatus{IoErrc::ValidationError,
                            "checkpoint is for a different shard"};
        if (n_devices < 0 ||
            n_devices !=
                    static_cast<long>(shard.devices.size()))
            return IoStatus{IoErrc::ValidationError,
                            "checkpoint device count does not match "
                            "the shard"};
    }

    for (long i = 0; i < n_devices; ++i)
    {
        if (!std::getline(is, line))
            return parseError("truncated device list");
        std::istringstream ls(line);
        std::string tag, fail_name;
        DeviceOutcome o;
        int kind = 0, ok = 0;
        std::string mae, rmse, maxerr, meanmeas, fitrmse;
        if (!(ls >> tag >> o.id >> kind >> ok >> fail_name >>
              o.stats.samples >> mae >> rmse >> maxerr >> meanmeas >>
              fitrmse >> o.fit_iterations) ||
            tag != "device")
            return parseError("malformed device line");
        if (kind < 0 || kind > 2)
            return parseError("device kind out of range");
        o.kind = static_cast<gpu::DeviceKind>(kind);
        o.ok = ok != 0;
        o.fail = deviceFailKindOf(fail_name);
        if (!o.ok && o.fail == DeviceFailKind::None)
            return parseError("failed device with no failure kind");
        if (!numio::parseDouble(mae, o.stats.mae_pct) ||
            !numio::parseDouble(rmse, o.stats.rmse_w) ||
            !numio::parseDouble(maxerr,
                                        o.stats.max_err_pct) ||
            !numio::parseDouble(meanmeas,
                                        o.stats.mean_measured_w) ||
            !numio::parseDouble(fitrmse, o.fit_rmse_w))
            return parseError("unparseable device statistics");

        if (!std::getline(is, line) ||
            line.rfind("message ", 0) != 0)
            return parseError("missing device message line");
        o.message = line.substr(8);
        result.outcomes.push_back(std::move(o));
    }
    result.resumed = true;
    return result;
}

model::IoExpected<ShardResult>
tryLoadShardResult(const std::string &path, const FleetOptions &opts,
                   const ShardSpec &shard)
{
    IoExpected<std::string> text = model::tryReadFileText(path);
    if (!text.ok())
        return text.error();
    return tryParseShardResult(text.value(), opts, shard);
}

model::IoExpected<bool>
trySaveShardResult(const ShardResult &result,
                   const FleetOptions &opts, const ShardSpec &shard,
                   const std::string &path)
{
    return model::tryWriteFileAtomic(
            path, serializeShardResult(result, opts, shard));
}

} // namespace fleet
} // namespace gpupm
