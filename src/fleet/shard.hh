/**
 * @file
 * The per-shard / per-device work of a fleet campaign.
 *
 * One device instance runs the full single-GPU pipeline in miniature:
 * a strided microbenchmark campaign over a strided V-F configuration
 * subset on its jittered simulated board, a model fit through the
 * typed estimator, and a small validation audit scored exactly like
 * `gpupm audit`. Every failure is classified into DeviceFailKind —
 * a device never disappears from the fleet silently.
 *
 * Everything here is a pure function of (DeviceSpec, campaign knobs):
 * no shared mutable state, no wall-clock dependence. That purity is
 * what the chaos gate leans on — a killed-and-retried shard reproduces
 * its outcomes bit-for-bit, so the merged fleet scoreboard of a chaos
 * run equals the fault-free run over the surviving devices.
 */

#ifndef GPUPM_FLEET_SHARD_HH
#define GPUPM_FLEET_SHARD_HH

#include <vector>

#include "fleet/fleet.hh"
#include "fleet/watchdog.hh"
#include "gpu/device.hh"

namespace gpupm
{
namespace fleet
{

/**
 * The strided V-F configuration subset a fleet device trains on:
 * the reference memory clock plus one other (when the device has
 * one), each with core clocks spread across the supported range,
 * reference configuration always included — small but still
 * identifiable by the bilinear estimator.
 */
std::vector<gpu::FreqConfig>
fleetConfigSubset(const gpu::DeviceDescriptor &desc, int max_configs);

/**
 * Run one device's mini campaign + fit + validation audit.
 * Cancellation is polled at entry; a cancelled device reports
 * DeviceFailKind::Cancelled without touching the board.
 */
DeviceOutcome runDevice(const DeviceSpec &spec,
                        const FleetOptions &opts,
                        const CancelToken &token);

/** One shard attempt's outcome. */
struct ShardAttemptResult
{
    /** True when the watchdog cancelled the attempt mid-shard. */
    bool cancelled = false;
    std::vector<DeviceOutcome> outcomes;
};

/**
 * Run every device of a shard, polling the cancel token between
 * devices. On cancellation the remaining devices are marked
 * Cancelled and the attempt is flagged; the supervisor discards a
 * cancelled attempt's outcomes and retries the whole shard.
 */
ShardAttemptResult runShardAttempt(const ShardSpec &shard,
                                   const FleetOptions &opts,
                                   const CancelToken &token);

} // namespace fleet
} // namespace gpupm

#endif // GPUPM_FLEET_SHARD_HH
