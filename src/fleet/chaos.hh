/**
 * @file
 * The fleet chaos harness: seeded failure injection one level above
 * core/faults. Where FaultInjectingBackend corrupts individual
 * measurement calls, ChaosSpec attacks the campaign *infrastructure*:
 * it kills shard attempts mid-checkpoint (leaving a torn file for the
 * retry to trip over), stalls attempts past the watchdog deadline,
 * poisons whole device instances (a NaN sensor rail or a reference
 * configuration the board cannot hold), and starves the work-stealing
 * pool with sleeper tasks.
 *
 * Every decision is a pure function of (spec seed, shard, attempt) or
 * (spec seed, device id) — no global RNG state — so a chaos run is
 * exactly reproducible and the chaos-gate test can predict which
 * devices the fault-free comparison run must exclude.
 */

#ifndef GPUPM_FLEET_CHAOS_HH
#define GPUPM_FLEET_CHAOS_HH

#include <cstdint>

namespace gpupm
{
namespace fleet
{

/** Chaos-injection knobs of a fleet campaign. */
struct ChaosSpec
{
    /** Seeds every chaos decision stream. */
    std::uint64_t seed = 2026;

    /**
     * Probability that a shard attempt is killed mid-checkpoint: the
     * shard's work completes, a torn (truncated) checkpoint is left
     * at the shard's path, and the attempt reports failure.
     */
    double shard_kill_rate = 0.0;

    /**
     * Probability that a shard attempt hangs until the watchdog
     * cancels it (exercises deadline + retry).
     */
    double shard_stall_rate = 0.0;

    /**
     * Attempts beyond which a shard is never killed or stalled
     * again, so a retried shard eventually gets to run — quarantine
     * is still reachable when the retry budget is smaller.
     */
    int max_faulty_attempts = 2;

    /** Fraction of device instances that are poisoned. */
    double poison_fraction = 0.0;

    /**
     * Pool-starvation injection: sleeper tasks submitted ahead of the
     * shards, each holding a worker for starve_ms.
     */
    int starve_tasks = 0;
    int starve_ms = 0;

    /** True when any injection above is active. */
    bool any() const
    {
        return shard_kill_rate > 0.0 || shard_stall_rate > 0.0 ||
               poison_fraction > 0.0 || starve_tasks > 0;
    }
};

/** What chaos does to one (shard, attempt). */
struct ChaosDecision
{
    bool kill = false;  ///< die mid-checkpoint after the work
    bool stall = false; ///< hang until the watchdog fires
};

/** Deterministic decision for one shard attempt (0-based). */
ChaosDecision chaosForAttempt(const ChaosSpec &spec, int shard,
                              int attempt);

/** True when chaos poisons this device instance. */
bool chaosPoisonsDevice(const ChaosSpec &spec, long device_id);

/**
 * Poison flavor for a poisoned device: true = NaN sensor rail (every
 * power read is non-finite), false = broken reference configuration
 * (the board rejects the clocks the campaign must normalize against).
 */
bool chaosPoisonIsNan(const ChaosSpec &spec, long device_id);

} // namespace fleet
} // namespace gpupm

#endif // GPUPM_FLEET_CHAOS_HH
