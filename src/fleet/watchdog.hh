/**
 * @file
 * Deadline watchdog of the fleet supervisor.
 *
 * A shard attempt arms the watchdog with a wall-clock deadline and a
 * cancellation token before starting work, and disarms it when done.
 * A single scanner thread wakes at the earliest pending deadline; a
 * deadline that passes while still armed fires: the token is set and
 * the fire is counted. Cancellation is cooperative — the shard's
 * device loop polls the token between devices and between
 * measurements, so a stalled attempt unwinds at the next poll rather
 * than being destroyed mid-write (which is exactly what keeps the
 * crash-safe checkpoint invariant intact).
 */

#ifndef GPUPM_FLEET_WATCHDOG_HH
#define GPUPM_FLEET_WATCHDOG_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "obs/trace.hh"

namespace gpupm
{
namespace fleet
{

/** Shared cancellation flag polled by cooperative shard work. */
using CancelToken = std::shared_ptr<std::atomic<bool>>;

inline CancelToken
makeCancelToken()
{
    return std::make_shared<std::atomic<bool>>(false);
}

inline bool
cancelled(const CancelToken &token)
{
    return token && token->load(std::memory_order_acquire);
}

class Watchdog
{
  public:
    Watchdog();
    ~Watchdog();

    Watchdog(const Watchdog &) = delete;
    Watchdog &operator=(const Watchdog &) = delete;

    /**
     * Watch `token`: if not disarmed within `deadline_s` seconds, the
     * token is cancelled. Returns a handle for disarm().
     */
    long arm(double deadline_s, CancelToken token);

    /**
     * Stop watching. Returns false when the entry already fired (or
     * the handle is unknown), true when disarmed in time.
     */
    bool disarm(long id);

    /** Deadlines that expired while still armed. */
    long firedCount() const
    {
        return fired_.load(std::memory_order_relaxed);
    }

  private:
    using Clock = std::chrono::steady_clock;

    struct Entry
    {
        Clock::time_point deadline;
        CancelToken token;
        /** The arming shard's trace context, captured at arm() so a
         *  fire on the scanner thread is attributed to the stalled
         *  shard's trace (as an error span). */
        obs::TraceContext ctx;
    };

    void scanLoop();

    std::mutex mu_;
    std::condition_variable cv_;
    std::map<long, Entry> armed_;
    long next_id_ = 1;
    bool stop_ = false;
    std::atomic<long> fired_{0};
    std::thread scanner_;
};

} // namespace fleet
} // namespace gpupm

#endif // GPUPM_FLEET_WATCHDOG_HH
