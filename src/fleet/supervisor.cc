#include "supervisor.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/logging.hh"
#include "common/numio.hh"
#include "fleet/chaos.hh"
#include "fleet/pool.hh"
#include "fleet/shard.hh"
#include "fleet/shard_io.hh"
#include "fleet/watchdog.hh"
#include "gpu/device.hh"
#include "obs/standard.hh"
#include "obs/trace.hh"
#include "obs/tsdb.hh"

namespace gpupm
{
namespace fleet
{

namespace
{

std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Seeded exponential backoff with +-25% jitter, seconds. */
double
backoffSeconds(const FleetOptions &opts, int shard, int attempt)
{
    double base = opts.backoff_base_s;
    for (int i = 0; i < attempt && base < opts.backoff_max_s; ++i)
        base *= 2.0;
    base = std::min(base, opts.backoff_max_s);
    const std::uint64_t key =
            mix64(opts.seed ^ 0xbacc0ffull) ^
            (static_cast<std::uint64_t>(shard) << 20) ^
            static_cast<std::uint64_t>(attempt);
    const double jitter =
            static_cast<double>(mix64(key) >> 11) * 0x1.0p-53;
    return base * (0.75 + 0.5 * jitter);
}

void
sleepSeconds(double s)
{
    if (s > 0.0)
        std::this_thread::sleep_for(
                std::chrono::duration<double>(s));
}

/**
 * Simulate a writer killed mid-checkpoint: the prefix of the real
 * serialization lands directly at the final path, no temp file, no
 * rename — exactly the torn artifact the resume path must survive.
 */
void
writeTornCheckpoint(const std::string &path, const std::string &full)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(full.data(),
              static_cast<std::streamsize>(full.size() / 2));
}

/** Shared state of one running fleet campaign. */
struct FleetRun
{
    FleetRun(const FleetOptions &o, const std::vector<ShardSpec> &s,
             WorkStealingPool &p, Watchdog &w)
        : opts(o), shards(s), pool(p), watchdog(w)
    {}

    const FleetOptions &opts;
    const std::vector<ShardSpec> &shards;
    WorkStealingPool &pool;
    Watchdog &watchdog;

    std::mutex mu;
    std::map<int, ShardResult> results;
    std::atomic<long> retries{0};
    std::atomic<long> kills{0};
    std::atomic<long> stalls{0};
    std::atomic<int> quarantined{0};
    std::atomic<int> resumed{0};

    void record(ShardResult result)
    {
        std::lock_guard<std::mutex> lock(mu);
        results[result.index] = std::move(result);
    }

    void submitShard(std::size_t si, int attempt)
    {
        pool.submit([this, si, attempt] { runShardTask(si, attempt); });
    }

    void runShardTask(std::size_t si, int attempt)
    {
        const ShardSpec &shard = shards[si];
        // Child of the worker's fleet.task span (itself inside the
        // campaign's trace via the submit-time context handoff);
        // marked error on any failed attempt so chaos casualties are
        // tail-kept by the trace store.
        GPUPM_TRACE_SPAN_NAMED(shard_span, "fleet", "fleet.shard");
        shard_span.arg("shard", std::to_string(shard.index));
        shard_span.arg("attempt", std::to_string(attempt + 1));
        const std::string ck_path =
                opts.checkpoint_dir.empty()
                        ? std::string()
                        : shardCheckpointPath(opts.checkpoint_dir,
                                              shard.index);

        if (attempt == 0 && !ck_path.empty())
        {
            const bool existed =
                    std::filesystem::exists(ck_path);
            model::IoExpected<ShardResult> loaded =
                    tryLoadShardResult(ck_path, opts, shard);
            if (loaded.ok())
            {
                resumed.fetch_add(1, std::memory_order_relaxed);
                record(std::move(loaded.value()));
                return;
            }
            if (existed)
                warn("fleet shard ", shard.index,
                     ": unusable checkpoint [",
                     model::ioErrcName(loaded.error().code), "]: ",
                     loaded.error().message, " -- re-running");
        }

        const ChaosDecision chaos =
                chaosForAttempt(opts.chaos, shard.index, attempt);
        const CancelToken token = makeCancelToken();
        const long wd_id =
                watchdog.arm(opts.watchdog_deadline_s, token);

        bool failed = false;
        std::string why;
        ShardAttemptResult att;
        if (chaos.stall)
        {
            stalls.fetch_add(1, std::memory_order_relaxed);
            while (!cancelled(token))
                sleepSeconds(0.002);
            failed = true;
            why = "chaos stall cancelled by watchdog";
        }
        else
        {
            att = runShardAttempt(shard, opts, token);
            if (att.cancelled)
            {
                failed = true;
                why = "watchdog cancelled the attempt";
            }
        }
        watchdog.disarm(wd_id);

        if (!failed && chaos.kill)
        {
            kills.fetch_add(1, std::memory_order_relaxed);
            ShardResult dying;
            dying.index = shard.index;
            dying.attempts = attempt + 1;
            dying.outcomes = att.outcomes;
            if (!ck_path.empty())
                writeTornCheckpoint(
                        ck_path, serializeShardResult(dying, opts,
                                                      shard));
            failed = true;
            why = "chaos kill mid-checkpoint";
        }

        if (!failed)
        {
            ShardResult result;
            result.index = shard.index;
            result.attempts = attempt + 1;
            result.outcomes = std::move(att.outcomes);
            if (!ck_path.empty())
            {
                model::IoExpected<bool> saved = trySaveShardResult(
                        result, opts, shard, ck_path);
                if (!saved.ok())
                    warn("fleet shard ", shard.index,
                         ": checkpoint write failed [",
                         model::ioErrcName(saved.error().code),
                         "]: ", saved.error().message);
            }
            record(std::move(result));
            return;
        }

        shard_span.markError(); // every path below is a failure
        if (attempt < opts.shard_retry_budget)
        {
            retries.fetch_add(1, std::memory_order_relaxed);
            const double delay =
                    backoffSeconds(opts, shard.index, attempt);
            inform("fleet shard ", shard.index, ": attempt ",
                   attempt + 1, " failed (", why, "); retrying");
            pool.submit([this, si, attempt, delay] {
                sleepSeconds(delay);
                runShardTask(si, attempt + 1);
            });
            return;
        }

        // Retry budget exhausted: quarantine. The devices stay in
        // the report with an explicit failure kind — graceful
        // degradation, never silent loss.
        quarantined.fetch_add(1, std::memory_order_relaxed);
        warn("fleet shard ", shard.index,
             ": quarantined after ", attempt + 1, " attempts (",
             why, ")");
        ShardResult result;
        result.index = shard.index;
        result.attempts = attempt + 1;
        for (const DeviceSpec &spec : shard.devices)
        {
            DeviceOutcome out;
            out.id = spec.id;
            out.kind = spec.kind;
            out.ok = false;
            out.fail = DeviceFailKind::ShardQuarantined;
            out.message = "shard retry budget exhausted: " + why;
            result.outcomes.push_back(std::move(out));
        }
        record(std::move(result));
    }
};

} // namespace

std::vector<DeviceSpec>
buildFleetSpecs(const FleetOptions &opts)
{
    std::vector<DeviceSpec> specs;
    specs.reserve(static_cast<std::size_t>(
            opts.devices < 0 ? 0 : opts.devices));
    for (long id = 0; id < opts.devices; ++id)
    {
        DeviceSpec spec;
        spec.id = id;
        spec.kind = gpu::kAllDevices[static_cast<std::size_t>(id) %
                                     gpu::kAllDevices.size()];
        spec.seed = mix64(opts.seed ^ 0x5eedf1ee7ull ^
                          static_cast<std::uint64_t>(id));
        if (chaosPoisonsDevice(opts.chaos, id))
        {
            if (chaosPoisonIsNan(opts.chaos, id))
                spec.poison_nan = true;
            else
                spec.poison_config = true;
        }
        specs.push_back(spec);
    }
    return specs;
}

std::vector<ShardSpec>
shardDevices(const std::vector<DeviceSpec> &devices, int shards)
{
    const long n = static_cast<long>(devices.size());
    long k = shards < 1 ? 1 : shards;
    if (k > n && n > 0)
        k = n;
    std::vector<ShardSpec> out;
    long next = 0;
    for (long s = 0; s < k; ++s)
    {
        ShardSpec shard;
        shard.index = static_cast<int>(s);
        const long count = n / k + (s < n % k ? 1 : 0);
        for (long i = 0; i < count; ++i)
            shard.devices.push_back(
                    devices[static_cast<std::size_t>(next++)]);
        out.push_back(std::move(shard));
    }
    return out;
}

FleetResult
runFleetCampaign(const FleetOptions &opts)
{
    return runFleetCampaign(opts, buildFleetSpecs(opts));
}

FleetResult
runFleetCampaign(const FleetOptions &opts,
                 const std::vector<DeviceSpec> &devices)
{
    const std::vector<ShardSpec> shards =
            shardDevices(devices, opts.shards);

    if (!opts.checkpoint_dir.empty())
    {
        std::error_code ec;
        std::filesystem::create_directories(opts.checkpoint_dir, ec);
        if (ec)
            warn("fleet: cannot create checkpoint dir '",
                 opts.checkpoint_dir, "': ", ec.message());
    }

    int threads = opts.threads;
    if (threads <= 0)
    {
        const unsigned hw = std::thread::hardware_concurrency();
        threads = static_cast<int>(
                std::min<std::size_t>(shards.size(),
                                      hw > 2 ? hw : 2));
    }

    FleetResult result;
    {
        // One trace per campaign: every pool task captures this
        // context at submission (including retries resubmitted from
        // worker threads), so all shard/task/watchdog spans assemble
        // into a single trace when this root closes after wait().
        GPUPM_TRACE_SPAN_NAMED(campaign_span, "fleet",
                               "fleet.campaign");
        campaign_span.arg("devices",
                          std::to_string(devices.size()));
        campaign_span.arg("shards", std::to_string(shards.size()));

        WorkStealingPool pool(threads);
        Watchdog watchdog;
        FleetRun run{opts, shards, pool, watchdog};

        // Pool starvation: sleeper tasks ahead of every shard, all
        // on one queue so the other workers must steal past them.
        for (int i = 0; i < opts.chaos.starve_tasks; ++i)
            pool.submitTo(0, [&opts] {
                sleepSeconds(opts.chaos.starve_ms / 1000.0);
            });

        for (std::size_t si = 0; si < shards.size(); ++si)
            run.submitShard(si, 0);
        pool.wait();

        for (auto &[index, shard_result] : run.results)
        {
            (void)index;
            result.shards.push_back(std::move(shard_result));
        }

        result.shard_retries = run.retries.load();
        result.shards_quarantined = run.quarantined.load();
        result.shards_resumed = run.resumed.load();
        result.chaos_kills = run.kills.load();
        result.chaos_stalls = run.stalls.load();
        result.watchdog_fires = watchdog.firedCount();
        result.pool_steals = pool.stealCount();
    }

    result.scoreboard = mergeShardResults(result.shards);
    publishFleetMetrics(result);
    inform("fleet campaign: ", result.scoreboard.devices_ok, "/",
           result.scoreboard.devices_total, " devices healthy, ",
           result.shard_retries, " shard retries, ",
           result.shards_quarantined, " quarantined");
    return result;
}

void
publishFleetMetrics(const FleetResult &result)
{
    obs::fleetCampaignsTotal().inc();
    obs::fleetDevicesTotal().set(
            static_cast<double>(result.scoreboard.devices_total));
    obs::fleetDevicesFailed().set(
            static_cast<double>(result.scoreboard.devices_failed));
    obs::fleetShardRetriesTotal().inc(
            static_cast<double>(result.shard_retries));
    obs::fleetShardsQuarantinedTotal().inc(
            static_cast<double>(result.shards_quarantined));
    obs::fleetChaosKillsTotal().inc(
            static_cast<double>(result.chaos_kills));
    obs::fleetChaosStallsTotal().inc(
            static_cast<double>(result.chaos_stalls));
    obs::fleetWatchdogFiresTotal().inc(
            static_cast<double>(result.watchdog_fires));
    obs::fleetPoolStealsTotal().inc(
            static_cast<double>(result.pool_steals));
    obs::fleetOverallMaePct().set(
            result.scoreboard.overall.mae_pct);
    for (const ArchAggregate &agg : result.scoreboard.per_arch)
    {
        obs::fleetArchMaePct(agg.arch).set(agg.stats.mae_pct);
        obs::fleetArchDevicesOk(agg.arch).set(
                static_cast<double>(agg.devices_ok));
    }
}

void
publishFleetSeries(const FleetResult &result, obs::Tsdb &tsdb)
{
    auto archLabel = [](const std::string &arch) {
        return std::string("arch=\"") +
               obs::Registry::labelEscape(arch) + "\"";
    };

    // Healthy devices are already ascending id; device i lands at a
    // virtual t = (i+1) s so the series are reproducible run to run.
    std::map<std::string, std::vector<double>> arch_maes;
    double overall_sum = 0.0;
    std::size_t overall_n = 0;
    std::size_t i = 0;
    for (const DeviceScore &ds : result.scoreboard.devices)
    {
        const std::int64_t t_us =
                static_cast<std::int64_t>(i + 1) * 1'000'000;
        const std::string arch = std::string(gpu::architectureName(
                gpu::DeviceDescriptor::get(ds.kind).architecture));
        tsdb.append("gpupm_fleet_device_mae_pct{" + archLabel(arch) +
                            "}",
                    t_us, ds.stats.mae_pct);
        auto &maes = arch_maes[arch];
        maes.push_back(ds.stats.mae_pct);
        double sum = 0.0;
        for (double m : maes)
            sum += m;
        tsdb.append("gpupm_fleet_arch_mae_pct{" + archLabel(arch) +
                            "}",
                    t_us, sum / static_cast<double>(maes.size()));
        tsdb.append("gpupm_fleet_arch_devices_ok{" + archLabel(arch) +
                            "}",
                    t_us, static_cast<double>(maes.size()));
        overall_sum += ds.stats.mae_pct;
        ++overall_n;
        tsdb.append("gpupm_fleet_mae_pct", t_us,
                    overall_sum / static_cast<double>(overall_n));
        ++i;
    }
}

std::string
FleetResult::summary() const
{
    std::ostringstream os;
    os << scoreboard.summaryText();
    os << "shards: " << shards.size() << " (" << shards_resumed
       << " resumed, " << shards_quarantined << " quarantined), "
       << shard_retries << " retries\n";
    if (chaos_kills + chaos_stalls > 0 || watchdog_fires > 0)
        os << "chaos: " << chaos_kills << " kills, " << chaos_stalls
           << " stalls; watchdog fired " << watchdog_fires
           << " times\n";
    os << "pool: " << pool_steals << " tasks stolen\n";
    return os.str();
}

std::string
FleetResult::toJson() const
{
    std::ostringstream os;
    os << "{\"schema\":\"gpupm_fleet_report_v1\",\"scoreboard\":"
       << scoreboard.toJson(true) << ",\"shards\":[";
    for (std::size_t i = 0; i < shards.size(); ++i)
    {
        if (i)
            os << ',';
        os << "{\"index\":" << shards[i].index << ",\"attempts\":"
           << shards[i].attempts << ",\"resumed\":"
           << (shards[i].resumed ? "true" : "false")
           << ",\"devices\":" << shards[i].outcomes.size() << '}';
    }
    os << "],\"shard_retries\":" << shard_retries
       << ",\"shards_quarantined\":" << shards_quarantined
       << ",\"shards_resumed\":" << shards_resumed
       << ",\"watchdog_fires\":" << watchdog_fires
       << ",\"chaos_kills\":" << chaos_kills << ",\"chaos_stalls\":"
       << chaos_stalls << ",\"pool_steals\":" << pool_steals << '}';
    return os.str();
}

} // namespace fleet
} // namespace gpupm
