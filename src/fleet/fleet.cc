#include "fleet.hh"

namespace gpupm
{
namespace fleet
{

std::string_view
deviceFailKindName(DeviceFailKind kind)
{
    switch (kind)
    {
        case DeviceFailKind::None:
            return "none";
        case DeviceFailKind::MeasureFailed:
            return "measure-failed";
        case DeviceFailKind::CorruptData:
            return "corrupt-data";
        case DeviceFailKind::FitFailed:
            return "fit-failed";
        case DeviceFailKind::ShardQuarantined:
            return "shard-quarantined";
        case DeviceFailKind::Cancelled:
            return "cancelled";
    }
    return "none";
}

DeviceFailKind
deviceFailKindOf(std::string_view name)
{
    static constexpr DeviceFailKind kinds[] = {
            DeviceFailKind::MeasureFailed,
            DeviceFailKind::CorruptData,
            DeviceFailKind::FitFailed,
            DeviceFailKind::ShardQuarantined,
            DeviceFailKind::Cancelled,
    };
    for (DeviceFailKind k : kinds)
        if (deviceFailKindName(k) == name)
            return k;
    return DeviceFailKind::None;
}

} // namespace fleet
} // namespace gpupm
