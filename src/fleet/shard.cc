#include "shard.hh"

#include <algorithm>
#include <cmath>
#include <exception>
#include <string>

#include "common/logging.hh"
#include "core/backend.hh"
#include "core/campaign.hh"
#include "core/estimator.hh"
#include "core/faults.hh"
#include "core/predictor.hh"
#include "obs/residuals.hh"
#include "obs/scoreboard.hh"
#include "sim/jitter.hh"
#include "sim/physical_gpu.hh"
#include "ubench/suite.hh"
#include "workloads/workloads.hh"

namespace gpupm
{
namespace fleet
{

namespace
{

/** Shared read-only suite/workloads (thread-safe local statics). */
const std::vector<ubench::Microbenchmark> &
fullSuite()
{
    static const std::vector<ubench::Microbenchmark> suite =
            ubench::buildSuite();
    return suite;
}

const std::vector<workloads::Workload> &
validationApps()
{
    static const std::vector<workloads::Workload> apps =
            workloads::validationSet();
    return apps;
}

/** Strided suite subset: every idle row plus every stride-th other. */
std::vector<ubench::Microbenchmark>
fleetSuite(int stride)
{
    const auto &all = fullSuite();
    if (stride <= 1)
        return all;
    std::vector<ubench::Microbenchmark> out;
    int nonidle = 0;
    for (const auto &mb : all)
    {
        if (mb.family == ubench::Family::Idle)
            out.push_back(mb);
        else if (nonidle++ % stride == 0)
            out.push_back(mb);
    }
    return out;
}

bool
finiteTrainingData(const model::TrainingData &data)
{
    for (const auto &row : data.power_w)
        for (double w : row)
            if (!std::isfinite(w))
                return false;
    for (const auto &u : data.utils)
        for (double x : u)
            if (!std::isfinite(x))
                return false;
    return true;
}

DeviceOutcome
failedOutcome(const DeviceSpec &spec, DeviceFailKind kind,
              std::string message)
{
    DeviceOutcome out;
    out.id = spec.id;
    out.kind = spec.kind;
    out.ok = false;
    out.fail = kind;
    out.message = std::move(message);
    return out;
}

} // namespace

std::vector<gpu::FreqConfig>
fleetConfigSubset(const gpu::DeviceDescriptor &desc, int max_configs)
{
    if (max_configs <= 0)
        return {};
    const gpu::FreqConfig ref = desc.referenceConfig();

    // Reference memory clock first, then the lowest different one:
    // two memory levels keep the memory-domain terms identifiable.
    std::vector<int> mems = {ref.mem_mhz};
    for (auto it = desc.mem_freqs_mhz.rbegin();
         it != desc.mem_freqs_mhz.rend(); ++it)
        if (*it != ref.mem_mhz)
        {
            mems.push_back(*it);
            break;
        }

    // Core clocks spread across the supported range. The Eq. 11
    // initialization needs the reference plus two more core levels,
    // so never go below three per memory clock.
    const int per_mem = std::max<int>(
            3, max_configs / static_cast<int>(mems.size()));
    const auto &cores_all = desc.core_freqs_mhz;
    std::vector<int> cores;
    for (int i = 0; i < per_mem; ++i)
    {
        const std::size_t idx =
                per_mem == 1
                        ? 0
                        : (static_cast<std::size_t>(i) *
                           (cores_all.size() - 1)) /
                                  static_cast<std::size_t>(per_mem -
                                                           1);
        const int mhz = cores_all[idx];
        if (std::find(cores.begin(), cores.end(), mhz) ==
            cores.end())
            cores.push_back(mhz);
    }
    if (std::find(cores.begin(), cores.end(), ref.core_mhz) ==
        cores.end())
        cores.push_back(ref.core_mhz);

    std::vector<gpu::FreqConfig> subset;
    for (int m : mems)
        for (int c : cores)
            subset.push_back({c, m});
    return subset;
}

DeviceOutcome
runDevice(const DeviceSpec &spec, const FleetOptions &opts,
          const CancelToken &token)
{
    if (cancelled(token))
        return failedOutcome(spec, DeviceFailKind::Cancelled,
                             "attempt cancelled before start");

    const gpu::DeviceDescriptor &desc =
            gpu::DeviceDescriptor::get(spec.kind);
    const sim::PhysicalGpu board(
            desc, sim::jitteredGroundTruth(spec.kind, spec.seed,
                                           opts.jitter_frac));

    model::CampaignOptions copts;
    copts.power_repetitions = opts.power_repetitions;
    copts.min_duration_s = opts.min_duration_s;
    copts.seed = spec.seed;
    copts.config_subset = fleetConfigSubset(desc, opts.max_configs);

    // Train. Poisoned devices fail here (broken reference config) or
    // at the data check below (NaN sensor rail).
    model::TrainingData data;
    try
    {
        model::SimulatedBackend inner(board, spec.seed);
        if (spec.poison_nan || spec.poison_config)
        {
            model::FaultSpec fspec;
            fspec.seed = spec.seed;
            if (spec.poison_nan)
                fspec.nan_rate = 1.0;
            if (spec.poison_config)
                fspec.broken_configs = {desc.referenceConfig()};
            model::FaultInjectingBackend faulty(inner, fspec);
            data = model::runTrainingCampaign(
                    faulty, fleetSuite(opts.suite_stride), copts);
        }
        else
        {
            data = model::runTrainingCampaign(
                    inner, fleetSuite(opts.suite_stride), copts);
        }
    }
    catch (const model::MeasurementError &e)
    {
        return failedOutcome(
                spec, DeviceFailKind::MeasureFailed,
                std::string(model::measureErrcName(e.code())) + ": " +
                        e.what());
    }
    catch (const std::exception &e)
    {
        return failedOutcome(spec, DeviceFailKind::MeasureFailed,
                             e.what());
    }

    if (!finiteTrainingData(data))
        return failedOutcome(
                spec, DeviceFailKind::CorruptData,
                "non-finite values in campaign data");

    // Fit.
    const model::FitResult fit =
            model::ModelEstimator().tryEstimate(data);
    if (!fit.ok())
        return failedOutcome(
                spec, DeviceFailKind::FitFailed,
                std::string(model::fitErrcName(fit.error().code)) +
                        ": " + fit.error().message);

    // Validate: a small audit over held-out applications.
    const model::Predictor predictor(fit.value().model);
    std::vector<gpu::FreqConfig> val_cfgs;
    for (const auto &cfg : data.configs)
    {
        val_cfgs.push_back(cfg);
        if (static_cast<int>(val_cfgs.size()) >=
            std::max(1, opts.validation_configs))
            break;
    }

    const auto &apps = validationApps();
    const int n_apps = std::min<int>(
            std::max(1, opts.validation_apps),
            static_cast<int>(apps.size()));
    std::vector<obs::ResidualSample> samples;
    for (int a = 0; a < n_apps; ++a)
    {
        const auto &wl = apps[static_cast<std::size_t>(a)];
        const model::AppMeasurement meas =
                model::measureApp(board, wl.demand, val_cfgs, copts);
        for (std::size_t c = 0; c < meas.configs.size(); ++c)
        {
            const model::PowerPrediction pred =
                    predictor.at(meas.util, meas.configs[c]);
            obs::ResidualSample s;
            s.app = wl.name;
            s.cfg = meas.configs[c];
            s.measured_w = meas.power_w[c];
            s.predicted_w = pred.total_w;
            s.constant_w = pred.constant_w;
            s.component_w = pred.component_w;
            samples.push_back(std::move(s));
        }
    }

    std::vector<const obs::ResidualSample *> group;
    group.reserve(samples.size());
    for (const auto &s : samples)
        group.push_back(&s);

    DeviceOutcome out;
    out.id = spec.id;
    out.kind = spec.kind;
    out.ok = true;
    out.fail = DeviceFailKind::None;
    out.stats = obs::scoreOf(group);
    out.fit_rmse_w = fit.value().rmse_w;
    out.fit_iterations = fit.value().iterations;
    return out;
}

ShardAttemptResult
runShardAttempt(const ShardSpec &shard, const FleetOptions &opts,
                const CancelToken &token)
{
    ShardAttemptResult result;
    for (const DeviceSpec &spec : shard.devices)
    {
        if (cancelled(token))
        {
            result.cancelled = true;
            result.outcomes.push_back(failedOutcome(
                    spec, DeviceFailKind::Cancelled,
                    "shard attempt cancelled by watchdog"));
            continue;
        }
        result.outcomes.push_back(runDevice(spec, opts, token));
        if (result.outcomes.back().fail == DeviceFailKind::Cancelled)
            result.cancelled = true;
    }
    return result;
}

} // namespace fleet
} // namespace gpupm
