#include "merge.hh"

#include <algorithm>
#include <map>
#include <cstdio>
#include <sstream>

#include "common/numio.hh"
#include "common/stats.hh"
#include "gpu/device.hh"

namespace gpupm
{
namespace fleet
{

namespace
{

std::string
archOf(gpu::DeviceKind kind)
{
    return std::string(gpu::architectureName(
            gpu::DeviceDescriptor::get(kind).architecture));
}

/** Two-decimal percentage for human summaries. */
std::string
pct(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
}

void
appendScoreStats(std::ostringstream &os, const obs::ScoreStats &s)
{
    os << "{\"samples\":" << s.samples << ",\"mae_pct\":"
       << numio::formatDouble(s.mae_pct) << ",\"rmse_w\":"
       << numio::formatDouble(s.rmse_w) << ",\"max_err_pct\":"
       << numio::formatDouble(s.max_err_pct)
       << ",\"mean_measured_w\":"
       << numio::formatDouble(s.mean_measured_w) << "}";
}

} // namespace

FleetScoreboard
mergeShardResults(const std::vector<ShardResult> &shards)
{
    // Flatten, then order by device id: the merge may see shards in
    // any completion order and must not care.
    std::vector<const DeviceOutcome *> all;
    for (const ShardResult &shard : shards)
        for (const DeviceOutcome &o : shard.outcomes)
            all.push_back(&o);
    std::sort(all.begin(), all.end(),
              [](const DeviceOutcome *a, const DeviceOutcome *b) {
                  return a->id < b->id;
              });

    FleetScoreboard fs;
    fs.devices_total = static_cast<long>(all.size());

    std::map<std::string, std::vector<const DeviceScore *>> by_arch;
    std::map<std::string, long> fail_counts;
    for (const DeviceOutcome *o : all)
    {
        if (o->ok)
        {
            DeviceScore ds;
            ds.id = o->id;
            ds.kind = o->kind;
            ds.stats = o->stats;
            ds.fit_rmse_w = o->fit_rmse_w;
            ds.fit_iterations = o->fit_iterations;
            fs.devices.push_back(ds);
        }
        else
        {
            fs.failures.push_back(
                    {o->id, o->kind, o->fail, o->message});
            ++fail_counts[std::string(
                    deviceFailKindName(o->fail))];
        }
    }
    fs.devices_ok = static_cast<long>(fs.devices.size());
    fs.devices_failed = static_cast<long>(fs.failures.size());

    // Overall + per-architecture marginals (paper device order).
    std::vector<obs::ScoreStats> all_stats;
    for (const DeviceScore &ds : fs.devices)
    {
        all_stats.push_back(ds.stats);
        by_arch[archOf(ds.kind)].push_back(&ds);
    }
    fs.overall = obs::combineScoreStats(all_stats);
    for (gpu::DeviceKind kind : gpu::kAllDevices)
    {
        const std::string arch = archOf(kind);
        auto it = by_arch.find(arch);
        if (it == by_arch.end())
            continue;
        ArchAggregate agg;
        agg.arch = arch;
        agg.devices_ok = static_cast<long>(it->second.size());
        std::vector<obs::ScoreStats> group;
        for (const DeviceScore *ds : it->second)
            group.push_back(ds->stats);
        agg.stats = obs::combineScoreStats(group);
        fs.per_arch.push_back(std::move(agg));
        by_arch.erase(it);
    }

    // Robust per-device MAE outliers among the healthy population.
    std::vector<double> maes;
    for (const DeviceScore &ds : fs.devices)
        maes.push_back(ds.stats.mae_pct);
    if (maes.size() >= 4)
    {
        const std::vector<bool> mask =
                stats::madOutlierMask(maes, 3.5);
        for (std::size_t i = 0; i < mask.size(); ++i)
            if (mask[i])
                fs.outliers.push_back(fs.devices[i].id);
    }

    for (const auto &[name, count] : fail_counts)
        fs.failures_by_kind.emplace_back(name, count);
    return fs;
}

std::string
FleetScoreboard::toJson(bool include_failures) const
{
    std::ostringstream os;
    os << "{\"schema\":\"gpupm_fleet_v1\",\"devices_ok\":"
       << devices_ok;
    os << ",\"overall\":";
    appendScoreStats(os, overall);
    os << ",\"per_arch\":[";
    for (std::size_t i = 0; i < per_arch.size(); ++i)
    {
        if (i)
            os << ',';
        os << "{\"arch\":\"" << per_arch[i].arch
           << "\",\"devices_ok\":" << per_arch[i].devices_ok
           << ",\"stats\":";
        appendScoreStats(os, per_arch[i].stats);
        os << '}';
    }
    os << "],\"devices\":[";
    for (std::size_t i = 0; i < devices.size(); ++i)
    {
        const DeviceScore &ds = devices[i];
        if (i)
            os << ',';
        os << "{\"id\":" << ds.id << ",\"kind\":"
           << static_cast<int>(ds.kind) << ",\"stats\":";
        appendScoreStats(os, ds.stats);
        os << ",\"fit_rmse_w\":" << numio::formatDouble(ds.fit_rmse_w)
           << ",\"fit_iterations\":" << ds.fit_iterations << '}';
    }
    os << "],\"outliers\":[";
    for (std::size_t i = 0; i < outliers.size(); ++i)
    {
        if (i)
            os << ',';
        os << outliers[i];
    }
    os << ']';
    if (include_failures)
    {
        os << ",\"devices_total\":" << devices_total
           << ",\"devices_failed\":" << devices_failed
           << ",\"failures_by_kind\":{";
        for (std::size_t i = 0; i < failures_by_kind.size(); ++i)
        {
            if (i)
                os << ',';
            os << '"' << failures_by_kind[i].first
               << "\":" << failures_by_kind[i].second;
        }
        os << "},\"failures\":[";
        for (std::size_t i = 0; i < failures.size(); ++i)
        {
            const DeviceFailure &f = failures[i];
            if (i)
                os << ',';
            os << "{\"id\":" << f.id << ",\"kind\":"
               << static_cast<int>(f.kind) << ",\"fail\":\""
               << deviceFailKindName(f.fail) << "\"}";
        }
        os << ']';
    }
    os << '}';
    return os.str();
}

std::string
FleetScoreboard::summaryText() const
{
    std::ostringstream os;
    os << "fleet: " << devices_ok << "/" << devices_total
       << " devices healthy";
    if (devices_failed > 0)
    {
        os << " (" << devices_failed << " failed:";
        for (const auto &[name, count] : failures_by_kind)
            os << ' ' << name << "=" << count;
        os << ')';
    }
    os << '\n';
    if (devices_ok > 0)
    {
        os << "overall MAE " << pct(overall.mae_pct)
           << "% over " << overall.samples
           << " validation samples\n";
        for (const ArchAggregate &agg : per_arch)
            os << "  " << agg.arch << ": " << agg.devices_ok
               << " devices, MAE " << pct(agg.stats.mae_pct)
               << "%\n";
    }
    if (!outliers.empty())
    {
        os << "outlier devices (MAD on per-device MAE):";
        for (long id : outliers)
            os << ' ' << id;
        os << '\n';
    }
    return os.str();
}

} // namespace fleet
} // namespace gpupm
