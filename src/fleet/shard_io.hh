/**
 * @file
 * Crash-safe persistence of per-shard fleet results.
 *
 * Each completed shard is written as a v2 "fleetshard" envelope
 * (CRC32 + declared size) around a line-oriented text payload, via
 * write-to-temp + atomic rename — a killed writer can tear the
 * temporary file but never the checkpoint itself. A resumed fleet
 * campaign loads whatever shard checkpoints verify: a torn, corrupt
 * or stale file comes back as a typed IoStatus and the shard simply
 * re-runs; nothing aborts and nothing is double-counted.
 *
 * Stale checkpoints are rejected by fingerprint: a CRC32 over every
 * option that shapes device outcomes plus the shard's device specs,
 * so changing the fleet seed, the campaign knobs or the sharding
 * invalidates old checkpoints instead of silently merging them.
 */

#ifndef GPUPM_FLEET_SHARD_IO_HH
#define GPUPM_FLEET_SHARD_IO_HH

#include <string>

#include "core/model_io.hh"
#include "fleet/fleet.hh"

namespace gpupm
{
namespace fleet
{

/** Checkpoint path of one shard inside a fleet checkpoint dir. */
std::string shardCheckpointPath(const std::string &dir, int index);

/**
 * CRC32 fingerprint of everything that shapes this shard's outcomes:
 * campaign knobs, jitter, and the shard's device specs (ids, kinds,
 * seeds, poison flags).
 */
std::string fleetFingerprint(const FleetOptions &opts,
                             const ShardSpec &shard);

/** Serialize a shard result (v2 fleetshard envelope). */
std::string serializeShardResult(const ShardResult &result,
                                 const FleetOptions &opts,
                                 const ShardSpec &shard);

/**
 * Parse serializeShardResult output, verifying the envelope and the
 * fingerprint against (opts, shard). Typed errors throughout:
 * ParseError / ChecksumMismatch / VersionMismatch from the envelope,
 * ValidationError when the checkpoint is from a different fleet
 * configuration or shard.
 */
model::IoExpected<ShardResult>
tryParseShardResult(const std::string &text, const FleetOptions &opts,
                    const ShardSpec &shard);

/** Read + parse + verify a shard checkpoint file. */
model::IoExpected<ShardResult>
tryLoadShardResult(const std::string &path, const FleetOptions &opts,
                   const ShardSpec &shard);

/** Write a shard checkpoint (write-to-temp + atomic rename). */
model::IoExpected<bool>
trySaveShardResult(const ShardResult &result, const FleetOptions &opts,
                   const ShardSpec &shard, const std::string &path);

} // namespace fleet
} // namespace gpupm

#endif // GPUPM_FLEET_SHARD_IO_HH
