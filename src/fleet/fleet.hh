/**
 * @file
 * Shared vocabulary of the fleet-campaign subsystem (ROADMAP item 5).
 *
 * The paper trains one model per physical GPU; a fleet campaign
 * scales that to N simulated device instances — three architectures
 * with seeded per-instance ground-truth jitter — sharded across a
 * work-stealing thread pool under a supervisor that treats failure as
 * the expected case: watchdog deadlines with cancellation, seeded
 * retry/backoff per shard, quarantine past the retry budget, and
 * crash-safe per-shard checkpoints merged deterministically into one
 * fleet scoreboard. A fleet never silently shrinks: every device that
 * did not produce a usable model appears in the report with a typed
 * failure kind.
 */

#ifndef GPUPM_FLEET_FLEET_HH
#define GPUPM_FLEET_FLEET_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "fleet/chaos.hh"
#include "gpu/device.hh"
#include "obs/scoreboard.hh"

namespace gpupm
{
namespace fleet
{

/** One simulated device instance of the fleet. */
struct DeviceSpec
{
    long id = 0; ///< stable fleet-wide identifier
    gpu::DeviceKind kind = gpu::DeviceKind::GtxTitanX;
    /** Drives ground-truth jitter and all measurement noise. */
    std::uint64_t seed = 0;
    /** Chaos: every power read returns NaN. */
    bool poison_nan = false;
    /** Chaos: the reference configuration always fails. */
    bool poison_config = false;

    bool operator==(const DeviceSpec &) const = default;
};

/** Why a device has no usable model (the failure taxonomy). */
enum class DeviceFailKind
{
    None,             ///< device is healthy
    MeasureFailed,    ///< campaign threw (broken config, dead rail)
    CorruptData,      ///< campaign data contains non-finite values
    FitFailed,        ///< estimator returned a typed FitError
    ShardQuarantined, ///< its shard exhausted the retry budget
    Cancelled,        ///< watchdog cancelled the attempt mid-shard
};

/** Display name of a failure kind. */
std::string_view deviceFailKindName(DeviceFailKind kind);

/** Parse deviceFailKindName output; None on unknown input. */
DeviceFailKind deviceFailKindOf(std::string_view name);

/** Per-device result: a validation score or a typed failure. */
struct DeviceOutcome
{
    long id = -1;
    gpu::DeviceKind kind = gpu::DeviceKind::GtxTitanX;
    bool ok = false;
    DeviceFailKind fail = DeviceFailKind::None;
    /** One deterministic line of failure context ("" when ok). */
    std::string message;
    /** Validation accuracy of the fitted model (ok devices only). */
    obs::ScoreStats stats;
    double fit_rmse_w = 0.0;
    int fit_iterations = 0;

    bool operator==(const DeviceOutcome &) const = default;
};

/** The contiguous slice of the fleet one worker task runs. */
struct ShardSpec
{
    int index = 0;
    std::vector<DeviceSpec> devices;
};

/** One shard's merged-ready result. */
struct ShardResult
{
    int index = -1;
    int attempts = 1; ///< attempts consumed incl. the successful one
    bool resumed = false; ///< loaded from a checkpoint, not re-run
    std::vector<DeviceOutcome> outcomes;
};

/** Knobs of a fleet campaign. */
struct FleetOptions
{
    long devices = 12;
    int shards = 4;
    /** Worker threads; 0 = min(shards, hardware_concurrency). */
    int threads = 0;
    /** Base seed; per-device seeds derive from (seed, device id). */
    std::uint64_t seed = 42;
    /** Per-instance ground-truth jitter fraction (sim/jitter). */
    double jitter_frac = 0.05;

    /** Wall-clock deadline per shard attempt, seconds. */
    double watchdog_deadline_s = 120.0;
    /** Retries per shard beyond its first attempt. */
    int shard_retry_budget = 3;
    /** First retry delay, seconds; grows geometrically, jittered. */
    double backoff_base_s = 0.005;
    double backoff_max_s = 0.1;

    /**
     * When non-empty: per-shard checkpoints (v2 "fleetshard"
     * envelope, write-to-temp + atomic rename) are written here and
     * matching ones resumed from, so an interrupted fleet campaign
     * re-runs only its unfinished shards.
     */
    std::string checkpoint_dir;

    ChaosSpec chaos;

    // Per-device mini-campaign shape. The full paper campaign costs
    // ~83 microbenchmarks x the whole V-F grid; at fleet scale each
    // instance trains on a strided suite subset over a strided
    // configuration subset, which is still identifiable (reference
    // always kept, >= 2 mem clocks when the device has them).
    int power_repetitions = 2;
    double min_duration_s = 0.1;
    int suite_stride = 7;
    int max_configs = 6;
    int validation_apps = 2;
    int validation_configs = 3;
};

} // namespace fleet
} // namespace gpupm

#endif // GPUPM_FLEET_FLEET_HH
