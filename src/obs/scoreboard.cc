#include "scoreboard.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/numio.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "obs/standard.hh"

namespace gpupm
{
namespace obs
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** The stats fields shared by summary / per_app / per_config rows. */
void
putStats(std::ostringstream &os, const ScoreStats &st)
{
    os << "\"samples\":" << st.samples << ",\"mae_pct\":"
       << numio::formatDouble(st.mae_pct) << ",\"rmse_w\":"
       << numio::formatDouble(st.rmse_w) << ",\"max_err_pct\":"
       << numio::formatDouble(st.max_err_pct)
       << ",\"mean_measured_w\":"
       << numio::formatDouble(st.mean_measured_w);
}

} // namespace

ScoreStats
scoreOf(const std::vector<const ResidualSample *> &group)
{
    ScoreStats st;
    st.samples = static_cast<long>(group.size());
    if (group.empty())
        return st;
    std::vector<double> pred, meas;
    pred.reserve(group.size());
    meas.reserve(group.size());
    for (const ResidualSample *s : group) {
        pred.push_back(s->predicted_w);
        meas.push_back(s->measured_w);
        st.max_err_pct = std::max(st.max_err_pct, s->absErrPct());
    }
    st.mae_pct = stats::meanAbsPercentError(pred, meas);
    st.rmse_w = stats::rmse(pred, meas);
    st.mean_measured_w = stats::mean(meas);
    return st;
}

ScoreStats
combineScoreStats(const std::vector<ScoreStats> &groups)
{
    ScoreStats out;
    double mae_sum = 0.0, sq_sum = 0.0, meas_sum = 0.0;
    for (const ScoreStats &g : groups) {
        if (g.samples <= 0)
            continue;
        const double n = static_cast<double>(g.samples);
        out.samples += g.samples;
        mae_sum += g.mae_pct * n;
        sq_sum += g.rmse_w * g.rmse_w * n;
        meas_sum += g.mean_measured_w * n;
        out.max_err_pct = std::max(out.max_err_pct, g.max_err_pct);
    }
    if (out.samples > 0) {
        const double n = static_cast<double>(out.samples);
        out.mae_pct = mae_sum / n;
        out.rmse_w = std::sqrt(sq_sum / n);
        out.mean_measured_w = meas_sum / n;
    }
    return out;
}

Scoreboard
Scoreboard::fromSamples(int device, std::string device_name,
                        gpu::FreqConfig reference,
                        std::vector<ResidualSample> samples)
{
    Scoreboard sb;
    sb.device = device;
    sb.device_name = std::move(device_name);
    sb.reference = reference;
    sb.provenance = common::collectProvenance();
    sb.samples = std::move(samples);
    sb.recomputeAggregates();
    return sb;
}

void
Scoreboard::recomputeAggregates()
{
    per_app.clear();
    per_config.clear();
    core_marginal.clear();
    mem_marginal.clear();

    std::vector<const ResidualSample *> all;
    all.reserve(samples.size());
    for (const ResidualSample &s : samples)
        all.push_back(&s);
    overall = scoreOf(all);

    // Per app, in first-appearance (validation set) order.
    std::vector<std::string> app_order;
    std::map<std::string, std::vector<const ResidualSample *>> by_app;
    for (const ResidualSample &s : samples) {
        auto &group = by_app[s.app];
        if (group.empty())
            app_order.push_back(s.app);
        group.push_back(&s);
    }
    for (const std::string &app : app_order)
        per_app.push_back({app, scoreOf(by_app[app])});

    // Per (f_core, f_mem) cell and per-domain marginals.
    std::map<std::pair<int, int>, std::vector<const ResidualSample *>>
            by_cfg;
    std::map<int, std::vector<const ResidualSample *>> by_core, by_mem;
    for (const ResidualSample &s : samples) {
        by_cfg[{s.cfg.mem_mhz, s.cfg.core_mhz}].push_back(&s);
        by_core[s.cfg.core_mhz].push_back(&s);
        by_mem[s.cfg.mem_mhz].push_back(&s);
    }
    for (const auto &[key, group] : by_cfg)
        per_config.push_back(
                {gpu::FreqConfig{key.second, key.first},
                 scoreOf(group)});
    for (const auto &[mhz, group] : by_core)
        core_marginal.push_back({mhz, scoreOf(group)});
    for (const auto &[mhz, group] : by_mem)
        mem_marginal.push_back({mhz, scoreOf(group)});

    // Baseline MAEs, when the residuals carry baseline predictions.
    // A summary-only scoreboard keeps whatever rows it was loaded
    // with.
    std::map<std::string, std::pair<std::vector<double>,
                                    std::vector<double>>> by_base;
    for (const ResidualSample &s : samples)
        for (const auto &[name, w] : s.baseline_w) {
            by_base[name].first.push_back(w);
            by_base[name].second.push_back(s.measured_w);
        }
    if (!by_base.empty()) {
        baselines.clear();
        for (const auto &[name, series] : by_base)
            baselines.push_back(
                    {name, stats::meanAbsPercentError(series.first,
                                                      series.second)});
    }
}

std::string
Scoreboard::toJson(bool include_samples) const
{
    std::ostringstream os;
    os << "{\"gpupm_scoreboard_version\":1";
    os << ",\n\"provenance\":" << common::toJson(provenance);
    os << ",\n\"device\":" << device << ",\"device_name\":\""
       << jsonEscape(device_name) << "\"";
    os << ",\"reference\":[" << reference.core_mhz << ","
       << reference.mem_mhz << "]";
    os << ",\n\"summary\":{";
    putStats(os, overall);
    os << "}";
    os << ",\n\"per_app\":[";
    for (std::size_t i = 0; i < per_app.size(); ++i) {
        if (i)
            os << ",";
        os << "\n{\"app\":\"" << jsonEscape(per_app[i].app) << "\",";
        putStats(os, per_app[i].stats);
        os << "}";
    }
    os << "]";
    os << ",\n\"per_config\":[";
    for (std::size_t i = 0; i < per_config.size(); ++i) {
        if (i)
            os << ",";
        os << "\n{\"core_mhz\":" << per_config[i].cfg.core_mhz
           << ",\"mem_mhz\":" << per_config[i].cfg.mem_mhz << ",";
        putStats(os, per_config[i].stats);
        os << "}";
    }
    os << "]";
    auto putMarginal = [&os](const char *label,
                             const std::vector<MarginalScore> &rows) {
        os << ",\n\"" << label << "\":[";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            if (i)
                os << ",";
            os << "\n{\"mhz\":" << rows[i].mhz << ",";
            putStats(os, rows[i].stats);
            os << "}";
        }
        os << "]";
    };
    putMarginal("core_marginal", core_marginal);
    putMarginal("mem_marginal", mem_marginal);
    os << ",\n\"baselines\":[";
    for (std::size_t i = 0; i < baselines.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"name\":\"" << jsonEscape(baselines[i].name)
           << "\",\"mae_pct\":"
           << numio::formatDouble(baselines[i].mae_pct) << "}";
    }
    os << "]";
    if (include_samples) {
        os << ",\n\"samples\":[";
        for (std::size_t i = 0; i < samples.size(); ++i) {
            const ResidualSample &s = samples[i];
            if (i)
                os << ",";
            os << "\n{\"app\":\"" << jsonEscape(s.app)
               << "\",\"core_mhz\":" << s.cfg.core_mhz
               << ",\"mem_mhz\":" << s.cfg.mem_mhz
               << ",\"measured_w\":"
               << numio::formatDouble(s.measured_w)
               << ",\"predicted_w\":"
               << numio::formatDouble(s.predicted_w)
               << ",\"constant_w\":"
               << numio::formatDouble(s.constant_w)
               << ",\"component_w\":[";
            for (std::size_t k = 0; k < s.component_w.size(); ++k) {
                if (k)
                    os << ",";
                os << numio::formatDouble(s.component_w[k]);
            }
            os << "]";
            if (!s.baseline_w.empty()) {
                os << ",\"baseline_w\":[";
                for (std::size_t k = 0; k < s.baseline_w.size(); ++k) {
                    if (k)
                        os << ",";
                    os << "{\"name\":\""
                       << jsonEscape(s.baseline_w[k].first)
                       << "\",\"w\":"
                       << numio::formatDouble(s.baseline_w[k].second)
                       << "}";
                }
                os << "]";
            }
            os << "}";
        }
        os << "]";
    }
    os << "}\n";
    return os.str();
}

std::string
Scoreboard::summaryText() const
{
    std::ostringstream os;
    os << "Accuracy scoreboard: " << device_name << " (reference "
       << reference.core_mhz << "/" << reference.mem_mhz << " MHz)\n";
    os << "overall: " << overall.samples << " samples, MAE "
       << TextTable::num(overall.mae_pct) << "%, RMSE "
       << TextTable::num(overall.rmse_w) << " W, max error "
       << TextTable::num(overall.max_err_pct) << "%\n\n";

    TextTable apps({"App", "Samples", "MAE [%]", "RMSE [W]",
                    "Max [%]", "Mean meas [W]"});
    apps.setTitle("Per-application accuracy (Fig. 7)");
    for (const AppScore &a : per_app)
        apps.addRow({a.app, std::to_string(a.stats.samples),
                     TextTable::num(a.stats.mae_pct),
                     TextTable::num(a.stats.rmse_w),
                     TextTable::num(a.stats.max_err_pct),
                     TextTable::num(a.stats.mean_measured_w)});
    apps.print(os);
    os << "\n";

    TextTable core({"f_core [MHz]", "Samples", "MAE [%]", "Max [%]"});
    core.setTitle("Core-frequency marginal (Fig. 8)");
    for (const MarginalScore &m : core_marginal)
        core.addRow({std::to_string(m.mhz),
                     std::to_string(m.stats.samples),
                     TextTable::num(m.stats.mae_pct),
                     TextTable::num(m.stats.max_err_pct)});
    core.print(os);
    os << "\n";

    TextTable mem({"f_mem [MHz]", "Samples", "MAE [%]", "Max [%]"});
    mem.setTitle("Memory-frequency marginal (Fig. 8)");
    for (const MarginalScore &m : mem_marginal)
        mem.addRow({std::to_string(m.mhz),
                    std::to_string(m.stats.samples),
                    TextTable::num(m.stats.mae_pct),
                    TextTable::num(m.stats.max_err_pct)});
    mem.print(os);

    if (!baselines.empty()) {
        os << "\n";
        TextTable base({"Model", "MAE [%]", "Delta vs proposed [pp]"});
        base.setTitle("Baseline comparison (Sec. VI)");
        for (const BaselineScore &b : baselines)
            base.addRow({b.name, TextTable::num(b.mae_pct),
                         TextTable::num(b.mae_pct - overall.mae_pct)});
        base.print(os);
    }
    return os.str();
}

std::string
Scoreboard::samplesCsv() const
{
    std::ostringstream os;
    os << residualCsvHeader() << "\n";
    for (const ResidualSample &s : samples)
        os << residualCsvRow(s) << "\n";
    return os.str();
}

void
Scoreboard::publishMetrics() const
{
    accuracyAuditsTotal().inc();
    accuracySamplesTotal().inc(static_cast<double>(overall.samples));
    accuracyLastMaePct().set(overall.mae_pct);
    accuracyLastRmseW().set(overall.rmse_w);
    accuracyLastMaxErrPct().set(overall.max_err_pct);
    Histogram &h = accuracyAbsErrPct();
    for (const ResidualSample &s : samples)
        h.observe(s.absErrPct());
}

std::string
ScoreboardDiff::summary() const
{
    std::ostringstream os;
    os << (ok ? "PASS" : "FAIL") << ": " << regressions.size()
       << " regression(s), " << notes.size() << " note(s)\n";
    for (const std::string &r : regressions)
        os << "REGRESSION: " << r << "\n";
    for (const std::string &n : notes)
        os << "note: " << n << "\n";
    return os.str();
}

ScoreboardDiff
compareScoreboards(const Scoreboard &run, const Scoreboard &golden,
                   const ScoreboardTolerances &tol)
{
    ScoreboardDiff diff;
    auto fail = [&diff](std::string msg) {
        diff.ok = false;
        diff.regressions.push_back(std::move(msg));
    };

    if (run.device != golden.device)
        fail("device mismatch: run " + std::to_string(run.device) +
             " vs golden " + std::to_string(golden.device));

    const double mae_delta = run.overall.mae_pct -
                             golden.overall.mae_pct;
    if (!(run.overall.mae_pct ==
          run.overall.mae_pct)) // NaN guard
        fail("overall MAE is NaN");
    else if (mae_delta > tol.overall_mae_pp)
        fail("overall MAE " + numio::formatDouble(run.overall.mae_pct) +
             "% exceeds golden " +
             numio::formatDouble(golden.overall.mae_pct) + "% by " +
             numio::formatDouble(mae_delta) + " pp (tolerance " +
             numio::formatDouble(tol.overall_mae_pp) + " pp)");
    else if (mae_delta < -tol.overall_mae_pp)
        diff.notes.push_back(
                "overall MAE improved by " +
                numio::formatDouble(-mae_delta) +
                " pp; consider refreshing the golden");

    const double max_delta = run.overall.max_err_pct -
                             golden.overall.max_err_pct;
    if (max_delta > tol.max_err_pp)
        fail("max error " +
             numio::formatDouble(run.overall.max_err_pct) +
             "% exceeds golden " +
             numio::formatDouble(golden.overall.max_err_pct) +
             "% by " + numio::formatDouble(max_delta) +
             " pp (tolerance " + numio::formatDouble(tol.max_err_pp) +
             " pp)");

    std::map<std::string, const ScoreStats *> golden_apps;
    for (const AppScore &a : golden.per_app)
        golden_apps[a.app] = &a.stats;
    for (const AppScore &a : run.per_app) {
        auto it = golden_apps.find(a.app);
        if (it == golden_apps.end()) {
            diff.notes.push_back("app '" + a.app +
                                 "' absent from the golden");
            continue;
        }
        const double d = a.stats.mae_pct - it->second->mae_pct;
        if (d > tol.per_app_mae_pp)
            fail("app '" + a.app + "' MAE " +
                 numio::formatDouble(a.stats.mae_pct) +
                 "% exceeds golden " +
                 numio::formatDouble(it->second->mae_pct) + "% by " +
                 numio::formatDouble(d) + " pp (tolerance " +
                 numio::formatDouble(tol.per_app_mae_pp) + " pp)");
        golden_apps.erase(it);
    }
    for (const auto &[app, st] : golden_apps) {
        (void)st;
        diff.notes.push_back("app '" + app +
                             "' in the golden but not in the run");
    }
    if (run.overall.samples != golden.overall.samples)
        diff.notes.push_back(
                "sample count " +
                std::to_string(run.overall.samples) + " vs golden " +
                std::to_string(golden.overall.samples));
    return diff;
}

} // namespace obs
} // namespace gpupm
