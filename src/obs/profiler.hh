/**
 * @file
 * In-process sampling CPU profiler with span-attributed stacks.
 *
 * The span tracer (trace.hh) answers "how long did phase X take" in
 * wall-clock; this profiler answers "which functions burned the CPU
 * inside it". A process-wide ITIMER_PROF timer delivers SIGPROF at a
 * fixed rate on whichever thread is consuming CPU; the async-signal-
 * safe handler walks the interrupted thread's frame-pointer chain
 * (starting from the ucontext PC/FP, so the capture skips the handler
 * itself) into a pre-allocated lock-free sample ring. Nothing is
 * symbolized, allocated or locked inside the handler — symbolization
 * (dladdr + demangling) and aggregation are deferred to collect(),
 * after the timer is disarmed.
 *
 * Every sample is tagged with the *active span* of the interrupted
 * thread: SpanGuard maintains a thread-local category/name stack
 * (pushed only while the profiler is running, so instrumented hot
 * paths stay free when it is off), and the handler copies the
 * innermost frame. A profile therefore reports CPU *self time per
 * span taxonomy category* (cli/campaign/backend/sim/estimator/io/...)
 * alongside per-function and per-thread attribution — the bridge
 * between the tracer's wall-clock table and an actual optimization
 * target.
 *
 * Output formats:
 *  - collapsed ("folded") stacks, one `cat;outer;...;leaf N` line per
 *    unique stack, directly consumable by flamegraph.pl / speedscope;
 *  - a JSON summary (total/dropped/attributed samples, per-category
 *    shares, per-thread counts, top functions by self time) embedded
 *    by BenchReporter as the `cpu` block of BENCH_<name>.json and
 *    gated by `gpupm_bench_check profile`.
 *
 * Frame-pointer capture requires -fno-omit-frame-pointer (set
 * project-wide; see the top-level CMakeLists.txt) and symbolization
 * of non-static functions requires -rdynamic. Both degrade
 * gracefully: missing frame pointers shorten stacks to the leaf PC,
 * unresolvable PCs render as hex addresses — category attribution
 * needs neither.
 */

#ifndef GPUPM_OBS_PROFILER_HH
#define GPUPM_OBS_PROFILER_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

/**
 * The SIGPROF handler probes raw frame-pointer chains; frames from
 * code built without frame pointers (libc, libstdc++) can leave a
 * stale register that points at a stack redzone. The bounds checks
 * keep every load inside the thread's mapped stack, but sanitizers
 * must not second-guess them — so the handler alone opts out.
 */
#if defined(__GNUC__)
#define GPUPM_PROFILER_NO_SANITIZE \
    [[gnu::no_sanitize("address", "thread", "undefined")]]
#else
#define GPUPM_PROFILER_NO_SANITIZE
#endif

namespace gpupm
{
namespace obs
{

/** Bounded depths/sizes of one raw sample (signal-handler side). */
constexpr std::size_t kProfilerMaxFrames = 24;
constexpr std::size_t kProfilerMaxSpanDepth = 24;
constexpr std::size_t kProfilerLeafNameBytes = 48;

/** One raw sample as captured inside the SIGPROF handler. */
struct RawCpuSample
{
    std::uint64_t tid = 0; ///< kernel thread id (gettid)
    std::uint32_t depth = 0;
    char category[16] = {0}; ///< active span category, "" = untagged
    char leaf[kProfilerLeafNameBytes] = {0}; ///< active span name
    void *pcs[kProfilerMaxFrames] = {nullptr};
};

struct ProfilerOptions
{
    /** Samples per second of process CPU time. Prime, so the timer
     *  cannot phase-lock with periodic work. */
    int hz = 997;
    /** Ring capacity; sampling drops (counted) once full. */
    std::size_t max_samples = 65536;
    /**
     * Sample wall-clock time (ITIMER_REAL/SIGALRM) instead of CPU
     * time (ITIMER_PROF/SIGPROF). CPU mode is right for benchmarks —
     * it never ticks while the process sleeps, so every sample is
     * real work. Wall mode is right for a live daemon diagnostic
     * (/profilez): a mostly-idle process still produces samples
     * showing where its threads sit. Wall samples land on whichever
     * thread the kernel picks for the process-directed signal, so
     * per-thread attribution is biased in this mode.
     */
    bool wall = false;
};

/** One symbolized aggregate line of a collected profile. */
struct ProfileStack
{
    std::string category; ///< "" when untagged
    std::vector<std::string> frames; ///< outermost first
    long samples = 0;
};

/** A collected, symbolized profile. */
struct CpuProfile
{
    int hz = 0;
    bool wall = false; ///< wall-clock run (see ProfilerOptions::wall)
    long samples = 0; ///< retained in the ring
    long dropped = 0; ///< lost to ring overflow
    std::vector<ProfileStack> stacks; ///< sorted, most samples first
    /** Span-category -> sample count ("" = untagged). */
    std::map<std::string, long> category_samples;
    /** tid -> sample count. */
    std::map<std::uint64_t, long> thread_samples;
    /** tid -> label (only threads that registered one). */
    std::map<std::uint64_t, std::string> thread_labels;

    /** Fraction of samples carrying a span category, in percent. */
    double attributedPct() const;

    /** Share of one category's samples, in percent of the total. */
    double categorySharePct(const std::string &cat) const;

    /**
     * Collapsed-stack text: `cat;frame;...;leaf count` per line,
     * outermost frame first — feed to flamegraph.pl or speedscope.
     */
    std::string renderFolded() const;

    /**
     * JSON summary: {"hz":..,"samples":..,"dropped":..,
     * "attributed_pct":..,"categories":{..},"threads":[..],
     * "top":[{"symbol":..,"self_samples":..,"self_pct":..}]}.
     */
    std::string renderJson(std::size_t top_n = 15) const;

    /** Write renderFolded() to a file; false on I/O failure. */
    bool writeFolded(const std::string &path) const;
};

/**
 * Process-global sampling profiler. One instance; start() installs
 * the SIGPROF handler and arms ITIMER_PROF, stop() disarms and
 * restores. start/stop/collect are NOT async-signal-safe and must be
 * called outside signal handlers; concurrent start() calls are
 * serialized, the loser gets false.
 */
class Profiler
{
  public:
    static Profiler &global();

    /**
     * Arm the timer and start sampling. False (with *err filled) when
     * already running or the timer/handler cannot be installed.
     */
    bool start(const ProfilerOptions &opts = {},
               std::string *err = nullptr);

    /** Disarm the timer, restore the previous SIGPROF disposition. */
    void stop();

    bool running() const
    {
        return running_.load(std::memory_order_acquire);
    }

    /**
     * Symbolize and aggregate everything captured since start().
     * Call after stop(); collecting while running snapshots a prefix.
     */
    CpuProfile collect() const;

    /** Samples currently retained in the ring. */
    long sampleCount() const;

    /**
     * True while a profiling run wants span context maintained.
     * SpanGuard checks this one relaxed atomic on construction; when
     * false, instrumented code pays nothing for the profiler.
     */
    static bool contextEnabled()
    {
        return context_enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Label the calling thread for per-thread attribution (e.g.
     * "fleet.worker3"). Safe any time; retained across runs.
     */
    static void setThreadLabel(const std::string &label);

  private:
    Profiler() = default;

    GPUPM_PROFILER_NO_SANITIZE
    static void onSigprof(int sig, void *info, void *ucontext);

    static std::atomic<bool> context_enabled_;

    std::atomic<bool> running_{false};
    ProfilerOptions opts_;
    std::vector<RawCpuSample> ring_;

    // Handler-side state: claimed slot index and completed-slot count
    // (release RMW chain; collect() acquires to see slot contents).
    std::atomic<std::uint64_t> next_slot_{0};
    std::atomic<std::uint64_t> completed_{0};
    std::atomic<std::uint64_t> dropped_{0};
};

/**
 * Span-context maintenance, called by SpanGuard (trace.cc) while
 * Profiler::contextEnabled(). `cat` must be a string literal (it is
 * not copied on push; the handler copies bytes out on sample).
 */
void profilerPushSpan(const char *cat, const char *name);
void profilerPopSpan();

} // namespace obs
} // namespace gpupm

#endif // GPUPM_OBS_PROFILER_HH
