/**
 * @file
 * Process-wide metrics registry.
 *
 * Counters (monotonic), gauges (set-to-latest) and histograms (fixed
 * bucket layouts chosen at registration) with lock-free hot paths;
 * the registry renders them as Prometheus text exposition format
 * (`gpupm metrics`, `--metrics-out`) and as JSON (`gpupm metrics
 * --json`). Metric names follow the Prometheus conventions:
 * `gpupm_<subsystem>_<what>[_total|_seconds|...]` — the standard
 * names instrumented across the pipeline are listed in standard.hh
 * and DESIGN.md §9.
 */

#ifndef GPUPM_OBS_METRICS_HH
#define GPUPM_OBS_METRICS_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gpupm
{
namespace obs
{

/** Monotonically increasing value (counts, cumulative seconds). */
class Counter
{
  public:
    /** Add `v` (must be >= 0; negative increments are dropped). */
    void inc(double v = 1.0);

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** Last-written value. */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** Cumulative histogram over a fixed, sorted bucket layout. */
class Histogram
{
  public:
    explicit Histogram(std::vector<double> upper_bounds);

    void observe(double v);

    const std::vector<double> &upperBounds() const { return bounds_; }

    /** Cumulative count of observations <= bounds()[i]. */
    std::vector<double> cumulativeCounts() const;

    double count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    double sum() const { return sum_.load(std::memory_order_relaxed); }

    /**
     * Quantile estimate (q in [0, 1]) by linear interpolation inside
     * the bucket holding the target rank — the same estimate
     * Prometheus' histogram_quantile() would compute server-side, made
     * available locally so dumps can carry p50/p95/p99 summaries.
     * Observations in the overflow bucket clamp to the largest finite
     * bound; an empty histogram yields 0.
     */
    double quantileEstimate(double q) const;

    /**
     * Exemplar: the trace ID and value of the most recent p99+
     * observation made inside an active trace (trace.hh context).
     * Closes the metric→trace loop: a scrape showing a latency
     * spike names a trace that exhibits it, fetchable from
     * /api/traces. Returns false while no exemplar was captured.
     */
    bool exemplar(std::uint64_t *trace_id, double *value) const;

  private:
    std::vector<double> bounds_; ///< sorted, exclusive of +Inf
    std::unique_ptr<std::atomic<double>[]> per_bucket_; ///< + overflow
    std::atomic<double> count_{0.0};
    std::atomic<double> sum_{0.0};
    std::atomic<std::uint64_t> exemplar_trace_{0};
    std::atomic<double> exemplar_value_{0.0};
};

/** Commonly useful bucket layouts. */
std::vector<double> secondsBuckets();   ///< 100us .. 100s, log-spaced
std::vector<double> countBuckets();     ///< 1 .. 10000, log-spaced
std::vector<double> iterationBuckets(); ///< 1 .. 50 fit iterations
std::vector<double> errorPctBuckets();  ///< 0.5 .. 50 percent error

/**
 * One numeric sample of a registered metric, as captured by
 * Registry::collectSamples(). `name` carries the family name plus the
 * rendered label body (`family{key="value"}`) exactly as the
 * Prometheus exposition would — the time-series store (tsdb.hh) keys
 * its series on this string, so a scrape and a tsdb query name the
 * same signal identically.
 */
struct MetricSample
{
    std::string name; ///< family, or family{labels}
    double value = 0.0;
    bool monotonic = false; ///< counter (or histogram _sum/_count)
};

/**
 * Name -> metric map. Registration is idempotent: the first call
 * creates the metric, later calls return the same instance (a
 * differing help string or type on re-registration is a programming
 * error and panics).
 *
 * A metric family may carry label sets: the labelled overloads take a
 * pre-rendered Prometheus label body (`key="value",...`, caller
 * escapes values) and register one child per distinct body. All
 * children of a family share its kind and help; the exposition
 * renders HELP/TYPE once per family.
 */
class Registry
{
  public:
    static Registry &global();

    Counter &counter(const std::string &name, const std::string &help);
    Gauge &gauge(const std::string &name, const std::string &help);
    Histogram &histogram(const std::string &name,
                         const std::string &help,
                         std::vector<double> upper_bounds);

    /** Labelled children: `labels` is `key="value",...` (no braces). */
    Counter &counter(const std::string &name, const std::string &labels,
                     const std::string &help);
    Gauge &gauge(const std::string &name, const std::string &labels,
                 const std::string &help);
    Histogram &histogram(const std::string &name,
                         const std::string &labels,
                         const std::string &help,
                         std::vector<double> upper_bounds);

    /** Prometheus label-value escaping (backslash, quote, newline). */
    static std::string labelEscape(const std::string &s);

    /** Number of registered metric families. */
    std::size_t size() const;

    /** Prometheus text exposition format (HELP/TYPE + samples). */
    std::string renderPrometheus() const;

    /** The same data as a JSON object keyed by metric name. */
    std::string renderJson() const;

    /**
     * Snapshot every numeric signal: one sample per counter and gauge
     * child, two per histogram child (`name_sum`, `name_count` — the
     * rates Prometheus would derive; per-bucket series would multiply
     * tsdb cardinality for little alerting value). Ordered by family
     * name then label body, so consumers see a stable order.
     */
    std::vector<MetricSample> collectSamples() const;

    /** Write renderPrometheus() to a file; false on I/O failure. */
    bool writePrometheus(const std::string &path) const;

    /** Drop every metric (tests only; references die with them). */
    void reset();

  private:
    enum class Kind { Counter, Gauge, Histogram };

    struct Entry
    {
        Kind kind = Kind::Counter;
        std::string labels; ///< label body, "" for a bare metric
        std::string help;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Entry &entryOf(const std::string &name, const std::string &labels,
                   Kind kind, const std::string &help);

    mutable std::mutex mu_;
    /** family name -> label body -> child (one "" child when bare). */
    std::map<std::string, std::map<std::string, Entry>> metrics_;
};

} // namespace obs
} // namespace gpupm

#endif // GPUPM_OBS_METRICS_HH
