/**
 * @file
 * The accuracy scoreboard: residual samples (residuals.hh) aggregated
 * into the model-quality views the paper's evaluation reports —
 * overall and per-application MAE/RMSE/max error (Table III, Fig. 7),
 * a per-configuration error heatmap over the (f_core, f_mem) grid
 * with per-domain marginals (Fig. 8), and baseline deltas against
 * src/baselines (Sec. VI). `gpupm audit` produces one, model_io
 * persists it under the v2 envelope, and tools/gpupm_bench_check
 * diffs a run against a checked-in golden to gate regressions.
 */

#ifndef GPUPM_OBS_SCOREBOARD_HH
#define GPUPM_OBS_SCOREBOARD_HH

#include <string>
#include <vector>

#include "common/provenance.hh"
#include "gpu/device.hh"
#include "obs/residuals.hh"

namespace gpupm
{
namespace obs
{

/** Error summary over one group of residual samples. */
struct ScoreStats
{
    long samples = 0;
    double mae_pct = 0.0;         ///< mean |err|/meas, percent
    double rmse_w = 0.0;          ///< RMSE in watts
    double max_err_pct = 0.0;     ///< largest |err|, percent
    double mean_measured_w = 0.0; ///< group's mean measured power

    bool operator==(const ScoreStats &) const = default;
};

/** Compute ScoreStats over a span of samples. */
ScoreStats scoreOf(const std::vector<const ResidualSample *> &group);

/**
 * Combine already-aggregated groups into one ScoreStats without the
 * underlying samples: MAE and mean measured power are sample-weighted
 * means, RMSE the sample-weighted root of mean squares, max error the
 * maximum. Exact (equal to scoreOf over the union) because each input
 * carries its sample count. Fleet merges use this to roll per-device
 * scores into per-architecture and overall marginals.
 */
ScoreStats combineScoreStats(const std::vector<ScoreStats> &groups);

/** Per-application row (Fig. 7). */
struct AppScore
{
    std::string app;
    ScoreStats stats;
};

/** Per-configuration heatmap cell (Fig. 8). */
struct ConfigScore
{
    gpu::FreqConfig cfg{};
    ScoreStats stats;
};

/** Per-domain marginal: all samples at one core (or memory) clock. */
struct MarginalScore
{
    int mhz = 0;
    ScoreStats stats;
};

/** One baseline's overall MAE next to the proposed model's. */
struct BaselineScore
{
    std::string name;
    double mae_pct = 0.0;
};

/** Aggregated prediction-audit result for one device. */
struct Scoreboard
{
    int device = 0;          ///< gpu::DeviceKind as int
    std::string device_name; ///< marketing name, for humans
    gpu::FreqConfig reference{};
    common::Provenance provenance;

    /** Raw residuals; may be empty for a summary-only scoreboard. */
    std::vector<ResidualSample> samples;

    ScoreStats overall;
    std::vector<AppScore> per_app;
    std::vector<ConfigScore> per_config;
    std::vector<MarginalScore> core_marginal;
    std::vector<MarginalScore> mem_marginal;
    std::vector<BaselineScore> baselines;

    /** Build from samples; aggregates and provenance filled in. */
    static Scoreboard fromSamples(int device, std::string device_name,
                                  gpu::FreqConfig reference,
                                  std::vector<ResidualSample> samples);

    /** Recompute every aggregate view from `samples`. */
    void recomputeAggregates();

    /**
     * JSON payload (schema gpupm_scoreboard_version 1), without the
     * file envelope — model::serializeScoreboard wraps it. Summary-only
     * when include_samples is false (golden scoreboards keep just the
     * aggregates).
     */
    std::string toJson(bool include_samples) const;

    /** Human-readable per-app + marginal + baseline tables. */
    std::string summaryText() const;

    /** Per-sample CSV (residualCsvHeader/Row). */
    std::string samplesCsv() const;

    /** Publish gpupm_accuracy_* metrics to Registry::global(). */
    void publishMetrics() const;
};

/** Tolerances of the regression gate (percentage points). */
struct ScoreboardTolerances
{
    double overall_mae_pp = 0.5; ///< overall MAE drift allowed
    double per_app_mae_pp = 2.0; ///< any single app's MAE drift
    double max_err_pp = 5.0;     ///< worst-sample error drift
};

/** Outcome of diffing a run against a golden scoreboard. */
struct ScoreboardDiff
{
    bool ok = true;
    std::vector<std::string> regressions; ///< gate-failing findings
    std::vector<std::string> notes;       ///< informational deltas

    /** Multi-line report, regressions first. */
    std::string summary() const;
};

/**
 * Gate a run against a golden: overall MAE, overall max error and
 * per-application MAE may not exceed the golden by more than the
 * given tolerances. Apps present on only one side are noted but do
 * not fail the gate (the workload set may legitimately grow).
 */
ScoreboardDiff compareScoreboards(const Scoreboard &run,
                                  const Scoreboard &golden,
                                  const ScoreboardTolerances &tol = {});

} // namespace obs
} // namespace gpupm

#endif // GPUPM_OBS_SCOREBOARD_HH
