/**
 * @file
 * The standard gpupm metric catalog.
 *
 * Every metric the pipeline instruments lives here as a named
 * accessor, so instrument sites cannot typo a name and the whole
 * catalog can be pre-registered (registerStandardMetrics) before a
 * dump — a `gpupm metrics` run or a `--metrics-out` file always shows
 * the full schema, with zeros for paths that did not run.
 */

#ifndef GPUPM_OBS_STANDARD_HH
#define GPUPM_OBS_STANDARD_HH

#include "obs/metrics.hh"

namespace gpupm
{
namespace obs
{

// -- Estimator (Sec. III-D fit) --------------------------------------

Counter &estimatorFitsTotal();
Counter &estimatorFitFailuresTotal();
Counter &estimatorIterationsTotal();
Gauge &estimatorLastIterations();
Gauge &estimatorLastRmseW();
Gauge &estimatorLastCondition();
Histogram &estimatorIterationsPerFit();

// -- Resilient measurement backend -----------------------------------

Counter &resilientAttemptsTotal();
Counter &resilientRetriesTotal();
Counter &resilientTimeoutsTotal();
Counter &resilientCallFailuresTotal();
Counter &resilientOutliersRejectedTotal();
Counter &resilientCorruptSamplesTotal();
Counter &resilientQuarantinedCallsTotal();
Counter &resilientQuarantinedConfigsTotal();
Counter &resilientBackoffSecondsTotal();

// -- Campaigns -------------------------------------------------------

Counter &campaignRunsTotal();
Counter &campaignCellsDoneTotal();
Counter &campaignCellsFailedTotal();
Counter &campaignCellsResumedTotal();
Counter &campaignFaultsInjectedTotal();

// -- Artifact I/O ----------------------------------------------------

Counter &ioLoadsTotal();
Counter &ioLoadFailuresTotal();
Counter &ioSavesTotal();
Counter &ioSaveFailuresTotal();

// -- Simulator -------------------------------------------------------

Counter &simKernelExecutionsTotal();
Histogram &simKernelTimeSeconds();

// -- Prediction accuracy (gpupm audit) -------------------------------

Counter &accuracyAuditsTotal();
Counter &accuracySamplesTotal();
Gauge &accuracyLastMaePct();
Gauge &accuracyLastRmseW();
Gauge &accuracyLastMaxErrPct();
Histogram &accuracyAbsErrPct();

// -- Process identity & liveness -------------------------------------

/**
 * `gpupm_build_info{version=...,build_type=...,git_sha=...,
 * compiler=...,device=...} 1` — the Prometheus build-info convention:
 * constant value 1, identity in the labels, so every scrape is
 * attributable to the build that produced it. The device label is the
 * process-wide provenance device at first registration.
 */
Gauge &buildInfo();

/** `gpupm_process_uptime_seconds` (set by touchProcessMetrics). */
Gauge &processUptimeSeconds();

/**
 * Refresh the process-liveness gauges (uptime). Call before any
 * exposition render; the /metrics endpoint and the CLI dumps do.
 */
void touchProcessMetrics();

// -- Embedded HTTP exporter (gpupm monitor) --------------------------

/** Per-endpoint request counter: `gpupm_http_requests_total{path=..}`. */
Counter &httpRequestsTotal(const std::string &path);
/** Per-endpoint latency histogram, seconds. */
Histogram &httpRequestSeconds(const std::string &path);
/** Requests refused before dispatch (parse error, 404, 405, 431). */
Counter &httpRequestsRejectedTotal();

// -- Live sampling loop (gpupm monitor) ------------------------------

Counter &monitorTicksTotal();
Counter &monitorProbeFailuresTotal();
Gauge &monitorLastMeasuredW();
Gauge &monitorLastPredictedW();
Gauge &monitorSampleAgeSeconds();
Histogram &monitorSampleSeconds();
/** Rolling MAE over the sampler's last-N residual window, percent. */
Gauge &accuracyRollingMaePct();

// -- Time-series store & alerting (src/obs/tsdb, src/obs/alerts) -----

Gauge &tsdbSeriesCount();
Gauge &tsdbMemoryBytes();
Counter &tsdbPointsTotal();
Counter &tsdbEvictionsTotal();
/** 1 while `rule` is firing, 0 otherwise: `gpupm_alerts_firing{rule=..}`. */
Gauge &alertsFiring(const std::string &rule);
/** Every alert state transition (pending, firing, resolved, ...). */
Counter &alertTransitionsTotal();

// -- Trace store (src/obs/trace_store) -------------------------------

Gauge &traceStoreTraces();
Gauge &traceStoreMemoryBytes();
Gauge &traceStoreOfferedTotal();
Gauge &traceStoreEvictedTotal();

// -- Sampling CPU profiler (src/obs/profiler) ------------------------

Counter &profilerRunsTotal();
Counter &profilerSamplesTotal();
Counter &profilerSamplesDroppedTotal();
Gauge &profilerLastAttributedPct();

// -- Fleet campaigns (src/fleet) -------------------------------------

Counter &fleetCampaignsTotal();
Gauge &fleetDevicesTotal();
Gauge &fleetDevicesFailed();
Counter &fleetShardRetriesTotal();
Counter &fleetShardsQuarantinedTotal();
Counter &fleetChaosKillsTotal();
Counter &fleetChaosStallsTotal();
Counter &fleetWatchdogFiresTotal();
Counter &fleetPoolStealsTotal();
Gauge &fleetOverallMaePct();
/** Per-architecture marginal MAE, labelled arch="Pascal"|... */
Gauge &fleetArchMaePct(const std::string &arch);
/** Per-architecture healthy-device count, labelled like above. */
Gauge &fleetArchDevicesOk(const std::string &arch);

/**
 * Register the whole catalog in Registry::global(). Idempotent;
 * called by the CLI before any dump.
 */
void registerStandardMetrics();

} // namespace obs
} // namespace gpupm

#endif // GPUPM_OBS_STANDARD_HH
