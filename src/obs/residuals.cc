#include "residuals.hh"

#include <cmath>
#include <sstream>

#include "common/numio.hh"

namespace gpupm
{
namespace obs
{

double
ResidualSample::absErrPct() const
{
    return std::abs(errPct());
}

double
ResidualSample::errPct() const
{
    if (measured_w == 0.0)
        return 0.0;
    return (predicted_w - measured_w) / measured_w * 100.0;
}

std::string
residualCsvHeader()
{
    std::ostringstream os;
    os << "app,core_mhz,mem_mhz,measured_w,predicted_w,err_pct,"
          "constant_w";
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
        os << ","
           << gpu::componentName(static_cast<gpu::Component>(i)) << "_w";
    return os.str();
}

std::string
residualCsvRow(const ResidualSample &s)
{
    std::ostringstream os;
    os << s.app << "," << s.cfg.core_mhz << "," << s.cfg.mem_mhz << ","
       << numio::formatDouble(s.measured_w) << ","
       << numio::formatDouble(s.predicted_w) << ","
       << numio::formatDouble(s.errPct()) << ","
       << numio::formatDouble(s.constant_w);
    for (double w : s.component_w)
        os << "," << numio::formatDouble(w);
    return os.str();
}

} // namespace obs
} // namespace gpupm
