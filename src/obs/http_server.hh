/**
 * @file
 * Minimal dependency-free embedded HTTP/1.1 server.
 *
 * Serves the live-telemetry endpoints of `gpupm monitor` (/metrics,
 * /healthz, /scoreboard, /tracez) on plain POSIX sockets: one worker
 * thread runs a blocking accept loop (poll()ed so stop() is prompt),
 * each connection is read with a bounded request size, dispatched to
 * a registered handler, answered with `Connection: close`, and
 * closed. GET only; anything else is answered 405, unknown paths 404,
 * oversized or malformed requests 431/400. The request parser is a
 * pure function so tests can drive it without sockets.
 *
 * Every dispatch increments the per-endpoint request counter and
 * observes the per-endpoint latency histogram from the standard
 * metric catalog, so the exporter reports on itself.
 */

#ifndef GPUPM_OBS_HTTP_SERVER_HH
#define GPUPM_OBS_HTTP_SERVER_HH

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

namespace gpupm
{
namespace obs
{

/** Request-size bounds enforced while reading and parsing. */
struct HttpLimits
{
    std::size_t max_request_bytes = 8192; ///< head incl. all headers
    std::size_t max_target_bytes = 2048;  ///< request-target length
    std::size_t max_header_count = 64;
    /**
     * Cumulative budget for reading one request head, milliseconds.
     * The per-recv idle timeout alone cannot stop a slowloris-style
     * client that trickles one byte just inside each idle window and
     * pins the single-threaded accept loop forever; past this
     * deadline the connection is answered 408 and closed.
     */
    int read_deadline_ms = 5000;
};

/** One parsed GET-style request head (no body handling). */
struct HttpRequest
{
    std::string method;  ///< e.g. "GET"
    std::string target;  ///< raw request-target, e.g. "/metrics?x=1"
    std::string path;    ///< target up to '?'
    std::string query;   ///< after '?', "" when absent
    std::string version; ///< e.g. "HTTP/1.1"
    std::vector<std::pair<std::string, std::string>> headers;
};

/** Outcome of parsing a (possibly partial) request head. */
enum class HttpParse
{
    Ok,         ///< complete head parsed into the HttpRequest
    Incomplete, ///< no terminating blank line yet; read more
    TooLarge,   ///< exceeds HttpLimits; answer 431 and close
    Malformed,  ///< not an HTTP/1.x request head; answer 400
};

/**
 * Parse one request head from `text` (everything received so far).
 * Headers after the request line are collected as (name, value)
 * pairs, names lower-cased. Pure function — the unit tests feed it
 * truncated and hostile inputs directly.
 */
HttpParse parseHttpRequest(std::string_view text, HttpRequest &out,
                           const HttpLimits &limits = {});

/** One response; the server adds Content-Length and Connection. */
struct HttpResponse
{
    int status = 200;
    std::string content_type = "text/plain; charset=utf-8";
    std::string body;
};

/** Reason phrase of the status codes the server emits. */
std::string_view httpStatusReason(int status);

/** Serialize status line + headers + body, ready to send. */
std::string renderHttpResponse(const HttpResponse &resp);

/** Blocking-accept-loop server on a worker thread, loopback only. */
class HttpServer
{
  public:
    using Handler = std::function<HttpResponse(const HttpRequest &)>;

    explicit HttpServer(HttpLimits limits = {});
    ~HttpServer(); ///< stops and joins if still running

    HttpServer(const HttpServer &) = delete;
    HttpServer &operator=(const HttpServer &) = delete;

    /** Register a handler for an exact path (before start()). */
    void route(std::string path, Handler handler);

    /**
     * Bind 127.0.0.1:`port` (0 picks an ephemeral port), start the
     * worker thread. False (with *err filled) on socket failure.
     */
    bool start(int port, std::string *err = nullptr);

    /** Port actually bound; 0 before a successful start(). */
    int port() const { return port_; }

    bool running() const
    {
        return running_.load(std::memory_order_relaxed);
    }

    /** Graceful shutdown: stop accepting, join, close the socket. */
    void stop();

    /** Requests answered (any status) since start(). */
    long requestsServed() const
    {
        return served_.load(std::memory_order_relaxed);
    }

  private:
    void serveLoop();
    void handleConnection(int fd);
    HttpResponse dispatch(const HttpRequest &req) const;

    HttpLimits limits_;
    std::map<std::string, Handler> routes_;
    int listen_fd_ = -1;
    int port_ = 0;
    std::atomic<bool> stop_{false};
    std::atomic<bool> running_{false};
    std::atomic<long> served_{0};
    std::thread worker_;
};

} // namespace obs
} // namespace gpupm

#endif // GPUPM_OBS_HTTP_SERVER_HH
