#include "trace.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/numio.hh"
#include "common/provenance.hh"
#include "obs/profiler.hh"
#include "obs/trace_store.hh"

namespace gpupm
{
namespace obs
{

namespace
{

/** JSON string escaping for names, categories and args. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** splitmix64 output mix — same finalizer the fleet seeder uses. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/** Buckets of partially assembled traces are bounded: a child whose
 *  root never completes (e.g. the tracer was disabled mid-trace)
 *  must not leak memory forever. */
constexpr std::size_t kPendingTraceCap = 512;

thread_local TraceContext g_trace_ctx;

} // namespace

TraceContext
currentTraceContext()
{
    return g_trace_ctx;
}

std::string
traceIdHex(std::uint64_t id)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(id));
    return buf;
}

TraceContextScope::TraceContextScope(TraceContext ctx)
    : saved_(g_trace_ctx)
{
    g_trace_ctx = ctx;
}

TraceContextScope::~TraceContextScope() { g_trace_ctx = saved_; }

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::enable()
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    pending_.clear();
    epoch_ = std::chrono::steady_clock::now();
    enabled_.store(true, std::memory_order_relaxed);
}

void
Tracer::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

void
Tracer::seedIds(std::uint64_t seed)
{
    std::lock_guard<std::mutex> lock(mu_);
    id_seed_ = seed;
    id_counter_.store(1, std::memory_order_relaxed);
}

std::uint64_t
Tracer::mintId()
{
    const std::uint64_t n =
            id_counter_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t id = mix64(id_seed_ + n);
    return id ? id : (n | 1); // 0 means "no ID"; never mint it
}

void
Tracer::attachStore(TraceStore *store)
{
    std::lock_guard<std::mutex> lock(mu_);
    store_ = store;
    pending_.clear();
}

void
Tracer::setRetainEvents(bool retain)
{
    std::lock_guard<std::mutex> lock(mu_);
    retain_events_ = retain;
}

void
Tracer::record(TraceEvent ev)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    if (store_ && ev.trace_id)
        assembleLocked(ev);
    if (retain_events_)
        events_.push_back(std::move(ev));
}

void
Tracer::assembleLocked(TraceEvent ev)
{
    // Children complete (and record) before their root, so a root
    // arrival closes the trace: flush its bucket to the store.
    if (ev.parent_span_id != 0) {
        auto it = pending_.find(ev.trace_id);
        if (it == pending_.end()) {
            if (pending_.size() >= kPendingTraceCap)
                pending_.erase(pending_.begin());
            it = pending_.emplace(ev.trace_id,
                                  std::vector<TraceEvent>{})
                         .first;
        }
        it->second.push_back(std::move(ev));
        return;
    }
    StoredTrace trace;
    trace.trace_id = ev.trace_id;
    trace.root_name = ev.name;
    trace.root_cat = ev.cat;
    trace.start_us = ev.ts_us;
    trace.dur_us = ev.dur_us;
    const auto it = pending_.find(ev.trace_id);
    if (it != pending_.end()) {
        for (auto &child : it->second) {
            trace.error = trace.error || child.error;
            StoredSpan s;
            s.name = std::move(child.name);
            s.cat = std::move(child.cat);
            s.ts_us = child.ts_us;
            s.dur_us = child.dur_us;
            s.tid = child.tid;
            s.span_id = child.span_id;
            s.parent_span_id = child.parent_span_id;
            s.error = child.error;
            s.args = std::move(child.args);
            trace.spans.push_back(std::move(s));
        }
        pending_.erase(it);
    }
    StoredSpan root;
    root.name = ev.name;
    root.cat = ev.cat;
    root.ts_us = ev.ts_us;
    root.dur_us = ev.dur_us;
    root.tid = ev.tid;
    root.span_id = ev.span_id;
    root.parent_span_id = 0;
    root.error = ev.error;
    root.args = ev.args;
    trace.error = trace.error || ev.error;
    trace.spans.push_back(std::move(root));
    store_->offer(std::move(trace));
}

std::int64_t
Tracer::nowUs() const
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - epoch_)
            .count();
}

int
Tracer::threadOrdinal()
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto id = std::this_thread::get_id();
    auto it = tids_.find(id);
    if (it == tids_.end())
        it = tids_.emplace(id, static_cast<int>(tids_.size())).first;
    return it->second;
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    pending_.clear();
}

std::string
Tracer::renderChromeTrace() const
{
    const auto events = snapshot();
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &e = events[i];
        if (i)
            os << ",";
        os << "\n{\"name\":\"" << jsonEscape(e.name)
           << "\",\"cat\":\"" << jsonEscape(e.cat)
           << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
           << ",\"ts\":" << numio::formatLong(e.ts_us)
           << ",\"dur\":" << numio::formatLong(e.dur_us);
        // 64-bit IDs travel as hex strings: JSON numbers are doubles
        // in most readers and would silently lose low bits.
        if (e.trace_id) {
            os << ",\"trace_id\":\"" << traceIdHex(e.trace_id)
               << "\",\"span_id\":\"" << traceIdHex(e.span_id)
               << "\"";
            if (e.parent_span_id)
                os << ",\"parent_span_id\":\""
                   << traceIdHex(e.parent_span_id) << "\"";
        }
        if (e.error)
            os << ",\"error\":true";
        if (!e.args.empty()) {
            os << ",\"args\":{";
            for (std::size_t k = 0; k < e.args.size(); ++k) {
                if (k)
                    os << ",";
                os << "\"" << jsonEscape(e.args[k].first)
                   << "\":\"" << jsonEscape(e.args[k].second) << "\"";
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n],\"displayTimeUnit\":\"ms\",\"provenance\":"
       << common::toJson(common::collectProvenance()) << "}\n";
    return os.str();
}

bool
Tracer::writeChromeTrace(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << renderChromeTrace();
    return static_cast<bool>(out);
}

SpanGuard::SpanGuard(const char *cat, std::string name)
{
    if (Profiler::contextEnabled()) {
        profilerPushSpan(cat, name.c_str());
        ctx_pushed_ = true;
    }
    Tracer &t = Tracer::global();
    if (!t.enabled())
        return;
    armed_ = true;
    ev_.cat = cat;
    ev_.name = std::move(name);
    ev_.tid = t.threadOrdinal();
    ev_.span_id = t.mintId();
    saved_ctx_ = g_trace_ctx;
    if (saved_ctx_.trace_id) {
        ev_.trace_id = saved_ctx_.trace_id;
        ev_.parent_span_id = saved_ctx_.span_id;
    } else {
        // Root: the trace is named after its root span's ID.
        ev_.trace_id = ev_.span_id;
    }
    g_trace_ctx = TraceContext{ev_.trace_id, ev_.span_id};
    ctx_installed_ = true;
    start_us_ = t.nowUs();
}

SpanGuard::~SpanGuard()
{
    if (ctx_pushed_)
        profilerPopSpan();
    if (ctx_installed_)
        g_trace_ctx = saved_ctx_;
    if (!armed_)
        return;
    Tracer &t = Tracer::global();
    ev_.ts_us = start_us_;
    ev_.dur_us = t.nowUs() - start_us_;
    if (ev_.dur_us < 0)
        ev_.dur_us = 0;
    t.record(std::move(ev_));
}

void
SpanGuard::arg(std::string key, std::string value)
{
    if (!armed_)
        return;
    ev_.args.emplace_back(std::move(key), std::move(value));
}

void
SpanGuard::markError()
{
    if (!armed_)
        return;
    ev_.error = true;
}

} // namespace obs
} // namespace gpupm
