#include "trace.hh"

#include <fstream>
#include <sstream>

#include "common/numio.hh"
#include "common/provenance.hh"
#include "obs/profiler.hh"

namespace gpupm
{
namespace obs
{

namespace
{

/** JSON string escaping for names, categories and args. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer &
Tracer::global()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::enable()
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
    epoch_ = std::chrono::steady_clock::now();
    enabled_.store(true, std::memory_order_relaxed);
}

void
Tracer::disable()
{
    enabled_.store(false, std::memory_order_relaxed);
}

void
Tracer::record(TraceEvent ev)
{
    if (!enabled())
        return;
    std::lock_guard<std::mutex> lock(mu_);
    events_.push_back(std::move(ev));
}

std::int64_t
Tracer::nowUs() const
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - epoch_)
            .count();
}

int
Tracer::threadOrdinal()
{
    std::lock_guard<std::mutex> lock(mu_);
    const auto id = std::this_thread::get_id();
    auto it = tids_.find(id);
    if (it == tids_.end())
        it = tids_.emplace(id, static_cast<int>(tids_.size())).first;
    return it->second;
}

std::vector<TraceEvent>
Tracer::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_;
}

std::size_t
Tracer::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return events_.size();
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    events_.clear();
}

std::string
Tracer::renderChromeTrace() const
{
    const auto events = snapshot();
    std::ostringstream os;
    os << "{\"traceEvents\":[";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const TraceEvent &e = events[i];
        if (i)
            os << ",";
        os << "\n{\"name\":\"" << jsonEscape(e.name)
           << "\",\"cat\":\"" << jsonEscape(e.cat)
           << "\",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
           << ",\"ts\":" << numio::formatLong(e.ts_us)
           << ",\"dur\":" << numio::formatLong(e.dur_us);
        if (!e.args.empty()) {
            os << ",\"args\":{";
            for (std::size_t k = 0; k < e.args.size(); ++k) {
                if (k)
                    os << ",";
                os << "\"" << jsonEscape(e.args[k].first)
                   << "\":\"" << jsonEscape(e.args[k].second) << "\"";
            }
            os << "}";
        }
        os << "}";
    }
    os << "\n],\"displayTimeUnit\":\"ms\",\"provenance\":"
       << common::toJson(common::collectProvenance()) << "}\n";
    return os.str();
}

bool
Tracer::writeChromeTrace(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << renderChromeTrace();
    return static_cast<bool>(out);
}

SpanGuard::SpanGuard(const char *cat, std::string name)
{
    if (Profiler::contextEnabled()) {
        profilerPushSpan(cat, name.c_str());
        ctx_pushed_ = true;
    }
    Tracer &t = Tracer::global();
    if (!t.enabled())
        return;
    armed_ = true;
    ev_.cat = cat;
    ev_.name = std::move(name);
    ev_.tid = t.threadOrdinal();
    start_us_ = t.nowUs();
}

SpanGuard::~SpanGuard()
{
    if (ctx_pushed_)
        profilerPopSpan();
    if (!armed_)
        return;
    Tracer &t = Tracer::global();
    ev_.ts_us = start_us_;
    ev_.dur_us = t.nowUs() - start_us_;
    if (ev_.dur_us < 0)
        ev_.dur_us = 0;
    t.record(std::move(ev_));
}

void
SpanGuard::arg(std::string key, std::string value)
{
    if (!armed_)
        return;
    ev_.args.emplace_back(std::move(key), std::move(value));
}

} // namespace obs
} // namespace gpupm
