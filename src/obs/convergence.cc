#include "convergence.hh"

#include <fstream>
#include <sstream>

#include "common/numio.hh"

namespace gpupm
{
namespace obs
{

void
ConvergenceRecorder::onIteration(const IterationRecord &rec)
{
    records_.push_back(rec);
}

void
ConvergenceRecorder::onDone(bool converged, int iterations)
{
    converged_ = converged;
    iterations_ = iterations;
}

std::string
ConvergenceRecorder::toCsv() const
{
    std::ostringstream os;
    os << "iteration,sse,delta_sse,max_dv,als_residual,condition\n";
    for (const IterationRecord &r : records_) {
        os << r.iteration << "," << numio::formatDouble(r.sse) << ","
           << numio::formatDouble(r.delta_sse) << ","
           << numio::formatDouble(r.max_dv) << ","
           << numio::formatDouble(r.als_residual) << ","
           << numio::formatDouble(r.condition) << "\n";
    }
    return os.str();
}

bool
ConvergenceRecorder::writeCsv(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << toCsv();
    return static_cast<bool>(out);
}

} // namespace obs
} // namespace gpupm
