/**
 * @file
 * Estimator convergence telemetry.
 *
 * The Sec. III-D fit is an alternating (ALS-style) heuristic; whether
 * a model can be trusted depends on how the alternation converged.
 * The estimator reports one IterationRecord per outer iteration
 * through the EstimatorObserver hook; ConvergenceRecorder collects
 * them and renders a CSV (`--convergence-out`) with one row per
 * iteration, ready for plotting convergence curves:
 *
 *   iteration,sse,delta_sse,max_dv,als_residual,condition
 */

#ifndef GPUPM_OBS_CONVERGENCE_HH
#define GPUPM_OBS_CONVERGENCE_HH

#include <string>
#include <vector>

namespace gpupm
{
namespace obs
{

/** Telemetry of one outer estimator iteration. */
struct IterationRecord
{
    /** 0 = the Eq. 11 initialization, then 1, 2, ... */
    int iteration = 0;
    /** Total squared error after this iteration, W^2. */
    double sse = 0.0;
    /** SSE improvement over the previous iteration (>= 0 when the
     *  alternation behaves; 0 for the initialization row). */
    double delta_sse = 0.0;
    /** max |ΔV̄| over all configurations and both domains vs the
     *  previous iterate (0 for the initialization row). */
    double max_dv = 0.0;
    /** Relative ALS step residual |ΔSSE| / max(SSE, 1): the quantity
     *  the convergence test thresholds. */
    double als_residual = 0.0;
    /** Condition estimate of the coefficient design matrix (0 until
     *  the first full-grid refit computes one). */
    double condition = 0.0;
};

/** Hook the estimator drives; default implementations do nothing. */
class EstimatorObserver
{
  public:
    virtual ~EstimatorObserver() = default;

    /** One outer iteration (or the initialization, iteration 0). */
    virtual void onIteration(const IterationRecord &rec)
    {
        (void)rec;
    }

    /** The fit finished. @param converged  tolerance was reached. */
    virtual void onDone(bool converged, int iterations)
    {
        (void)converged;
        (void)iterations;
    }
};

/** Observer that stores every record and renders them as CSV. */
class ConvergenceRecorder : public EstimatorObserver
{
  public:
    void onIteration(const IterationRecord &rec) override;
    void onDone(bool converged, int iterations) override;

    const std::vector<IterationRecord> &records() const
    {
        return records_;
    }

    bool converged() const { return converged_; }
    int iterations() const { return iterations_; }

    /** CSV document: header + one row per record. */
    std::string toCsv() const;

    /** Write toCsv() to a file; false on I/O failure. */
    bool writeCsv(const std::string &path) const;

  private:
    std::vector<IterationRecord> records_;
    bool converged_ = false;
    int iterations_ = 0;
};

} // namespace obs
} // namespace gpupm

#endif // GPUPM_OBS_CONVERGENCE_HH
