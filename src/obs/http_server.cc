#include "http_server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.hh"
#include "obs/standard.hh"

namespace gpupm
{
namespace obs
{

namespace
{

/** Per-connection socket timeout: a stuck peer cannot hold the
 *  single-threaded accept loop hostage for longer than this. */
constexpr int kSocketTimeoutMs = 2000;

/** Accept-loop poll period; bounds stop() latency. */
constexpr int kPollMs = 100;

bool
isTokenChar(char c)
{
    // RFC 9110 tchar, the characters legal in a method token.
    static const char *extra = "!#$%&'*+-.^_`|~";
    return std::isalnum(static_cast<unsigned char>(c)) ||
           std::strchr(extra, c) != nullptr;
}

} // namespace

HttpParse
parseHttpRequest(std::string_view text, HttpRequest &out,
                 const HttpLimits &limits)
{
    const std::size_t head_end = text.find("\r\n\r\n");
    if (head_end == std::string_view::npos) {
        // Newline-only termination is tolerated (lenient parsing);
        // otherwise keep reading — unless the head can no longer fit.
        const std::size_t lf_end = text.find("\n\n");
        if (lf_end == std::string_view::npos)
            return text.size() > limits.max_request_bytes
                           ? HttpParse::TooLarge
                           : HttpParse::Incomplete;
    }
    if (text.size() > limits.max_request_bytes &&
        (head_end == std::string_view::npos ||
         head_end + 4 > limits.max_request_bytes))
        return HttpParse::TooLarge;

    // Request line: METHOD SP target SP HTTP/x.y
    const std::size_t line_end = text.find_first_of("\r\n");
    if (line_end == std::string_view::npos)
        return HttpParse::Malformed;
    const std::string_view line = text.substr(0, line_end);
    const std::size_t sp1 = line.find(' ');
    if (sp1 == std::string_view::npos || sp1 == 0)
        return HttpParse::Malformed;
    const std::size_t sp2 = line.find(' ', sp1 + 1);
    if (sp2 == std::string_view::npos || sp2 == sp1 + 1)
        return HttpParse::Malformed;

    const std::string_view method = line.substr(0, sp1);
    for (char c : method)
        if (!isTokenChar(c))
            return HttpParse::Malformed;
    const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    if (target.size() > limits.max_target_bytes)
        return HttpParse::TooLarge;
    if (target.empty() || (target[0] != '/' && target != "*"))
        return HttpParse::Malformed;
    const std::string_view version = line.substr(sp2 + 1);
    if (version.rfind("HTTP/", 0) != 0 || version.size() < 8)
        return HttpParse::Malformed;

    out = HttpRequest{};
    out.method = std::string(method);
    out.target = std::string(target);
    out.version = std::string(version);
    const std::size_t qmark = out.target.find('?');
    out.path = out.target.substr(0, qmark);
    out.query = qmark == std::string::npos
                        ? ""
                        : out.target.substr(qmark + 1);

    // Header fields, walked line by line until the blank line.
    std::size_t cursor = text.find('\n', line_end);
    if (cursor == std::string_view::npos)
        return HttpParse::Malformed;
    ++cursor;
    while (cursor < text.size()) {
        std::size_t eol = text.find('\n', cursor);
        if (eol == std::string_view::npos)
            eol = text.size();
        std::string_view field = text.substr(cursor, eol - cursor);
        if (!field.empty() && field.back() == '\r')
            field.remove_suffix(1);
        if (field.empty())
            break; // blank line: end of head
        const std::size_t colon = field.find(':');
        if (colon == std::string_view::npos || colon == 0)
            return HttpParse::Malformed;
        if (out.headers.size() >= limits.max_header_count)
            return HttpParse::TooLarge;
        std::string name(field.substr(0, colon));
        for (char &c : name)
            c = static_cast<char>(
                    std::tolower(static_cast<unsigned char>(c)));
        std::string_view value = field.substr(colon + 1);
        while (!value.empty() &&
               (value.front() == ' ' || value.front() == '\t'))
            value.remove_prefix(1);
        while (!value.empty() &&
               (value.back() == ' ' || value.back() == '\t'))
            value.remove_suffix(1);
        out.headers.emplace_back(std::move(name), std::string(value));
        cursor = eol == text.size() ? eol : eol + 1;
    }
    return HttpParse::Ok;
}

std::string_view
httpStatusReason(int status)
{
    switch (status) {
      case 200: return "OK";
      case 400: return "Bad Request";
      case 404: return "Not Found";
      case 405: return "Method Not Allowed";
      case 408: return "Request Timeout";
      case 431: return "Request Header Fields Too Large";
      case 500: return "Internal Server Error";
      case 503: return "Service Unavailable";
    }
    return "Unknown";
}

std::string
renderHttpResponse(const HttpResponse &resp)
{
    std::string out = "HTTP/1.1 " + std::to_string(resp.status) + " " +
                      std::string(httpStatusReason(resp.status)) +
                      "\r\n";
    out += "Content-Type: " + resp.content_type + "\r\n";
    out += "Content-Length: " + std::to_string(resp.body.size()) +
           "\r\n";
    if (resp.status == 405)
        out += "Allow: GET\r\n";
    out += "Connection: close\r\n\r\n";
    out += resp.body;
    return out;
}

HttpServer::HttpServer(HttpLimits limits) : limits_(limits) {}

HttpServer::~HttpServer()
{
    stop();
}

void
HttpServer::route(std::string path, Handler handler)
{
    GPUPM_ASSERT(!running(), "route() must precede start()");
    routes_[std::move(path)] = std::move(handler);
}

bool
HttpServer::start(int port, std::string *err)
{
    auto fail = [&](const char *what) {
        if (err)
            *err = std::string(what) + ": " + std::strerror(errno);
        if (listen_fd_ >= 0) {
            ::close(listen_fd_);
            listen_fd_ = -1;
        }
        return false;
    };

    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0)
        return fail("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) < 0)
        return fail("bind");
    if (::listen(listen_fd_, 16) < 0)
        return fail("listen");

    socklen_t len = sizeof(addr);
    if (::getsockname(listen_fd_,
                      reinterpret_cast<sockaddr *>(&addr), &len) < 0)
        return fail("getsockname");
    port_ = ntohs(addr.sin_port);

    // Pre-register the per-endpoint series so the very first scrape
    // already shows every route with zeros.
    for (const auto &[path, handler] : routes_) {
        (void)handler;
        httpRequestsTotal(path);
        httpRequestSeconds(path);
    }
    httpRequestsRejectedTotal();

    stop_.store(false, std::memory_order_relaxed);
    running_.store(true, std::memory_order_relaxed);
    worker_ = std::thread([this] { serveLoop(); });
    return true;
}

void
HttpServer::stop()
{
    if (!running_.load(std::memory_order_relaxed) &&
        !worker_.joinable())
        return;
    stop_.store(true, std::memory_order_relaxed);
    if (worker_.joinable())
        worker_.join();
    if (listen_fd_ >= 0) {
        ::close(listen_fd_);
        listen_fd_ = -1;
    }
    running_.store(false, std::memory_order_relaxed);
}

void
HttpServer::serveLoop()
{
    while (!stop_.load(std::memory_order_relaxed)) {
        pollfd pfd{};
        pfd.fd = listen_fd_;
        pfd.events = POLLIN;
        const int n = ::poll(&pfd, 1, kPollMs);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (n == 0 || !(pfd.revents & POLLIN))
            continue;
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0)
            continue;
        timeval tv{};
        tv.tv_sec = kSocketTimeoutMs / 1000;
        tv.tv_usec = (kSocketTimeoutMs % 1000) * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
        handleConnection(fd);
        ::close(fd);
    }
    running_.store(false, std::memory_order_relaxed);
}

void
HttpServer::handleConnection(int fd)
{
    // Two clocks bound a read: the per-recv idle gap (kSocketTimeoutMs
    // of silence closes the connection) and the cumulative
    // read_deadline_ms budget, without which a slowloris client
    // trickling one byte per idle window would pin the
    // single-threaded accept loop indefinitely.
    using clock = std::chrono::steady_clock;
    const auto deadline =
            clock::now() +
            std::chrono::milliseconds(limits_.read_deadline_ms);

    std::string buf;
    HttpRequest req;
    HttpParse parsed = HttpParse::Incomplete;
    bool timed_out = false;
    char chunk[2048];
    while (parsed == HttpParse::Incomplete) {
        const long remaining_ms =
                std::chrono::duration_cast<std::chrono::milliseconds>(
                        deadline - clock::now())
                        .count();
        if (remaining_ms <= 0) {
            timed_out = true;
            break;
        }
        const long wait_ms =
                std::min<long>(remaining_ms, kSocketTimeoutMs);
        timeval tv{};
        tv.tv_sec = wait_ms / 1000;
        tv.tv_usec = (wait_ms % 1000) * 1000;
        ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
        const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
            timed_out = true; // idle past the per-recv window
            break;
        }
        if (n <= 0)
            break; // peer closed / error mid-request
        buf.append(chunk, static_cast<std::size_t>(n));
        parsed = parseHttpRequest(buf, req, limits_);
    }

    HttpResponse resp;
    switch (parsed) {
      case HttpParse::Ok:
        resp = dispatch(req);
        break;
      case HttpParse::TooLarge:
        resp.status = 431;
        resp.body = "request too large\n";
        httpRequestsRejectedTotal().inc();
        break;
      case HttpParse::Malformed:
      case HttpParse::Incomplete: // EOF or deadline before a head
        if (timed_out && parsed == HttpParse::Incomplete) {
            resp.status = 408;
            resp.body = "request read deadline exceeded\n";
        } else {
            resp.status = 400;
            resp.body = "malformed request\n";
        }
        httpRequestsRejectedTotal().inc();
        break;
    }

    const std::string wire = renderHttpResponse(resp);
    std::size_t sent = 0;
    while (sent < wire.size()) {
        const ssize_t n = ::send(fd, wire.data() + sent,
                                 wire.size() - sent, MSG_NOSIGNAL);
        if (n <= 0)
            break;
        sent += static_cast<std::size_t>(n);
    }
    served_.fetch_add(1, std::memory_order_relaxed);
}

HttpResponse
HttpServer::dispatch(const HttpRequest &req) const
{
    if (req.method != "GET" && req.method != "HEAD") {
        httpRequestsRejectedTotal().inc();
        HttpResponse resp;
        resp.status = 405;
        resp.body = "method not allowed (GET only)\n";
        return resp;
    }
    const auto it = routes_.find(req.path);
    if (it == routes_.end()) {
        httpRequestsRejectedTotal().inc();
        HttpResponse resp;
        resp.status = 404;
        resp.body = "unknown path '" + req.path + "'\n";
        return resp;
    }

    const auto start = std::chrono::steady_clock::now();
    HttpResponse resp;
    try {
        resp = it->second(req);
    } catch (const std::exception &e) {
        resp = HttpResponse{};
        resp.status = 500;
        resp.body = std::string("handler failed: ") + e.what() + "\n";
    }
    const double seconds =
            std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
    httpRequestsTotal(req.path).inc();
    httpRequestSeconds(req.path).observe(seconds);
    if (req.method == "HEAD")
        resp.body.clear();
    return resp;
}

} // namespace obs
} // namespace gpupm
