#include "sampler.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "common/numio.hh"
#include "obs/profiler.hh"
#include "obs/standard.hh"
#include "obs/trace.hh"

namespace gpupm
{
namespace obs
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

Sampler::Sampler(SampleProbe probe,
                 std::vector<SchedulePoint> schedule,
                 SamplerOptions opts, FlightRecorder *recorder)
    : probe_(std::move(probe)), schedule_(std::move(schedule)),
      opts_(std::move(opts)), recorder_(recorder)
{
    GPUPM_ASSERT(static_cast<bool>(probe_), "sampler needs a probe");
    GPUPM_ASSERT(!schedule_.empty(), "sampler needs a schedule");
    GPUPM_ASSERT(opts_.period_ms > 0, "sampler period must be > 0");
}

Sampler::~Sampler()
{
    stop();
}

bool
Sampler::start(std::string *err)
{
    if (running())
        return true;
    if (!opts_.events_out.empty()) {
        events_.open(opts_.events_out,
                     std::ios::binary | std::ios::trunc);
        if (!events_) {
            if (err)
                *err = "cannot open event log '" + opts_.events_out +
                       "' for writing";
            return false;
        }
    }
    started_ = std::chrono::steady_clock::now();
    stop_.store(false, std::memory_order_relaxed);
    running_.store(true, std::memory_order_relaxed);
    worker_ = std::thread([this] { loop(); });
    return true;
}

void
Sampler::stop()
{
    stop_.store(true, std::memory_order_relaxed);
    wake_cv_.notify_all();
    if (worker_.joinable())
        worker_.join();
    running_.store(false, std::memory_order_relaxed);
}

double
Sampler::lastSampleAgeSeconds() const
{
    const std::int64_t last =
            last_sample_us_.load(std::memory_order_relaxed);
    if (last < 0)
        return std::numeric_limits<double>::infinity();
    const auto now_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - started_)
                    .count();
    return static_cast<double>(now_us - last) * 1e-6;
}

bool
Sampler::stale() const
{
    const double threshold =
            std::max(5.0 * opts_.period_ms * 1e-3, 2.0);
    const std::int64_t last =
            last_sample_us_.load(std::memory_order_relaxed);
    const auto now_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - started_)
                    .count();
    const double age =
            static_cast<double>(now_us - std::max<std::int64_t>(last, 0)) *
            1e-6;
    return age > threshold;
}

std::vector<ResidualSample>
Sampler::residualsSnapshot() const
{
    std::lock_guard<std::mutex> lock(data_mu_);
    return {residuals_.begin(), residuals_.end()};
}

Scoreboard
Sampler::scoreboardSnapshot() const
{
    return Scoreboard::fromSamples(opts_.device, opts_.device_name,
                                   opts_.reference,
                                   residualsSnapshot());
}

void
Sampler::loop()
{
    Profiler::setThreadLabel("monitor.sampler");
    const auto period = std::chrono::milliseconds(opts_.period_ms);
    auto next = std::chrono::steady_clock::now();
    std::size_t index = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
        if (opts_.duration_s > 0.0) {
            const double elapsed =
                    std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started_)
                            .count();
            if (elapsed >= opts_.duration_s)
                break;
        }
        tickOnce(index % schedule_.size());
        ++index;
        next += period;
        std::unique_lock<std::mutex> lock(wake_mu_);
        wake_cv_.wait_until(lock, next, [this] {
            return stop_.load(std::memory_order_relaxed);
        });
    }
    if (events_.is_open())
        events_.flush();
    running_.store(false, std::memory_order_relaxed);
}

void
Sampler::tickOnce(std::size_t index)
{
    const SchedulePoint &pt = schedule_[index];
    // Attributes /profilez samples of a live daemon to the sampling
    // loop (and feeds the tracer when a caller enabled it).
    GPUPM_TRACE_SPAN("monitor", "monitor.tick");
    const auto start = std::chrono::steady_clock::now();
    MonitorSample s;
    try {
        s = probe_(pt.app, pt.cfg);
    } catch (const std::exception &e) {
        s.ok = false;
        s.error = e.what();
    }
    const double probe_seconds =
            std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();

    monitorTicksTotal().inc();
    monitorSampleSeconds().observe(probe_seconds);
    ticks_.fetch_add(1, std::memory_order_relaxed);

    if (!s.ok) {
        monitorProbeFailuresTotal().inc();
        warn("monitor probe failed for ", pt.app, ": ", s.error);
        if (recorder_)
            recorder_->recordSpan(
                    "monitor.probe_failure",
                    static_cast<std::int64_t>(probe_seconds * 1e6),
                    pt.app + ": " + s.error);
        return;
    }

    ResidualSample r;
    r.app = s.app.empty() ? pt.app : s.app;
    r.cfg = s.cfg;
    r.measured_w = s.measured_w;
    r.predicted_w = s.predicted_w;
    {
        std::lock_guard<std::mutex> lock(data_mu_);
        residuals_.push_back(r);
        while (residuals_.size() > opts_.max_samples)
            residuals_.pop_front();
    }

    accuracySamplesTotal().inc();
    accuracyAbsErrPct().observe(r.absErrPct());
    monitorLastMeasuredW().set(r.measured_w);
    monitorLastPredictedW().set(r.predicted_w);
    last_sample_us_.store(
            std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - started_)
                    .count(),
            std::memory_order_relaxed);

    if (recorder_) {
        std::ostringstream detail;
        detail << r.app << " @ (" << r.cfg.core_mhz << ", "
               << r.cfg.mem_mhz << ") MHz: measured "
               << numio::formatDouble(r.measured_w) << " W, predicted "
               << numio::formatDouble(r.predicted_w) << " W";
        FlightRecord rec;
        rec.kind = "sample";
        rec.name = "monitor.sample";
        rec.dur_us = static_cast<std::int64_t>(probe_seconds * 1e6);
        rec.detail = detail.str();
        recorder_->record(std::move(rec));
    }
    logEvent(s, probe_seconds);
}

void
Sampler::logEvent(const MonitorSample &s, double probe_seconds)
{
    if (!events_.is_open())
        return;
    ResidualSample r;
    r.measured_w = s.measured_w;
    r.predicted_w = s.predicted_w;
    events_ << "{\"tick\":" << ticks_.load(std::memory_order_relaxed)
            << ",\"app\":\"" << jsonEscape(s.app)
            << "\",\"core_mhz\":" << s.cfg.core_mhz
            << ",\"mem_mhz\":" << s.cfg.mem_mhz << ",\"measured_w\":"
            << numio::formatDouble(s.measured_w) << ",\"predicted_w\":"
            << numio::formatDouble(s.predicted_w)
            << ",\"abs_err_pct\":"
            << numio::formatDouble(r.absErrPct())
            << ",\"probe_seconds\":"
            << numio::formatDouble(probe_seconds) << "}\n";
    events_.flush();
}

} // namespace obs
} // namespace gpupm
