#include "sampler.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/logging.hh"
#include "common/numio.hh"
#include "obs/alerts.hh"
#include "obs/profiler.hh"
#include "obs/standard.hh"
#include "obs/trace.hh"
#include "obs/tsdb.hh"

namespace gpupm
{
namespace obs
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

Sampler::Sampler(SampleProbe probe,
                 std::vector<SchedulePoint> schedule,
                 SamplerOptions opts, FlightRecorder *recorder,
                 Tsdb *tsdb, AlertEngine *alerts)
    : probe_(std::move(probe)), schedule_(std::move(schedule)),
      opts_(std::move(opts)), recorder_(recorder), tsdb_(tsdb),
      alerts_(alerts)
{
    GPUPM_ASSERT(static_cast<bool>(probe_), "sampler needs a probe");
    GPUPM_ASSERT(!schedule_.empty(), "sampler needs a schedule");
    GPUPM_ASSERT(opts_.period_ms > 0, "sampler period must be > 0");
    // Alert transitions ride the same NDJSON stream as samples. The
    // engine only fires the sink from evaluate(), which runs on the
    // tick path — the single thread that owns events_.
    if (alerts_)
        alerts_->setEventSink(
                [this](const std::string &line) { writeEventLine(line); });
}

Sampler::~Sampler()
{
    stop();
}

bool
Sampler::openEvents(std::string *err)
{
    if (opts_.events_out.empty() || events_.is_open())
        return true;
    events_.open(opts_.events_out, std::ios::binary | std::ios::trunc);
    if (!events_) {
        if (err)
            *err = "cannot open event log '" + opts_.events_out +
                   "' for writing";
        return false;
    }
    events_bytes_ = 0;
    return true;
}

bool
Sampler::start(std::string *err)
{
    if (running())
        return true;
    if (!openEvents(err))
        return false;
    started_ = std::chrono::steady_clock::now();
    stop_.store(false, std::memory_order_relaxed);
    running_.store(true, std::memory_order_relaxed);
    worker_ = std::thread([this] { loop(); });
    return true;
}

void
Sampler::stop()
{
    stop_.store(true, std::memory_order_relaxed);
    wake_cv_.notify_all();
    if (worker_.joinable())
        worker_.join();
    running_.store(false, std::memory_order_relaxed);
}

double
Sampler::lastSampleAgeSeconds() const
{
    const std::int64_t last =
            last_sample_us_.load(std::memory_order_relaxed);
    if (last < 0)
        return std::numeric_limits<double>::infinity();
    const auto now_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - started_)
                    .count();
    return static_cast<double>(now_us - last) * 1e-6;
}

bool
Sampler::stale() const
{
    const double threshold =
            std::max(5.0 * opts_.period_ms * 1e-3, 2.0);
    const std::int64_t last =
            last_sample_us_.load(std::memory_order_relaxed);
    const auto now_us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - started_)
                    .count();
    const double age =
            static_cast<double>(now_us - std::max<std::int64_t>(last, 0)) *
            1e-6;
    return age > threshold;
}

std::vector<ResidualSample>
Sampler::residualsSnapshot() const
{
    std::lock_guard<std::mutex> lock(data_mu_);
    return {residuals_.begin(), residuals_.end()};
}

Scoreboard
Sampler::scoreboardSnapshot() const
{
    return Scoreboard::fromSamples(opts_.device, opts_.device_name,
                                   opts_.reference,
                                   residualsSnapshot());
}

void
Sampler::loop()
{
    Profiler::setThreadLabel("monitor.sampler");
    const auto period = std::chrono::milliseconds(opts_.period_ms);
    auto next = std::chrono::steady_clock::now();
    std::size_t index = 0;
    while (!stop_.load(std::memory_order_relaxed)) {
        if (opts_.duration_s > 0.0) {
            const double elapsed =
                    std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - started_)
                            .count();
            if (elapsed >= opts_.duration_s)
                break;
        }
        const std::int64_t now_us =
                std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - started_)
                        .count();
        tickOnce(index % schedule_.size(), now_us);
        ++index;
        next += period;
        std::unique_lock<std::mutex> lock(wake_mu_);
        wake_cv_.wait_until(lock, next, [this] {
            return stop_.load(std::memory_order_relaxed);
        });
    }
    if (events_.is_open())
        events_.flush();
    running_.store(false, std::memory_order_relaxed);
}

void
Sampler::tickSynchronously(std::int64_t t_us)
{
    tickOnce(sync_index_ % schedule_.size(), t_us);
    ++sync_index_;
}

void
Sampler::tickOnce(std::size_t index, std::int64_t t_us)
{
    const SchedulePoint &pt = schedule_[index];
    // Each tick is one trace: adopting an empty context makes the
    // tick span a fresh root even while an outer CLI span is open,
    // so the measure→audit→tsdb→alert chain below shares one trace
    // ID — the ID that joins /api/traces, /tracez and the NDJSON
    // event log. (Also attributes /profilez samples of a live
    // daemon to the sampling loop.)
    TraceContextScope fresh_root{TraceContext{}};
    GPUPM_TRACE_SPAN_NAMED(tick_span, "monitor", "monitor.tick");
    tick_span.arg("app", pt.app);
    tick_span.arg("tick",
                  numio::formatLong(
                          ticks_.load(std::memory_order_relaxed) + 1));
    const auto start = std::chrono::steady_clock::now();
    MonitorSample s;
    {
        GPUPM_TRACE_SPAN("monitor", "monitor.probe");
        try {
            s = probe_(pt.app, pt.cfg);
        } catch (const std::exception &e) {
            s.ok = false;
            s.error = e.what();
        }
    }
    const double probe_seconds =
            std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();

    monitorTicksTotal().inc();
    monitorSampleSeconds().observe(probe_seconds);
    ticks_.fetch_add(1, std::memory_order_relaxed);

    if (!s.ok) {
        tick_span.markError(); // error traces are tail-kept
        monitorProbeFailuresTotal().inc();
        warn("monitor probe failed for ", pt.app, ": ", s.error);
        if (recorder_)
            recorder_->recordSpan(
                    "monitor.probe_failure",
                    static_cast<std::int64_t>(probe_seconds * 1e6),
                    pt.app + ": " + s.error);
        // Failed ticks still snapshot the registry and evaluate the
        // rules: a wedged probe must surface as stale/rate alerts,
        // not freeze history.
        if (tsdb_) {
            GPUPM_TRACE_SPAN("monitor", "monitor.tsdb");
            tsdb_->recordRegistry(Registry::global(), t_us);
        }
        if (alerts_) {
            GPUPM_TRACE_SPAN("monitor", "monitor.alerts");
            alerts_->evaluate(t_us);
        }
        return;
    }

    ResidualSample r;
    r.app = s.app.empty() ? pt.app : s.app;
    r.cfg = s.cfg;
    r.measured_w = s.measured_w;
    r.predicted_w = s.predicted_w;
    {
        GPUPM_TRACE_SPAN("monitor", "monitor.audit");
        {
            std::lock_guard<std::mutex> lock(data_mu_);
            residuals_.push_back(r);
            while (residuals_.size() > opts_.max_samples)
                residuals_.pop_front();
        }

        accuracySamplesTotal().inc();
        accuracyAbsErrPct().observe(r.absErrPct());
        monitorLastMeasuredW().set(r.measured_w);
        monitorLastPredictedW().set(r.predicted_w);
        updateRollingMae();
    }
    last_sample_us_.store(
            std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - started_)
                    .count(),
            std::memory_order_relaxed);

    if (recorder_) {
        std::ostringstream detail;
        detail << r.app << " @ (" << r.cfg.core_mhz << ", "
               << r.cfg.mem_mhz << ") MHz: measured "
               << numio::formatDouble(r.measured_w) << " W, predicted "
               << numio::formatDouble(r.predicted_w) << " W";
        FlightRecord rec;
        rec.kind = "sample";
        rec.name = "monitor.sample";
        rec.dur_us = static_cast<std::int64_t>(probe_seconds * 1e6);
        rec.detail = detail.str();
        recorder_->record(std::move(rec));
    }
    logEvent(s, probe_seconds);

    if (tsdb_) {
        GPUPM_TRACE_SPAN("monitor", "monitor.tsdb");
        tsdbPointsTotal().inc(
                static_cast<double>(tsdb_->pointsAppended()) -
                tsdbPointsTotal().value());
        tsdb_->recordRegistry(Registry::global(), t_us);
    }
    if (alerts_) {
        GPUPM_TRACE_SPAN("monitor", "monitor.alerts");
        const double transitions_before =
                alertTransitionsTotal().value();
        alerts_->evaluate(t_us);
        // A tick that moved any alert's state is tail-kept: "which
        // tick fired this drift alert" stays answerable after the
        // fact from /api/traces?error=1.
        if (alertTransitionsTotal().value() != transitions_before)
            tick_span.markError();
    }
}

void
Sampler::updateRollingMae()
{
    double sum = 0.0;
    std::size_t n = 0;
    {
        std::lock_guard<std::mutex> lock(data_mu_);
        const std::size_t window =
                std::max<std::size_t>(opts_.rolling_window, 1);
        const std::size_t take =
                std::min(window, residuals_.size());
        for (std::size_t i = residuals_.size() - take;
             i < residuals_.size(); ++i) {
            sum += residuals_[i].absErrPct();
            ++n;
        }
    }
    if (n > 0)
        accuracyRollingMaePct().set(sum / static_cast<double>(n));
}

void
Sampler::logEvent(const MonitorSample &s, double probe_seconds)
{
    if (!events_.is_open())
        return;
    ResidualSample r;
    r.measured_w = s.measured_w;
    r.predicted_w = s.predicted_w;
    std::ostringstream os;
    os << "{\"tick\":" << ticks_.load(std::memory_order_relaxed)
       << ",\"app\":\"" << jsonEscape(s.app)
       << "\",\"core_mhz\":" << s.cfg.core_mhz
       << ",\"mem_mhz\":" << s.cfg.mem_mhz << ",\"measured_w\":"
       << numio::formatDouble(s.measured_w) << ",\"predicted_w\":"
       << numio::formatDouble(s.predicted_w) << ",\"abs_err_pct\":"
       << numio::formatDouble(r.absErrPct()) << ",\"probe_seconds\":"
       << numio::formatDouble(probe_seconds);
    // Join key into the trace store and the flight recorder; only
    // present while the tracer is on (the tick span owns the ctx).
    if (const auto ctx = currentTraceContext(); ctx.trace_id)
        os << ",\"trace_id\":\"" << traceIdHex(ctx.trace_id) << "\"";
    os << "}";
    writeEventLine(os.str());
}

void
Sampler::writeEventLine(const std::string &line)
{
    if (!events_.is_open())
        return;
    // Rotation check happens *before* the write, so a line is never
    // split across generations and `<path>` never exceeds the cap by
    // more than one line.
    if (opts_.events_max_bytes > 0 &&
        events_bytes_ + static_cast<long>(line.size()) + 1 >
                opts_.events_max_bytes &&
        events_bytes_ > 0) {
        events_.close();
        // Shift generations oldest-last: `.N-1` -> `.N`, ..., `.1` ->
        // `.2`, live -> `.1`. std::rename replaces an existing
        // destination atomically on POSIX — readers see either the
        // old or the new generation, never a missing one. The oldest
        // generation falls off the end.
        const int gens = std::max(opts_.events_max_files, 1);
        for (int g = gens; g >= 2; --g)
            std::rename((opts_.events_out + "." +
                         std::to_string(g - 1))
                                .c_str(),
                        (opts_.events_out + "." + std::to_string(g))
                                .c_str());
        std::rename(opts_.events_out.c_str(),
                    (opts_.events_out + ".1").c_str());
        events_.open(opts_.events_out,
                     std::ios::binary | std::ios::trunc);
        events_bytes_ = 0;
        event_rotations_.fetch_add(1, std::memory_order_relaxed);
        if (!events_) {
            warn("event-log rotation failed to reopen '",
                 opts_.events_out, "'; event logging disabled");
            return;
        }
    }
    events_ << line << "\n";
    events_.flush();
    events_bytes_ += static_cast<long>(line.size()) + 1;
}

} // namespace obs
} // namespace gpupm
