#include "metrics.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "common/logging.hh"
#include "common/numio.hh"
#include "common/provenance.hh"
#include "obs/trace.hh"

namespace gpupm
{
namespace obs
{

namespace
{

/** Lock-free add for atomic<double> (no fetch_add before C++20 on
 *  all toolchains; CAS loop is portable and contention here is low). */
void
atomicAdd(std::atomic<double> &a, double v)
{
    double cur = a.load(std::memory_order_relaxed);
    while (!a.compare_exchange_weak(cur, cur + v,
                                    std::memory_order_relaxed)) {
    }
}

const double kSummaryQuantiles[] = {0.50, 0.95, 0.99};
const char *const kQuantileLabels[] = {"0.5", "0.95", "0.99"};
const char *const kQuantileJsonKeys[] = {"p50", "p95", "p99"};

} // namespace

void
Counter::inc(double v)
{
    if (v < 0.0)
        return;
    atomicAdd(value_, v);
}

Histogram::Histogram(std::vector<double> upper_bounds)
    : bounds_(std::move(upper_bounds))
{
    GPUPM_ASSERT(!bounds_.empty(), "histogram needs >= 1 bucket");
    GPUPM_ASSERT(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bucket bounds must be sorted");
    per_bucket_ = std::make_unique<std::atomic<double>[]>(
            bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i)
        per_bucket_[i].store(0.0, std::memory_order_relaxed);
}

void
Histogram::observe(double v)
{
    const auto it =
            std::lower_bound(bounds_.begin(), bounds_.end(), v);
    const std::size_t idx =
            static_cast<std::size_t>(it - bounds_.begin());
    atomicAdd(per_bucket_[idx], 1.0);
    atomicAdd(count_, 1.0);
    atomicAdd(sum_, v);
    // Exemplar capture: remember the trace behind the latest tail
    // (p99+) observation, when one is active. The quantile estimate
    // walks a handful of buckets — cheap enough for the hot path,
    // and only taken once enough mass exists for a stable tail.
    const TraceContext ctx = currentTraceContext();
    if (ctx.trace_id && count() >= 10.0 &&
        v >= quantileEstimate(0.99)) {
        exemplar_value_.store(v, std::memory_order_relaxed);
        exemplar_trace_.store(ctx.trace_id,
                              std::memory_order_relaxed);
    }
}

bool
Histogram::exemplar(std::uint64_t *trace_id, double *value) const
{
    const std::uint64_t id =
            exemplar_trace_.load(std::memory_order_relaxed);
    if (!id)
        return false;
    if (trace_id)
        *trace_id = id;
    if (value)
        *value = exemplar_value_.load(std::memory_order_relaxed);
    return true;
}

std::vector<double>
Histogram::cumulativeCounts() const
{
    std::vector<double> out(bounds_.size());
    double acc = 0.0;
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        acc += per_bucket_[i].load(std::memory_order_relaxed);
        out[i] = acc;
    }
    return out;
}

double
Histogram::quantileEstimate(double q) const
{
    q = std::clamp(q, 0.0, 1.0);
    const double total = count();
    if (total <= 0.0)
        return 0.0;
    const double target = q * total;
    const auto cum = cumulativeCounts();
    for (std::size_t i = 0; i < bounds_.size(); ++i) {
        if (cum[i] < target)
            continue;
        const double prev = i ? cum[i - 1] : 0.0;
        const double in_bucket = cum[i] - prev;
        const double lo = i ? bounds_[i - 1]
                            : std::min(0.0, bounds_[0]);
        const double hi = bounds_[i];
        if (in_bucket <= 0.0)
            return hi;
        return lo + (hi - lo) * (target - prev) / in_bucket;
    }
    // Rank falls into the +Inf overflow bucket: clamp to the largest
    // finite bound, as histogram_quantile() does.
    return bounds_.back();
}

std::vector<double>
secondsBuckets()
{
    return {1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0};
}

std::vector<double>
countBuckets()
{
    return {1, 10, 100, 1000, 10000};
}

std::vector<double>
iterationBuckets()
{
    return {1, 2, 5, 10, 20, 50};
}

std::vector<double>
errorPctBuckets()
{
    return {0.5, 1, 2, 5, 10, 20, 50};
}

Registry &
Registry::global()
{
    static Registry registry;
    return registry;
}

std::string
Registry::labelEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\' || c == '"')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

// Caller must hold mu_.
Registry::Entry &
Registry::entryOf(const std::string &name, const std::string &labels,
                  Kind kind, const std::string &help)
{
    auto &family = metrics_[name];
    auto it = family.find(labels);
    if (it != family.end()) {
        GPUPM_ASSERT(it->second.kind == kind,
                     "metric '", name, "' re-registered as a "
                     "different type");
        return it->second;
    }
    if (!family.empty())
        GPUPM_ASSERT(family.begin()->second.kind == kind,
                     "metric family '", name, "' holds children of a "
                     "different type");
    Entry e;
    e.kind = kind;
    e.labels = labels;
    e.help = help;
    return family.emplace(labels, std::move(e)).first->second;
}

Counter &
Registry::counter(const std::string &name, const std::string &help)
{
    return counter(name, "", help);
}

Counter &
Registry::counter(const std::string &name, const std::string &labels,
                  const std::string &help)
{
    std::lock_guard<std::mutex> lock(mu_);
    Entry &e = entryOf(name, labels, Kind::Counter, help);
    if (!e.counter)
        e.counter = std::make_unique<Counter>();
    return *e.counter;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help)
{
    return gauge(name, "", help);
}

Gauge &
Registry::gauge(const std::string &name, const std::string &labels,
                const std::string &help)
{
    std::lock_guard<std::mutex> lock(mu_);
    Entry &e = entryOf(name, labels, Kind::Gauge, help);
    if (!e.gauge)
        e.gauge = std::make_unique<Gauge>();
    return *e.gauge;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    std::vector<double> upper_bounds)
{
    return histogram(name, "", help, std::move(upper_bounds));
}

Histogram &
Registry::histogram(const std::string &name, const std::string &labels,
                    const std::string &help,
                    std::vector<double> upper_bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    Entry &e = entryOf(name, labels, Kind::Histogram, help);
    if (!e.histogram)
        e.histogram =
                std::make_unique<Histogram>(std::move(upper_bounds));
    return *e.histogram;
}

std::size_t
Registry::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t n = 0;
    for (const auto &[name, family] : metrics_)
        n += family.size();
    return n;
}

std::string
Registry::renderPrometheus() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    // Sample name of a child, with extra labels (le/quantile) merged
    // into the family's own label body.
    const auto sample = [](const std::string &name, const Entry &e,
                           const std::string &extra = "") {
        if (e.labels.empty() && extra.empty())
            return name;
        std::string body = e.labels;
        if (!extra.empty())
            body += (body.empty() ? "" : ",") + extra;
        return name + "{" + body + "}";
    };
    for (const auto &[name, family] : metrics_) {
        bool first = true;
        for (const auto &[labels, e] : family) {
            if (first) {
                os << "# HELP " << name << " " << e.help << "\n";
                os << "# TYPE " << name << " "
                   << (e.kind == Kind::Counter     ? "counter"
                       : e.kind == Kind::Gauge     ? "gauge"
                                                   : "histogram")
                   << "\n";
                first = false;
            }
            switch (e.kind) {
              case Kind::Counter:
                os << sample(name, e) << " "
                   << numio::formatDouble(
                              e.counter ? e.counter->value() : 0.0)
                   << "\n";
                break;
              case Kind::Gauge:
                os << sample(name, e) << " "
                   << numio::formatDouble(e.gauge ? e.gauge->value()
                                                  : 0.0)
                   << "\n";
                break;
              case Kind::Histogram: {
                if (!e.histogram)
                    break;
                const auto &bounds = e.histogram->upperBounds();
                const auto cum = e.histogram->cumulativeCounts();
                for (std::size_t i = 0; i < bounds.size(); ++i) {
                    os << sample(name + "_bucket", e,
                                 "le=\"" +
                                         numio::formatDouble(bounds[i]) +
                                         "\"")
                       << " " << numio::formatDouble(cum[i]) << "\n";
                }
                os << sample(name + "_bucket", e, "le=\"+Inf\"") << " "
                   << numio::formatDouble(e.histogram->count());
                // OpenMetrics exemplar on the +Inf bucket: the trace
                // behind the most recent tail observation.
                {
                    std::uint64_t ex_id = 0;
                    double ex_v = 0.0;
                    if (e.histogram->exemplar(&ex_id, &ex_v))
                        os << " # {trace_id=\"" << traceIdHex(ex_id)
                           << "\"} " << numio::formatDouble(ex_v);
                }
                os << "\n";
                os << sample(name + "_sum", e) << " "
                   << numio::formatDouble(e.histogram->sum()) << "\n";
                os << sample(name + "_count", e) << " "
                   << numio::formatDouble(e.histogram->count()) << "\n";
                for (std::size_t q = 0; q < 3; ++q) {
                    os << sample(name, e,
                                 std::string("quantile=\"") +
                                         kQuantileLabels[q] + "\"")
                       << " "
                       << numio::formatDouble(
                                  e.histogram->quantileEstimate(
                                          kSummaryQuantiles[q]))
                       << "\n";
                }
                break;
              }
            }
        }
    }
    return os.str();
}

std::string
Registry::renderJson() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os << "{";
    os << "\n\"provenance\":"
       << common::toJson(common::collectProvenance());
    for (const auto &[family, children] : metrics_) {
      for (const auto &[labels, e] : children) {
        std::string name =
                labels.empty() ? family : family + "{" + labels + "}";
        // The label body carries quotes; escape them for the JSON key.
        std::string key;
        key.reserve(name.size());
        for (char c : name) {
            if (c == '"' || c == '\\')
                key += '\\';
            key += c;
        }
        os << ",";
        os << "\n\"" << key << "\":{";
        switch (e.kind) {
          case Kind::Counter:
            os << "\"type\":\"counter\",\"value\":"
               << numio::formatDouble(e.counter ? e.counter->value()
                                                : 0.0);
            break;
          case Kind::Gauge:
            os << "\"type\":\"gauge\",\"value\":"
               << numio::formatDouble(e.gauge ? e.gauge->value()
                                              : 0.0);
            break;
          case Kind::Histogram: {
            os << "\"type\":\"histogram\"";
            if (e.histogram) {
                os << ",\"count\":"
                   << numio::formatDouble(e.histogram->count())
                   << ",\"sum\":"
                   << numio::formatDouble(e.histogram->sum())
                   << ",\"buckets\":[";
                const auto &bounds = e.histogram->upperBounds();
                const auto cum = e.histogram->cumulativeCounts();
                for (std::size_t i = 0; i < bounds.size(); ++i) {
                    if (i)
                        os << ",";
                    os << "{\"le\":"
                       << numio::formatDouble(bounds[i])
                       << ",\"count\":" << numio::formatDouble(cum[i])
                       << "}";
                }
                os << "]";
                for (std::size_t q = 0; q < 3; ++q) {
                    os << ",\"" << kQuantileJsonKeys[q] << "\":"
                       << numio::formatDouble(
                                  e.histogram->quantileEstimate(
                                          kSummaryQuantiles[q]));
                }
                std::uint64_t ex_id = 0;
                double ex_v = 0.0;
                if (e.histogram->exemplar(&ex_id, &ex_v))
                    os << ",\"exemplar\":{\"trace_id\":\""
                       << traceIdHex(ex_id) << "\",\"value\":"
                       << numio::formatDouble(ex_v) << "}";
            }
            break;
          }
        }
        os << "}";
      }
    }
    os << "\n}\n";
    return os.str();
}

std::vector<MetricSample>
Registry::collectSamples() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<MetricSample> out;
    for (const auto &[name, family] : metrics_) {
        for (const auto &[labels, e] : family) {
            const std::string full =
                    labels.empty() ? name : name + "{" + labels + "}";
            switch (e.kind) {
              case Kind::Counter:
                out.push_back({full,
                               e.counter ? e.counter->value() : 0.0,
                               true});
                break;
              case Kind::Gauge:
                out.push_back({full,
                               e.gauge ? e.gauge->value() : 0.0,
                               false});
                break;
              case Kind::Histogram: {
                if (!e.histogram)
                    break;
                const std::string sum =
                        labels.empty()
                                ? name + "_sum"
                                : name + "_sum{" + labels + "}";
                const std::string count =
                        labels.empty()
                                ? name + "_count"
                                : name + "_count{" + labels + "}";
                out.push_back({sum, e.histogram->sum(), true});
                out.push_back({count, e.histogram->count(), true});
                break;
              }
            }
        }
    }
    return out;
}

bool
Registry::writePrometheus(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << renderPrometheus();
    return static_cast<bool>(out);
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    metrics_.clear();
}

} // namespace obs
} // namespace gpupm
