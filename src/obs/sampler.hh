/**
 * @file
 * Online sampling loop behind `gpupm monitor`.
 *
 * The paper's model is a *run-time* power model: its operational use
 * (sensorless estimation, DVFS management) consumes predictions as a
 * live, continuously sampled signal. The Sampler provides that
 * signal: a worker thread ticks at a configurable period over a
 * configurable (application, V-F configuration) schedule, calls a
 * probe that measures and predicts one cell, and feeds the resulting
 * residual into the accuracy aggregators (obs::residuals /
 * obs::scoreboard), the metrics registry and the flight recorder —
 * optionally appending one NDJSON line per sample to a structured
 * event log.
 *
 * The probe is injected as a callback so this layer stays free of
 * simulator/predictor dependencies (obs must not depend on core);
 * the CLI wires in the simulated NVML device + Predictor.
 */

#ifndef GPUPM_OBS_SAMPLER_HH
#define GPUPM_OBS_SAMPLER_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gpu/device.hh"
#include "obs/flight_recorder.hh"
#include "obs/residuals.hh"
#include "obs/scoreboard.hh"

namespace gpupm
{
namespace obs
{
class AlertEngine;
class Tsdb;
} // namespace obs
} // namespace gpupm

namespace gpupm
{
namespace obs
{

/** One live measured-vs-predicted observation from the probe. */
struct MonitorSample
{
    std::string app;
    gpu::FreqConfig cfg{};
    double measured_w = 0.0;
    double predicted_w = 0.0;
    bool ok = true;    ///< false: error is set, sample is discarded
    std::string error; ///< probe failure description
};

/** Measure + predict one (application, configuration) cell. Runs on
 *  the sampler thread; must be safe to call back to back. */
using SampleProbe = std::function<MonitorSample(
        const std::string &app, const gpu::FreqConfig &cfg)>;

/** One schedule entry; the loop round-robins over the schedule. */
struct SchedulePoint
{
    std::string app;
    gpu::FreqConfig cfg{};
};

struct SamplerOptions
{
    int period_ms = 250;      ///< tick period
    double duration_s = 0.0;  ///< stop after this long; 0 = until stop()
    std::string events_out;   ///< NDJSON event log path; "" = off
    /**
     * Rotate the event log once it exceeds this many bytes: the
     * current file is atomically renamed to `<events_out>.1` (older
     * generations shift to `.2` .. `.events_max_files`, the oldest
     * falls off) and a fresh log is opened. 0 disables rotation
     * (unbounded growth).
     */
    long events_max_bytes = 0;
    /** Rotated generations retained (`.1` .. `.N`); minimum 1. */
    int events_max_files = 1;
    std::size_t max_samples = 10000; ///< residuals retained (ring)
    /** Residuals in the rolling-MAE window feeding
     *  gpupm_accuracy_rolling_mae_pct (and the drift rule). */
    std::size_t rolling_window = 64;

    /** Identity stamped onto scoreboard snapshots. */
    int device = 0;
    std::string device_name;
    gpu::FreqConfig reference{};
};

/** Periodic measure→predict→audit loop on a worker thread. */
class Sampler
{
  public:
    Sampler(SampleProbe probe, std::vector<SchedulePoint> schedule,
            SamplerOptions opts, FlightRecorder *recorder = nullptr,
            Tsdb *tsdb = nullptr, AlertEngine *alerts = nullptr);
    ~Sampler(); ///< stops and joins if still running

    Sampler(const Sampler &) = delete;
    Sampler &operator=(const Sampler &) = delete;

    /** Open the event log and start ticking. False + *err on failure. */
    bool start(std::string *err = nullptr);

    /**
     * Open the event log without starting the worker thread — for
     * synchronous driving via tickSynchronously() (the `gpupm alerts`
     * one-shot). start() calls this itself.
     */
    bool openEvents(std::string *err = nullptr);

    /**
     * Run exactly one tick on the calling thread at virtual time
     * `t_us` (stamped onto tsdb points and alert evaluation instead
     * of the wall clock), advancing the schedule round-robin. Virtual
     * time makes two runs at the same device seed byte-identical —
     * the determinism the drift-demo ctest gate relies on. Do not mix
     * with a start()ed worker loop.
     */
    void tickSynchronously(std::int64_t t_us);

    /** Signal the loop to finish the current tick and join it. */
    void stop();

    /** True from start() until the loop exits (duration or stop()). */
    bool running() const
    {
        return running_.load(std::memory_order_relaxed);
    }

    /** Ticks completed (successful or failed probes). */
    long ticks() const { return ticks_.load(std::memory_order_relaxed); }

    /** Seconds since the last completed sample; +inf before any. */
    double lastSampleAgeSeconds() const;

    /**
     * Sampler staleness: true once the last completed sample is older
     * than max(5 periods, 2 s). Freshly started loops are not stale
     * (age is measured from start() until the first sample lands).
     */
    bool stale() const;

    /** Copy of the retained residual window, oldest first. */
    std::vector<ResidualSample> residualsSnapshot() const;

    /** Live scoreboard over the retained residual window. */
    Scoreboard scoreboardSnapshot() const;

    const SamplerOptions &options() const { return opts_; }

    /** Rotations performed so far (`<events_out>.1` rewrites). */
    long eventRotations() const
    {
        return event_rotations_.load(std::memory_order_relaxed);
    }

  private:
    void loop();
    void tickOnce(std::size_t index, std::int64_t t_us);
    void logEvent(const MonitorSample &s, double probe_seconds);
    void writeEventLine(const std::string &line);
    void updateRollingMae();

    SampleProbe probe_;
    std::vector<SchedulePoint> schedule_;
    SamplerOptions opts_;
    FlightRecorder *recorder_; ///< optional, not owned
    Tsdb *tsdb_;               ///< optional, not owned
    AlertEngine *alerts_;      ///< optional, not owned

    std::thread worker_;
    std::atomic<bool> stop_{false};
    std::atomic<bool> running_{false};
    std::atomic<long> ticks_{0};
    std::mutex wake_mu_;
    std::condition_variable wake_cv_;

    mutable std::mutex data_mu_;
    std::deque<ResidualSample> residuals_; ///< guarded by data_mu_
    std::chrono::steady_clock::time_point started_{};
    std::atomic<std::int64_t> last_sample_us_{-1}; ///< since started_

    std::ofstream events_; ///< sampler-thread only after start()
    long events_bytes_ = 0; ///< bytes written since (re)open
    std::atomic<long> event_rotations_{0};
    std::size_t sync_index_ = 0; ///< tickSynchronously round-robin
};

} // namespace obs
} // namespace gpupm

#endif // GPUPM_OBS_SAMPLER_HH
