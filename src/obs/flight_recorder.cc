#include "flight_recorder.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/numio.hh"
#include "obs/trace.hh"

namespace gpupm
{
namespace obs
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

FlightRecorder::FlightRecorder(std::size_t capacity)
    : epoch_(std::chrono::steady_clock::now())
{
    GPUPM_ASSERT(capacity > 0, "flight recorder needs capacity >= 1");
    slots_.resize(capacity);
    for (auto &s : slots_)
        s.seq = -1; // empty
}

std::int64_t
FlightRecorder::recorded() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return next_seq_;
}

std::int64_t
FlightRecorder::nowUs() const
{
    return std::chrono::duration_cast<std::chrono::microseconds>(
                   std::chrono::steady_clock::now() - epoch_)
            .count();
}

void
FlightRecorder::record(FlightRecord r)
{
    if (r.ts_us == 0)
        r.ts_us = nowUs();
    if (r.trace_id == 0)
        r.trace_id = currentTraceContext().trace_id;
    std::lock_guard<std::mutex> lock(mu_);
    r.seq = next_seq_;
    slots_[static_cast<std::size_t>(next_seq_) % slots_.size()] =
            std::move(r);
    ++next_seq_;
}

void
FlightRecorder::recordSpan(const std::string &name,
                           std::int64_t dur_us, std::string detail)
{
    FlightRecord r;
    r.kind = "span";
    r.name = name;
    r.dur_us = dur_us;
    r.detail = std::move(detail);
    record(std::move(r));
}

std::vector<FlightRecord>
FlightRecorder::snapshot() const
{
    std::vector<FlightRecord> out;
    {
        std::lock_guard<std::mutex> lock(mu_);
        out.reserve(slots_.size());
        for (const auto &s : slots_)
            if (s.seq >= 0)
                out.push_back(s);
    }
    std::sort(out.begin(), out.end(),
              [](const FlightRecord &a, const FlightRecord &b) {
                  return a.seq < b.seq;
              });
    return out;
}

std::string
FlightRecorder::renderJson() const
{
    const auto records = snapshot();
    const std::int64_t total = recorded();
    const std::int64_t dropped =
            total - static_cast<std::int64_t>(records.size());
    std::ostringstream os;
    os << "{\"capacity\":" << slots_.size() << ",\"recorded\":"
       << total << ",\"dropped\":" << dropped << ",\"records\":[";
    for (std::size_t i = 0; i < records.size(); ++i) {
        const auto &r = records[i];
        if (i)
            os << ",";
        os << "\n{\"seq\":" << r.seq << ",\"ts_us\":" << r.ts_us
           << ",\"dur_us\":" << r.dur_us << ",\"kind\":\""
           << jsonEscape(r.kind) << "\",\"name\":\""
           << jsonEscape(r.name) << "\",\"detail\":\""
           << jsonEscape(r.detail) << "\",\"trace_id\":\""
           << traceIdHex(r.trace_id) << "\"}";
    }
    os << "]}\n";
    return os.str();
}

void
FlightRecorder::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &s : slots_)
        s.seq = -1;
}

} // namespace obs
} // namespace gpupm
