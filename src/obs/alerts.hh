/**
 * @file
 * Alert rule engine over the embedded time-series store.
 *
 * Rules are evaluated once per sampler tick against tsdb windows:
 *
 *  - `Threshold`: the windowed mean of a series compared against a
 *    bound (`mean(series[now-window, now]) > threshold`, or `<`).
 *  - `Rate`: rate of change across the window, per second, compared
 *    against a bound — catches "MAE climbing fast" before a level
 *    threshold would.
 *  - `Drift`: a threshold rule with provenance — the bound is the
 *    paper's Fig. 7 per-device accuracy envelope (6.6% Titan Xp,
 *    5.5% GTX Titan X, 12.2% Tesla K40c) plus a tolerance in
 *    percentage points, optionally refreshed from a
 *    `bench/golden/BENCH_fig7_validation.json` golden. It watches the
 *    sampler's rolling-MAE series, so a deployed model drifting
 *    outside its validated envelope raises an alert online.
 *
 * Hysteresis prevents flapping: a rule whose condition holds is
 * `pending` until it has held for `for_us`, only then `firing`; a
 * firing rule whose condition clears is not resolved until the
 * condition has stayed clear for `cooldown_us`. Empty windows (probe
 * stalled, startup) freeze the state machine rather than resolving a
 * real alert on missing data; NaN samples never enter the store
 * (Tsdb::append drops them).
 *
 * Transitions increment `gpupm_alert_transitions_total`, flip the
 * `gpupm_alerts_firing{rule=...}` gauge, land in the flight recorder
 * (kind "alert") and — when a sink is attached — emit one NDJSON
 * line onto the monitor's event stream. DESIGN.md §14 documents the
 * rule grammar accepted by `--alert`.
 */

#ifndef GPUPM_OBS_ALERTS_HH
#define GPUPM_OBS_ALERTS_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/flight_recorder.hh"
#include "obs/tsdb.hh"

namespace gpupm
{
namespace obs
{

enum class AlertKind { Threshold, Rate, Drift };
enum class AlertOp { Gt, Lt };

/** One rule; see the file doc for semantics. */
struct AlertRule
{
    std::string name;   ///< unique; labels the firing gauge
    std::string series; ///< tsdb series the rule watches
    AlertKind kind = AlertKind::Threshold;
    AlertOp op = AlertOp::Gt;
    double threshold = 0.0;    ///< bound (drift: envelope+tolerance)
    double envelope_pct = 0.0; ///< drift only: the Fig. 7 envelope
    double tolerance_pp = 0.0; ///< drift only: slack over the envelope
    std::int64_t window_us = 30'000'000;   ///< evaluation window
    std::int64_t for_us = 10'000'000;      ///< pending -> firing
    std::int64_t cooldown_us = 30'000'000; ///< clear -> resolved
    std::int64_t min_count = 1; ///< samples required in the window
};

enum class AlertState { Inactive, Pending, Firing, Resolved };

const char *alertStateName(AlertState s);

/**
 * The paper's Fig. 7 mean-absolute-error envelope for a device token
 * ("titanxp", "titanx", "k40c"); nullopt for unknown devices.
 */
std::optional<double> fig7EnvelopePct(const std::string &device);

/**
 * Built-in drift rule for `device`: watches
 * `gpupm_accuracy_rolling_mae_pct` against the Fig. 7 envelope plus
 * `tolerance_pp`. `envelope_override` (e.g. parsed from a
 * bench/golden fig7 file) replaces the hard-coded envelope when set.
 */
AlertRule makeDriftRule(const std::string &device, double tolerance_pp,
                        std::int64_t window_us, std::int64_t for_us,
                        std::int64_t cooldown_us,
                        std::optional<double> envelope_override = {});

/** One recorded state change of a rule. */
struct AlertTransition
{
    std::int64_t t_us = 0;
    AlertState state = AlertState::Inactive;
    double value = 0.0; ///< evaluated value at the transition
};

/** Live status of one rule, as reported by /alertz. */
struct AlertStatus
{
    AlertRule rule;
    AlertState state = AlertState::Inactive;
    std::int64_t since_us = 0; ///< when `state` was entered
    double last_value = 0.0;   ///< NaN until first non-empty window
    bool evaluated = false;    ///< any non-empty window seen yet
    std::deque<AlertTransition> history; ///< bounded, oldest first
};

/**
 * Evaluates rules against a Tsdb. evaluate() is expected from one
 * thread (the sampler tick); snapshots and renders may race it from
 * HTTP handlers — everything is mutex-guarded.
 */
class AlertEngine
{
  public:
    AlertEngine(const Tsdb &tsdb, std::vector<AlertRule> rules,
                FlightRecorder *recorder = nullptr);

    AlertEngine(const AlertEngine &) = delete;
    AlertEngine &operator=(const AlertEngine &) = delete;

    /** NDJSON sink for transition events (the monitor event log). */
    void setEventSink(std::function<void(const std::string &)> sink);

    /** Evaluate every rule at `now_us`; called once per tick. */
    void evaluate(std::int64_t now_us);

    std::vector<AlertStatus> snapshot() const;

    /** Names of rules currently firing, rule order. */
    std::vector<std::string> firingRuleNames() const;

    bool anyFiring() const { return !firingRuleNames().empty(); }

    std::int64_t lastEvaluatedUs() const;

    /** /alertz JSON: deterministic key order, NaN rendered as null. */
    std::string renderJson(std::int64_t now_us) const;

    /** /alertz human text. */
    std::string renderText(std::int64_t now_us) const;

  private:
    struct RuleState
    {
        AlertRule rule;
        AlertState state = AlertState::Inactive;
        std::int64_t since_us = 0;
        std::int64_t cond_true_since_us = -1;
        std::int64_t cond_false_since_us = -1;
        double last_value = 0.0;
        bool evaluated = false;
        std::deque<AlertTransition> history;
    };

    void transition(RuleState &rs, AlertState to, std::int64_t now_us);

    /** Windowed value of `rule` at now; false when window is empty. */
    bool evaluateValue(const AlertRule &rule, std::int64_t now_us,
                      double &out) const;

    const Tsdb &tsdb_;
    FlightRecorder *recorder_ = nullptr;
    mutable std::mutex mu_;
    std::vector<RuleState> rules_;
    std::function<void(const std::string &)> sink_;
    std::int64_t last_evaluated_us_ = -1;
};

} // namespace obs
} // namespace gpupm

#endif // GPUPM_OBS_ALERTS_HH
