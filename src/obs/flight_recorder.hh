/**
 * @file
 * Fixed-capacity flight recorder.
 *
 * A lock-aware ring buffer retaining the last N spans/samples of a
 * long-running process (gpupm monitor), so the recent past is always
 * available — through `GET /tracez` while the process is alive, and
 * as a post-mortem dump on shutdown or fault. Unlike the Tracer
 * (trace.hh), which accumulates every span of a bounded batch run for
 * a complete Chrome trace, the recorder deliberately forgets: memory
 * stays constant no matter how long the daemon runs.
 *
 * Writers take one short mutex hold per record; records carry a
 * global sequence number so readers can detect wraparound (recorded()
 * minus capacity() records have been overwritten) and verify
 * ordering.
 */

#ifndef GPUPM_OBS_FLIGHT_RECORDER_HH
#define GPUPM_OBS_FLIGHT_RECORDER_HH

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace gpupm
{
namespace obs
{

/** One retained event: a completed span, sample or lifecycle mark. */
struct FlightRecord
{
    std::int64_t seq = 0;    ///< global sequence, assigned on record()
    std::int64_t ts_us = 0;  ///< recorder-epoch timestamp, microseconds
    std::int64_t dur_us = 0; ///< duration when span-like, else 0
    std::string kind;        ///< "span" | "sample" | "event"
    std::string name;        ///< e.g. "monitor.sample", "http.request"
    std::string detail;      ///< freeform annotation (escaped on render)
    /** Correlating trace (trace.hh); stamped from the recording
     *  thread's context when left 0, so recorder entries join the
     *  trace store and the NDJSON event log on one ID. */
    std::uint64_t trace_id = 0;
};

/** Bounded, thread-safe ring of the most recent FlightRecords. */
class FlightRecorder
{
  public:
    explicit FlightRecorder(std::size_t capacity);

    std::size_t capacity() const { return slots_.size(); }

    /** Records ever written (>= capacity() once wrapped). */
    std::int64_t recorded() const;

    /** Microseconds since this recorder was constructed. */
    std::int64_t nowUs() const;

    /**
     * Retain one record, overwriting the oldest once full. seq is
     * assigned here; a zero ts_us is stamped with nowUs().
     */
    void record(FlightRecord r);

    /** Convenience: record a span-like entry. */
    void recordSpan(const std::string &name, std::int64_t dur_us,
                    std::string detail = "");

    /** Retained records, oldest first (sequence ascending). */
    std::vector<FlightRecord> snapshot() const;

    /**
     * JSON document for /tracez and the post-mortem dump:
     * {"capacity":..,"recorded":..,"dropped":..,"records":[...]}.
     */
    std::string renderJson() const;

    /** Drop everything retained (sequence numbering continues). */
    void clear();

  private:
    const std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mu_;
    std::vector<FlightRecord> slots_; ///< slot i holds seq % capacity
    std::int64_t next_seq_ = 0;       ///< guarded by mu_
};

} // namespace obs
} // namespace gpupm

#endif // GPUPM_OBS_FLIGHT_RECORDER_HH
