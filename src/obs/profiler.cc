#include "profiler.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <unordered_map>

#include <cxxabi.h>
#include <dlfcn.h>
#include <sys/syscall.h>
#include <sys/time.h>
#include <ucontext.h>
#include <unistd.h>

namespace gpupm
{
namespace obs
{

namespace
{

/**
 * Per-thread span-context stack. The SIGPROF handler interrupts the
 * thread that owns it and reads it in place, so no cross-thread
 * synchronization is needed — only signal fences, so the compiler
 * cannot reorder the frame-byte writes past the depth publication.
 * `depth` may exceed kProfilerMaxSpanDepth (overflow pushes are
 * counted but not stored); readers clamp.
 */
struct SpanCtxFrame
{
    char cat[16];
    char name[kProfilerLeafNameBytes];
};

struct SpanCtx
{
    volatile sig_atomic_t depth = 0;
    SpanCtxFrame frames[kProfilerMaxSpanDepth];
};

thread_local SpanCtx g_span_ctx;

/** Bounded copy into a fixed char array, always NUL-terminated. */
template <std::size_t N>
void
copyBounded(char (&dst)[N], const char *src)
{
    std::size_t i = 0;
    for (; src != nullptr && src[i] != '\0' && i + 1 < N; ++i)
        dst[i] = src[i];
    dst[i] = '\0';
}

std::uint64_t
currentTid()
{
    return static_cast<std::uint64_t>(::syscall(SYS_gettid));
}

/** tid -> label registry (written outside the handler path only). */
std::mutex &
labelMutex()
{
    static std::mutex mu;
    return mu;
}

std::map<std::uint64_t, std::string> &
labelMap()
{
    static std::map<std::uint64_t, std::string> labels;
    return labels;
}

/** Resolve one PC to a (demangled) symbol, "0x..." as fallback. */
std::string
symbolize(void *pc)
{
    Dl_info info{};
    if (dladdr(pc, &info) != 0 && info.dli_sname != nullptr) {
        int status = 0;
        char *dem = abi::__cxa_demangle(info.dli_sname, nullptr,
                                        nullptr, &status);
        if (status == 0 && dem != nullptr) {
            std::string out(dem);
            std::free(dem);
            return out;
        }
        return info.dli_sname;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "0x%zx",
                  reinterpret_cast<std::size_t>(pc));
    return buf;
}

/** Folded-format frame sanitization: ';' is the separator. */
std::string
foldSanitize(std::string s)
{
    for (char &c : s)
        if (c == ';' || c == '\n' || c == '\r')
            c = ':';
    return s;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
formatPct(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", v);
    return buf;
}

} // namespace

std::atomic<bool> Profiler::context_enabled_{false};

void
profilerPushSpan(const char *cat, const char *name)
{
    SpanCtx &ctx = g_span_ctx;
    const int d = ctx.depth;
    if (d >= 0 && d < static_cast<int>(kProfilerMaxSpanDepth)) {
        copyBounded(ctx.frames[d].cat, cat);
        copyBounded(ctx.frames[d].name, name);
    }
    // Publish the frame before the depth: a SIGPROF landing between
    // the two sees the old depth and a fully-written stack.
    std::atomic_signal_fence(std::memory_order_seq_cst);
    ctx.depth = d + 1;
}

void
profilerPopSpan()
{
    SpanCtx &ctx = g_span_ctx;
    if (ctx.depth > 0)
        ctx.depth = ctx.depth - 1;
}

Profiler &
Profiler::global()
{
    static Profiler profiler;
    return profiler;
}

void
Profiler::onSigprof(int /*sig*/, void * /*info*/, void *ucontext)
{
    // Async-signal-safe: no allocation, no locks, no library calls
    // beyond the raw gettid syscall; errno is saved and restored.
    const int saved_errno = errno;
    Profiler &p = global();
    if (p.running_.load(std::memory_order_acquire)) {
        const std::uint64_t slot =
                p.next_slot_.fetch_add(1, std::memory_order_relaxed);
        if (slot >= p.ring_.size()) {
            p.dropped_.fetch_add(1, std::memory_order_relaxed);
        } else {
            RawCpuSample &s = p.ring_[slot];
            s.tid = currentTid();

            // The handler runs on the thread it interrupted, so the
            // thread-local span context is coherent by construction.
            const SpanCtx &ctx = g_span_ctx;
            int d = ctx.depth;
            if (d > static_cast<int>(kProfilerMaxSpanDepth))
                d = static_cast<int>(kProfilerMaxSpanDepth);
            if (d > 0) {
                copyBounded(s.category, ctx.frames[d - 1].cat);
                copyBounded(s.leaf, ctx.frames[d - 1].name);
            } else {
                s.category[0] = '\0';
                s.leaf[0] = '\0';
            }

            // Frame-pointer walk from the *interrupted* context (the
            // ucontext PC/FP), so the handler's own frames are never
            // captured. Each candidate fp is vetted before the
            // dereference: aligned, strictly increasing, and within a
            // stack-sized window above a handler local — the handler
            // runs on the interrupted thread's stack, so anything in
            // that window is mapped and the loads cannot fault.
            std::uintptr_t pc = 0, fp = 0;
            auto *uc = static_cast<ucontext_t *>(ucontext);
#if defined(__x86_64__)
            pc = static_cast<std::uintptr_t>(
                    uc->uc_mcontext.gregs[REG_RIP]);
            fp = static_cast<std::uintptr_t>(
                    uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
            pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
            fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
#else
            (void)uc;
#endif
            char stack_anchor = 0;
            const std::uintptr_t stack_lo =
                    reinterpret_cast<std::uintptr_t>(&stack_anchor);
            const std::uintptr_t stack_hi =
                    stack_lo + (8u << 20); // 8 MiB default stack
            std::uint32_t n = 0;
            if (pc != 0)
                s.pcs[n++] = reinterpret_cast<void *>(pc);
            while (n < kProfilerMaxFrames && fp != 0) {
                if (fp < stack_lo ||
                    fp + 2 * sizeof(void *) > stack_hi)
                    break;
                if ((fp & (sizeof(void *) - 1)) != 0)
                    break;
                const std::uintptr_t *frame =
                        reinterpret_cast<const std::uintptr_t *>(fp);
                const std::uintptr_t next_fp = frame[0];
                const std::uintptr_t ret = frame[1];
                if (ret == 0)
                    break;
                // Return addresses point one past the call; step back
                // so the PC symbolizes to the calling function.
                s.pcs[n++] = reinterpret_cast<void *>(ret - 1);
                if (next_fp <= fp)
                    break;
                fp = next_fp;
            }
            s.depth = n;
            // Release-RMW chain: collect()'s acquire load of
            // completed_ makes every finished slot visible.
            p.completed_.fetch_add(1, std::memory_order_release);
        }
    }
    errno = saved_errno;
}

bool
Profiler::start(const ProfilerOptions &opts, std::string *err)
{
    static std::mutex start_mu;
    std::lock_guard<std::mutex> lock(start_mu);
    if (running_.load(std::memory_order_acquire)) {
        if (err != nullptr)
            *err = "profiler already running";
        return false;
    }

    opts_ = opts;
    if (opts_.hz < 1)
        opts_.hz = 1;
    if (opts_.hz > 10000)
        opts_.hz = 10000;
    if (opts_.max_samples < 64)
        opts_.max_samples = 64;
    ring_.assign(opts_.max_samples, RawCpuSample{});
    next_slot_.store(0, std::memory_order_relaxed);
    completed_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);

    const int signo = opts_.wall ? SIGALRM : SIGPROF;
    const int which = opts_.wall ? ITIMER_REAL : ITIMER_PROF;
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_flags = SA_SIGINFO | SA_RESTART;
    sa.sa_sigaction = [](int sig, siginfo_t *info, void *uc) {
        onSigprof(sig, info, uc);
    };
    sigemptyset(&sa.sa_mask);
    if (sigaction(signo, &sa, nullptr) != 0) {
        if (err != nullptr)
            *err = std::string("sigaction(profiler signal): ") +
                   std::strerror(errno);
        return false;
    }

    // Publish the ring before arming the timer (handler acquires).
    running_.store(true, std::memory_order_release);
    context_enabled_.store(true, std::memory_order_relaxed);

    struct itimerval timer;
    std::memset(&timer, 0, sizeof(timer));
    const long period_us = 1000000L / opts_.hz;
    timer.it_interval.tv_sec = period_us / 1000000L;
    timer.it_interval.tv_usec = period_us % 1000000L;
    timer.it_value = timer.it_interval;
    if (setitimer(which, &timer, nullptr) != 0) {
        running_.store(false, std::memory_order_release);
        context_enabled_.store(false, std::memory_order_relaxed);
        if (err != nullptr)
            *err = std::string("setitimer(profiler timer): ") +
                   std::strerror(errno);
        return false;
    }
    return true;
}

void
Profiler::stop()
{
    static std::mutex stop_mu;
    std::lock_guard<std::mutex> lock(stop_mu);
    if (!running_.load(std::memory_order_acquire))
        return;

    struct itimerval timer;
    std::memset(&timer, 0, sizeof(timer));
    setitimer(opts_.wall ? ITIMER_REAL : ITIMER_PROF, &timer,
              nullptr);
    // The no-op handler stays installed: a SIGPROF already queued when
    // the timer was disarmed must not hit the default disposition
    // (which terminates the process). running_=false makes it inert.
    context_enabled_.store(false, std::memory_order_relaxed);
    running_.store(false, std::memory_order_release);

    // Quiesce: wait (bounded) for in-flight handlers on other threads
    // to finish their claimed slots, so collect() sees a full ring.
    const std::uint64_t claimed = std::min<std::uint64_t>(
            next_slot_.load(std::memory_order_relaxed), ring_.size());
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t done =
                completed_.load(std::memory_order_acquire);
        if (done >= claimed)
            break;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
}

long
Profiler::sampleCount() const
{
    return static_cast<long>(
            completed_.load(std::memory_order_acquire));
}

CpuProfile
Profiler::collect() const
{
    CpuProfile out;
    out.hz = opts_.hz;
    out.wall = opts_.wall;
    out.dropped = static_cast<long>(
            dropped_.load(std::memory_order_relaxed));

    // Snapshot the completion count once; the acquire pairs with the
    // release-RMW chain in the handler, so the first `done` slots are
    // fully written. While running, later slots are simply not read.
    std::uint64_t done = completed_.load(std::memory_order_acquire);
    const std::uint64_t claimed = std::min<std::uint64_t>(
            next_slot_.load(std::memory_order_relaxed), ring_.size());
    if (done > claimed)
        done = claimed;
    out.samples = static_cast<long>(done);

    std::unordered_map<void *, std::string> symcache;
    auto symbol = [&symcache](void *pc) -> const std::string & {
        auto it = symcache.find(pc);
        if (it == symcache.end())
            it = symcache.emplace(pc, foldSanitize(symbolize(pc)))
                         .first;
        return it->second;
    };

    // Aggregate identical (category, leaf, stack) tuples.
    struct Agg
    {
        ProfileStack stack;
    };
    std::map<std::string, Agg> aggregated;
    // Iterate claimed slots, keeping only completed ones: completion
    // order can differ from claim order across threads, but with the
    // timer disarmed (stop() quiesces) done == claimed and every slot
    // below is complete.
    for (std::uint64_t i = 0; i < done; ++i) {
        const RawCpuSample &s = ring_[i];
        const std::string cat = s.category;
        out.category_samples[cat] += 1;
        out.thread_samples[s.tid] += 1;

        std::string key = cat;
        key += '\0';
        key.append(s.leaf);
        key += '\0';
        key.append(reinterpret_cast<const char *>(s.pcs),
                   s.depth * sizeof(void *));
        auto it = aggregated.find(key);
        if (it == aggregated.end()) {
            Agg a;
            a.stack.category = cat;
            if (s.leaf[0] != '\0')
                a.stack.frames.push_back(foldSanitize(s.leaf));
            // Raw PCs are leaf-first; folded wants outermost first.
            for (std::uint32_t f = s.depth; f > 0; --f)
                a.stack.frames.push_back(symbol(s.pcs[f - 1]));
            it = aggregated.emplace(std::move(key), std::move(a))
                         .first;
        }
        it->second.stack.samples += 1;
    }

    out.stacks.reserve(aggregated.size());
    for (auto &kv : aggregated)
        out.stacks.push_back(std::move(kv.second.stack));
    std::sort(out.stacks.begin(), out.stacks.end(),
              [](const ProfileStack &a, const ProfileStack &b) {
                  if (a.samples != b.samples)
                      return a.samples > b.samples;
                  return a.category < b.category;
              });

    {
        std::lock_guard<std::mutex> lock(labelMutex());
        for (const auto &kv : out.thread_samples) {
            auto it = labelMap().find(kv.first);
            if (it != labelMap().end())
                out.thread_labels[kv.first] = it->second;
        }
    }
    return out;
}

void
Profiler::setThreadLabel(const std::string &label)
{
    std::lock_guard<std::mutex> lock(labelMutex());
    labelMap()[currentTid()] = label;
}

double
CpuProfile::attributedPct() const
{
    if (samples <= 0)
        return 0.0;
    long tagged = 0;
    for (const auto &kv : category_samples)
        if (!kv.first.empty())
            tagged += kv.second;
    return 100.0 * static_cast<double>(tagged) /
           static_cast<double>(samples);
}

double
CpuProfile::categorySharePct(const std::string &cat) const
{
    if (samples <= 0)
        return 0.0;
    const auto it = category_samples.find(cat);
    if (it == category_samples.end())
        return 0.0;
    return 100.0 * static_cast<double>(it->second) /
           static_cast<double>(samples);
}

std::string
CpuProfile::renderFolded() const
{
    std::ostringstream os;
    for (const ProfileStack &st : stacks) {
        os << (st.category.empty() ? "untagged" : st.category.c_str());
        for (const std::string &f : st.frames)
            os << ';' << f;
        os << ' ' << st.samples << '\n';
    }
    return os.str();
}

std::string
CpuProfile::renderJson(std::size_t top_n) const
{
    // Self-time per leaf symbol (innermost captured frame).
    std::map<std::string, long> self;
    for (const ProfileStack &st : stacks) {
        const std::string &leaf = st.frames.empty()
                                          ? st.category
                                          : st.frames.back();
        self[leaf] += st.samples;
    }
    std::vector<std::pair<std::string, long>> top(self.begin(),
                                                  self.end());
    std::sort(top.begin(), top.end(),
              [](const auto &a, const auto &b) {
                  if (a.second != b.second)
                      return a.second > b.second;
                  return a.first < b.first;
              });
    if (top.size() > top_n)
        top.resize(top_n);

    std::ostringstream os;
    os << "{\"hz\":" << hz << ",\"mode\":\""
       << (wall ? "wall" : "cpu") << "\",\"samples\":" << samples
       << ",\"dropped\":" << dropped << ",\"attributed_pct\":"
       << formatPct(attributedPct()) << ",\"categories\":{";
    bool first = true;
    for (const auto &kv : category_samples) {
        if (!first)
            os << ',';
        first = false;
        const std::string name =
                kv.first.empty() ? "untagged" : kv.first;
        os << '"' << jsonEscape(name) << "\":{\"samples\":"
           << kv.second << ",\"share_pct\":"
           << formatPct(categorySharePct(kv.first)) << '}';
    }
    os << "},\"threads\":[";
    first = true;
    for (const auto &kv : thread_samples) {
        if (!first)
            os << ',';
        first = false;
        os << "{\"tid\":" << kv.first << ",\"samples\":" << kv.second;
        const auto it = thread_labels.find(kv.first);
        if (it != thread_labels.end())
            os << ",\"label\":\"" << jsonEscape(it->second) << '"';
        os << '}';
    }
    os << "],\"top\":[";
    first = true;
    for (const auto &kv : top) {
        if (!first)
            os << ',';
        first = false;
        const double pct =
                samples > 0 ? 100.0 * static_cast<double>(kv.second) /
                                      static_cast<double>(samples)
                            : 0.0;
        os << "{\"symbol\":\"" << jsonEscape(kv.first)
           << "\",\"self_samples\":" << kv.second
           << ",\"self_pct\":" << formatPct(pct) << '}';
    }
    os << "]}";
    return os.str();
}

bool
CpuProfile::writeFolded(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << renderFolded();
    return static_cast<bool>(out);
}

} // namespace obs
} // namespace gpupm
