/**
 * @file
 * Prediction residuals: one sample per (benchmark, V-F configuration)
 * comparing measured against predicted power, with the per-component
 * dynamic-power decomposition (Eq. 5-7 terms) and optional baseline
 * predictions riding along. The scoreboard (scoreboard.hh) aggregates
 * them into the accuracy views behind Table III and Figs. 7-8.
 */

#ifndef GPUPM_OBS_RESIDUALS_HH
#define GPUPM_OBS_RESIDUALS_HH

#include <string>
#include <utility>
#include <vector>

#include "gpu/components.hh"
#include "gpu/device.hh"

namespace gpupm
{
namespace obs
{

/** One audited (application, configuration) cell. */
struct ResidualSample
{
    std::string app;            ///< validation application name
    gpu::FreqConfig cfg{};      ///< requested clocks, MHz
    double measured_w = 0.0;    ///< median measured average power
    double predicted_w = 0.0;   ///< model's total prediction
    double constant_w = 0.0;    ///< static + idle terms (both domains)
    /** Per-component dynamic contribution, W (Eq. 6-7 terms). */
    gpu::ComponentArray component_w{};
    /** Baseline predictions at this cell: (model name, watts). */
    std::vector<std::pair<std::string, double>> baseline_w;

    /** |pred - meas| / meas * 100; 0 when the measurement is zero. */
    double absErrPct() const;

    /** Signed (pred - meas) / meas * 100; 0 when measured is zero. */
    double errPct() const;
};

/** Header of the per-sample CSV (`gpupm audit --csv`). */
std::string residualCsvHeader();

/** One CSV row matching residualCsvHeader(). */
std::string residualCsvRow(const ResidualSample &s);

} // namespace obs
} // namespace gpupm

#endif // GPUPM_OBS_RESIDUALS_HH
