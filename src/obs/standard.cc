#include "standard.hh"

namespace gpupm
{
namespace obs
{

namespace
{
Registry &
reg()
{
    return Registry::global();
}
} // namespace

Counter &
estimatorFitsTotal()
{
    return reg().counter("gpupm_estimator_fits_total",
                         "Completed Sec. III-D fits");
}

Counter &
estimatorFitFailuresTotal()
{
    return reg().counter("gpupm_estimator_fit_failures_total",
                         "Fits that returned a typed FitError");
}

Counter &
estimatorIterationsTotal()
{
    return reg().counter("gpupm_estimator_iterations_total",
                         "Outer ALS iterations across all fits");
}

Gauge &
estimatorLastIterations()
{
    return reg().gauge("gpupm_estimator_last_iterations",
                       "Outer iterations of the most recent fit");
}

Gauge &
estimatorLastRmseW()
{
    return reg().gauge("gpupm_estimator_last_rmse_watts",
                       "Final fit RMSE of the most recent fit, W");
}

Gauge &
estimatorLastCondition()
{
    return reg().gauge(
            "gpupm_estimator_last_condition",
            "Design-matrix condition estimate of the most recent fit");
}

Histogram &
estimatorIterationsPerFit()
{
    return reg().histogram("gpupm_estimator_iterations_per_fit",
                           "Outer iterations needed per fit",
                           iterationBuckets());
}

Counter &
resilientAttemptsTotal()
{
    return reg().counter("gpupm_resilient_attempts_total",
                         "Backend calls issued (incl. retries)");
}

Counter &
resilientRetriesTotal()
{
    return reg().counter("gpupm_resilient_retries_total",
                         "Attempts beyond each call's first");
}

Counter &
resilientTimeoutsTotal()
{
    return reg().counter("gpupm_resilient_timeouts_total",
                         "Attempts abandoned at the deadline");
}

Counter &
resilientCallFailuresTotal()
{
    return reg().counter("gpupm_resilient_call_failures_total",
                         "Calls that exhausted their retry budget");
}

Counter &
resilientOutliersRejectedTotal()
{
    return reg().counter("gpupm_resilient_outliers_rejected_total",
                         "Finite power samples rejected by MAD");
}

Counter &
resilientCorruptSamplesTotal()
{
    return reg().counter("gpupm_resilient_corrupt_samples_total",
                         "NaN / non-finite power samples discarded");
}

Counter &
resilientQuarantinedCallsTotal()
{
    return reg().counter("gpupm_resilient_quarantined_calls_total",
                         "Calls refused against quarantined configs");
}

Counter &
resilientQuarantinedConfigsTotal()
{
    return reg().counter("gpupm_resilient_quarantined_configs_total",
                         "Configurations placed in quarantine");
}

Counter &
resilientBackoffSecondsTotal()
{
    return reg().counter("gpupm_resilient_backoff_seconds_total",
                         "Virtual seconds spent backing off");
}

Counter &
campaignRunsTotal()
{
    return reg().counter("gpupm_campaign_runs_total",
                         "Training-campaign invocations");
}

Counter &
campaignCellsDoneTotal()
{
    return reg().counter("gpupm_campaign_cells_done_total",
                         "Measurement cells completed");
}

Counter &
campaignCellsFailedTotal()
{
    return reg().counter("gpupm_campaign_cells_failed_total",
                         "Cells unrecoverable after the full policy");
}

Counter &
campaignCellsResumedTotal()
{
    return reg().counter("gpupm_campaign_cells_resumed_total",
                         "Cells restored from a checkpoint");
}

Counter &
campaignFaultsInjectedTotal()
{
    return reg().counter("gpupm_campaign_faults_injected_total",
                         "Faults injected during campaigns");
}

Counter &
ioLoadsTotal()
{
    return reg().counter("gpupm_io_loads_total",
                         "Artifact loads that succeeded");
}

Counter &
ioLoadFailuresTotal()
{
    return reg().counter("gpupm_io_load_failures_total",
                         "Artifact loads that returned a typed error");
}

Counter &
ioSavesTotal()
{
    return reg().counter("gpupm_io_saves_total",
                         "Artifact saves that succeeded");
}

Counter &
ioSaveFailuresTotal()
{
    return reg().counter("gpupm_io_save_failures_total",
                         "Artifact saves that failed");
}

Counter &
simKernelExecutionsTotal()
{
    return reg().counter("gpupm_sim_kernel_executions_total",
                         "Simulated kernel executions");
}

Histogram &
simKernelTimeSeconds()
{
    return reg().histogram("gpupm_sim_kernel_time_seconds",
                           "Simulated kernel execution time, seconds",
                           secondsBuckets());
}

Counter &
accuracyAuditsTotal()
{
    return reg().counter("gpupm_accuracy_audits_total",
                         "Prediction audits (gpupm audit runs)");
}

Counter &
accuracySamplesTotal()
{
    return reg().counter("gpupm_accuracy_samples_total",
                         "Residual samples collected across audits");
}

Gauge &
accuracyLastMaePct()
{
    return reg().gauge("gpupm_accuracy_last_mae_percent",
                       "Overall MAE of the most recent audit, %");
}

Gauge &
accuracyLastRmseW()
{
    return reg().gauge("gpupm_accuracy_last_rmse_watts",
                       "Overall RMSE of the most recent audit, W");
}

Gauge &
accuracyLastMaxErrPct()
{
    return reg().gauge("gpupm_accuracy_last_max_error_percent",
                       "Largest absolute error of the most recent "
                       "audit, %");
}

Histogram &
accuracyAbsErrPct()
{
    return reg().histogram("gpupm_accuracy_abs_error_percent",
                           "Per-sample absolute prediction error, %",
                           errorPctBuckets());
}

void
registerStandardMetrics()
{
    estimatorFitsTotal();
    estimatorFitFailuresTotal();
    estimatorIterationsTotal();
    estimatorLastIterations();
    estimatorLastRmseW();
    estimatorLastCondition();
    estimatorIterationsPerFit();
    resilientAttemptsTotal();
    resilientRetriesTotal();
    resilientTimeoutsTotal();
    resilientCallFailuresTotal();
    resilientOutliersRejectedTotal();
    resilientCorruptSamplesTotal();
    resilientQuarantinedCallsTotal();
    resilientQuarantinedConfigsTotal();
    resilientBackoffSecondsTotal();
    campaignRunsTotal();
    campaignCellsDoneTotal();
    campaignCellsFailedTotal();
    campaignCellsResumedTotal();
    campaignFaultsInjectedTotal();
    ioLoadsTotal();
    ioLoadFailuresTotal();
    ioSavesTotal();
    ioSaveFailuresTotal();
    simKernelExecutionsTotal();
    simKernelTimeSeconds();
    accuracyAuditsTotal();
    accuracySamplesTotal();
    accuracyLastMaePct();
    accuracyLastRmseW();
    accuracyLastMaxErrPct();
    accuracyAbsErrPct();
}

} // namespace obs
} // namespace gpupm
