#include "standard.hh"

#include <chrono>

#include "common/provenance.hh"

namespace gpupm
{
namespace obs
{

namespace
{
Registry &
reg()
{
    return Registry::global();
}

/** Static-init capture; close enough to process start for uptime. */
const std::chrono::steady_clock::time_point g_process_start =
        std::chrono::steady_clock::now();
} // namespace

Counter &
estimatorFitsTotal()
{
    return reg().counter("gpupm_estimator_fits_total",
                         "Completed Sec. III-D fits");
}

Counter &
estimatorFitFailuresTotal()
{
    return reg().counter("gpupm_estimator_fit_failures_total",
                         "Fits that returned a typed FitError");
}

Counter &
estimatorIterationsTotal()
{
    return reg().counter("gpupm_estimator_iterations_total",
                         "Outer ALS iterations across all fits");
}

Gauge &
estimatorLastIterations()
{
    return reg().gauge("gpupm_estimator_last_iterations",
                       "Outer iterations of the most recent fit");
}

Gauge &
estimatorLastRmseW()
{
    return reg().gauge("gpupm_estimator_last_rmse_watts",
                       "Final fit RMSE of the most recent fit, W");
}

Gauge &
estimatorLastCondition()
{
    return reg().gauge(
            "gpupm_estimator_last_condition",
            "Design-matrix condition estimate of the most recent fit");
}

Histogram &
estimatorIterationsPerFit()
{
    return reg().histogram("gpupm_estimator_iterations_per_fit",
                           "Outer iterations needed per fit",
                           iterationBuckets());
}

Counter &
resilientAttemptsTotal()
{
    return reg().counter("gpupm_resilient_attempts_total",
                         "Backend calls issued (incl. retries)");
}

Counter &
resilientRetriesTotal()
{
    return reg().counter("gpupm_resilient_retries_total",
                         "Attempts beyond each call's first");
}

Counter &
resilientTimeoutsTotal()
{
    return reg().counter("gpupm_resilient_timeouts_total",
                         "Attempts abandoned at the deadline");
}

Counter &
resilientCallFailuresTotal()
{
    return reg().counter("gpupm_resilient_call_failures_total",
                         "Calls that exhausted their retry budget");
}

Counter &
resilientOutliersRejectedTotal()
{
    return reg().counter("gpupm_resilient_outliers_rejected_total",
                         "Finite power samples rejected by MAD");
}

Counter &
resilientCorruptSamplesTotal()
{
    return reg().counter("gpupm_resilient_corrupt_samples_total",
                         "NaN / non-finite power samples discarded");
}

Counter &
resilientQuarantinedCallsTotal()
{
    return reg().counter("gpupm_resilient_quarantined_calls_total",
                         "Calls refused against quarantined configs");
}

Counter &
resilientQuarantinedConfigsTotal()
{
    return reg().counter("gpupm_resilient_quarantined_configs_total",
                         "Configurations placed in quarantine");
}

Counter &
resilientBackoffSecondsTotal()
{
    return reg().counter("gpupm_resilient_backoff_seconds_total",
                         "Virtual seconds spent backing off");
}

Counter &
campaignRunsTotal()
{
    return reg().counter("gpupm_campaign_runs_total",
                         "Training-campaign invocations");
}

Counter &
campaignCellsDoneTotal()
{
    return reg().counter("gpupm_campaign_cells_done_total",
                         "Measurement cells completed");
}

Counter &
campaignCellsFailedTotal()
{
    return reg().counter("gpupm_campaign_cells_failed_total",
                         "Cells unrecoverable after the full policy");
}

Counter &
campaignCellsResumedTotal()
{
    return reg().counter("gpupm_campaign_cells_resumed_total",
                         "Cells restored from a checkpoint");
}

Counter &
campaignFaultsInjectedTotal()
{
    return reg().counter("gpupm_campaign_faults_injected_total",
                         "Faults injected during campaigns");
}

Counter &
ioLoadsTotal()
{
    return reg().counter("gpupm_io_loads_total",
                         "Artifact loads that succeeded");
}

Counter &
ioLoadFailuresTotal()
{
    return reg().counter("gpupm_io_load_failures_total",
                         "Artifact loads that returned a typed error");
}

Counter &
ioSavesTotal()
{
    return reg().counter("gpupm_io_saves_total",
                         "Artifact saves that succeeded");
}

Counter &
ioSaveFailuresTotal()
{
    return reg().counter("gpupm_io_save_failures_total",
                         "Artifact saves that failed");
}

Counter &
simKernelExecutionsTotal()
{
    return reg().counter("gpupm_sim_kernel_executions_total",
                         "Simulated kernel executions");
}

Histogram &
simKernelTimeSeconds()
{
    return reg().histogram("gpupm_sim_kernel_time_seconds",
                           "Simulated kernel execution time, seconds",
                           secondsBuckets());
}

Counter &
accuracyAuditsTotal()
{
    return reg().counter("gpupm_accuracy_audits_total",
                         "Prediction audits (gpupm audit runs)");
}

Counter &
accuracySamplesTotal()
{
    return reg().counter("gpupm_accuracy_samples_total",
                         "Residual samples collected across audits");
}

Gauge &
accuracyLastMaePct()
{
    return reg().gauge("gpupm_accuracy_last_mae_percent",
                       "Overall MAE of the most recent audit, %");
}

Gauge &
accuracyLastRmseW()
{
    return reg().gauge("gpupm_accuracy_last_rmse_watts",
                       "Overall RMSE of the most recent audit, W");
}

Gauge &
accuracyLastMaxErrPct()
{
    return reg().gauge("gpupm_accuracy_last_max_error_percent",
                       "Largest absolute error of the most recent "
                       "audit, %");
}

Histogram &
accuracyAbsErrPct()
{
    return reg().histogram("gpupm_accuracy_abs_error_percent",
                           "Per-sample absolute prediction error, %",
                           errorPctBuckets());
}

Gauge &
buildInfo()
{
    const auto p = common::collectProvenance();
    const auto esc = Registry::labelEscape;
    Gauge &g = reg().gauge(
            "gpupm_build_info",
            "version=\"" + esc(p.version) + "\",build_type=\"" +
                    esc(p.build_type) + "\",git_sha=\"" +
                    esc(p.git_sha) + "\",compiler=\"" +
                    esc(p.compiler) + "\",device=\"" + esc(p.device) +
                    "\"",
            "Build provenance (constant 1; identity in labels)");
    g.set(1.0);
    return g;
}

Gauge &
processUptimeSeconds()
{
    return reg().gauge("gpupm_process_uptime_seconds",
                       "Seconds since process start");
}

void
touchProcessMetrics()
{
    const auto now = std::chrono::steady_clock::now();
    processUptimeSeconds().set(
            std::chrono::duration<double>(now - g_process_start)
                    .count());
}

Counter &
httpRequestsTotal(const std::string &path)
{
    return reg().counter(
            "gpupm_http_requests_total",
            "path=\"" + Registry::labelEscape(path) + "\"",
            "HTTP requests served, by endpoint");
}

Histogram &
httpRequestSeconds(const std::string &path)
{
    return reg().histogram(
            "gpupm_http_request_seconds",
            "path=\"" + Registry::labelEscape(path) + "\"",
            "HTTP request handling latency, by endpoint",
            secondsBuckets());
}

Counter &
httpRequestsRejectedTotal()
{
    return reg().counter("gpupm_http_requests_rejected_total",
                         "Requests refused before dispatch (parse "
                         "error, unknown path, bad method, oversize)");
}

Counter &
monitorTicksTotal()
{
    return reg().counter("gpupm_monitor_ticks_total",
                         "Sampling-loop ticks completed");
}

Counter &
monitorProbeFailuresTotal()
{
    return reg().counter("gpupm_monitor_probe_failures_total",
                         "Sampling-loop probes that failed");
}

Gauge &
monitorLastMeasuredW()
{
    return reg().gauge("gpupm_monitor_last_measured_watts",
                       "Most recent measured average power, W");
}

Gauge &
monitorLastPredictedW()
{
    return reg().gauge("gpupm_monitor_last_predicted_watts",
                       "Most recent model prediction, W");
}

Gauge &
monitorSampleAgeSeconds()
{
    return reg().gauge("gpupm_monitor_sample_age_seconds",
                       "Seconds since the last completed sample");
}

Histogram &
monitorSampleSeconds()
{
    return reg().histogram("gpupm_monitor_sample_seconds",
                           "Wall-clock cost of one probe, seconds",
                           secondsBuckets());
}

Gauge &
accuracyRollingMaePct()
{
    return reg().gauge(
            "gpupm_accuracy_rolling_mae_pct",
            "MAE over the sampler's rolling residual window, percent");
}

Gauge &
tsdbSeriesCount()
{
    return reg().gauge("gpupm_tsdb_series",
                       "Live series in the embedded time-series store");
}

Gauge &
tsdbMemoryBytes()
{
    return reg().gauge("gpupm_tsdb_memory_bytes",
                       "Accounted tsdb memory footprint, bytes");
}

Counter &
tsdbPointsTotal()
{
    return reg().counter("gpupm_tsdb_points_total",
                         "Points appended to the time-series store");
}

Counter &
tsdbEvictionsTotal()
{
    return reg().counter(
            "gpupm_tsdb_evictions_total",
            "Series evicted at the cardinality cap (LRU by write)");
}

Gauge &
alertsFiring(const std::string &rule)
{
    return reg().gauge(
            "gpupm_alerts_firing",
            "rule=\"" + Registry::labelEscape(rule) + "\"",
            "1 while the rule is firing, 0 otherwise");
}

Counter &
alertTransitionsTotal()
{
    return reg().counter("gpupm_alert_transitions_total",
                         "Alert state transitions across all rules");
}

Gauge &
traceStoreTraces()
{
    return reg().gauge("gpupm_trace_store_traces",
                       "Assembled traces resident in the trace store");
}

Gauge &
traceStoreMemoryBytes()
{
    return reg().gauge("gpupm_trace_store_memory_bytes",
                       "Accounted trace-store memory footprint, bytes");
}

Gauge &
traceStoreOfferedTotal()
{
    return reg().gauge("gpupm_trace_store_offered_total",
                       "Completed traces offered to the store");
}

Gauge &
traceStoreEvictedTotal()
{
    return reg().gauge(
            "gpupm_trace_store_evicted_total",
            "Traces evicted by tail sampling (boring-first)");
}

Counter &
profilerRunsTotal()
{
    return reg().counter("gpupm_profiler_runs_total",
                         "Completed CPU-profiling runs");
}

Counter &
profilerSamplesTotal()
{
    return reg().counter("gpupm_profiler_samples_total",
                         "CPU samples retained across profiling runs");
}

Counter &
profilerSamplesDroppedTotal()
{
    return reg().counter("gpupm_profiler_samples_dropped_total",
                         "CPU samples lost to ring overflow");
}

Gauge &
profilerLastAttributedPct()
{
    return reg().gauge(
            "gpupm_profiler_last_attributed_percent",
            "Span-attributed share of the most recent profile, %");
}

Counter &
fleetCampaignsTotal()
{
    return reg().counter("gpupm_fleet_campaigns_total",
                         "Fleet campaigns run");
}

Gauge &
fleetDevicesTotal()
{
    return reg().gauge("gpupm_fleet_devices",
                       "Device instances in the last fleet campaign");
}

Gauge &
fleetDevicesFailed()
{
    return reg().gauge(
            "gpupm_fleet_devices_failed",
            "Devices without a usable model in the last campaign");
}

Counter &
fleetShardRetriesTotal()
{
    return reg().counter("gpupm_fleet_shard_retries_total",
                         "Shard attempts beyond each shard's first");
}

Counter &
fleetShardsQuarantinedTotal()
{
    return reg().counter(
            "gpupm_fleet_shards_quarantined_total",
            "Shards abandoned after the retry budget");
}

Counter &
fleetChaosKillsTotal()
{
    return reg().counter("gpupm_fleet_chaos_kills_total",
                         "Chaos-injected shard kills");
}

Counter &
fleetChaosStallsTotal()
{
    return reg().counter("gpupm_fleet_chaos_stalls_total",
                         "Chaos-injected shard stalls");
}

Counter &
fleetWatchdogFiresTotal()
{
    return reg().counter(
            "gpupm_fleet_watchdog_fires_total",
            "Shard attempts cancelled at the watchdog deadline");
}

Counter &
fleetPoolStealsTotal()
{
    return reg().counter("gpupm_fleet_pool_steals_total",
                         "Tasks stolen across worker queues");
}

Gauge &
fleetOverallMaePct()
{
    return reg().gauge(
            "gpupm_fleet_mae_pct",
            "Merged validation MAE over healthy devices, percent");
}

Gauge &
fleetArchMaePct(const std::string &arch)
{
    return reg().gauge(
            "gpupm_fleet_arch_mae_pct",
            "arch=\"" + Registry::labelEscape(arch) + "\"",
            "Per-architecture validation MAE, percent");
}

Gauge &
fleetArchDevicesOk(const std::string &arch)
{
    return reg().gauge(
            "gpupm_fleet_arch_devices_ok",
            "arch=\"" + Registry::labelEscape(arch) + "\"",
            "Per-architecture healthy-device count");
}

void
registerStandardMetrics()
{
    estimatorFitsTotal();
    estimatorFitFailuresTotal();
    estimatorIterationsTotal();
    estimatorLastIterations();
    estimatorLastRmseW();
    estimatorLastCondition();
    estimatorIterationsPerFit();
    resilientAttemptsTotal();
    resilientRetriesTotal();
    resilientTimeoutsTotal();
    resilientCallFailuresTotal();
    resilientOutliersRejectedTotal();
    resilientCorruptSamplesTotal();
    resilientQuarantinedCallsTotal();
    resilientQuarantinedConfigsTotal();
    resilientBackoffSecondsTotal();
    campaignRunsTotal();
    campaignCellsDoneTotal();
    campaignCellsFailedTotal();
    campaignCellsResumedTotal();
    campaignFaultsInjectedTotal();
    ioLoadsTotal();
    ioLoadFailuresTotal();
    ioSavesTotal();
    ioSaveFailuresTotal();
    simKernelExecutionsTotal();
    simKernelTimeSeconds();
    accuracyAuditsTotal();
    accuracySamplesTotal();
    accuracyLastMaePct();
    accuracyLastRmseW();
    accuracyLastMaxErrPct();
    accuracyAbsErrPct();
    buildInfo();
    processUptimeSeconds();
    httpRequestsRejectedTotal();
    profilerRunsTotal();
    profilerSamplesTotal();
    profilerSamplesDroppedTotal();
    profilerLastAttributedPct();
    fleetCampaignsTotal();
    fleetDevicesTotal();
    fleetDevicesFailed();
    fleetShardRetriesTotal();
    fleetShardsQuarantinedTotal();
    fleetChaosKillsTotal();
    fleetChaosStallsTotal();
    fleetWatchdogFiresTotal();
    fleetPoolStealsTotal();
    fleetOverallMaePct();
    monitorTicksTotal();
    monitorProbeFailuresTotal();
    monitorLastMeasuredW();
    monitorLastPredictedW();
    monitorSampleAgeSeconds();
    monitorSampleSeconds();
    accuracyRollingMaePct();
    tsdbSeriesCount();
    tsdbMemoryBytes();
    tsdbPointsTotal();
    tsdbEvictionsTotal();
    alertTransitionsTotal();
    traceStoreTraces();
    traceStoreMemoryBytes();
    traceStoreOfferedTotal();
    traceStoreEvictedTotal();
}

} // namespace obs
} // namespace gpupm
