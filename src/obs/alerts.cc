#include "alerts.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/numio.hh"
#include "obs/standard.hh"
#include "obs/trace.hh"

namespace gpupm
{
namespace obs
{

namespace
{

constexpr std::size_t kHistoryCap = 16;

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumberOrNull(double v)
{
    if (!std::isfinite(v))
        return "null";
    return numio::formatDouble(v);
}

const char *
kindName(AlertKind k)
{
    switch (k) {
      case AlertKind::Threshold: return "threshold";
      case AlertKind::Rate: return "rate";
      case AlertKind::Drift: return "drift";
    }
    return "threshold";
}

} // namespace

const char *
alertStateName(AlertState s)
{
    switch (s) {
      case AlertState::Inactive: return "inactive";
      case AlertState::Pending: return "pending";
      case AlertState::Firing: return "firing";
      case AlertState::Resolved: return "resolved";
    }
    return "inactive";
}

std::optional<double>
fig7EnvelopePct(const std::string &device)
{
    // The paper's Fig. 7 mean-absolute-error headline per device.
    if (device == "titanxp")
        return 6.6;
    if (device == "titanx")
        return 5.5;
    if (device == "k40c")
        return 12.2;
    return std::nullopt;
}

AlertRule
makeDriftRule(const std::string &device, double tolerance_pp,
              std::int64_t window_us, std::int64_t for_us,
              std::int64_t cooldown_us,
              std::optional<double> envelope_override)
{
    AlertRule r;
    r.name = "accuracy_drift_" + device;
    r.series = "gpupm_accuracy_rolling_mae_pct";
    r.kind = AlertKind::Drift;
    r.op = AlertOp::Gt;
    r.envelope_pct =
            envelope_override.value_or(fig7EnvelopePct(device).value_or(
                    10.0)); // conservative default for unknown devices
    r.tolerance_pp = tolerance_pp;
    r.threshold = r.envelope_pct + r.tolerance_pp;
    r.window_us = window_us;
    r.for_us = for_us;
    r.cooldown_us = cooldown_us;
    // A rolling MAE over one or two samples is noise, not drift: the
    // very first tick after startup can sit far above the envelope
    // and would flash the rule pending before any history exists.
    r.min_count = 3;
    return r;
}

AlertEngine::AlertEngine(const Tsdb &tsdb, std::vector<AlertRule> rules,
                         FlightRecorder *recorder)
    : tsdb_(tsdb), recorder_(recorder)
{
    rules_.reserve(rules.size());
    for (AlertRule &r : rules) {
        RuleState rs;
        rs.rule = std::move(r);
        rs.last_value = std::numeric_limits<double>::quiet_NaN();
        rules_.push_back(std::move(rs));
        // Pre-register the firing gauge so /metrics shows the rule
        // (at 0) from the first scrape, not the first transition.
        alertsFiring(rules_.back().rule.name).set(0.0);
    }
}

void
AlertEngine::setEventSink(std::function<void(const std::string &)> sink)
{
    std::lock_guard<std::mutex> lock(mu_);
    sink_ = std::move(sink);
}

bool
AlertEngine::evaluateValue(const AlertRule &rule, std::int64_t now_us,
                           double &out) const
{
    TsQuery q;
    q.series = rule.series;
    q.start_us = now_us - rule.window_us;
    q.end_us = now_us;

    if (rule.kind == AlertKind::Rate) {
        // Quarter-window buckets: the rate is taken between the first
        // and last non-empty bucket, so a stale stretch inside the
        // window does not zero the slope.
        q.step_us = std::max<std::int64_t>(rule.window_us / 4, 1);
        const TsQueryResult res = tsdb_.query(q);
        if (!res.ok || res.points.size() < 2)
            return false;
        std::int64_t n = 0;
        for (const TsBucket &b : res.points)
            n += b.count;
        if (n < rule.min_count)
            return false;
        const TsBucket &a = res.points.front();
        const TsBucket &b = res.points.back();
        const double dt_s =
                static_cast<double>(b.start_us - a.start_us) * 1e-6;
        if (dt_s <= 0.0)
            return false;
        out = (b.avg() - a.avg()) / dt_s;
        return true;
    }

    // Threshold / drift: one bucket spanning the whole window, the
    // rule compares its mean.
    q.step_us = std::max<std::int64_t>(rule.window_us, 1) + 1;
    const TsQueryResult res = tsdb_.query(q);
    if (!res.ok || res.points.empty())
        return false;
    TsBucket all;
    all.start_us = q.start_us;
    for (const TsBucket &b : res.points)
        all.merge(b);
    if (all.count < rule.min_count)
        return false;
    out = all.avg();
    return true;
}

void
AlertEngine::transition(RuleState &rs, AlertState to,
                        std::int64_t now_us)
{
    rs.state = to;
    rs.since_us = now_us;
    AlertTransition tr;
    tr.t_us = now_us;
    tr.state = to;
    tr.value = rs.last_value;
    rs.history.push_back(tr);
    while (rs.history.size() > kHistoryCap)
        rs.history.pop_front();

    alertTransitionsTotal().inc();
    alertsFiring(rs.rule.name)
            .set(to == AlertState::Firing ? 1.0 : 0.0);

    const std::string detail =
            rs.rule.name + " -> " + alertStateName(to) + " (value " +
            jsonNumberOrNull(rs.last_value) + ", threshold " +
            numio::formatDouble(rs.rule.threshold) + ")";
    if (recorder_) {
        FlightRecord rec;
        rec.kind = "alert";
        rec.name = "alert." + std::string(alertStateName(to));
        rec.detail = detail;
        recorder_->record(std::move(rec));
    }
    if (sink_) {
        std::ostringstream os;
        os << "{\"event\":\"alert\",\"rule\":\""
           << jsonEscape(rs.rule.name) << "\",\"state\":\""
           << alertStateName(to) << "\",\"t_us\":" << now_us
           << ",\"value\":" << jsonNumberOrNull(rs.last_value)
           << ",\"threshold\":"
           << numio::formatDouble(rs.rule.threshold);
        // evaluate() runs on the tick path inside the tick's trace
        // context, so the transition line joins that tick's trace.
        if (const auto ctx = currentTraceContext(); ctx.trace_id)
            os << ",\"trace_id\":\"" << traceIdHex(ctx.trace_id)
               << "\"";
        os << "}";
        sink_(os.str());
    }
}

void
AlertEngine::evaluate(std::int64_t now_us)
{
    std::lock_guard<std::mutex> lock(mu_);
    last_evaluated_us_ = now_us;
    for (RuleState &rs : rules_) {
        double value = 0.0;
        const bool have = evaluateValue(rs.rule, now_us, value);
        if (!have) {
            // Empty window: a pending alert loses its evidence and
            // returns to inactive; a firing alert is frozen — missing
            // data must not quietly resolve a real problem.
            if (rs.state == AlertState::Pending) {
                rs.cond_true_since_us = -1;
                transition(rs, AlertState::Inactive, now_us);
            }
            rs.cond_false_since_us = -1;
            continue;
        }

        rs.evaluated = true;
        rs.last_value = value;
        const bool cond = rs.rule.op == AlertOp::Gt
                                  ? value > rs.rule.threshold
                                  : value < rs.rule.threshold;
        if (cond) {
            rs.cond_false_since_us = -1;
            if (rs.cond_true_since_us < 0)
                rs.cond_true_since_us = now_us;
            if (rs.state == AlertState::Inactive ||
                rs.state == AlertState::Resolved) {
                transition(rs, AlertState::Pending, now_us);
            }
            if (rs.state == AlertState::Pending &&
                now_us - rs.cond_true_since_us >= rs.rule.for_us) {
                transition(rs, AlertState::Firing, now_us);
            }
        } else {
            rs.cond_true_since_us = -1;
            if (rs.state == AlertState::Pending) {
                transition(rs, AlertState::Inactive, now_us);
            } else if (rs.state == AlertState::Firing) {
                if (rs.cond_false_since_us < 0)
                    rs.cond_false_since_us = now_us;
                if (now_us - rs.cond_false_since_us >=
                    rs.rule.cooldown_us) {
                    transition(rs, AlertState::Resolved, now_us);
                    rs.cond_false_since_us = -1;
                }
            }
        }
    }
}

std::vector<AlertStatus>
AlertEngine::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<AlertStatus> out;
    out.reserve(rules_.size());
    for (const RuleState &rs : rules_) {
        AlertStatus st;
        st.rule = rs.rule;
        st.state = rs.state;
        st.since_us = rs.since_us;
        st.last_value = rs.last_value;
        st.evaluated = rs.evaluated;
        st.history = rs.history;
        out.push_back(std::move(st));
    }
    return out;
}

std::vector<std::string>
AlertEngine::firingRuleNames() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    for (const RuleState &rs : rules_)
        if (rs.state == AlertState::Firing)
            out.push_back(rs.rule.name);
    return out;
}

std::int64_t
AlertEngine::lastEvaluatedUs() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return last_evaluated_us_;
}

std::string
AlertEngine::renderJson(std::int64_t now_us) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os << "{\"now_us\":" << now_us << ",\"firing\":[";
    bool first = true;
    for (const RuleState &rs : rules_) {
        if (rs.state != AlertState::Firing)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\"" << jsonEscape(rs.rule.name) << "\"";
    }
    os << "],\"rules\":[";
    first = true;
    for (const RuleState &rs : rules_) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"name\":\"" << jsonEscape(rs.rule.name)
           << "\",\"kind\":\"" << kindName(rs.rule.kind)
           << "\",\"series\":\"" << jsonEscape(rs.rule.series)
           << "\",\"op\":\""
           << (rs.rule.op == AlertOp::Gt ? ">" : "<")
           << "\",\"threshold\":"
           << numio::formatDouble(rs.rule.threshold);
        if (rs.rule.kind == AlertKind::Drift) {
            os << ",\"envelope_pct\":"
               << numio::formatDouble(rs.rule.envelope_pct)
               << ",\"tolerance_pp\":"
               << numio::formatDouble(rs.rule.tolerance_pp);
        }
        os << ",\"window_us\":" << rs.rule.window_us
           << ",\"for_us\":" << rs.rule.for_us
           << ",\"cooldown_us\":" << rs.rule.cooldown_us
           << ",\"state\":\"" << alertStateName(rs.state)
           << "\",\"since_us\":" << rs.since_us
           << ",\"last_value\":" << jsonNumberOrNull(rs.last_value)
           << ",\"evaluated\":" << (rs.evaluated ? "true" : "false")
           << ",\"history\":[";
        bool hfirst = true;
        for (const AlertTransition &tr : rs.history) {
            if (!hfirst)
                os << ",";
            hfirst = false;
            os << "{\"t_us\":" << tr.t_us << ",\"state\":\""
               << alertStateName(tr.state)
               << "\",\"value\":" << jsonNumberOrNull(tr.value) << "}";
        }
        os << "]}";
    }
    os << "]}";
    return os.str();
}

std::string
AlertEngine::renderText(std::int64_t now_us) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::ostringstream os;
    os << "alerts @ " << now_us << " us\n";
    if (rules_.empty()) {
        os << "(no rules configured)\n";
        return os.str();
    }
    for (const RuleState &rs : rules_) {
        os << "  " << rs.rule.name << " [" << kindName(rs.rule.kind)
           << "] " << rs.rule.series
           << (rs.rule.op == AlertOp::Gt ? " > " : " < ")
           << numio::formatDouble(rs.rule.threshold) << ": "
           << alertStateName(rs.state);
        if (rs.evaluated && std::isfinite(rs.last_value))
            os << " (last " << numio::formatDouble(rs.last_value)
               << ")";
        else
            os << " (no data)";
        os << "\n";
    }
    return os.str();
}

} // namespace obs
} // namespace gpupm
