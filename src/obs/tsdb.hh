/**
 * @file
 * Embedded time-series store for the live-telemetry daemon.
 *
 * A dependency-free, in-process store behind `gpupm monitor`: every
 * sampler tick snapshots the metrics registry (Registry::
 * collectSamples()) and appends one point per series. Series are keyed
 * by the rendered Prometheus sample name (`family{labels}`), so a
 * scrape of /metrics and a range query of /api/query name the same
 * signal identically.
 *
 * Memory is bounded by construction, not by hope:
 *  - each series holds a fixed-capacity raw ring plus two capped
 *    downsampling tiers (10s and 1m buckets of min/max/sum/count);
 *    old data falls off the back, never reallocates;
 *  - total series cardinality is capped (`max_series`); when a stripe
 *    is full the series with the oldest last write is evicted to make
 *    room (LRU-by-write), and the eviction is counted.
 *
 * Writes are lock-striped: the series map is split across
 * `stripes` independently locked shards keyed by a hash of the series
 * name, so the sampler thread and HTTP query threads contend only per
 * stripe. Queries pick the coarsest tier whose resolution fits the
 * requested step (step >= 1m -> tier 2, >= 10s -> tier 1, else raw)
 * and aggregate into step-aligned buckets. DESIGN.md §14 documents
 * the layout and the retention math.
 */

#ifndef GPUPM_OBS_TSDB_HH
#define GPUPM_OBS_TSDB_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "metrics.hh"

namespace gpupm
{
namespace obs
{

/** Sizing knobs; the defaults hold a series under ~8 KiB. */
struct TsdbOptions
{
    std::size_t raw_capacity = 240;  ///< raw points per series
    std::size_t tier_capacity = 120; ///< buckets per downsample tier
    std::int64_t tier1_res_us = 10'000'000; ///< 10 s buckets
    std::int64_t tier2_res_us = 60'000'000; ///< 1 m buckets
    std::size_t max_series = 512; ///< cardinality cap (all stripes)
    std::size_t stripes = 8;      ///< lock stripes for writes
};

/** One raw observation. */
struct TsPoint
{
    std::int64_t t_us = 0;
    double value = 0.0;
};

/** One downsampled bucket (min/max/sum/count over its interval). */
struct TsBucket
{
    std::int64_t start_us = 0;
    double min = 0.0;
    double max = 0.0;
    double sum = 0.0;
    std::int64_t count = 0;

    void add(double v);
    void merge(const TsBucket &other);
    double avg() const { return count > 0 ? sum / count : 0.0; }
};

/** Range-query request: [start_us, end_us] at `step_us` resolution. */
struct TsQuery
{
    std::string series;
    std::int64_t start_us = 0;
    std::int64_t end_us = 0;
    std::int64_t step_us = 1'000'000;
};

/** Query result: step-aligned aggregate buckets, empty ones omitted. */
struct TsQueryResult
{
    bool ok = false;
    std::string error; ///< set when !ok (unknown series, bad range)
    int tier = 0;      ///< 0 raw, 1 = tier1, 2 = tier2
    std::int64_t start_us = 0;
    std::int64_t end_us = 0;
    std::int64_t step_us = 0;
    std::vector<TsBucket> points;

    /** Render as a JSON object (stable key order, NaN-free). */
    std::string toJson(const std::string &series) const;
};

/**
 * The store. All methods are thread-safe; append paths take exactly
 * one stripe lock.
 */
class Tsdb
{
  public:
    explicit Tsdb(TsdbOptions opts = {});

    Tsdb(const Tsdb &) = delete;
    Tsdb &operator=(const Tsdb &) = delete;

    /**
     * Append one point. Non-finite values are dropped (and counted);
     * out-of-order timestamps within a series are accepted into the
     * raw ring but only merge into the downsample tiers while their
     * bucket is still the newest.
     */
    void append(const std::string &series, std::int64_t t_us,
                double value);

    /**
     * Snapshot `reg` and append every sample at `t_us` — the sampler
     * hook. Also refreshes the tsdb self-metrics (series count, memory
     * bytes) so the store reports on itself.
     */
    void recordRegistry(const Registry &reg, std::int64_t t_us);

    /** Range query; picks the tier from `q.step_us` (see file doc). */
    TsQueryResult query(const TsQuery &q) const;

    /** Sorted names of all live series. */
    std::vector<std::string> seriesNames() const;

    std::size_t seriesCount() const;

    /**
     * Fixed per-series accounting: ring + tier capacities at their
     * configured sizes plus the name. An upper bound that is the same
     * number the cardinality cap bounds — what the soak test gates.
     */
    std::size_t memoryBytes() const;

    /** Largest timestamp ever appended (INT64_MIN when empty). */
    std::int64_t latestTimestamp() const;

    std::uint64_t pointsAppended() const
    {
        return points_appended_.load(std::memory_order_relaxed);
    }

    std::uint64_t evictions() const
    {
        return evictions_.load(std::memory_order_relaxed);
    }

    std::uint64_t droppedNotFinite() const
    {
        return dropped_not_finite_.load(std::memory_order_relaxed);
    }

    const TsdbOptions &options() const { return opts_; }

  private:
    struct Series
    {
        std::string name;
        std::vector<TsPoint> raw; ///< preallocated ring
        std::size_t raw_head = 0; ///< index of oldest element
        std::size_t raw_size = 0;
        std::deque<TsBucket> tier1;
        std::deque<TsBucket> tier2;
        std::int64_t last_write_us = 0; ///< for LRU eviction
    };

    struct Stripe
    {
        mutable std::mutex mu;
        std::vector<Series> series; ///< linear scan; few per stripe
    };

    Stripe &stripeFor(const std::string &name);
    const Stripe &stripeFor(const std::string &name) const;
    static std::size_t hashName(const std::string &name);

    void appendLocked(Series &s, std::int64_t t_us, double value);
    static void bucketInto(std::deque<TsBucket> &tier,
                           std::int64_t res_us, std::size_t cap,
                           std::int64_t t_us, double value);

    TsdbOptions opts_;
    std::size_t per_stripe_cap_ = 1;
    std::vector<Stripe> stripes_;
    std::atomic<std::uint64_t> points_appended_{0};
    std::atomic<std::uint64_t> evictions_{0};
    std::atomic<std::uint64_t> dropped_not_finite_{0};
    std::atomic<std::int64_t> latest_us_;
};

} // namespace obs
} // namespace gpupm

#endif // GPUPM_OBS_TSDB_HH
