#include "tsdb.hh"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <functional>
#include <limits>
#include <sstream>

#include "common/numio.hh"
#include "obs/standard.hh"

namespace gpupm
{
namespace obs
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

void
TsBucket::add(double v)
{
    if (count == 0) {
        min = max = sum = v;
        count = 1;
        return;
    }
    min = std::min(min, v);
    max = std::max(max, v);
    sum += v;
    ++count;
}

void
TsBucket::merge(const TsBucket &other)
{
    if (other.count == 0)
        return;
    if (count == 0) {
        const std::int64_t keep = start_us;
        *this = other;
        start_us = keep;
        return;
    }
    min = std::min(min, other.min);
    max = std::max(max, other.max);
    sum += other.sum;
    count += other.count;
}

std::string
TsQueryResult::toJson(const std::string &series) const
{
    std::ostringstream os;
    os << "{\"series\":\"" << jsonEscape(series) << "\",\"ok\":"
       << (ok ? "true" : "false");
    if (!ok) {
        os << ",\"error\":\"" << jsonEscape(error) << "\"}";
        return os.str();
    }
    os << ",\"tier\":" << tier << ",\"start_us\":" << start_us
       << ",\"end_us\":" << end_us << ",\"step_us\":" << step_us
       << ",\"points\":[";
    bool first = true;
    for (const TsBucket &b : points) {
        if (!first)
            os << ",";
        first = false;
        os << "{\"t_us\":" << b.start_us << ",\"min\":"
           << numio::formatDouble(b.min) << ",\"max\":"
           << numio::formatDouble(b.max) << ",\"avg\":"
           << numio::formatDouble(b.avg()) << ",\"count\":" << b.count
           << "}";
    }
    os << "]}";
    return os.str();
}

Tsdb::Tsdb(TsdbOptions opts)
    : opts_(opts),
      latest_us_(std::numeric_limits<std::int64_t>::min())
{
    if (opts_.stripes == 0)
        opts_.stripes = 1;
    if (opts_.raw_capacity == 0)
        opts_.raw_capacity = 1;
    if (opts_.tier_capacity == 0)
        opts_.tier_capacity = 1;
    if (opts_.max_series == 0)
        opts_.max_series = 1;
    // Never let lock striping raise the effective cardinality cap: a
    // cap below the stripe count collapses to one stripe so the
    // per-stripe cap can stay exact.
    if (opts_.max_series < opts_.stripes)
        opts_.stripes = opts_.max_series;
    per_stripe_cap_ = opts_.max_series / opts_.stripes;
    if (per_stripe_cap_ == 0)
        per_stripe_cap_ = 1;
    stripes_ = std::vector<Stripe>(opts_.stripes);
}

std::size_t
Tsdb::hashName(const std::string &name)
{
    // FNV-1a: deterministic across processes (std::hash is not
    // guaranteed to be), so stripe assignment — and therefore
    // eviction order under cardinality pressure — is reproducible.
    std::uint64_t h = 1469598103934665603ULL;
    for (unsigned char c : name) {
        h ^= c;
        h *= 1099511628211ULL;
    }
    return static_cast<std::size_t>(h);
}

Tsdb::Stripe &
Tsdb::stripeFor(const std::string &name)
{
    return stripes_[hashName(name) % stripes_.size()];
}

const Tsdb::Stripe &
Tsdb::stripeFor(const std::string &name) const
{
    return stripes_[hashName(name) % stripes_.size()];
}

void
Tsdb::bucketInto(std::deque<TsBucket> &tier, std::int64_t res_us,
                 std::size_t cap, std::int64_t t_us, double value)
{
    const std::int64_t start =
            (t_us >= 0 ? t_us / res_us : (t_us - res_us + 1) / res_us) *
            res_us;
    if (!tier.empty() && tier.back().start_us == start) {
        tier.back().add(value);
        return;
    }
    if (!tier.empty() && start < tier.back().start_us)
        return; // late point: its bucket already sealed
    TsBucket b;
    b.start_us = start;
    b.add(value);
    tier.push_back(b);
    while (tier.size() > cap)
        tier.pop_front();
}

void
Tsdb::appendLocked(Series &s, std::int64_t t_us, double value)
{
    if (s.raw.size() < opts_.raw_capacity)
        s.raw.resize(opts_.raw_capacity);
    const std::size_t slot =
            (s.raw_head + s.raw_size) % opts_.raw_capacity;
    if (s.raw_size == opts_.raw_capacity) {
        s.raw[s.raw_head] = {t_us, value};
        s.raw_head = (s.raw_head + 1) % opts_.raw_capacity;
    } else {
        s.raw[slot] = {t_us, value};
        ++s.raw_size;
    }
    bucketInto(s.tier1, opts_.tier1_res_us, opts_.tier_capacity, t_us,
               value);
    bucketInto(s.tier2, opts_.tier2_res_us, opts_.tier_capacity, t_us,
               value);
    s.last_write_us = t_us;
}

void
Tsdb::append(const std::string &series, std::int64_t t_us,
             double value)
{
    if (!std::isfinite(value)) {
        dropped_not_finite_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    Stripe &st = stripeFor(series);
    {
        std::lock_guard<std::mutex> lock(st.mu);
        Series *found = nullptr;
        for (Series &s : st.series) {
            if (s.name == series) {
                found = &s;
                break;
            }
        }
        if (!found) {
            if (st.series.size() >= per_stripe_cap_) {
                // Evict the series written to least recently; ties
                // break towards the first in insertion order.
                auto victim = std::min_element(
                        st.series.begin(), st.series.end(),
                        [](const Series &a, const Series &b) {
                            return a.last_write_us < b.last_write_us;
                        });
                st.series.erase(victim);
                evictions_.fetch_add(1, std::memory_order_relaxed);
            }
            Series s;
            s.name = series;
            s.raw.resize(opts_.raw_capacity);
            st.series.push_back(std::move(s));
            found = &st.series.back();
        }
        appendLocked(*found, t_us, value);
    }
    points_appended_.fetch_add(1, std::memory_order_relaxed);
    std::int64_t prev = latest_us_.load(std::memory_order_relaxed);
    while (t_us > prev &&
           !latest_us_.compare_exchange_weak(prev, t_us,
                                             std::memory_order_relaxed))
        ;
}

void
Tsdb::recordRegistry(const Registry &reg, std::int64_t t_us)
{
    // Refresh self-metrics first so this snapshot already carries
    // them; the counts lag one tick behind the append below, which is
    // fine for trend series.
    tsdbSeriesCount().set(static_cast<double>(seriesCount()));
    tsdbMemoryBytes().set(static_cast<double>(memoryBytes()));
    for (const MetricSample &m : reg.collectSamples())
        append(m.name, t_us, m.value);
}

TsQueryResult
Tsdb::query(const TsQuery &q) const
{
    TsQueryResult res;
    res.start_us = q.start_us;
    res.end_us = q.end_us;
    res.step_us = q.step_us;
    if (q.step_us <= 0) {
        res.error = "step must be > 0";
        return res;
    }
    if (q.end_us < q.start_us) {
        res.error = "empty range (end < start)";
        return res;
    }
    // The result is built densely before empty buckets are stripped;
    // refuse queries whose bucket count dwarfs what the store could
    // even hold, so a hostile range/step pair cannot balloon memory.
    const std::int64_t span_buckets =
            (q.end_us - q.start_us) / q.step_us + 1;
    if (span_buckets > 100000) {
        res.error = "range/step yields too many buckets";
        return res;
    }

    const Stripe &st = stripeFor(q.series);
    std::lock_guard<std::mutex> lock(st.mu);
    const Series *found = nullptr;
    for (const Series &s : st.series) {
        if (s.name == q.series) {
            found = &s;
            break;
        }
    }
    if (!found) {
        res.error = "unknown series '" + q.series + "'";
        return res;
    }

    // Coarsest tier whose native resolution still fits the step: the
    // query then reads the fewest stored buckets that can answer it,
    // and windows larger than raw retention transparently fall back
    // onto the downsampled history.
    const std::deque<TsBucket> *tier = nullptr;
    if (q.step_us >= opts_.tier2_res_us) {
        tier = &found->tier2;
        res.tier = 2;
    } else if (q.step_us >= opts_.tier1_res_us) {
        tier = &found->tier1;
        res.tier = 1;
    } else {
        res.tier = 0;
    }

    auto outBucketFor = [&](std::int64_t t_us) -> TsBucket * {
        if (t_us < q.start_us || t_us > q.end_us)
            return nullptr;
        const std::size_t idx = static_cast<std::size_t>(
                (t_us - q.start_us) / q.step_us);
        const std::int64_t start =
                q.start_us +
                static_cast<std::int64_t>(idx) * q.step_us;
        while (res.points.size() <= idx) {
            TsBucket b;
            b.start_us =
                    q.start_us +
                    static_cast<std::int64_t>(res.points.size()) *
                            q.step_us;
            res.points.push_back(b);
        }
        TsBucket &b = res.points[idx];
        b.start_us = start;
        return &b;
    };

    if (res.tier == 0) {
        for (std::size_t i = 0; i < found->raw_size; ++i) {
            const TsPoint &p =
                    found->raw[(found->raw_head + i) %
                               opts_.raw_capacity];
            if (TsBucket *b = outBucketFor(p.t_us))
                b->add(p.value);
        }
    } else {
        for (const TsBucket &src : *tier) {
            if (TsBucket *b = outBucketFor(src.start_us))
                b->merge(src);
        }
    }

    // Dense allocation above, sparse result out: callers only see
    // buckets that actually hold data.
    res.points.erase(std::remove_if(res.points.begin(),
                                    res.points.end(),
                                    [](const TsBucket &b) {
                                        return b.count == 0;
                                    }),
                     res.points.end());
    res.ok = true;
    return res;
}

std::vector<std::string>
Tsdb::seriesNames() const
{
    std::vector<std::string> names;
    for (const Stripe &st : stripes_) {
        std::lock_guard<std::mutex> lock(st.mu);
        for (const Series &s : st.series)
            names.push_back(s.name);
    }
    std::sort(names.begin(), names.end());
    return names;
}

std::size_t
Tsdb::seriesCount() const
{
    std::size_t n = 0;
    for (const Stripe &st : stripes_) {
        std::lock_guard<std::mutex> lock(st.mu);
        n += st.series.size();
    }
    return n;
}

std::size_t
Tsdb::memoryBytes() const
{
    // Fixed accounting per live series: the preallocated raw ring,
    // both tiers at configured capacity (deques overshoot slightly;
    // we charge the cap, which is what the soak gate bounds), the
    // name, and the Series bookkeeping itself.
    const std::size_t per_series_fixed =
            opts_.raw_capacity * sizeof(TsPoint) +
            2 * opts_.tier_capacity * sizeof(TsBucket) +
            sizeof(Series);
    std::size_t total = sizeof(Tsdb) + stripes_.size() * sizeof(Stripe);
    for (const Stripe &st : stripes_) {
        std::lock_guard<std::mutex> lock(st.mu);
        for (const Series &s : st.series)
            total += per_series_fixed + s.name.capacity();
    }
    return total;
}

std::int64_t
Tsdb::latestTimestamp() const
{
    return latest_us_.load(std::memory_order_relaxed);
}

} // namespace obs
} // namespace gpupm
