/**
 * @file
 * Bounded in-memory store of completed traces with tail sampling.
 *
 * The Tracer (trace.hh) assembles each trace when its root span
 * completes and offers it here. The store keeps an exactly-accounted
 * memory footprint (tsdb-style: every string and span is counted)
 * under a configured byte bound and trace-count cap, and decides at
 * admission time which resident trace to evict — tail sampling:
 *
 *   1. "boring" traces first — no error span and not among the
 *      slowest `slow_per_cat` of their root category — oldest first;
 *   2. then protected-slow traces, fastest first;
 *   3. error/alert traces only as a last resort, oldest first.
 *
 * So 100% of error traces are retained for as long as they alone fit
 * the bound, plus a reservoir of the slowest traces per category —
 * the traces worth asking about after the fact. Query surfaces
 * (/api/traces, `gpupm traces`) filter by category, minimum
 * duration, error flag and trace ID.
 */

#ifndef GPUPM_OBS_TRACE_STORE_HH
#define GPUPM_OBS_TRACE_STORE_HH

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gpupm
{
namespace obs
{

/** One completed span inside a stored trace. */
struct StoredSpan
{
    std::string name;
    std::string cat;
    std::int64_t ts_us = 0;
    std::int64_t dur_us = 0;
    int tid = 0;
    std::uint64_t span_id = 0;
    std::uint64_t parent_span_id = 0; ///< 0 for the trace root
    bool error = false;
    std::vector<std::pair<std::string, std::string>> args;
};

/** A fully assembled trace (root + all recorded descendants). */
struct StoredTrace
{
    std::uint64_t trace_id = 0;
    std::string root_name;
    std::string root_cat;
    std::int64_t start_us = 0;
    std::int64_t dur_us = 0;
    bool error = false;  ///< any span marked error
    std::uint64_t seq = 0; ///< arrival order (stamped by the store)
    std::size_t bytes = 0; ///< exact accounted footprint
    /** Spans in completion order; the root is last. */
    std::vector<StoredSpan> spans;
};

struct TraceStoreOptions
{
    std::size_t max_bytes = 1u << 20; ///< hard memory bound
    std::size_t max_traces = 512;     ///< hard count bound
    std::size_t slow_per_cat = 8; ///< slowest-per-category reservoir
};

/** Filter for query()/renderJson(). Zero/empty fields match all. */
struct TraceQuery
{
    std::string category;       ///< match root category exactly
    std::int64_t min_dur_us = 0; ///< root duration at least this
    bool error_only = false;
    std::uint64_t trace_id = 0; ///< exact trace ID
    std::size_t limit = 50;     ///< newest-first result cap
};

/** Thread-safe bounded trace store; see the file comment. */
class TraceStore
{
  public:
    explicit TraceStore(TraceStoreOptions opts = TraceStoreOptions{});

    /** Admit one assembled trace, evicting per the tail policy. */
    void offer(StoredTrace trace);

    /** Matching traces, newest first, capped at q.limit. */
    std::vector<StoredTrace> query(const TraceQuery &q) const;

    /** The query result as a JSON document (IDs as hex strings). */
    std::string renderJson(const TraceQuery &q) const;

    const TraceStoreOptions &options() const { return opts_; }
    std::size_t memoryBytes() const;
    std::size_t memoryBoundBytes() const { return opts_.max_bytes; }
    std::size_t traceCount() const;
    long offeredTotal() const;
    long evictedTotal() const;
    long errorsOfferedTotal() const;
    long errorsEvictedTotal() const;

    void clear();

    /** Exact footprint accounting for one trace (strings included). */
    static std::size_t footprint(const StoredTrace &trace);

  private:
    void evictOneLocked();
    void publishLocked();

    TraceStoreOptions opts_;
    mutable std::mutex mu_;
    std::vector<StoredTrace> traces_; ///< seq-ascending arrival order
    std::size_t bytes_ = 0;
    std::uint64_t next_seq_ = 1;
    long offered_ = 0;
    long evicted_ = 0;
    long errors_offered_ = 0;
    long errors_evicted_ = 0;
};

} // namespace obs
} // namespace gpupm

#endif // GPUPM_OBS_TRACE_STORE_HH
