/**
 * @file
 * Span-based tracer with Chrome trace-event export.
 *
 * Instrumented code opens RAII spans (GPUPM_TRACE_SPAN) around units
 * of work; the global Tracer collects one complete event ("ph":"X")
 * per span and exports them as Chrome trace-event JSON, loadable in
 * chrome://tracing and Perfetto. The tracer is off by default: a
 * disabled SpanGuard reads one relaxed atomic in its constructor and
 * does nothing else, so instrumentation can stay in hot paths
 * permanently.
 *
 * Span taxonomy (the `cat` field; see DESIGN.md §9):
 *
 *   cli        one root span per gpupm subcommand
 *   campaign   training-campaign passes and per-benchmark work
 *   backend    resilient measurement calls (profile / power / idle)
 *   sim        simulated kernel executions
 *   estimator  Sec. III-D fit, per-iteration spans
 *   io         artifact load / save / validation
 */

#ifndef GPUPM_OBS_TRACE_HH
#define GPUPM_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace gpupm
{
namespace obs
{

/** One completed span, in the Chrome trace-event vocabulary. */
struct TraceEvent
{
    std::string name;
    std::string cat;
    std::int64_t ts_us = 0;  ///< start, microseconds since enable()
    std::int64_t dur_us = 0; ///< duration, microseconds
    int tid = 0;             ///< small per-process thread ordinal
    /** Optional key/value annotations ("args" in the JSON). */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * Process-global span sink. Thread-safe: spans may complete
 * concurrently from any thread; each is recorded under one lock.
 */
class Tracer
{
  public:
    static Tracer &global();

    /** Start collecting; resets the clock epoch and drops old spans. */
    void enable();

    /** Stop collecting (already-collected spans are kept). */
    void disable();

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Record one completed span. */
    void record(TraceEvent ev);

    /** Microseconds since the tracer's epoch (monotonic clock). */
    std::int64_t nowUs() const;

    /** Small ordinal of the calling thread (0 = first seen). */
    int threadOrdinal();

    /** Copy of everything collected so far. */
    std::vector<TraceEvent> snapshot() const;

    std::size_t eventCount() const;

    /** Drop all collected spans (the epoch is kept). */
    void clear();

    /** The collected spans as a Chrome trace-event JSON document. */
    std::string renderChromeTrace() const;

    /** Write renderChromeTrace() to a file; false on I/O failure. */
    bool writeChromeTrace(const std::string &path) const;

  private:
    Tracer();

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point epoch_;
    mutable std::mutex mu_;
    std::vector<TraceEvent> events_;
    std::map<std::thread::id, int> tids_;
};

/**
 * RAII span: captures the start time on construction, records one
 * complete event on destruction. When the tracer is disabled at
 * construction the guard is inert (its destructor does nothing), so
 * a span that straddles enable() is dropped rather than truncated.
 *
 * Independently of the tracer, the guard maintains the sampling
 * profiler's thread-local span context (profiler.hh) while a
 * profiling run is active, so CPU samples are attributed to the
 * innermost open span — `--profile-out` works with the tracer off
 * and vice versa. Each gate is one relaxed atomic load.
 */
class SpanGuard
{
  public:
    SpanGuard(const char *cat, std::string name);
    ~SpanGuard();

    SpanGuard(const SpanGuard &) = delete;
    SpanGuard &operator=(const SpanGuard &) = delete;

    /** Annotate the span ("args" in the exported JSON). */
    void arg(std::string key, std::string value);

    bool armed() const { return armed_; }

  private:
    bool armed_ = false;
    bool ctx_pushed_ = false; ///< profiler span context pushed
    std::int64_t start_us_ = 0;
    TraceEvent ev_;
};

// Two-level paste so __LINE__ expands before concatenation.
#define GPUPM_TRACE_CONCAT2(a, b) a##b
#define GPUPM_TRACE_CONCAT(a, b) GPUPM_TRACE_CONCAT2(a, b)

/** Anonymous scope span: GPUPM_TRACE_SPAN("io", "model.load"). */
#define GPUPM_TRACE_SPAN(cat, name) \
    ::gpupm::obs::SpanGuard GPUPM_TRACE_CONCAT(gpupm_span_, \
                                               __LINE__)(cat, name)

/** Named scope span, for attaching args: span.arg("k", "v"). */
#define GPUPM_TRACE_SPAN_NAMED(var, cat, name) \
    ::gpupm::obs::SpanGuard var(cat, name)

} // namespace obs
} // namespace gpupm

#endif // GPUPM_OBS_TRACE_HH
