/**
 * @file
 * Span-based tracer with request-correlated trace IDs and Chrome
 * trace-event export.
 *
 * Instrumented code opens RAII spans (GPUPM_TRACE_SPAN) around units
 * of work; the global Tracer collects one complete event ("ph":"X")
 * per span and exports them as Chrome trace-event JSON, loadable in
 * chrome://tracing and Perfetto. The tracer is off by default: a
 * disabled SpanGuard reads one relaxed atomic in its constructor and
 * does nothing else, so instrumentation can stay in hot paths
 * permanently.
 *
 * Correlation (DESIGN.md §15): every armed span carries a 64-bit
 * span ID minted from a seeded splitmix64 counter (deterministic
 * under seedIds(), no rand()). A span opened with no active context
 * becomes a trace root — its trace ID equals its span ID — and
 * installs itself as the thread-local context; children inherit the
 * trace ID and record their parent's span ID. The context crosses
 * thread boundaries explicitly via TraceContextScope (fleet pool
 * workers, watchdog fires) and is reset per sampler tick so each
 * tick's measure→predict→audit→tsdb→alert chain is one trace.
 * Completed traces assemble in the Tracer and are offered to an
 * optional bounded TraceStore (trace_store.hh) for tail sampling.
 *
 * Span taxonomy (the `cat` field; see DESIGN.md §9):
 *
 *   cli        one root span per gpupm subcommand
 *   campaign   training-campaign passes and per-benchmark work
 *   backend    resilient measurement calls (profile / power / idle)
 *   sim        simulated kernel executions
 *   estimator  Sec. III-D fit, per-iteration spans
 *   io         artifact load / save / validation
 *   monitor    sampler ticks and monitor endpoints
 *   fleet      fleet pool tasks, shards and watchdog fires
 */

#ifndef GPUPM_OBS_TRACE_HH
#define GPUPM_OBS_TRACE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

namespace gpupm
{
namespace obs
{

class TraceStore;

/** One completed span, in the Chrome trace-event vocabulary. */
struct TraceEvent
{
    std::string name;
    std::string cat;
    std::int64_t ts_us = 0;  ///< start, microseconds since enable()
    std::int64_t dur_us = 0; ///< duration, microseconds
    int tid = 0;             ///< small per-process thread ordinal
    std::uint64_t trace_id = 0; ///< nonzero for every armed span
    std::uint64_t span_id = 0;  ///< unique per span; == trace_id at root
    std::uint64_t parent_span_id = 0; ///< 0 for trace roots
    bool error = false; ///< markError(): trace is tail-kept
    /** Optional key/value annotations ("args" in the JSON). */
    std::vector<std::pair<std::string, std::string>> args;
};

/**
 * The propagated part of a span: which trace the current thread is
 * inside and which span is the would-be parent. An all-zero context
 * means "no active trace" — the next armed span becomes a root.
 */
struct TraceContext
{
    std::uint64_t trace_id = 0;
    std::uint64_t span_id = 0;
};

/** The calling thread's current context ({0,0} outside any span). */
TraceContext currentTraceContext();

/** 64-bit ID as the canonical fixed-width lowercase hex string. */
std::string traceIdHex(std::uint64_t id);

/**
 * RAII adoption of a trace context on the current thread: install
 * `ctx` (saving whatever was there), restore on destruction. Used to
 * hand a submitter's context to a fleet pool worker, attribute a
 * watchdog fire to the stalled shard's trace, and — by adopting an
 * empty context — force a fresh root per sampler tick.
 */
class TraceContextScope
{
  public:
    explicit TraceContextScope(TraceContext ctx);
    ~TraceContextScope();

    TraceContextScope(const TraceContextScope &) = delete;
    TraceContextScope &operator=(const TraceContextScope &) = delete;

  private:
    TraceContext saved_;
};

/**
 * Process-global span sink. Thread-safe: spans may complete
 * concurrently from any thread; each is recorded under one lock.
 */
class Tracer
{
  public:
    static Tracer &global();

    /** Start collecting; resets the clock epoch and drops old spans. */
    void enable();

    /** Stop collecting (already-collected spans are kept). */
    void disable();

    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Re-seed the deterministic span-ID counter. With the same seed
     * and the same (single-threaded) span order, a run mints the
     * same IDs — the `gpupm traces` replay leans on this.
     */
    void seedIds(std::uint64_t seed);

    /** Mint the next span ID (splitmix64, never 0). */
    std::uint64_t mintId();

    /**
     * Attach (or detach, with nullptr) a store that receives each
     * fully assembled trace when its root span completes. Pending
     * partial assemblies are dropped on re-attach.
     */
    void attachStore(TraceStore *store);

    /**
     * When false, record() feeds trace assembly (attachStore) only
     * and does not retain raw events — long-lived daemons keep the
     * tracer on without unbounded event growth. Default true.
     */
    void setRetainEvents(bool retain);

    /** Record one completed span. */
    void record(TraceEvent ev);

    /** Microseconds since the tracer's epoch (monotonic clock). */
    std::int64_t nowUs() const;

    /** Small ordinal of the calling thread (0 = first seen). */
    int threadOrdinal();

    /** Copy of everything collected so far. */
    std::vector<TraceEvent> snapshot() const;

    std::size_t eventCount() const;

    /** Drop all collected spans (the epoch is kept). */
    void clear();

    /** The collected spans as a Chrome trace-event JSON document. */
    std::string renderChromeTrace() const;

    /** Write renderChromeTrace() to a file; false on I/O failure. */
    bool writeChromeTrace(const std::string &path) const;

  private:
    Tracer();

    void assembleLocked(TraceEvent ev);

    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point epoch_;
    std::atomic<std::uint64_t> id_counter_{1};
    std::uint64_t id_seed_ = 0x677075706d; // "gpupm"
    mutable std::mutex mu_;
    std::vector<TraceEvent> events_;
    std::map<std::thread::id, int> tids_;
    bool retain_events_ = true;
    TraceStore *store_ = nullptr;
    /** Per-trace buckets of completed child spans awaiting the root. */
    std::map<std::uint64_t, std::vector<TraceEvent>> pending_;
};

/**
 * RAII span: captures the start time on construction, records one
 * complete event on destruction. When the tracer is disabled at
 * construction the guard is inert (its destructor does nothing), so
 * a span that straddles enable() is dropped rather than truncated.
 * An armed guard installs itself as the thread-local trace context
 * for its scope (see TraceContext above).
 *
 * Independently of the tracer, the guard maintains the sampling
 * profiler's thread-local span context (profiler.hh) while a
 * profiling run is active, so CPU samples are attributed to the
 * innermost open span — `--profile-out` works with the tracer off
 * and vice versa. Each gate is one relaxed atomic load.
 */
class SpanGuard
{
  public:
    SpanGuard(const char *cat, std::string name);
    ~SpanGuard();

    SpanGuard(const SpanGuard &) = delete;
    SpanGuard &operator=(const SpanGuard &) = delete;

    /** Annotate the span ("args" in the exported JSON). */
    void arg(std::string key, std::string value);

    /** Flag the span (and so its trace) as an error for tail-keep. */
    void markError();

    bool armed() const { return armed_; }
    std::uint64_t traceId() const { return ev_.trace_id; }
    std::uint64_t spanId() const { return ev_.span_id; }

  private:
    bool armed_ = false;
    bool ctx_pushed_ = false;   ///< profiler span context pushed
    bool ctx_installed_ = false; ///< thread-local trace ctx swapped
    std::int64_t start_us_ = 0;
    TraceContext saved_ctx_;
    TraceEvent ev_;
};

// Two-level paste so __LINE__ expands before concatenation.
#define GPUPM_TRACE_CONCAT2(a, b) a##b
#define GPUPM_TRACE_CONCAT(a, b) GPUPM_TRACE_CONCAT2(a, b)

/** Anonymous scope span: GPUPM_TRACE_SPAN("io", "model.load"). */
#define GPUPM_TRACE_SPAN(cat, name) \
    ::gpupm::obs::SpanGuard GPUPM_TRACE_CONCAT(gpupm_span_, \
                                               __LINE__)(cat, name)

/** Named scope span, for attaching args: span.arg("k", "v"). */
#define GPUPM_TRACE_SPAN_NAMED(var, cat, name) \
    ::gpupm::obs::SpanGuard var(cat, name)

} // namespace obs
} // namespace gpupm

#endif // GPUPM_OBS_TRACE_HH
