#include "trace_store.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/numio.hh"
#include "obs/standard.hh"
#include "obs/trace.hh"

namespace gpupm
{
namespace obs
{

namespace
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

TraceStore::TraceStore(TraceStoreOptions opts) : opts_(opts) {}

std::size_t
TraceStore::footprint(const StoredTrace &trace)
{
    std::size_t bytes = sizeof(StoredTrace);
    bytes += trace.root_name.size() + trace.root_cat.size();
    for (const auto &s : trace.spans) {
        bytes += sizeof(StoredSpan);
        bytes += s.name.size() + s.cat.size();
        for (const auto &kv : s.args)
            bytes += sizeof(kv) + kv.first.size() +
                     kv.second.size();
    }
    return bytes;
}

void
TraceStore::offer(StoredTrace trace)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++offered_;
    if (trace.error)
        ++errors_offered_;
    trace.bytes = footprint(trace);
    if (trace.bytes > opts_.max_bytes) {
        // A single trace larger than the whole bound can never be
        // resident; dropping it at the door keeps the bound exact.
        ++evicted_;
        if (trace.error)
            ++errors_evicted_;
        publishLocked();
        return;
    }
    trace.seq = next_seq_++;
    bytes_ += trace.bytes;
    traces_.push_back(std::move(trace));
    while (bytes_ > opts_.max_bytes ||
           traces_.size() > opts_.max_traces)
        evictOneLocked();
    publishLocked();
}

void
TraceStore::evictOneLocked()
{
    // Protected set: per root category, the slow_per_cat slowest
    // non-error traces. Recomputed per eviction — the store holds at
    // most max_traces entries, so this stays cheap.
    std::vector<std::size_t> order;
    order.reserve(traces_.size());
    for (std::size_t i = 0; i < traces_.size(); ++i)
        if (!traces_[i].error)
            order.push_back(i);
    std::sort(order.begin(), order.end(),
              [this](std::size_t a, std::size_t b) {
                  if (traces_[a].dur_us != traces_[b].dur_us)
                      return traces_[a].dur_us > traces_[b].dur_us;
                  return traces_[a].seq < traces_[b].seq;
              });
    std::vector<bool> protected_slow(traces_.size(), false);
    {
        std::vector<std::pair<std::string, std::size_t>> per_cat;
        for (const std::size_t i : order) {
            std::size_t taken = 0;
            for (auto &pc : per_cat)
                if (pc.first == traces_[i].root_cat) {
                    taken = ++pc.second;
                    break;
                }
            if (taken == 0) {
                per_cat.emplace_back(traces_[i].root_cat, 1);
                taken = 1;
            }
            if (taken <= opts_.slow_per_cat)
                protected_slow[i] = true;
        }
    }

    std::size_t victim = traces_.size();
    // 1. Oldest boring trace (non-error, not protected-slow).
    for (std::size_t i = 0; i < traces_.size(); ++i)
        if (!traces_[i].error && !protected_slow[i]) {
            victim = i;
            break;
        }
    // 2. Fastest protected-slow trace.
    if (victim == traces_.size() && !order.empty())
        victim = order.back();
    // 3. Last resort: the oldest error trace.
    if (victim == traces_.size())
        victim = 0;

    ++evicted_;
    if (traces_[victim].error)
        ++errors_evicted_;
    bytes_ -= traces_[victim].bytes;
    traces_.erase(traces_.begin() +
                  static_cast<std::ptrdiff_t>(victim));
}

void
TraceStore::publishLocked()
{
    traceStoreTraces().set(static_cast<double>(traces_.size()));
    traceStoreMemoryBytes().set(static_cast<double>(bytes_));
    traceStoreOfferedTotal().set(static_cast<double>(offered_));
    traceStoreEvictedTotal().set(static_cast<double>(evicted_));
}

std::vector<StoredTrace>
TraceStore::query(const TraceQuery &q) const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<StoredTrace> out;
    // Newest first: walk arrival order backwards.
    for (auto it = traces_.rbegin();
         it != traces_.rend() && out.size() < q.limit; ++it) {
        const StoredTrace &t = *it;
        if (!q.category.empty() && t.root_cat != q.category)
            continue;
        if (t.dur_us < q.min_dur_us)
            continue;
        if (q.error_only && !t.error)
            continue;
        if (q.trace_id && t.trace_id != q.trace_id)
            continue;
        out.push_back(t);
    }
    return out;
}

std::string
TraceStore::renderJson(const TraceQuery &q) const
{
    const auto matches = query(q);
    std::ostringstream os;
    os << "{\"count\":" << matches.size();
    {
        std::lock_guard<std::mutex> lock(mu_);
        os << ",\"stored\":" << traces_.size()
           << ",\"offered\":" << offered_
           << ",\"evicted\":" << evicted_
           << ",\"errors_offered\":" << errors_offered_
           << ",\"errors_evicted\":" << errors_evicted_
           << ",\"memory_bytes\":" << bytes_
           << ",\"memory_bound_bytes\":" << opts_.max_bytes;
    }
    os << ",\"traces\":[";
    for (std::size_t i = 0; i < matches.size(); ++i) {
        const StoredTrace &t = matches[i];
        if (i)
            os << ",";
        os << "\n{\"trace_id\":\"" << traceIdHex(t.trace_id)
           << "\",\"root\":\"" << jsonEscape(t.root_name)
           << "\",\"cat\":\"" << jsonEscape(t.root_cat)
           << "\",\"start_us\":" << numio::formatLong(t.start_us)
           << ",\"dur_us\":" << numio::formatLong(t.dur_us)
           << ",\"error\":" << (t.error ? "true" : "false")
           << ",\"spans\":[";
        for (std::size_t k = 0; k < t.spans.size(); ++k) {
            const StoredSpan &s = t.spans[k];
            if (k)
                os << ",";
            os << "{\"name\":\"" << jsonEscape(s.name)
               << "\",\"cat\":\"" << jsonEscape(s.cat)
               << "\",\"span_id\":\"" << traceIdHex(s.span_id)
               << "\"";
            if (s.parent_span_id)
                os << ",\"parent_span_id\":\""
                   << traceIdHex(s.parent_span_id) << "\"";
            os << ",\"ts_us\":" << numio::formatLong(s.ts_us)
               << ",\"dur_us\":" << numio::formatLong(s.dur_us)
               << ",\"tid\":" << s.tid
               << ",\"error\":" << (s.error ? "true" : "false");
            if (!s.args.empty()) {
                os << ",\"args\":{";
                for (std::size_t a = 0; a < s.args.size(); ++a) {
                    if (a)
                        os << ",";
                    os << "\"" << jsonEscape(s.args[a].first)
                       << "\":\"" << jsonEscape(s.args[a].second)
                       << "\"";
                }
                os << "}";
            }
            os << "}";
        }
        os << "]}";
    }
    os << "\n]}\n";
    return os.str();
}

std::size_t
TraceStore::memoryBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return bytes_;
}

std::size_t
TraceStore::traceCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return traces_.size();
}

long
TraceStore::offeredTotal() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return offered_;
}

long
TraceStore::evictedTotal() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return evicted_;
}

long
TraceStore::errorsOfferedTotal() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return errors_offered_;
}

long
TraceStore::errorsEvictedTotal() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return errors_evicted_;
}

void
TraceStore::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    traces_.clear();
    bytes_ = 0;
    publishLocked();
}

} // namespace obs
} // namespace gpupm
