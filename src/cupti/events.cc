#include "events.hh"

#include "common/logging.hh"

namespace gpupm
{
namespace cupti
{

std::string_view
metricName(Metric m)
{
    switch (m) {
      case Metric::ActiveCycles: return "ACycles";
      case Metric::L2ReadQueries: return "L2RdQueries";
      case Metric::L2WriteQueries: return "L2WrQueries";
      case Metric::SharedLoadTrans: return "SharedLdTrans";
      case Metric::SharedStoreTrans: return "SharedStTrans";
      case Metric::DramReadSectors: return "DramRdSectors";
      case Metric::DramWriteSectors: return "DramWrSectors";
      case Metric::WarpsSpInt: return "WarpsSP/INT";
      case Metric::WarpsDp: return "WarpsDP";
      case Metric::WarpsSf: return "WarpsSF";
      case Metric::InstInt: return "InstINT";
      case Metric::InstSp: return "InstSP";
      default: return "?";
    }
}

namespace
{

/** Build a W-event descriptor: numeric id = prefix * 1000 + n. */
EventDesc
wEvent(std::uint64_t prefix, unsigned n)
{
    return {prefix * 1000 + n, "W" + std::to_string(n)};
}

/** Named (disclosed) event with a synthetic id in a separate space. */
EventDesc
named(std::uint64_t prefix, unsigned slot, std::string name)
{
    return {prefix * 1000 + 900 + slot, std::move(name)};
}

} // namespace

EventTable
EventTable::makeTitanXp()
{
    const std::uint64_t p = 352321;
    std::map<Metric, std::vector<EventDesc>> t;
    t[Metric::ActiveCycles] = {named(p, 0, "active_cycles")};
    t[Metric::L2ReadQueries] = {
        named(p, 1, "l2_subp0_total_read_sector_queries"),
        named(p, 2, "l2_subp1_total_read_sector_queries"),
    };
    t[Metric::L2WriteQueries] = {
        named(p, 3, "l2_subp0_total_write_sector_queries"),
        named(p, 4, "l2_subp1_total_write_sector_queries"),
    };
    t[Metric::SharedLoadTrans] = {
        named(p, 5, "shared_ld_transactions")};
    t[Metric::SharedStoreTrans] = {
        named(p, 6, "shared_st_transactions")};
    t[Metric::DramReadSectors] = {
        named(p, 7, "fb_subp0_read_sectors"),
        named(p, 8, "fb_subp1_read_sectors"),
    };
    t[Metric::DramWriteSectors] = {
        named(p, 9, "fb_subp0_write_sectors"),
        named(p, 10, "fb_subp1_write_sectors"),
    };
    t[Metric::WarpsSpInt] = {wEvent(p, 580), wEvent(p, 581)};
    t[Metric::WarpsDp] = {wEvent(p, 584)};
    t[Metric::WarpsSf] = {wEvent(p, 560)};
    t[Metric::InstInt] = {wEvent(p, 831)};
    t[Metric::InstSp] = {wEvent(p, 829)};
    return EventTable(p, std::move(t));
}

EventTable
EventTable::makeGtxTitanX()
{
    const std::uint64_t p = 335544;
    std::map<Metric, std::vector<EventDesc>> t;
    t[Metric::ActiveCycles] = {named(p, 0, "active_cycles")};
    t[Metric::L2ReadQueries] = {
        named(p, 1, "l2_subp0_total_read_sector_queries"),
        named(p, 2, "l2_subp1_total_read_sector_queries"),
    };
    t[Metric::L2WriteQueries] = {
        named(p, 3, "l2_subp0_total_write_sector_queries"),
        named(p, 4, "l2_subp1_total_write_sector_queries"),
    };
    t[Metric::SharedLoadTrans] = {
        named(p, 5, "shared_ld_transactions")};
    t[Metric::SharedStoreTrans] = {
        named(p, 6, "shared_st_transactions")};
    t[Metric::DramReadSectors] = {
        named(p, 7, "fb_subp0_read_sectors"),
        named(p, 8, "fb_subp1_read_sectors"),
    };
    t[Metric::DramWriteSectors] = {
        named(p, 9, "fb_subp0_write_sectors"),
        named(p, 10, "fb_subp1_write_sectors"),
    };
    t[Metric::WarpsSpInt] = {wEvent(p, 361), wEvent(p, 362)};
    t[Metric::WarpsDp] = {wEvent(p, 364)};
    t[Metric::WarpsSf] = {wEvent(p, 359)};
    t[Metric::InstInt] = {wEvent(p, 504)};
    t[Metric::InstSp] = {wEvent(p, 502)};
    return EventTable(p, std::move(t));
}

EventTable
EventTable::makeTeslaK40c()
{
    const std::uint64_t p = 318767;
    std::map<Metric, std::vector<EventDesc>> t;
    t[Metric::ActiveCycles] = {named(p, 0, "active_cycles")};
    // Kepler exposes four L2 subpartitions (Table I).
    t[Metric::L2ReadQueries] = {
        named(p, 1, "l2_subp0_total_read_sector_queries"),
        named(p, 2, "l2_subp1_total_read_sector_queries"),
        named(p, 3, "l2_subp2_total_read_sector_queries"),
        named(p, 4, "l2_subp3_total_read_sector_queries"),
    };
    t[Metric::L2WriteQueries] = {
        named(p, 5, "l2_subp0_total_write_sector_queries"),
        named(p, 6, "l2_subp1_total_write_sector_queries"),
        named(p, 7, "l2_subp2_total_write_sector_queries"),
        named(p, 8, "l2_subp3_total_write_sector_queries"),
    };
    t[Metric::SharedLoadTrans] = {
        named(p, 9, "l1_shared_ld_transactions")};
    t[Metric::SharedStoreTrans] = {
        named(p, 10, "l1_shared_st_transactions")};
    t[Metric::DramReadSectors] = {
        named(p, 11, "fb_subp0_read_sectors"),
        named(p, 12, "fb_subp1_read_sectors"),
    };
    t[Metric::DramWriteSectors] = {
        named(p, 13, "fb_subp0_write_sectors"),
        named(p, 14, "fb_subp1_write_sectors"),
    };
    // The K40c splits the combined SP/INT warp count over 4 events.
    t[Metric::WarpsSpInt] = {wEvent(p, 131), wEvent(p, 134),
                             wEvent(p, 136), wEvent(p, 137)};
    t[Metric::WarpsDp] = {wEvent(p, 141)};
    t[Metric::WarpsSf] = {wEvent(p, 133)};
    t[Metric::InstInt] = {wEvent(p, 205)};
    t[Metric::InstSp] = {wEvent(p, 203)};
    return EventTable(p, std::move(t));
}

const EventTable &
EventTable::get(gpu::DeviceKind kind)
{
    static const EventTable xp = makeTitanXp();
    static const EventTable tx = makeGtxTitanX();
    static const EventTable k40 = makeTeslaK40c();
    switch (kind) {
      case gpu::DeviceKind::TitanXp: return xp;
      case gpu::DeviceKind::GtxTitanX: return tx;
      case gpu::DeviceKind::TeslaK40c: return k40;
    }
    GPUPM_PANIC("unknown device kind");
}

const std::vector<EventDesc> &
EventTable::eventsFor(Metric m) const
{
    auto it = table_.find(m);
    GPUPM_ASSERT(it != table_.end(), "no events for metric ",
                 metricName(m));
    return it->second;
}

std::vector<EventDesc>
EventTable::allEvents() const
{
    std::vector<EventDesc> out;
    for (const auto &[metric, events] : table_)
        out.insert(out.end(), events.begin(), events.end());
    return out;
}

} // namespace cupti
} // namespace gpupm
