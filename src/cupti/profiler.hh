/**
 * @file
 * Simulated CUPTI profiling session.
 *
 * The profiler runs a kernel on the simulated board and synthesizes the
 * raw Table I event counts a CUPTI event-group collection would return,
 * including the per-device counter inaccuracy the paper blames for the
 * Tesla K40c's higher model error: every event carries a fixed
 * device-specific multiplicative bias (drawn once per profiler) plus a
 * small per-read noise.
 *
 * Aggregation follows Sec. III-C: multi-event metrics (the L2/DRAM
 * subpartition counters) are summed, sector/transaction counts are
 * converted to bytes, and warp counts are averaged per SM so they can
 * enter Eq. 8 directly.
 */

#ifndef GPUPM_CUPTI_PROFILER_HH
#define GPUPM_CUPTI_PROFILER_HH

#include <map>

#include "common/random.hh"
#include "cupti/events.hh"
#include "sim/physical_gpu.hh"

namespace gpupm
{
namespace cupti
{

/** Raw counter values from one profiled kernel launch. */
struct EventSnapshot
{
    std::map<EventId, double> counts;
    double kernel_time_s = 0.0; ///< host-measured kernel duration
};

/** Table I metrics after the aggregation step, pre-Eq. 8/9 inputs. */
struct RawMetrics
{
    double acycles = 0.0;        ///< per-SM average active cycles
    double l2_rd_bytes = 0.0;    ///< device-total L2 read bytes
    double l2_wr_bytes = 0.0;
    double shared_ld_bytes = 0.0;
    double shared_st_bytes = 0.0;
    double dram_rd_bytes = 0.0;
    double dram_wr_bytes = 0.0;
    double warps_sp_int = 0.0;   ///< per-SM average combined SP/INT
    double warps_dp = 0.0;       ///< per-SM average DP warps
    double warps_sf = 0.0;       ///< per-SM average SF warps
    double inst_int = 0.0;       ///< thread-level INT instructions
    double inst_sp = 0.0;        ///< thread-level SP instructions
    double time_s = 0.0;         ///< kernel duration
};

/** Simulated CUPTI session against one board. */
class Profiler
{
  public:
    /**
     * Hardware counter slots available per collection pass. Real
     * CUPTI can only service a handful of events concurrently; larger
     * sets require kernel replay across multiple passes.
     */
    static constexpr std::size_t kCountersPerPass = 8;

    /**
     * @param board  the simulated device to profile on.
     * @param seed   seeds the per-event bias and read noise streams.
     */
    Profiler(const sim::PhysicalGpu &board, std::uint64_t seed = 1);

    /**
     * Run a kernel at a configuration and collect all Table I events.
     * The event set exceeds the per-pass counter capacity, so the
     * kernel is replayed once per event group (CUPTI kernel replay);
     * each pass reads its own group and the reported duration is the
     * mean over passes.
     */
    EventSnapshot collect(const sim::KernelDemand &demand,
                          const gpu::FreqConfig &cfg);

    /** The event groups collect() replays over (exposed for tests). */
    std::vector<std::vector<EventId>> collectionPasses() const;

    /** Sec. III-C aggregation of a snapshot into metric inputs. */
    RawMetrics aggregate(const EventSnapshot &snap) const;

    /** Convenience: collect + aggregate in one step. */
    RawMetrics profile(const sim::KernelDemand &demand,
                       const gpu::FreqConfig &cfg);

    /** The fixed bias applied to an event (exposed for tests). */
    double biasOf(EventId id) const;

    /**
     * Reset the per-event bias table and the read-noise stream to the
     * state a freshly constructed Profiler(board, seed) would have.
     * Used by checkpointable campaigns to make every profiling cell's
     * randomness independent of collection history.
     */
    void reseed(std::uint64_t seed);

  private:
    /** Architecture-specific counter accuracy (std of the bias). */
    static double biasSigma(gpu::Architecture arch);

    /**
     * Architecture-specific cross-event leakage: the fraction of
     * unrelated activity an undisclosed counter picks up (warp events
     * absorbing other issued instructions, DRAM sector counters
     * absorbing L2 traffic). Unlike a fixed bias, leakage depends on
     * the *workload's* composition, so the model fit cannot absorb it
     * — this is the paper's "reduced accuracy of the hardware events"
     * on the Kepler device.
     */
    static double warpLeak(gpu::Architecture arch);
    static double memLeak(gpu::Architecture arch);

    /**
     * Stall sensitivity of the active-cycles event: Kepler's counter
     * semantics differ while warps are stalled, so the reported cycle
     * count inflates with the kernel's stall fraction — deflating every
     * Eq. 8 utilization by a workload-dependent factor.
     */
    static double stallSkew(gpu::Architecture arch);

    /**
     * Leak of combined SP/INT warp activity into the DP warp event.
     * Negligible on Maxwell/Pascal (4 DP lanes per SM), but on Kepler
     * (64 DP lanes, the largest dynamic coefficient) the undisclosed
     * W141 event picks up a share of the FMA traffic, producing large
     * workload-dependent utilization errors.
     */
    static double dpLeak(gpu::Architecture arch);

    /**
     * How strongly the device's warp events respond to a kernel's
     * counter_distortion (replays, divergence, atomics). Kepler's
     * undisclosed events are the most fragile.
     */
    static double distortionSensitivity(gpu::Architecture arch);

    double readCount(EventId id, double true_value);

    const sim::PhysicalGpu &board_;
    const EventTable &table_;
    std::map<EventId, double> bias_;
    Rng read_noise_;
};

} // namespace cupti
} // namespace gpupm

#endif // GPUPM_CUPTI_PROFILER_HH
