#include "profiler.hh"

#include <cmath>

#include "common/logging.hh"

namespace gpupm
{
namespace cupti
{

double
Profiler::biasSigma(gpu::Architecture arch)
{
    // The paper attributes the K40c's larger model error to "a reduced
    // accuracy of the hardware events" on Kepler (Sec. V-B); the two
    // newer architectures expose much cleaner counters.
    switch (arch) {
      case gpu::Architecture::Pascal: return 0.030;
      case gpu::Architecture::Maxwell: return 0.022;
      case gpu::Architecture::Kepler: return 0.090;
      default: return 0.05;
    }
}

double
Profiler::warpLeak(gpu::Architecture arch)
{
    switch (arch) {
      case gpu::Architecture::Pascal: return 0.12;
      case gpu::Architecture::Maxwell: return 0.06;
      case gpu::Architecture::Kepler: return 0.50;
      default: return 0.1;
    }
}

double
Profiler::memLeak(gpu::Architecture arch)
{
    switch (arch) {
      case gpu::Architecture::Pascal: return 0.05;
      case gpu::Architecture::Maxwell: return 0.025;
      case gpu::Architecture::Kepler: return 0.22;
      default: return 0.05;
    }
}

double
Profiler::stallSkew(gpu::Architecture arch)
{
    switch (arch) {
      case gpu::Architecture::Pascal: return 0.03;
      case gpu::Architecture::Maxwell: return 0.02;
      case gpu::Architecture::Kepler: return 0.30;
      default: return 0.05;
    }
}

double
Profiler::distortionSensitivity(gpu::Architecture arch)
{
    switch (arch) {
      case gpu::Architecture::Pascal: return 1.00;
      case gpu::Architecture::Maxwell: return 0.30;
      case gpu::Architecture::Kepler: return 2.80;
      default: return 0.5;
    }
}

double
Profiler::dpLeak(gpu::Architecture arch)
{
    switch (arch) {
      case gpu::Architecture::Pascal: return 0.003;
      case gpu::Architecture::Maxwell: return 0.002;
      case gpu::Architecture::Kepler: return 0.12;
      default: return 0.01;
    }
}

Profiler::Profiler(const sim::PhysicalGpu &board, std::uint64_t seed)
    : board_(board),
      table_(EventTable::get(board.descriptor().kind))
{
    reseed(seed);
}

void
Profiler::reseed(std::uint64_t seed)
{
    read_noise_ = Rng(seed).split(17);
    Rng bias_rng = Rng(seed).split(3);
    const double sigma = biasSigma(board_.descriptor().architecture);
    bias_.clear();
    for (const EventDesc &ev : table_.allEvents()) {
        double b = bias_rng.normal(1.0, sigma);
        // A counter cannot under-report to (or below) zero.
        bias_[ev.id] = std::max(0.5, b);
    }
}

double
Profiler::biasOf(EventId id) const
{
    auto it = bias_.find(id);
    GPUPM_ASSERT(it != bias_.end(), "unknown event id ", id);
    return it->second;
}

double
Profiler::readCount(EventId id, double true_value)
{
    if (true_value <= 0.0)
        return 0.0;
    const double noisy =
            true_value * biasOf(id) * read_noise_.normal(1.0, 0.004);
    return std::max(0.0, noisy);
}

std::vector<std::vector<EventId>>
Profiler::collectionPasses() const
{
    // Greedy partition of the full Table I event set into groups of at
    // most kCountersPerPass (the CUPTI event-group capacity), keeping
    // a metric's events in one pass where possible so subpartition
    // sums are internally consistent.
    std::vector<std::vector<EventId>> passes;
    std::vector<EventId> current;
    for (Metric m : kAllMetrics) {
        const auto &events = table_.eventsFor(m);
        if (current.size() + events.size() > kCountersPerPass &&
            !current.empty()) {
            passes.push_back(current);
            current.clear();
        }
        for (const EventDesc &ev : events)
            current.push_back(ev.id);
    }
    if (!current.empty())
        passes.push_back(current);
    return passes;
}

EventSnapshot
Profiler::collect(const sim::KernelDemand &demand,
                  const gpu::FreqConfig &cfg)
{
    const sim::ExecutionProfile prof = board_.execute(demand, cfg);

    EventSnapshot snap;

    // True per-event values, before any counter is read.
    std::map<EventId, double> truth;
    const auto emit = [&](Metric m, double device_total) {
        const auto &events = table_.eventsFor(m);
        const double share =
                device_total / static_cast<double>(events.size());
        for (const EventDesc &ev : events)
            truth[ev.id] = share;
    };

    // Cross-event leakage: the undisclosed warp counters also count a
    // share of the other issued instructions, and the memory sector
    // counters a share of the adjacent level's traffic.
    const gpu::Architecture arch = board_.descriptor().architecture;
    const double wleak = warpLeak(arch);
    const double mleak = memLeak(arch);

    const double stall_frac =
            std::max(0.0, 1.0 - prof.util_issue);
    // Replay/divergence-driven distortion: replays multiply both the
    // issued-warp events and the memory transaction counters on
    // fragile-counter devices.
    const double dist = 1.0 + distortionSensitivity(arch) *
                                      demand.counter_distortion;
    emit(Metric::ActiveCycles,
         prof.active_cycles * (1.0 + stallSkew(arch) * stall_frac));
    emit(Metric::L2ReadQueries,
         dist * (demand.bytes_l2_rd + mleak * demand.bytes_shared_ld) /
                 kSectorBytes);
    emit(Metric::L2WriteQueries,
         dist * (demand.bytes_l2_wr + mleak * demand.bytes_shared_st) /
                 kSectorBytes);
    emit(Metric::SharedLoadTrans,
         (demand.bytes_shared_ld + mleak * demand.bytes_l2_rd) /
                 kSharedTransBytes);
    emit(Metric::SharedStoreTrans,
         (demand.bytes_shared_st + mleak * demand.bytes_l2_wr) /
                 kSharedTransBytes);
    emit(Metric::DramReadSectors,
         dist * (demand.bytes_dram_rd + mleak * demand.bytes_l2_rd) /
                 kSectorBytes);
    emit(Metric::DramWriteSectors,
         dist * (demand.bytes_dram_wr + mleak * demand.bytes_l2_wr) /
                 kSectorBytes);
    emit(Metric::WarpsSpInt,
         dist * (demand.warps_int + demand.warps_sp +
                 wleak * demand.warps_other));
    emit(Metric::WarpsDp,
         dist * (demand.warps_dp +
                 dpLeak(arch) * (demand.warps_int + demand.warps_sp) +
                 0.1 * wleak * demand.warps_other));
    emit(Metric::WarpsSf,
         dist * (demand.warps_sf + 0.2 * wleak * demand.warps_other));
    const double ws = board_.descriptor().warp_size;
    emit(Metric::InstInt, demand.warps_int * ws);
    emit(Metric::InstSp, demand.warps_sp * ws);

    // CUPTI kernel replay: one pass per event group. Every pass
    // re-runs the kernel with its own timing jitter; the reported
    // duration is the mean over passes.
    double time_sum = 0.0;
    const auto passes = collectionPasses();
    for (const auto &pass : passes) {
        time_sum += prof.time_s * read_noise_.normal(1.0, 0.002);
        for (EventId id : pass)
            snap.counts[id] = readCount(id, truth.at(id));
    }
    snap.kernel_time_s = time_sum / static_cast<double>(passes.size());

    return snap;
}

RawMetrics
Profiler::aggregate(const EventSnapshot &snap) const
{
    const auto sum = [&](Metric m) {
        double s = 0.0;
        for (const EventDesc &ev : table_.eventsFor(m)) {
            auto it = snap.counts.find(ev.id);
            if (it != snap.counts.end())
                s += it->second;
        }
        return s;
    };

    const double sms = board_.descriptor().num_sms;

    RawMetrics rm;
    rm.time_s = snap.kernel_time_s;
    rm.acycles = sum(Metric::ActiveCycles);
    rm.l2_rd_bytes = sum(Metric::L2ReadQueries) * kSectorBytes;
    rm.l2_wr_bytes = sum(Metric::L2WriteQueries) * kSectorBytes;
    rm.shared_ld_bytes =
            sum(Metric::SharedLoadTrans) * kSharedTransBytes;
    rm.shared_st_bytes =
            sum(Metric::SharedStoreTrans) * kSharedTransBytes;
    rm.dram_rd_bytes = sum(Metric::DramReadSectors) * kSectorBytes;
    rm.dram_wr_bytes = sum(Metric::DramWriteSectors) * kSectorBytes;
    // Warp counts enter Eq. 8 as per-SM averages; the raw counters are
    // device totals.
    rm.warps_sp_int = sum(Metric::WarpsSpInt) / sms;
    rm.warps_dp = sum(Metric::WarpsDp) / sms;
    rm.warps_sf = sum(Metric::WarpsSf) / sms;
    rm.inst_int = sum(Metric::InstInt);
    rm.inst_sp = sum(Metric::InstSp);
    return rm;
}

RawMetrics
Profiler::profile(const sim::KernelDemand &demand,
                  const gpu::FreqConfig &cfg)
{
    return aggregate(collect(demand, cfg));
}

} // namespace cupti
} // namespace gpupm
