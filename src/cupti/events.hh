/**
 * @file
 * The Table I performance-event registry.
 *
 * Each device exposes a different set of raw events for the same
 * logical metric; some are the named events NVIDIA discloses, others
 * are the undisclosed numeric-ID events the paper uncovered
 * experimentally (the "W" events, prefixed 352321 on the Titan Xp,
 * 335544 on the GTX Titan X and 318767 on the Tesla K40c). The
 * profiler synthesizes counts for exactly these events, and the model
 * aggregates them exactly as Sec. III-C describes (multi-event sums,
 * plus the Eq. 10 SP/INT disambiguation).
 */

#ifndef GPUPM_CUPTI_EVENTS_HH
#define GPUPM_CUPTI_EVENTS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "gpu/device.hh"

namespace gpupm
{
namespace cupti
{

/** Stable numeric identifier of one raw event. */
using EventId = std::uint64_t;

/** Logical metric a group of raw events feeds (Table I rows). */
enum class Metric
{
    ActiveCycles,
    L2ReadQueries,
    L2WriteQueries,
    SharedLoadTrans,
    SharedStoreTrans,
    DramReadSectors,
    DramWriteSectors,
    WarpsSpInt,   ///< combined SP/INT warp count (indistinguishable)
    WarpsDp,
    WarpsSf,
    InstInt,      ///< thread-level integer instructions (Eq. 10)
    InstSp,       ///< thread-level SP instructions (Eq. 10)
};

/** All metrics, for iteration. */
inline constexpr std::array<Metric, 12> kAllMetrics = {
    Metric::ActiveCycles, Metric::L2ReadQueries, Metric::L2WriteQueries,
    Metric::SharedLoadTrans, Metric::SharedStoreTrans,
    Metric::DramReadSectors, Metric::DramWriteSectors,
    Metric::WarpsSpInt, Metric::WarpsDp, Metric::WarpsSf,
    Metric::InstInt, Metric::InstSp,
};

/** Display name of a metric. */
std::string_view metricName(Metric m);

/** One raw event as exposed by the (simulated) CUPTI interface. */
struct EventDesc
{
    EventId id = 0;
    std::string name; ///< disclosed name, or "W<n>" for numeric events
};

/** Bytes per L2/DRAM sector transaction. */
inline constexpr double kSectorBytes = 32.0;

/** Bytes per shared-memory transaction (32 lanes x 4 B). */
inline constexpr double kSharedTransBytes = 128.0;

/** Per-device registry mapping metrics to their raw events. */
class EventTable
{
  public:
    /** Registry for one of the evaluated devices. */
    static const EventTable &get(gpu::DeviceKind kind);

    /** Raw events feeding a metric (one or more). */
    const std::vector<EventDesc> &eventsFor(Metric m) const;

    /** Every raw event the device exposes. */
    std::vector<EventDesc> allEvents() const;

    /** The device's undisclosed-event ID prefix (Table I footnote). */
    std::uint64_t wPrefix() const { return w_prefix_; }

  private:
    EventTable(std::uint64_t w_prefix,
               std::map<Metric, std::vector<EventDesc>> table)
        : w_prefix_(w_prefix), table_(std::move(table))
    {}

    static EventTable makeTitanXp();
    static EventTable makeGtxTitanX();
    static EventTable makeTeslaK40c();

    std::uint64_t w_prefix_;
    std::map<Metric, std::vector<EventDesc>> table_;
};

} // namespace cupti
} // namespace gpupm

#endif // GPUPM_CUPTI_EVENTS_HH
