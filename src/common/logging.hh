/**
 * @file
 * Status-message and error helpers in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated (a gpupm bug); aborts.
 * fatal()  — the user asked for something impossible (bad config, bad
 *            arguments); exits with an error code.
 * warn()   — something is questionable but execution can continue.
 * inform() — a normal status message.
 */

#ifndef GPUPM_COMMON_LOGGING_HH
#define GPUPM_COMMON_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace gpupm
{

namespace detail
{

/** Stream a pack of arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    static_cast<void>((os << ... << std::forward<Args>(args)));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Abort on a violated internal invariant. */
#define GPUPM_PANIC(...) \
    ::gpupm::detail::panicImpl(__FILE__, __LINE__, \
                               ::gpupm::detail::concat(__VA_ARGS__))

/** Exit on an unrecoverable user error. */
#define GPUPM_FATAL(...) \
    ::gpupm::detail::fatalImpl(__FILE__, __LINE__, \
                               ::gpupm::detail::concat(__VA_ARGS__))

/** Fatal user error when a condition holds. */
#define GPUPM_FATAL_IF(cond, ...) \
    do { \
        if (cond) { \
            ::gpupm::detail::fatalImpl(__FILE__, __LINE__, \
                    ::gpupm::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

/** Panic unless a condition holds. */
#define GPUPM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::gpupm::detail::panicImpl(__FILE__, __LINE__, \
                ::gpupm::detail::concat("assertion '", #cond, \
                                        "' failed: ", ##__VA_ARGS__)); \
        } \
    } while (0)

/** Non-fatal warning to stderr. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Informational message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace gpupm

#endif // GPUPM_COMMON_LOGGING_HH
