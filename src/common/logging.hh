/**
 * @file
 * Status-message and error helpers in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated (a gpupm bug); aborts.
 * fatal()  — the user asked for something impossible (bad config, bad
 *            arguments); exits with an error code.
 * warn()   — something is questionable but execution can continue.
 * inform() — a normal status message.
 * debug()  — chatty diagnostics, off by default.
 *
 * Status chatter is gated by a global log level so traced or scripted
 * runs are not drowned in it: debug() prints at Debug, inform() at
 * Info and below, warn() at Warn and below; panic/fatal are never
 * suppressed. The initial level comes from the GPUPM_LOG environment
 * variable (debug | info | warn | error — a.k.a. quiet); the CLI maps
 * --verbose and --quiet onto setLogLevel().
 */

#ifndef GPUPM_COMMON_LOGGING_HH
#define GPUPM_COMMON_LOGGING_HH

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

namespace gpupm
{

/** Severity threshold of the status-message helpers. */
enum class LogLevel
{
    Debug = 0, ///< everything, including debug()
    Info = 1,  ///< inform() and warn() (the default)
    Warn = 2,  ///< warn() only
    Error = 3, ///< nothing but panic/fatal ("quiet")
};

/** Set the global log level. */
void setLogLevel(LogLevel level);

/** Current global log level (initialized from GPUPM_LOG). */
LogLevel logLevel();

/**
 * Parse a level name: debug | info | warn[ing] | error | quiet.
 * Returns false (leaving `out` untouched) on anything else.
 */
bool parseLogLevel(std::string_view name, LogLevel &out);

namespace detail
{

/** Stream a pack of arguments into a string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    static_cast<void>((os << ... << std::forward<Args>(args)));
    return os.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);
void debugImpl(const std::string &msg);

} // namespace detail

/** Abort on a violated internal invariant. */
#define GPUPM_PANIC(...) \
    ::gpupm::detail::panicImpl(__FILE__, __LINE__, \
                               ::gpupm::detail::concat(__VA_ARGS__))

/** Exit on an unrecoverable user error. */
#define GPUPM_FATAL(...) \
    ::gpupm::detail::fatalImpl(__FILE__, __LINE__, \
                               ::gpupm::detail::concat(__VA_ARGS__))

/** Fatal user error when a condition holds. */
#define GPUPM_FATAL_IF(cond, ...) \
    do { \
        if (cond) { \
            ::gpupm::detail::fatalImpl(__FILE__, __LINE__, \
                    ::gpupm::detail::concat(__VA_ARGS__)); \
        } \
    } while (0)

/** Panic unless a condition holds. */
#define GPUPM_ASSERT(cond, ...) \
    do { \
        if (!(cond)) { \
            ::gpupm::detail::panicImpl(__FILE__, __LINE__, \
                ::gpupm::detail::concat("assertion '", #cond, \
                                        "' failed: ", ##__VA_ARGS__)); \
        } \
    } while (0)

/** Non-fatal warning to stderr (suppressed above Warn). */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() > LogLevel::Warn)
        return;
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Informational message to stderr (suppressed above Info). */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() > LogLevel::Info)
        return;
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

/** Debug chatter to stderr (printed only at Debug). */
template <typename... Args>
void
debug(Args &&...args)
{
    if (logLevel() > LogLevel::Debug)
        return;
    detail::debugImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace gpupm

#endif // GPUPM_COMMON_LOGGING_HH
