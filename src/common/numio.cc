#include "numio.hh"

#include <charconv>

namespace gpupm
{
namespace numio
{

std::string
formatDouble(double x)
{
    // 32 chars covers the longest shortest-round-trip double
    // ("-2.2250738585072014e-308" is 24) with room to spare.
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), x);
    return std::string(buf, res.ptr);
}

std::string
formatLong(long x)
{
    char buf[24];
    const auto res = std::to_chars(buf, buf + sizeof(buf), x);
    return std::string(buf, res.ptr);
}

namespace
{

template <typename T>
bool
parseWhole(std::string_view token, T &out)
{
    if (token.empty())
        return false;
    const auto res =
            std::from_chars(token.data(), token.data() + token.size(),
                            out);
    return res.ec == std::errc() &&
           res.ptr == token.data() + token.size();
}

} // namespace

bool
parseDouble(std::string_view token, double &out)
{
    return parseWhole(token, out);
}

bool
parseLong(std::string_view token, long &out)
{
    return parseWhole(token, out);
}

bool
parseU64(std::string_view token, std::uint64_t &out)
{
    return parseWhole(token, out);
}

} // namespace numio
} // namespace gpupm
