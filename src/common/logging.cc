#include "logging.hh"

#include <stdexcept>

namespace gpupm
{
namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    // Throwing (rather than calling std::abort) keeps panics testable:
    // gtest death tests and EXPECT_THROW both observe the failure.
    throw std::logic_error(concat("panic: ", file, ":", line, ": ", msg));
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    throw std::runtime_error(concat("fatal: ", file, ":", line, ": ",
                                    msg));
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string &msg)
{
    std::cerr << "info: " << msg << "\n";
}

} // namespace detail
} // namespace gpupm
