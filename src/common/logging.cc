#include "logging.hh"

#include <atomic>
#include <stdexcept>

namespace gpupm
{

namespace
{

/** GPUPM_LOG is consulted once, at first use. */
LogLevel
initialLogLevel()
{
    const char *env = std::getenv("GPUPM_LOG");
    LogLevel level = LogLevel::Info;
    if (env && *env && !parseLogLevel(env, level)) {
        std::cerr << "warn: unknown GPUPM_LOG level '" << env
                  << "' (want debug|info|warn|error)\n";
    }
    return level;
}

std::atomic<LogLevel> &
levelSlot()
{
    static std::atomic<LogLevel> level{initialLogLevel()};
    return level;
}

} // namespace

void
setLogLevel(LogLevel level)
{
    levelSlot().store(level, std::memory_order_relaxed);
}

LogLevel
logLevel()
{
    return levelSlot().load(std::memory_order_relaxed);
}

bool
parseLogLevel(std::string_view name, LogLevel &out)
{
    if (name == "debug") {
        out = LogLevel::Debug;
    } else if (name == "info") {
        out = LogLevel::Info;
    } else if (name == "warn" || name == "warning") {
        out = LogLevel::Warn;
    } else if (name == "error" || name == "quiet") {
        out = LogLevel::Error;
    } else {
        return false;
    }
    return true;
}

namespace detail
{

[[noreturn]] void
panicImpl(const char *file, int line, const std::string &msg)
{
    // Throwing (rather than calling std::abort) keeps panics testable:
    // gtest death tests and EXPECT_THROW both observe the failure.
    throw std::logic_error(concat("panic: ", file, ":", line, ": ", msg));
}

[[noreturn]] void
fatalImpl(const char *file, int line, const std::string &msg)
{
    throw std::runtime_error(concat("fatal: ", file, ":", line, ": ",
                                    msg));
}

void
warnImpl(const std::string &msg)
{
    std::cerr << "warn: " << msg << "\n";
}

void
informImpl(const std::string &msg)
{
    std::cerr << "info: " << msg << "\n";
}

void
debugImpl(const std::string &msg)
{
    std::cerr << "debug: " << msg << "\n";
}

} // namespace detail
} // namespace gpupm
