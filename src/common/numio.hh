/**
 * @file
 * Locale-independent numeric text I/O.
 *
 * Model and campaign files are trust boundaries that cross machines
 * (the virtual-sensor use case ships a model file to hosts the
 * campaign never ran on), so their numeric encoding must not depend
 * on whatever LC_NUMERIC the writing or reading process happens to
 * run under. iostream insertion/extraction and strtod all consult the
 * global locale; these helpers use std::to_chars / std::from_chars,
 * which are locale-independent by specification and round-trip
 * doubles bit-exactly at shortest representation.
 */

#ifndef GPUPM_COMMON_NUMIO_HH
#define GPUPM_COMMON_NUMIO_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace gpupm
{
namespace numio
{

/** Shortest decimal form that parses back to exactly `x`. */
std::string formatDouble(double x);

/** Decimal form of a signed integer. */
std::string formatLong(long x);

/**
 * Parse a whole token as a double (decimal or scientific; "nan" and
 * "inf" are accepted and surfaced as such for the caller to judge).
 * @return false unless the entire token was consumed.
 */
bool parseDouble(std::string_view token, double &out);

/** Parse a whole token as a signed decimal integer. */
bool parseLong(std::string_view token, long &out);

/** Parse a whole token as an unsigned 64-bit decimal integer. */
bool parseU64(std::string_view token, std::uint64_t &out);

} // namespace numio
} // namespace gpupm

#endif // GPUPM_COMMON_NUMIO_HH
