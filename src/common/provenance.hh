/**
 * @file
 * Build provenance stamped into every JSON artifact the toolchain
 * emits (traces, metric dumps, scoreboards, BENCH_*.json), so a
 * number in a trajectory can always be attributed to the build and
 * device that produced it.
 */

#ifndef GPUPM_COMMON_PROVENANCE_HH
#define GPUPM_COMMON_PROVENANCE_HH

#include <string>

namespace gpupm
{
namespace common
{

/** Who produced an artifact: build identity + measurement target. */
struct Provenance
{
    std::string version;    ///< project version (CMake PROJECT_VERSION)
    std::string build_type; ///< CMake build type, e.g. "Release"
    std::string git_sha;    ///< commit at configure time, "unknown" off-git
    std::string compiler;   ///< compiler id-version, e.g. "GNU-13.2.0"
    std::string device;     ///< device kind under test, "" when N/A
    std::string timestamp;  ///< ISO-8601 UTC wall-clock at collection
};

/**
 * Collect the current provenance. `device` overrides the process-wide
 * device tag (see setProvenanceDevice) when non-empty.
 */
Provenance collectProvenance(const std::string &device = "");

/**
 * Tag artifacts emitted deep in the stack with the device under test.
 * The CLI sets this as soon as it resolves its device argument.
 */
void setProvenanceDevice(const std::string &device);

/** The process-wide device tag ("" until set). */
std::string provenanceDevice();

/** Render as a JSON object: {"version":...,...,"timestamp":...}. */
std::string toJson(const Provenance &p);

} // namespace common
} // namespace gpupm

#endif // GPUPM_COMMON_PROVENANCE_HH
