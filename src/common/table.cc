#include "table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "logging.hh"

namespace gpupm
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    GPUPM_ASSERT(!headers_.empty(), "table needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    GPUPM_ASSERT(cells.size() == headers_.size(),
                 "row has ", cells.size(), " cells, expected ",
                 headers_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    const auto rule = [&] {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            os << '+' << std::string(widths[c] + 2, '-');
        }
        os << "+\n";
    };
    const auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << "| " << cells[c]
               << std::string(widths[c] - cells[c].size() + 1, ' ');
        }
        os << "|\n";
    };

    if (!title_.empty())
        os << title_ << "\n";
    rule();
    line(headers_);
    rule();
    for (const auto &row : rows_)
        line(row);
    rule();
}

void
TextTable::printCsv(std::ostream &os) const
{
    const auto line = [&](const std::vector<std::string> &cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ',';
            // Quote cells containing separators.
            if (cells[c].find_first_of(",\"\n") != std::string::npos) {
                os << '"';
                for (char ch : cells[c]) {
                    if (ch == '"')
                        os << '"';
                    os << ch;
                }
                os << '"';
            } else {
                os << cells[c];
            }
        }
        os << '\n';
    };
    line(headers_);
    for (const auto &row : rows_)
        line(row);
}

} // namespace gpupm
