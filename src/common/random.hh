/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic elements of the simulated substrate (sensor noise,
 * counter error, sampling jitter) draw from explicitly seeded streams so
 * every experiment is exactly reproducible. The generator is
 * xoshiro256** (public domain, Blackman & Vigna), chosen for speed and
 * statistical quality without pulling <random>'s unspecified-across-
 * implementations distributions into results.
 */

#ifndef GPUPM_COMMON_RANDOM_HH
#define GPUPM_COMMON_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace gpupm
{

/** Seeded, splittable PRNG with normal/uniform helpers. */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        std::uint64_t x = seed;
        for (auto &word : state_) {
            // splitmix64 step — decorrelates consecutive seeds.
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit draw (xoshiro256**). */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    std::uint64_t
    below(std::uint64_t n)
    {
        return next() % n;
    }

    /** Standard normal draw (Box–Muller; one value per call). */
    double
    normal()
    {
        if (has_spare_) {
            has_spare_ = false;
            return spare_;
        }
        double u1 = 0.0;
        while (u1 <= 1e-300)
            u1 = uniform();
        const double u2 = uniform();
        const double r = std::sqrt(-2.0 * std::log(u1));
        const double theta = 6.283185307179586476925286766559 * u2;
        spare_ = r * std::sin(theta);
        has_spare_ = true;
        return r * std::cos(theta);
    }

    /** Normal draw with the given mean and standard deviation. */
    double
    normal(double mean, double stddev)
    {
        return mean + stddev * normal();
    }

    /**
     * Derive an independent child stream. Used to give every device /
     * sensor / counter its own stream so adding one draw somewhere does
     * not shift every later value in the experiment.
     */
    Rng
    split(std::uint64_t stream_id)
    {
        return Rng(next() ^ (0x5851f42d4c957f2dull * (stream_id + 1)));
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
    double spare_ = 0.0;
    bool has_spare_ = false;
};

} // namespace gpupm

#endif // GPUPM_COMMON_RANDOM_HH
