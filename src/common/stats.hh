/**
 * @file
 * Summary statistics used throughout the experiment harnesses: mean,
 * median, mean absolute (percentage) error, extrema and percentiles.
 */

#ifndef GPUPM_COMMON_STATS_HH
#define GPUPM_COMMON_STATS_HH

#include <cstddef>
#include <span>
#include <vector>

namespace gpupm
{
namespace stats
{

/** Arithmetic mean; 0 for an empty input. */
double mean(std::span<const double> xs);

/** Median (average of middle two for even sizes); 0 for empty input. */
double median(std::span<const double> xs);

/** Population standard deviation; 0 for fewer than two samples. */
double stddev(std::span<const double> xs);

/** Smallest element; 0 for an empty input. */
double minimum(std::span<const double> xs);

/** Largest element; 0 for an empty input. */
double maximum(std::span<const double> xs);

/**
 * Linear-interpolated percentile, p in [0, 100].
 * 0 for an empty input.
 */
double percentile(std::span<const double> xs, double p);

/**
 * Mean absolute percentage error between predictions and reference
 * values, in percent: mean(|pred - meas| / meas) * 100.
 * Entries whose measured value is zero are skipped.
 */
double meanAbsPercentError(std::span<const double> predicted,
                           std::span<const double> measured);

/**
 * Signed mean percentage error in percent:
 * mean((pred - meas) / meas) * 100. Zero-measured entries are skipped.
 */
double meanPercentError(std::span<const double> predicted,
                        std::span<const double> measured);

/** Root mean square error between two equally sized series. */
double rmse(std::span<const double> predicted,
            std::span<const double> measured);

/**
 * Median absolute deviation: median(|x - median(xs)|).
 * 0 for an empty input. Not scaled to the normal distribution; apply
 * the 1.4826 consistency factor yourself when a sigma-equivalent is
 * needed (madOutlierMask does).
 */
double mad(std::span<const double> xs);

/**
 * Robust outlier detection by modified z-score. Entry i is flagged
 * (mask[i] = true) when |xs[i] - median| / (1.4826 * MAD) exceeds the
 * threshold, or when xs[i] is not finite. When the MAD is zero (at
 * least half the samples identical) only non-finite entries and
 * entries differing from the median by more than `zero_mad_tol` are
 * flagged, so a noise-free stream is never decimated.
 */
std::vector<bool> madOutlierMask(std::span<const double> xs,
                                 double threshold = 3.5,
                                 double zero_mad_tol = 1e-9);

/** Pearson correlation coefficient; 0 when either side is constant. */
double pearson(std::span<const double> xs, std::span<const double> ys);

/** Running accumulator for streams whose length is not known upfront. */
class Accumulator
{
  public:
    /** Insert one sample. */
    void add(double x);

    /** Number of samples so far. */
    std::size_t count() const { return n_; }

    /** Mean of samples so far; 0 when empty. */
    double mean() const;

    /** Population standard deviation so far; 0 for fewer than two. */
    double stddev() const;

    /** Smallest sample so far; 0 when empty. */
    double minimum() const { return n_ ? min_ : 0.0; }

    /** Largest sample so far; 0 when empty. */
    double maximum() const { return n_ ? max_ : 0.0; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

  private:
    std::size_t n_ = 0;
    double sum_ = 0.0;
    double sumsq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

} // namespace stats
} // namespace gpupm

#endif // GPUPM_COMMON_STATS_HH
