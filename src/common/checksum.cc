#include "checksum.hh"

#include <array>

namespace gpupm
{
namespace checksum
{

namespace
{

std::array<std::uint32_t, 256>
makeTable()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        t[i] = c;
    }
    return t;
}

} // namespace

std::uint32_t
crc32(std::string_view bytes)
{
    static const std::array<std::uint32_t, 256> table = makeTable();
    std::uint32_t c = 0xFFFFFFFFu;
    for (unsigned char b : bytes)
        c = table[(c ^ b) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::string
crc32Hex(std::uint32_t crc)
{
    static const char digits[] = "0123456789abcdef";
    std::string s(8, '0');
    for (int i = 7; i >= 0; --i) {
        s[i] = digits[crc & 0xFu];
        crc >>= 4;
    }
    return s;
}

bool
parseCrc32Hex(std::string_view hex, std::uint32_t &out)
{
    if (hex.size() != 8)
        return false;
    std::uint32_t v = 0;
    for (char c : hex) {
        v <<= 4;
        if (c >= '0' && c <= '9')
            v |= static_cast<std::uint32_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            v |= static_cast<std::uint32_t>(c - 'a' + 10);
        else
            return false;
    }
    out = v;
    return true;
}

} // namespace checksum
} // namespace gpupm
