#include "stats.hh"

#include <algorithm>
#include <cmath>

#include "logging.hh"

namespace gpupm
{
namespace stats
{

double
mean(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    double s = 0.0;
    for (double x : xs)
        s += x;
    return s / static_cast<double>(xs.size());
}

double
median(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    std::vector<double> v(xs.begin(), xs.end());
    std::sort(v.begin(), v.end());
    const std::size_t n = v.size();
    if (n % 2 == 1)
        return v[n / 2];
    return 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double
stddev(std::span<const double> xs)
{
    if (xs.size() < 2)
        return 0.0;
    const double m = mean(xs);
    double s = 0.0;
    for (double x : xs)
        s += (x - m) * (x - m);
    return std::sqrt(s / static_cast<double>(xs.size()));
}

double
minimum(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    return *std::min_element(xs.begin(), xs.end());
}

double
maximum(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    return *std::max_element(xs.begin(), xs.end());
}

double
percentile(std::span<const double> xs, double p)
{
    if (xs.empty())
        return 0.0;
    GPUPM_ASSERT(p >= 0.0 && p <= 100.0, "percentile p=", p);
    std::vector<double> v(xs.begin(), xs.end());
    std::sort(v.begin(), v.end());
    if (v.size() == 1)
        return v.front();
    const double pos = p / 100.0 * static_cast<double>(v.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, v.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return v[lo] + frac * (v[hi] - v[lo]);
}

double
meanAbsPercentError(std::span<const double> predicted,
                    std::span<const double> measured)
{
    GPUPM_ASSERT(predicted.size() == measured.size(),
                 "size mismatch ", predicted.size(), " vs ",
                 measured.size());
    double s = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        if (measured[i] == 0.0)
            continue;
        s += std::abs(predicted[i] - measured[i]) / std::abs(measured[i]);
        ++n;
    }
    return n ? 100.0 * s / static_cast<double>(n) : 0.0;
}

double
meanPercentError(std::span<const double> predicted,
                 std::span<const double> measured)
{
    GPUPM_ASSERT(predicted.size() == measured.size(),
                 "size mismatch ", predicted.size(), " vs ",
                 measured.size());
    double s = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        if (measured[i] == 0.0)
            continue;
        s += (predicted[i] - measured[i]) / measured[i];
        ++n;
    }
    return n ? 100.0 * s / static_cast<double>(n) : 0.0;
}

double
rmse(std::span<const double> predicted, std::span<const double> measured)
{
    GPUPM_ASSERT(predicted.size() == measured.size(),
                 "size mismatch ", predicted.size(), " vs ",
                 measured.size());
    if (predicted.empty())
        return 0.0;
    double s = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
        const double d = predicted[i] - measured[i];
        s += d * d;
    }
    return std::sqrt(s / static_cast<double>(predicted.size()));
}

double
mad(std::span<const double> xs)
{
    if (xs.empty())
        return 0.0;
    const double m = median(xs);
    std::vector<double> dev;
    dev.reserve(xs.size());
    for (double x : xs)
        dev.push_back(std::abs(x - m));
    return median(dev);
}

std::vector<bool>
madOutlierMask(std::span<const double> xs, double threshold,
               double zero_mad_tol)
{
    GPUPM_ASSERT(threshold > 0.0, "threshold=", threshold);
    std::vector<bool> mask(xs.size(), false);
    // The median/MAD must be computed over the finite entries only —
    // a NaN sample would poison std::sort's ordering.
    std::vector<double> finite;
    finite.reserve(xs.size());
    for (double x : xs)
        if (std::isfinite(x))
            finite.push_back(x);
    const double m = median(finite);
    const double scaled_mad = 1.4826 * mad(finite);
    for (std::size_t i = 0; i < xs.size(); ++i) {
        if (!std::isfinite(xs[i])) {
            mask[i] = true;
        } else if (scaled_mad > 0.0) {
            mask[i] = std::abs(xs[i] - m) / scaled_mad > threshold;
        } else {
            mask[i] = std::abs(xs[i] - m) > zero_mad_tol;
        }
    }
    return mask;
}

double
pearson(std::span<const double> xs, std::span<const double> ys)
{
    GPUPM_ASSERT(xs.size() == ys.size(), "size mismatch ", xs.size(),
                 " vs ", ys.size());
    if (xs.size() < 2)
        return 0.0;
    const double mx = mean(xs);
    const double my = mean(ys);
    double sxy = 0.0, sxx = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mx;
        const double dy = ys[i] - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if (sxx == 0.0 || syy == 0.0)
        return 0.0;
    return sxy / std::sqrt(sxx * syy);
}

void
Accumulator::add(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    sum_ += x;
    sumsq_ += x * x;
}

double
Accumulator::mean() const
{
    return n_ ? sum_ / static_cast<double>(n_) : 0.0;
}

double
Accumulator::stddev() const
{
    if (n_ < 2)
        return 0.0;
    const double m = mean();
    const double var = sumsq_ / static_cast<double>(n_) - m * m;
    return var > 0.0 ? std::sqrt(var) : 0.0;
}

} // namespace stats
} // namespace gpupm
