#include "provenance.hh"

#include <ctime>
#include <mutex>

#ifndef GPUPM_VERSION_STRING
#define GPUPM_VERSION_STRING "unknown"
#endif
#ifndef GPUPM_BUILD_TYPE
#define GPUPM_BUILD_TYPE "unknown"
#endif
#ifndef GPUPM_GIT_SHA
#define GPUPM_GIT_SHA "unknown"
#endif
#ifndef GPUPM_COMPILER
#define GPUPM_COMPILER "unknown"
#endif

namespace gpupm
{
namespace common
{

namespace
{

std::mutex g_device_mu;
std::string g_device; // guarded by g_device_mu

/** Minimal JSON string escaping; provenance values are short and
 *  controlled but a build type or device label must never be able to
 *  break the artifact's syntax. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

Provenance
collectProvenance(const std::string &device)
{
    Provenance p;
    p.version = GPUPM_VERSION_STRING;
    p.build_type = GPUPM_BUILD_TYPE;
    p.git_sha = GPUPM_GIT_SHA;
    p.compiler = GPUPM_COMPILER;
    p.device = device.empty() ? provenanceDevice() : device;

    std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    p.timestamp = buf;
    return p;
}

void
setProvenanceDevice(const std::string &device)
{
    std::lock_guard<std::mutex> lock(g_device_mu);
    g_device = device;
}

std::string
provenanceDevice()
{
    std::lock_guard<std::mutex> lock(g_device_mu);
    return g_device;
}

std::string
toJson(const Provenance &p)
{
    std::string out = "{\"version\":\"" + jsonEscape(p.version) +
                      "\",\"build_type\":\"" + jsonEscape(p.build_type) +
                      "\",\"git_sha\":\"" + jsonEscape(p.git_sha) +
                      "\",\"compiler\":\"" + jsonEscape(p.compiler) +
                      "\",\"device\":\"" + jsonEscape(p.device) +
                      "\",\"timestamp\":\"" + jsonEscape(p.timestamp) +
                      "\"}";
    return out;
}

} // namespace common
} // namespace gpupm
