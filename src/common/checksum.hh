/**
 * @file
 * CRC32 (IEEE 802.3 polynomial, the zlib/PNG variant) for file
 * payload integrity. Model, campaign and checkpoint files carry the
 * checksum of their payload in the envelope header so a bit-flipped
 * or truncated artifact is rejected with a typed error instead of
 * being parsed into silently-wrong training data or coefficients.
 */

#ifndef GPUPM_COMMON_CHECKSUM_HH
#define GPUPM_COMMON_CHECKSUM_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace gpupm
{
namespace checksum
{

/** CRC32 of a byte string (poly 0xEDB88320, init/final xor ~0). */
std::uint32_t crc32(std::string_view bytes);

/** Fixed-width lower-case hex form of a CRC32 ("8-hex-digit"). */
std::string crc32Hex(std::uint32_t crc);

/** Parse crc32Hex output. @return false on malformed input. */
bool parseCrc32Hex(std::string_view hex, std::uint32_t &out);

} // namespace checksum
} // namespace gpupm

#endif // GPUPM_COMMON_CHECKSUM_HH
