/**
 * @file
 * ASCII table and CSV emitters used by the bench harnesses to print the
 * paper's tables and figure series in a uniform, diff-friendly format.
 */

#ifndef GPUPM_COMMON_TABLE_HH
#define GPUPM_COMMON_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace gpupm
{

/** Column-aligned ASCII table with an optional title. */
class TextTable
{
  public:
    /** Construct with column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Optional table title printed above the header row. */
    void setTitle(std::string title) { title_ = std::move(title); }

    /** Append a row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double value, int precision = 2);

    /** Render the table. */
    void print(std::ostream &os) const;

    /** Render as CSV (no alignment padding, no title). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows so far. */
    std::size_t rows() const { return rows_.size(); }

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace gpupm

#endif // GPUPM_COMMON_TABLE_HH
