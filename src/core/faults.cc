#include "faults.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace gpupm
{
namespace model
{

std::string_view
faultKindName(FaultKind kind)
{
    switch (kind) {
      case FaultKind::TransientFailure: return "TransientFailure";
      case FaultKind::ClockRejection: return "ClockRejection";
      case FaultKind::Hang: return "Hang";
      case FaultKind::StuckSensor: return "StuckSensor";
      case FaultKind::PowerSpike: return "PowerSpike";
      case FaultKind::NanSample: return "NanSample";
      case FaultKind::DroppedEvents: return "DroppedEvents";
      case FaultKind::BrokenConfig: return "BrokenConfig";
    }
    GPUPM_PANIC("unknown FaultKind");
}

FaultSpec
FaultSpec::uniform(double total_rate, std::uint64_t seed)
{
    GPUPM_ASSERT(total_rate >= 0.0 && total_rate <= 1.0,
                 "fault rate ", total_rate, " outside [0, 1]");
    FaultSpec s;
    s.seed = seed;
    s.transient_rate = 0.30 * total_rate;
    s.clock_reject_rate = 0.15 * total_rate;
    s.stuck_rate = 0.15 * total_rate;
    s.spike_rate = 0.15 * total_rate;
    s.nan_rate = 0.10 * total_rate;
    s.drop_event_rate = 0.10 * total_rate;
    s.hang_rate = 0.05 * total_rate;
    return s;
}

FaultInjectingBackend::FaultInjectingBackend(MeasurementBackend &inner,
                                             FaultSpec spec)
    : inner_(inner), spec_(std::move(spec)), rng_(spec_.seed)
{}

const gpu::DeviceDescriptor &
FaultInjectingBackend::descriptor() const
{
    return inner_.descriptor();
}

void
FaultInjectingBackend::reseed(std::uint64_t seed)
{
    // Mix the cell seed with the spec seed so two specs that differ
    // only in seed inject at different cells of the same campaign.
    inner_.reseed(seed);
    rng_ = Rng(spec_.seed ^ (seed * 0x9e3779b97f4a7c15ull));
    stale_power_w_ = -1.0;
}

bool
FaultInjectingBackend::roll(double rate)
{
    // Always draw, even for rate 0, so enabling one fault kind does
    // not shift every other kind's decisions within a cell.
    const double u = rng_.uniform();
    return rate > 0.0 && u < rate;
}

void
FaultInjectingBackend::throwEntryFaults(const gpu::FreqConfig &cfg)
{
    const bool broken =
            std::find(spec_.broken_configs.begin(),
                      spec_.broken_configs.end(),
                      cfg) != spec_.broken_configs.end();
    if (broken) {
        note(FaultKind::BrokenConfig);
        throw MeasurementError(
                MeasureErrc::Transient,
                detail::concat("injected: persistent failure at (",
                               cfg.core_mhz, ", ", cfg.mem_mhz,
                               ") MHz"));
    }
    if (roll(spec_.transient_rate)) {
        note(FaultKind::TransientFailure);
        throw MeasurementError(MeasureErrc::Transient,
                               "injected: transient measurement "
                               "failure");
    }
    if (roll(spec_.clock_reject_rate)) {
        note(FaultKind::ClockRejection);
        throw MeasurementError(
                MeasureErrc::ClockRejected,
                detail::concat("injected: driver rejected clocks (",
                               cfg.core_mhz, ", ", cfg.mem_mhz,
                               ") MHz"));
    }
}

cupti::RawMetrics
FaultInjectingBackend::profileKernel(const sim::KernelDemand &kernel,
                                     const gpu::FreqConfig &cfg)
{
    throwEntryFaults(cfg);
    const bool hang = roll(spec_.hang_rate);
    const bool drop = roll(spec_.drop_event_rate);

    cupti::RawMetrics rm = inner_.profileKernel(kernel, cfg);

    // A full Table I collection replays the kernel once per event
    // group (~5 passes).
    last_call_s_ = 5.0 * rm.time_s;
    if (hang) {
        note(FaultKind::Hang);
        last_call_s_ += spec_.hang_latency_s;
    }
    if (drop) {
        note(FaultKind::DroppedEvents);
        // A dropped event group reads back zero: the memory-side
        // counters are the flakiest on real stacks.
        rm.l2_rd_bytes = 0.0;
        rm.l2_wr_bytes = 0.0;
        rm.dram_rd_bytes = 0.0;
        rm.dram_wr_bytes = 0.0;
    }
    return rm;
}

nvml::PowerMeasurement
FaultInjectingBackend::measurePower(const sim::KernelDemand &kernel,
                                    const gpu::FreqConfig &cfg,
                                    int repetitions,
                                    double min_duration_s)
{
    throwEntryFaults(cfg);
    const bool hang = roll(spec_.hang_rate);
    const bool stuck = roll(spec_.stuck_rate);
    const bool spike = roll(spec_.spike_rate);
    const bool nan = roll(spec_.nan_rate);

    nvml::PowerMeasurement m = inner_.measurePower(
            kernel, cfg, repetitions, min_duration_s);

    last_call_s_ = m.run_duration_s * repetitions;
    if (hang) {
        note(FaultKind::Hang);
        last_call_s_ += spec_.hang_latency_s;
    }

    const double fresh = m.power_w;
    if (nan) {
        note(FaultKind::NanSample);
        m.power_w = std::numeric_limits<double>::quiet_NaN();
    } else if (spike) {
        note(FaultKind::PowerSpike);
        m.power_w *= spec_.spike_factor;
    } else if (stuck && stale_power_w_ >= 0.0) {
        note(FaultKind::StuckSensor);
        m.power_w = stale_power_w_;
    }
    stale_power_w_ = fresh;
    return m;
}

double
FaultInjectingBackend::measureIdlePower(const gpu::FreqConfig &cfg)
{
    throwEntryFaults(cfg);
    const bool hang = roll(spec_.hang_rate);
    const bool stuck = roll(spec_.stuck_rate);
    const bool spike = roll(spec_.spike_rate);
    const bool nan = roll(spec_.nan_rate);

    double p = inner_.measureIdlePower(cfg);

    // Idle sampling is a short fixed sensor window.
    last_call_s_ = 0.5;
    if (hang) {
        note(FaultKind::Hang);
        last_call_s_ += spec_.hang_latency_s;
    }

    const double fresh = p;
    if (nan) {
        note(FaultKind::NanSample);
        p = std::numeric_limits<double>::quiet_NaN();
    } else if (spike) {
        note(FaultKind::PowerSpike);
        p *= spec_.spike_factor;
    } else if (stuck && stale_power_w_ >= 0.0) {
        note(FaultKind::StuckSensor);
        p = stale_power_w_;
    }
    stale_power_w_ = fresh;
    return p;
}

} // namespace model
} // namespace gpupm
