#include "validate.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "common/logging.hh"
#include "common/numio.hh"
#include "gpu/components.hh"

namespace gpupm
{
namespace model
{

std::string_view
valSeverityName(ValSeverity severity)
{
    return severity == ValSeverity::Error ? "error" : "warning";
}

void
ValidationReport::addError(std::string code, std::string message)
{
    issues.push_back({ValSeverity::Error, std::move(code),
                      std::move(message)});
}

void
ValidationReport::addWarning(std::string code, std::string message)
{
    issues.push_back({ValSeverity::Warning, std::move(code),
                      std::move(message)});
}

std::size_t
ValidationReport::errorCount() const
{
    return static_cast<std::size_t>(std::count_if(
            issues.begin(), issues.end(), [](const auto &i) {
                return i.severity == ValSeverity::Error;
            }));
}

std::size_t
ValidationReport::warningCount() const
{
    return issues.size() - errorCount();
}

std::string
ValidationReport::summary() const
{
    std::ostringstream os;
    os << subject << ": ";
    if (issues.empty()) {
        os << "OK\n";
        return os.str();
    }
    os << errorCount() << " error(s), " << warningCount()
       << " warning(s)\n";
    for (const auto &i : issues)
        os << "  " << valSeverityName(i.severity) << " [" << i.code
           << "] " << i.message << "\n";
    return os.str();
}

namespace
{

void
putJsonString(std::ostringstream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default: os << c;
        }
    }
    os << '"';
}

} // namespace

std::string
ValidationReport::toJson() const
{
    std::ostringstream os;
    os << "{\"subject\":";
    putJsonString(os, subject);
    os << ",\"ok\":" << (ok() ? "true" : "false");
    os << ",\"errors\":" << numio::formatLong(
            static_cast<long>(errorCount()));
    os << ",\"warnings\":" << numio::formatLong(
            static_cast<long>(warningCount()));
    os << ",\"issues\":[";
    for (std::size_t i = 0; i < issues.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"severity\":\"" << valSeverityName(issues[i].severity)
           << "\",\"code\":";
        putJsonString(os, issues[i].code);
        os << ",\"message\":";
        putJsonString(os, issues[i].message);
        os << "}";
    }
    os << "]}\n";
    return os.str();
}

namespace
{

std::string
cfgStr(const gpu::FreqConfig &cfg)
{
    return detail::concat("(", cfg.core_mhz, ", ", cfg.mem_mhz, ")");
}

/** Shared grid checks for campaigns (reported into `r`). */
void
checkConfigGrid(ValidationReport &r,
                const std::vector<gpu::FreqConfig> &configs)
{
    if (configs.empty()) {
        r.addError("no-configs", "no measured configurations");
        return;
    }
    std::map<std::pair<int, int>, int> seen;
    for (const auto &cfg : configs) {
        if (cfg.core_mhz <= 0 || cfg.mem_mhz <= 0)
            r.addError("config-nonpositive",
                       detail::concat("non-positive clock in config ",
                                      cfgStr(cfg)));
        if (++seen[{cfg.core_mhz, cfg.mem_mhz}] == 2)
            r.addError("config-duplicate",
                       detail::concat("configuration ", cfgStr(cfg),
                                      " appears more than once"));
    }
}

} // namespace

ValidationReport
validateTrainingData(const TrainingData &data)
{
    ValidationReport r;
    r.subject = "campaign";

    checkConfigGrid(r, data.configs);

    const auto ref_ci = data.configIndex(data.reference);
    if (!data.configs.empty() && !ref_ci)
        r.addError("reference-missing",
                   detail::concat("reference configuration ",
                                  cfgStr(data.reference),
                                  " is not in the measured grid"));

    if (data.utils.empty())
        r.addError("no-benchmarks", "no microbenchmark rows");
    if (data.power_w.size() != data.utils.size())
        r.addError("row-count-mismatch",
                   detail::concat("power rows (", data.power_w.size(),
                                  ") != utilization rows (",
                                  data.utils.size(), ")"));

    // Per-benchmark row completeness.
    for (std::size_t b = 0; b < data.power_w.size(); ++b) {
        if (data.power_w[b].size() != data.configs.size()) {
            r.addError("row-size-mismatch",
                       detail::concat("benchmark ", b, " has ",
                                      data.power_w[b].size(),
                                      " power cells for ",
                                      data.configs.size(),
                                      " configurations"));
        }
    }

    // Utilizations are rates in [0, 1] by Eq. 8-10.
    bool any_idle = false;
    for (std::size_t b = 0; b < data.utils.size(); ++b) {
        bool idle = true;
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i) {
            const double u = data.utils[b][i];
            if (!std::isfinite(u)) {
                r.addError("util-not-finite",
                           detail::concat("benchmark ", b,
                                          " component ", i,
                                          ": non-finite utilization"));
                idle = false;
                continue;
            }
            if (u < 0.0 || u > 1.0 + 1e-6)
                r.addError(
                        "util-out-of-range",
                        detail::concat("benchmark ", b, " component ",
                                       i, ": utilization ",
                                       numio::formatDouble(u),
                                       " outside [0, 1]"));
            if (u != 0.0)
                idle = false;
        }
        any_idle = any_idle || idle;
    }
    if (!data.utils.empty() && !any_idle)
        r.addWarning("no-idle-row",
                     "no all-zero-utilization (idle) row: per-level "
                     "constant terms are pinned by noisy rows only");

    // Power must be finite and non-negative.
    for (std::size_t b = 0; b < data.power_w.size(); ++b) {
        for (std::size_t c = 0; c < data.power_w[b].size(); ++c) {
            const double p = data.power_w[b][c];
            if (!std::isfinite(p))
                r.addError("power-not-finite",
                           detail::concat("benchmark ", b, " config ",
                                          c, ": non-finite power"));
            else if (p < 0.0)
                r.addError("power-negative",
                           detail::concat("benchmark ", b, " config ",
                                          c, ": negative power ",
                                          numio::formatDouble(p)));
        }
    }

    // Identifiability of the bilinear system (mirrors the estimator's
    // DegenerateGrid guardrail): with several configurations, at
    // least one must perturb exactly one clock domain relative to the
    // reference or the Eq. 11 initialization has nothing to hold on.
    if (ref_ci && data.configs.size() >= 2) {
        bool axis_aligned = false;
        for (const auto &cfg : data.configs) {
            if (cfg == data.reference)
                continue;
            if ((cfg.mem_mhz == data.reference.mem_mhz &&
                 cfg.core_mhz < data.reference.core_mhz) ||
                (cfg.core_mhz == data.reference.core_mhz &&
                 cfg.mem_mhz != data.reference.mem_mhz))
                axis_aligned = true;
        }
        if (!axis_aligned)
            r.addError("grid-underidentified",
                       "no configuration perturbs a single clock "
                       "domain of the reference: the bilinear "
                       "voltage/coefficient system cannot be "
                       "initialized (Eq. 11)");
    }

    // Power should broadly rise with core frequency at a fixed memory
    // clock. A mild dip is measurement noise; a strong inversion
    // suggests scrambled rows or mislabeled configurations.
    if (ref_ci && r.ok() && !data.utils.empty()) {
        std::map<int, std::vector<std::size_t>> by_mem;
        for (std::size_t ci = 0; ci < data.configs.size(); ++ci)
            by_mem[data.configs[ci].mem_mhz].push_back(ci);
        for (auto &[fm, group] : by_mem) {
            std::sort(group.begin(), group.end(),
                      [&](std::size_t x, std::size_t y) {
                          return data.configs[x].core_mhz <
                                 data.configs[y].core_mhz;
                      });
            double prev_mean = -1.0;
            for (std::size_t ci : group) {
                double mean = 0.0;
                for (std::size_t b = 0; b < data.power_w.size(); ++b)
                    mean += data.power_w[b][ci];
                mean /= static_cast<double>(data.power_w.size());
                if (prev_mean >= 0.0 && mean < 0.8 * prev_mean) {
                    r.addWarning(
                            "power-nonmonotone",
                            detail::concat(
                                    "mean power drops by more than "
                                    "20% between adjacent core "
                                    "clocks at fmem=",
                                    fm, " MHz (config ",
                                    cfgStr(data.configs[ci]), ")"));
                }
                prev_mean = mean;
            }
        }
    }

    return r;
}

ValidationReport
validateModel(const DvfsPowerModel &model)
{
    ValidationReport r;
    r.subject = "model";

    const auto &p = model.params();
    const auto check_coeff = [&](const char *name, double v) {
        if (!std::isfinite(v))
            r.addError("param-not-finite",
                       detail::concat("coefficient ", name,
                                      " is non-finite"));
        else if (v < -1e-9)
            r.addError("coefficient-negative",
                       detail::concat("coefficient ", name, " = ",
                                      numio::formatDouble(v),
                                      " is negative (physical "
                                      "capacitance/leakage aggregates "
                                      "cannot be)"));
    };
    check_coeff("beta0", p.beta0);
    check_coeff("beta1", p.beta1);
    check_coeff("beta2", p.beta2);
    check_coeff("beta3", p.beta3);
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
        check_coeff(std::string(gpu::componentName(
                            static_cast<gpu::Component>(i)))
                            .c_str(),
                    p.omega[i]);

    const auto ref = model.reference();
    if (ref.core_mhz <= 0 || ref.mem_mhz <= 0)
        r.addError("reference-nonpositive",
                   detail::concat("non-positive reference clocks ",
                                  cfgStr(ref)));

    const auto &table = model.voltageTable();
    if (table.empty()) {
        r.addError("voltage-table-empty",
                   "model has no fitted voltage pairs");
        return r;
    }

    for (const auto &[key, v] : table) {
        const gpu::FreqConfig cfg{key.first, key.second};
        if (!std::isfinite(v.core) || !std::isfinite(v.mem))
            r.addError("voltage-not-finite",
                       detail::concat("non-finite voltage at ",
                                      cfgStr(cfg)));
        else if (v.core <= 0.0 || v.mem <= 0.0)
            r.addError("voltage-nonpositive",
                       detail::concat("non-positive voltage at ",
                                      cfgStr(cfg)));
        else if (v.core < 0.3 || v.core > 3.0 || v.mem < 0.3 ||
                 v.mem > 3.0)
            r.addWarning("voltage-implausible",
                         detail::concat(
                                 "normalized voltage at ", cfgStr(cfg),
                                 " is (",
                                 numio::formatDouble(v.core), ", ",
                                 numio::formatDouble(v.mem),
                                 "), far from any plausible silicon "
                                 "operating point"));
    }

    if (!model.hasVoltages(ref)) {
        r.addError("reference-voltages-missing",
                   detail::concat("no fitted voltages at the "
                                  "reference configuration ",
                                  cfgStr(ref)));
    } else {
        const auto v = model.voltages(ref);
        if (std::abs(v.core - 1.0) > 1e-6 ||
            std::abs(v.mem - 1.0) > 1e-6)
            r.addWarning("reference-not-normalized",
                         detail::concat(
                                 "reference voltages are (",
                                 numio::formatDouble(v.core), ", ",
                                 numio::formatDouble(v.mem),
                                 "), not the Eq. 5 normalization "
                                 "(1, 1)"));
    }

    // Eq. 12 monotonicity: V̄core non-decreasing in fcore within each
    // memory clock, V̄mem non-decreasing in fmem within each core
    // clock. (The table is keyed (core, mem) in sorted order.)
    std::map<int, std::vector<std::pair<int, double>>> core_by_mem;
    std::map<int, std::vector<std::pair<int, double>>> mem_by_core;
    for (const auto &[key, v] : table) {
        core_by_mem[key.second].emplace_back(key.first, v.core);
        mem_by_core[key.first].emplace_back(key.second, v.mem);
    }
    const auto check_monotone = [&](auto &groups, const char *what) {
        for (auto &[fixed, pts] : groups) {
            std::sort(pts.begin(), pts.end());
            for (std::size_t i = 1; i < pts.size(); ++i) {
                if (pts[i].second < pts[i - 1].second - 1e-6) {
                    r.addError(
                            "voltage-nonmonotone",
                            detail::concat(
                                    what, " voltage drops from ",
                                    numio::formatDouble(
                                            pts[i - 1].second),
                                    " to ",
                                    numio::formatDouble(pts[i].second),
                                    " between ", pts[i - 1].first,
                                    " and ", pts[i].first,
                                    " MHz (violates Eq. 12)"));
                }
            }
        }
    };
    check_monotone(core_by_mem, "core");
    check_monotone(mem_by_core, "memory");

    return r;
}

ValidationReport
validateCheckpoint(const CampaignCheckpoint &ck)
{
    ValidationReport r;
    r.subject = "checkpoint";

    checkConfigGrid(r, ck.configs);

    const std::size_t nb = ck.benchmark_names.size();
    const std::size_t nc = ck.configs.size();
    if (nb == 0)
        r.addError("no-benchmarks", "no microbenchmark rows");

    const auto size_check = [&](const char *what, std::size_t got,
                                std::size_t want) {
        if (got != want)
            r.addError("row-count-mismatch",
                       detail::concat(what, " has ", got,
                                      " entries for ", want,
                                      " benchmarks"));
    };
    size_check("utils_done", ck.utils_done.size(), nb);
    size_check("utils", ck.utils.size(), nb);
    size_check("power_done", ck.power_done.size(), nb);
    size_check("power_w", ck.power_w.size(), nb);

    for (std::size_t b = 0; b < ck.power_done.size(); ++b)
        if (ck.power_done[b].size() != nc)
            r.addError("row-size-mismatch",
                       detail::concat("power_done row ", b, " has ",
                                      ck.power_done[b].size(),
                                      " cells for ", nc,
                                      " configurations"));
    for (std::size_t b = 0; b < ck.power_w.size(); ++b)
        if (ck.power_w[b].size() != nc)
            r.addError("row-size-mismatch",
                       detail::concat("power_w row ", b, " has ",
                                      ck.power_w[b].size(),
                                      " cells for ", nc,
                                      " configurations"));

    for (std::size_t b = 0; b < ck.utils.size(); ++b)
        for (double u : ck.utils[b])
            if (!std::isfinite(u))
                r.addError("util-not-finite",
                           detail::concat("benchmark ", b,
                                          ": non-finite utilization"));
    for (std::size_t b = 0; b < ck.power_w.size(); ++b)
        for (double p : ck.power_w[b])
            if (!std::isfinite(p))
                r.addError("power-not-finite",
                           detail::concat("benchmark ", b,
                                          ": non-finite power"));

    if (ck.report.cells_done > ck.report.cells_total)
        r.addWarning("report-inconsistent",
                     detail::concat("report claims ",
                                    ck.report.cells_done,
                                    " cells done of ",
                                    ck.report.cells_total));
    if (!ck.report.benchmarks.empty() &&
        ck.report.benchmarks.size() != nb)
        r.addWarning("report-inconsistent",
                     detail::concat("report has ",
                                    ck.report.benchmarks.size(),
                                    " benchmark entries for ", nb,
                                    " benchmarks"));

    return r;
}

ValidationReport
validateScoreboard(const obs::Scoreboard &sb)
{
    ValidationReport r;
    r.subject = "scoreboard";

    auto checkStats = [&r](const std::string &where,
                           const obs::ScoreStats &st) {
        if (st.samples < 0)
            r.addError("stats-negative-count",
                       detail::concat(where, ": negative sample "
                                             "count ",
                                      st.samples));
        const std::pair<const char *, double> fields[] = {
            {"MAE", st.mae_pct},
            {"RMSE", st.rmse_w},
            {"max error", st.max_err_pct},
            {"mean measured power", st.mean_measured_w},
        };
        for (const auto &[what, v] : fields) {
            if (!std::isfinite(v))
                r.addError("stats-not-finite",
                           detail::concat(where, ": non-finite ",
                                          what));
            else if (v < 0.0)
                r.addError("stats-negative",
                           detail::concat(where, ": negative ", what,
                                          " (", v, ")"));
        }
    };

    checkStats("summary", sb.overall);
    long app_samples = 0;
    for (const obs::AppScore &a : sb.per_app) {
        checkStats(detail::concat("app '", a.app, "'"), a.stats);
        app_samples += a.stats.samples;
    }
    if (!sb.per_app.empty() && app_samples != sb.overall.samples)
        r.addWarning("per-app-count-mismatch",
                     detail::concat("per-app sample counts add up to ",
                                    app_samples, " but the summary "
                                                 "claims ",
                                    sb.overall.samples));
    for (const obs::ConfigScore &c : sb.per_config) {
        checkStats(detail::concat("config ", c.cfg.core_mhz, "/",
                                  c.cfg.mem_mhz),
                   c.stats);
        if (c.cfg.core_mhz <= 0 || c.cfg.mem_mhz <= 0)
            r.addError("config-implausible",
                       detail::concat("non-positive clocks ",
                                      c.cfg.core_mhz, "/",
                                      c.cfg.mem_mhz));
    }
    for (const auto *marginal : {&sb.core_marginal, &sb.mem_marginal})
        for (const obs::MarginalScore &m : *marginal)
            checkStats(detail::concat("marginal ", m.mhz, " MHz"),
                       m.stats);
    for (const obs::BaselineScore &b : sb.baselines)
        if (!std::isfinite(b.mae_pct) || b.mae_pct < 0.0)
            r.addError("baseline-mae-implausible",
                       detail::concat("baseline '", b.name,
                                      "': bad MAE"));
    if (sb.reference.core_mhz <= 0 || sb.reference.mem_mhz <= 0)
        r.addWarning("reference-implausible",
                     detail::concat("reference clocks ",
                                    sb.reference.core_mhz, "/",
                                    sb.reference.mem_mhz));

    if (!sb.samples.empty()) {
        if (static_cast<long>(sb.samples.size()) !=
            sb.overall.samples)
            r.addError("summary-samples-inconsistent",
                       detail::concat("summary claims ",
                                      sb.overall.samples,
                                      " samples but ",
                                      sb.samples.size(),
                                      " residuals are present"));
        for (const obs::ResidualSample &s : sb.samples) {
            if (!std::isfinite(s.measured_w) || s.measured_w < 0.0 ||
                !std::isfinite(s.predicted_w) || s.predicted_w < 0.0) {
                r.addError("residual-implausible",
                           detail::concat("app '", s.app, "' at ",
                                          s.cfg.core_mhz, "/",
                                          s.cfg.mem_mhz,
                                          ": bad power values"));
                break;
            }
        }
        // The stored summary must agree with one recomputed from the
        // residuals; a tampered headline number fails validation.
        obs::Scoreboard copy = sb;
        copy.recomputeAggregates();
        const double tol = 1e-6 +
                           1e-9 * std::abs(sb.overall.mae_pct);
        if (std::abs(copy.overall.mae_pct - sb.overall.mae_pct) > tol)
            r.addError("summary-samples-inconsistent",
                       detail::concat("stored overall MAE ",
                                      sb.overall.mae_pct,
                                      "% does not match the value "
                                      "recomputed from the residuals (",
                                      copy.overall.mae_pct, "%)"));
    }
    return r;
}

} // namespace model
} // namespace gpupm
