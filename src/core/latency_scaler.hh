/**
 * @file
 * First-order execution-time scaling across V-F configurations.
 *
 * The power model alone ranks configurations by power; energy and
 * energy-delay objectives additionally need the execution time at
 * each configuration. At the reference configuration each Eq. 8/9
 * utilization is the component's share of the execution time, so
 * scaling every share by its domain's clock ratio and re-taking the
 * smooth maximum gives a counters-only latency estimate — the same
 * bottleneck structure the substrate uses, but driven purely by
 * host-visible quantities. This enables the paper's DVFS-management
 * use case end-to-end and is the building block of the Sec. VII
 * future-work online governor.
 */

#ifndef GPUPM_CORE_LATENCY_SCALER_HH
#define GPUPM_CORE_LATENCY_SCALER_HH

#include "gpu/device.hh"

namespace gpupm
{
namespace model
{

/** Counters-only execution-time scaling model. */
class LatencyScaler
{
  public:
    /**
     * @param reference  configuration the utilizations were measured
     *                   at.
     * @param overlap_p  smooth-maximum exponent (matches the
     *                   bottleneck structure of GPU kernels).
     */
    explicit LatencyScaler(gpu::FreqConfig reference,
                           double overlap_p = 6.0);

    /**
     * Predicted execution time at cfg for a kernel that took
     * time_ref_s at the reference with the given utilizations.
     * Unobserved slack (exposed latency, issue) scales with the core
     * clock.
     */
    double scaledTime(double time_ref_s,
                      const gpu::ComponentArray &util,
                      const gpu::FreqConfig &cfg) const;

    /** Relative slowdown factor (scaledTime / time_ref). */
    double slowdown(const gpu::ComponentArray &util,
                    const gpu::FreqConfig &cfg) const;

    gpu::FreqConfig reference() const { return reference_; }

  private:
    gpu::FreqConfig reference_;
    double overlap_p_;
};

} // namespace model
} // namespace gpupm

#endif // GPUPM_CORE_LATENCY_SCALER_HH
