/**
 * @file
 * The Sec. III-D iterative model-estimation algorithm.
 *
 * Inputs: the training measurements of the microbenchmark suite — one
 * utilization vector per microbenchmark (profiled at the reference
 * configuration) and one measured average power per (microbenchmark,
 * V-F configuration) pair.
 *
 * The coefficients X and the per-configuration normalized voltages V̄
 * are coupled (Eqs. 6-7 are bilinear in them), so a single least
 * squares is rank-deficient; the algorithm alternates:
 *
 *  1. initialize X assuming V̄ = 1 on the reference configuration and
 *     two perturbed configurations (Eq. 11);
 *  2. per configuration, fit (V̄core, V̄mem) with the monotonicity
 *     constraint V̄(f1) >= V̄(f2) for f1 > f2 (Eq. 12, enforced by
 *     pool-adjacent-violators);
 *  3. refit X by (non-negative, lightly ridged) least squares over all
 *     configurations with the voltages fixed;
 *  4. iterate 2-3 until the fit converges or an iteration cap is hit
 *     (the paper observes convergence in < 50 iterations).
 */

#ifndef GPUPM_CORE_ESTIMATOR_HH
#define GPUPM_CORE_ESTIMATOR_HH

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/power_model.hh"
#include "core/resilient.hh"
#include "gpu/device.hh"
#include "linalg/lstsq.hh"
#include "obs/convergence.hh"

namespace gpupm
{
namespace model
{

/** Training measurements of one microbenchmark suite campaign. */
struct TrainingData
{
    gpu::DeviceKind device = gpu::DeviceKind::GtxTitanX;
    gpu::FreqConfig reference{};
    /** All measured configurations. */
    std::vector<gpu::FreqConfig> configs;
    /** Per-microbenchmark utilizations at the reference config. */
    std::vector<gpu::ComponentArray> utils;
    /** Measured power, power[b][c] for microbenchmark b, config c. */
    std::vector<std::vector<double>> power_w;

    /** Index of a configuration in configs; nullopt when absent. */
    std::optional<std::size_t>
    configIndex(const gpu::FreqConfig &cfg) const;
};

/** Estimation options (defaults reproduce the paper's setup). */
struct EstimatorOptions
{
    int max_iterations = 50;
    /** Relative SSE improvement below which iteration stops. */
    double tolerance = 2e-4;
    /** Ridge weight of the coefficient fit (resolves the static-term
     *  degeneracy of the V̄ = 1 initialization). */
    double ridge = 1e-3;
    /** Enforce non-negative coefficients (physical prior). */
    bool nonnegative = true;
    /** Fit per-configuration voltages (false = V̄ ≡ 1 ablation). */
    bool fit_voltages = true;
    /** Enforce the Eq. 12 monotonicity constraint. */
    bool monotonic_voltages = true;
    /** Allow the memory voltage to scale (false pins V̄mem = 1). */
    bool fit_mem_voltage = true;
    /** Voltage search range around the reference value (supply
     *  voltages cannot fall arbitrarily — boards keep a retention
     *  floor). */
    double v_min = 0.7;
    double v_max = 1.7;
    /**
     * Least-squares weight of the idle (all-zero-utilization)
     * microbenchmark rows. Idle power pins the per-V-F-level constant
     * terms exactly — it has no counter noise and no utilization drift
     * — so it earns more weight than one row among 83.
     */
    double idle_row_weight = 8.0;
    /**
     * Convergence-telemetry hook: receives one IterationRecord per
     * outer iteration (and the Eq. 11 initialization as iteration 0).
     * Not owned; may be null. The pointed-to observer must outlive
     * the estimate() call.
     */
    obs::EstimatorObserver *observer = nullptr;
};

/**
 * Failure taxonomy of the estimator. Only conditions where no sane
 * model exists are errors; plain non-convergence within the iteration
 * budget is reported in EstimationResult, not here.
 */
enum class FitErrc
{
    BadInput,         ///< malformed or non-finite training data
    DegenerateGrid,   ///< V-F grid cannot identify the bilinear system
    NumericalFailure, ///< NaN/Inf appeared while iterating
};

/** Display name of a fit error code. */
std::string_view fitErrcName(FitErrc code);

/** Typed failure description of a fit, with the iteration trace. */
struct FitError
{
    FitErrc code = FitErrc::BadInput;
    std::string message;
    /** SSE per completed iteration up to the failure point. */
    std::vector<double> sse_history;
    int iterations = 0;
};

/** Estimation outcome. */
struct EstimationResult
{
    DvfsPowerModel model;
    int iterations = 0;
    bool converged = false;
    double rmse_w = 0.0;         ///< final fit RMSE over all samples
    std::vector<double> sse_history;
    /**
     * Numerical-conditioning diagnostics of the final coefficient
     * design matrix (normal-equation conditioning is the square of
     * this): pivot-ratio condition estimate and effective rank from
     * the column-pivoted QR.
     */
    double condition_number = 0.0;
    std::size_t design_rank = 0;
};

/** Value-or-typed-error result of a fit. */
using FitResult = Expected<EstimationResult, FitError>;

/** The iterative heuristic estimator. */
class ModelEstimator
{
  public:
    explicit ModelEstimator(EstimatorOptions opts = {});

    /**
     * Run the full Sec. III-D algorithm with typed error
     * propagation: malformed data, a grid too sparse to identify the
     * bilinear system, or a numerical breakdown mid-iteration all
     * come back as FitError — never as garbage coefficients.
     */
    FitResult tryEstimate(const TrainingData &data) const;

    /** tryEstimate, throwing on error (legacy convenience). */
    EstimationResult estimate(const TrainingData &data) const;

  private:
    /** Steps 1/3: coefficient fit with voltages fixed. */
    ModelParams fitCoefficients(
            const TrainingData &data,
            const std::vector<VoltagePair> &voltages,
            const std::vector<std::size_t> &config_subset,
            linalg::LstsqDiagnostics *diag = nullptr) const;

    /** Step 2: per-configuration voltage fit + monotonic projection,
     *  warm-started from the previous iterate. */
    std::vector<VoltagePair> fitVoltages(
            const TrainingData &data, const ModelParams &params,
            const std::vector<VoltagePair> &start,
            std::size_t ref_ci) const;

    /** Total squared error of a (params, voltages) pair. */
    double sse(const TrainingData &data, const ModelParams &params,
               const std::vector<VoltagePair> &voltages) const;

    EstimatorOptions opts_;
};

} // namespace model
} // namespace gpupm

#endif // GPUPM_CORE_ESTIMATOR_HH
