#include "latency_scaler.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "gpu/components.hh"

namespace gpupm
{
namespace model
{

using gpu::Component;
using gpu::componentIndex;

LatencyScaler::LatencyScaler(gpu::FreqConfig reference,
                             double overlap_p)
    : reference_(reference), overlap_p_(overlap_p)
{
    GPUPM_ASSERT(reference.core_mhz > 0 && reference.mem_mhz > 0,
                 "bad reference configuration");
    GPUPM_ASSERT(overlap_p >= 1.0, "p-norm exponent must be >= 1");
}

double
LatencyScaler::slowdown(const gpu::ComponentArray &util,
                        const gpu::FreqConfig &cfg) const
{
    GPUPM_ASSERT(cfg.core_mhz > 0 && cfg.mem_mhz > 0,
                 "bad target configuration");
    const double rc =
            static_cast<double>(reference_.core_mhz) / cfg.core_mhz;
    const double rm =
            static_cast<double>(reference_.mem_mhz) / cfg.mem_mhz;

    double sum_ref = 0.0, sum_cfg = 0.0;
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i) {
        const double r =
                i == componentIndex(Component::Dram) ? rm : rc;
        sum_ref += std::pow(util[i], overlap_p_);
        sum_cfg += std::pow(util[i] * r, overlap_p_);
    }
    // Whatever the counters do not account for scales with fcore.
    const double slack_p = std::max(0.0, 1.0 - sum_ref);
    sum_cfg += slack_p * std::pow(rc, overlap_p_);
    // Normalize so the reference configuration maps to exactly 1 even
    // when noisy counters over-commit the utilization vector
    // (sum_ref > 1).
    const double denom = std::max(1.0, sum_ref);
    return std::pow(sum_cfg / denom, 1.0 / overlap_p_);
}

double
LatencyScaler::scaledTime(double time_ref_s,
                          const gpu::ComponentArray &util,
                          const gpu::FreqConfig &cfg) const
{
    GPUPM_ASSERT(time_ref_s >= 0.0, "negative reference time");
    return time_ref_s * slowdown(util, cfg);
}

} // namespace model
} // namespace gpupm
