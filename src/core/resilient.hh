/**
 * @file
 * Resilience decorator over measurement backends.
 *
 * The Sec. V-A training procedure assumes every NVML read and CUPTI
 * collection succeeds; production measurement stacks do not. The
 * ResilientBackend decorator turns a flaky MeasurementBackend into a
 * dependable one:
 *
 *  - bounded retries with exponential backoff and seeded jitter for
 *    recoverable failures (transients, rejected clock requests);
 *  - per-call deadlines enforced against the backend's virtual call
 *    timer, so a wedged call is abandoned and retried;
 *  - robust power aggregation: repetitions are collected one by one
 *    and MAD-based outlier rejection discards spikes, stale sensor
 *    readings and NaN samples before the median is taken;
 *  - consensus profiling: event collections are repeated and combined
 *    field-wise by median, so a dropped event group cannot zero a
 *    utilization;
 *  - quarantine: a configuration that keeps failing after retries is
 *    excluded from further measurement and reported, instead of
 *    wedging the campaign.
 *
 * Failures surface as typed Expected results (or as typed
 * MeasurementError through the plain MeasurementBackend interface) —
 * never as process-killing panics.
 */

#ifndef GPUPM_CORE_RESILIENT_HH
#define GPUPM_CORE_RESILIENT_HH

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/random.hh"
#include "core/faults.hh"

namespace gpupm
{
namespace model
{

/** Typed failure description of a resilient call. */
struct Status
{
    MeasureErrc code = MeasureErrc::Fatal;
    std::string message;

    bool recoverable() const { return isRecoverable(code); }
};

/**
 * Value-or-typed-error result. The error type defaults to the
 * measurement Status above; other layers (persistence, estimation)
 * instantiate it with their own error vocabulary — any type with a
 * `message` string member works.
 */
template <typename T, typename E = Status>
class Expected
{
  public:
    Expected(T value) : value_(std::move(value)) {}
    Expected(E error) : error_(std::move(error)) {}

    bool ok() const { return value_.has_value(); }

    const T &value() const
    {
        GPUPM_ASSERT(ok(), "value() on failed Expected: ",
                     error_->message);
        return *value_;
    }

    const E &error() const
    {
        GPUPM_ASSERT(!ok(), "error() on successful Expected");
        return *error_;
    }

  private:
    std::optional<T> value_;
    std::optional<E> error_;
};

/** Recovery-policy knobs. */
struct ResilientOptions
{
    /** Retries per call after the first attempt. */
    int max_retries = 4;
    /** Delay before the first retry, seconds (virtual). */
    double backoff_base_s = 0.05;
    /** Geometric growth factor of the delay. */
    double backoff_factor = 2.0;
    /** Delay ceiling, seconds. */
    double backoff_max_s = 5.0;
    /** Uniform jitter applied to each delay: d * (1 ± frac). */
    double jitter_frac = 0.25;
    /** Seeds the jitter stream. */
    std::uint64_t jitter_seed = 77;
    /** Virtual per-call deadline; beyond it the call counts as hung. */
    double call_timeout_s = 30.0;
    /** Exhausted-retry failures at a config before quarantine. */
    int quarantine_threshold = 2;
    /** MAD modified-z-score cutoff for power repetitions. */
    double mad_threshold = 3.5;
    /** Minimum surviving repetitions for a valid power result. */
    int min_valid_repetitions = 2;
    /** Event collections combined per profile (field-wise median). */
    int profile_repetitions = 3;
};

/** What the resilience layer had to do, cumulatively. */
struct ResilienceCounters
{
    long attempts = 0;          ///< backend calls issued
    long retries = 0;           ///< attempts beyond each call's first
    long timeouts = 0;          ///< attempts abandoned at the deadline
    long call_failures = 0;     ///< calls that exhausted their retries
    long corrupt_samples = 0;   ///< NaN / non-finite power samples
    long outliers_rejected = 0; ///< finite samples rejected by MAD
    long quarantined_calls = 0; ///< calls refused against quarantine
    double backoff_total_s = 0.0; ///< virtual seconds spent backing off
};

/** Resilient decorator; wraps (does not own) an inner backend. */
class ResilientBackend : public MeasurementBackend
{
  public:
    explicit ResilientBackend(MeasurementBackend &inner,
                              ResilientOptions opts = {});

    // -- Typed interface ------------------------------------------------

    /** Consensus profile: repeated collections, field-wise median. */
    Expected<cupti::RawMetrics>
    tryProfileKernel(const sim::KernelDemand &kernel,
                     const gpu::FreqConfig &cfg);

    /**
     * Robust power measurement: `repetitions` single-run measurements
     * collected independently (each with retries), MAD outlier
     * rejection, median of the survivors.
     */
    Expected<nvml::PowerMeasurement>
    tryMeasurePower(const sim::KernelDemand &kernel,
                    const gpu::FreqConfig &cfg, int repetitions,
                    double min_duration_s);

    /** Robust idle-power measurement (same policy). */
    Expected<double> tryMeasureIdlePower(const gpu::FreqConfig &cfg,
                                         int repetitions);

    // -- MeasurementBackend (throws MeasurementError on failure) --------

    const gpu::DeviceDescriptor &descriptor() const override;

    cupti::RawMetrics profileKernel(const sim::KernelDemand &kernel,
                                    const gpu::FreqConfig &cfg)
            override;

    nvml::PowerMeasurement measurePower(const sim::KernelDemand &kernel,
                                        const gpu::FreqConfig &cfg,
                                        int repetitions,
                                        double min_duration_s)
            override;

    double measureIdlePower(const gpu::FreqConfig &cfg) override;

    void reseed(std::uint64_t seed) override;

    // -- Quarantine & accounting ----------------------------------------

    bool isQuarantined(const gpu::FreqConfig &cfg) const;

    /** Quarantined configurations, in quarantine order. */
    const std::vector<gpu::FreqConfig> &quarantined() const
    {
        return quarantine_order_;
    }

    const ResilienceCounters &counters() const { return counters_; }

    /**
     * The first `n` backoff delays (jitter applied) the given policy
     * and seed produce, seconds. Pure: two calls with equal arguments
     * return equal schedules — the property the retry loop inherits.
     */
    static std::vector<double>
    backoffSchedule(const ResilientOptions &opts, std::uint64_t seed,
                    int n);

  private:
    /** One call with retries; empty optional = exhausted retries. */
    template <typename T>
    Expected<T> runWithRetries(const gpu::FreqConfig &cfg,
                               const std::function<T()> &call);

    /** Record an exhausted-retry failure; maybe quarantine. */
    void notePersistentFailure(const gpu::FreqConfig &cfg);

    /** Deadline check against the inner backend's virtual timer. */
    void enforceDeadline() const;

    MeasurementBackend &inner_;
    const CallTimer *timer_; ///< inner as CallTimer, when it is one
    ResilientOptions opts_;
    Rng jitter_rng_;
    ResilienceCounters counters_;
    std::map<std::pair<int, int>, int> persistent_failures_;
    std::map<std::pair<int, int>, bool> quarantine_;
    std::vector<gpu::FreqConfig> quarantine_order_;
};

} // namespace model
} // namespace gpupm

#endif // GPUPM_CORE_RESILIENT_HH
