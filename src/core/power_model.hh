/**
 * @file
 * The DVFS-aware GPU power model (Sec. III-A, Eqs. 6-7).
 *
 *   Pcore = b0*Vc + Vc^2*fcore*(b1 + sum_i w_i*U_i)
 *   Pmem  = b2*Vm + Vm^2*fmem *(b3 + w_mem*U_dram)
 *
 * Voltages are normalized to the reference configuration (Eq. 5) and
 * stored as a per-configuration table fitted by the estimator, so the
 * model can predict the power of any application at any supported V-F
 * configuration from utilizations measured at the reference
 * configuration only, and decompose it per component.
 */

#ifndef GPUPM_CORE_POWER_MODEL_HH
#define GPUPM_CORE_POWER_MODEL_HH

#include <map>
#include <string>

#include "gpu/device.hh"

namespace gpupm
{
namespace model
{

/** The fitted coefficient vector X of Sec. III-D. */
struct ModelParams
{
    double beta0 = 0.0; ///< core static coefficient, W
    double beta1 = 0.0; ///< core idle V^2 f coefficient, W/GHz
    double beta2 = 0.0; ///< memory static coefficient, W
    double beta3 = 0.0; ///< memory idle V^2 f coefficient, W/GHz
    /**
     * Dynamic coefficient per component, W/GHz; the DRAM slot is the
     * memory-domain w_mem of Eq. 7, the rest are the core-domain w_i
     * of Eq. 6.
     */
    gpu::ComponentArray omega{};
};

/** Normalized (Vc, Vm) pair at one configuration. */
struct VoltagePair
{
    double core = 1.0;
    double mem = 1.0;
};

/** Per-component power prediction. */
struct PowerPrediction
{
    double total_w = 0.0;
    double constant_w = 0.0;  ///< static + idle terms of both domains
    double core_w = 0.0;      ///< whole core domain (Eq. 6)
    double mem_w = 0.0;       ///< whole memory domain (Eq. 7)
    gpu::ComponentArray component_w{}; ///< dynamic part per component
};

/** Fitted DVFS-aware power model for one device. */
class DvfsPowerModel
{
  public:
    DvfsPowerModel() = default;

    /**
     * @param kind  device the model was fitted for.
     * @param reference  configuration the utilizations refer to.
     * @param params  fitted coefficients.
     */
    DvfsPowerModel(gpu::DeviceKind kind, gpu::FreqConfig reference,
                   ModelParams params);

    /** Set the fitted voltage pair of one configuration. */
    void setVoltages(const gpu::FreqConfig &cfg, VoltagePair v);

    /** Fitted voltages at a configuration (fatal when absent). */
    VoltagePair voltages(const gpu::FreqConfig &cfg) const;

    /** Whether a configuration has fitted voltages. */
    bool hasVoltages(const gpu::FreqConfig &cfg) const;

    /**
     * Voltages for an arbitrary (possibly off-table) configuration,
     * linearly interpolated from the fitted table: the core voltage
     * along fcore within the nearest fitted memory clock, the memory
     * voltage along fmem within the nearest fitted core clock
     * (clamped at the table edges). This supports the paper's
     * "fine-grained V-F perturbations" use case (Sec. V-B, item 4).
     */
    VoltagePair voltagesInterpolated(const gpu::FreqConfig &cfg) const;

    /** Predict at an off-table configuration via interpolation. */
    PowerPrediction predictInterpolated(const gpu::ComponentArray &util,
                                        const gpu::FreqConfig &cfg)
            const;

    /**
     * Predict the power of an application at a configuration from its
     * reference-configuration utilization vector (Eqs. 6-7).
     */
    PowerPrediction predict(const gpu::ComponentArray &util,
                            const gpu::FreqConfig &cfg) const;

    /** Predict with explicit voltages (used by the estimator). */
    PowerPrediction predictWithVoltages(const gpu::ComponentArray &util,
                                        const gpu::FreqConfig &cfg,
                                        const VoltagePair &v) const;

    const ModelParams &params() const { return params_; }
    ModelParams &params() { return params_; }
    gpu::FreqConfig reference() const { return reference_; }
    gpu::DeviceKind deviceKind() const { return kind_; }

    /** All fitted configurations with their voltage pairs. */
    const std::map<std::pair<int, int>, VoltagePair> &
    voltageTable() const
    {
        return voltages_;
    }

    /** Serialize to a human-readable text form. */
    std::string serialize() const;

    /** Parse a model back from serialize() output (fatal on error). */
    static DvfsPowerModel deserialize(const std::string &text);

  private:
    gpu::DeviceKind kind_ = gpu::DeviceKind::GtxTitanX;
    gpu::FreqConfig reference_{};
    ModelParams params_{};
    std::map<std::pair<int, int>, VoltagePair> voltages_;
};

} // namespace model
} // namespace gpupm

#endif // GPUPM_CORE_POWER_MODEL_HH
