#include "campaign.hh"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "common/logging.hh"
#include "common/numio.hh"
#include "core/faults.hh"
#include "core/metrics.hh"
#include "core/model_io.hh"
#include "obs/standard.hh"
#include "obs/trace.hh"

namespace gpupm
{
namespace model
{

namespace
{

/**
 * The measured grid: the device's full configuration list, or the
 * intersection with opts.config_subset (reference always kept, device
 * order preserved so campaigns stay deterministic).
 */
std::vector<gpu::FreqConfig>
campaignGrid(const gpu::DeviceDescriptor &desc,
             const CampaignOptions &opts)
{
    const std::vector<gpu::FreqConfig> all = desc.allConfigs();
    if (opts.config_subset.empty())
        return all;
    const gpu::FreqConfig ref = desc.referenceConfig();
    std::vector<gpu::FreqConfig> grid;
    for (const gpu::FreqConfig &cfg : all) {
        const bool wanted =
                cfg == ref ||
                std::find(opts.config_subset.begin(),
                          opts.config_subset.end(),
                          cfg) != opts.config_subset.end();
        if (wanted)
            grid.push_back(cfg);
    }
    return grid;
}

} // namespace

TrainingData
runTrainingCampaign(MeasurementBackend &backend,
                    const std::vector<ubench::Microbenchmark> &suite,
                    const CampaignOptions &opts)
{
    GPUPM_ASSERT(!suite.empty(), "empty microbenchmark suite");
    const gpu::DeviceDescriptor &desc = backend.descriptor();
    obs::campaignRunsTotal().inc();

    GPUPM_TRACE_SPAN_NAMED(span, "campaign", "campaign.training");
    span.arg("device", desc.name);
    span.arg("benchmarks", numio::formatLong((long)suite.size()));

    TrainingData data;
    data.device = desc.kind;
    data.reference = desc.referenceConfig();
    data.configs = campaignGrid(desc, opts);

    // Performance events at the reference configuration only.
    for (const auto &mb : suite) {
        if (mb.demand.empty()) {
            data.utils.push_back(gpu::ComponentArray{});
            continue;
        }
        GPUPM_TRACE_SPAN_NAMED(pspan, "campaign", "campaign.profile");
        pspan.arg("benchmark", mb.name);
        const auto rm =
                backend.profileKernel(mb.demand, data.reference);
        data.utils.push_back(
                utilizationsFromMetrics(rm, desc, data.reference));
    }

    // Power at every configuration.
    data.power_w.assign(suite.size(), {});
    for (std::size_t b = 0; b < suite.size(); ++b) {
        GPUPM_TRACE_SPAN_NAMED(bspan, "campaign", "campaign.power");
        bspan.arg("benchmark", suite[b].name);
        data.power_w[b].reserve(data.configs.size());
        for (const gpu::FreqConfig &cfg : data.configs) {
            if (suite[b].demand.empty()) {
                data.power_w[b].push_back(
                        backend.measureIdlePower(cfg));
            } else {
                const auto m = backend.measurePower(
                        suite[b].demand, cfg,
                        opts.power_repetitions, opts.min_duration_s);
                data.power_w[b].push_back(m.power_w);
            }
        }
    }
    return data;
}

TrainingData
runTrainingCampaign(const sim::PhysicalGpu &board,
                    const std::vector<ubench::Microbenchmark> &suite,
                    const CampaignOptions &opts)
{
    SimulatedBackend backend(board, opts.seed);
    return runTrainingCampaign(backend, suite, opts);
}

std::string
CampaignReport::summary() const
{
    std::ostringstream os;
    os << "campaign report: " << cells_done << "/" << cells_total
       << " cells done (" << cells_resumed << " resumed, "
       << cells_failed << " failed)\n";
    os << "  resilience: " << totals.attempts << " attempts, "
       << totals.retries << " retries, " << totals.timeouts
       << " timeouts, " << totals.call_failures
       << " calls exhausted, " << totals.outliers_rejected
       << " outliers rejected, " << totals.corrupt_samples
       << " corrupt samples, " << totals.quarantined_calls
       << " quarantine refusals, " << totals.backoff_total_s
       << " s backoff\n";
    if (faults_injected > 0)
        os << "  faults injected: " << faults_injected << "\n";
    os << "  quarantined configurations: " << quarantined.size();
    for (const auto &cfg : quarantined)
        os << " (" << cfg.core_mhz << "," << cfg.mem_mhz << ")";
    os << "\n";
    long flagged = 0;
    for (const auto &b : benchmarks) {
        if (b.retries || b.call_failures || b.outliers_rejected ||
            b.corrupt_samples || b.timeouts) {
            ++flagged;
        }
    }
    os << "  benchmarks needing recovery: " << flagged << "/"
       << benchmarks.size() << "\n";
    for (const auto &b : benchmarks) {
        if (!(b.retries || b.call_failures || b.outliers_rejected ||
              b.corrupt_samples || b.timeouts))
            continue;
        os << "    " << b.name << ": " << b.retries << " retries, "
           << b.timeouts << " timeouts, " << b.call_failures
           << " failures, " << b.outliers_rejected << " outliers, "
           << b.corrupt_samples << " corrupt";
        if (b.faults_injected > 0)
            os << ", " << b.faults_injected << " faults";
        os << "\n";
    }
    return os.str();
}

std::string
CampaignReport::toJson() const
{
    std::ostringstream os;
    os << "{\"cells\":{\"total\":" << cells_total
       << ",\"done\":" << cells_done
       << ",\"resumed\":" << cells_resumed
       << ",\"failed\":" << cells_failed << "}";
    os << ",\"faults_injected\":" << faults_injected;
    os << ",\"resilience\":{\"attempts\":" << totals.attempts
       << ",\"retries\":" << totals.retries
       << ",\"timeouts\":" << totals.timeouts
       << ",\"call_failures\":" << totals.call_failures
       << ",\"corrupt_samples\":" << totals.corrupt_samples
       << ",\"outliers_rejected\":" << totals.outliers_rejected
       << ",\"quarantined_calls\":" << totals.quarantined_calls
       << ",\"backoff_seconds\":"
       << numio::formatDouble(totals.backoff_total_s) << "}";
    os << ",\"quarantined\":[";
    for (std::size_t i = 0; i < quarantined.size(); ++i) {
        if (i)
            os << ",";
        os << "{\"core_mhz\":" << quarantined[i].core_mhz
           << ",\"mem_mhz\":" << quarantined[i].mem_mhz << "}";
    }
    os << "],\"benchmarks\":[";
    bool first = true;
    for (const auto &b : benchmarks) {
        // Only the rows with something to report: the common case of
        // a clean benchmark would bloat the document with zeros.
        if (!(b.retries || b.call_failures || b.outliers_rejected ||
              b.corrupt_samples || b.timeouts || b.faults_injected))
            continue;
        if (!first)
            os << ",";
        first = false;
        std::string name;
        for (char c : b.name)
            name += (c == '"' || c == '\\') ? '_' : c;
        os << "{\"name\":\"" << name << "\",\"retries\":" << b.retries
           << ",\"timeouts\":" << b.timeouts
           << ",\"call_failures\":" << b.call_failures
           << ",\"outliers_rejected\":" << b.outliers_rejected
           << ",\"corrupt_samples\":" << b.corrupt_samples
           << ",\"faults_injected\":" << b.faults_injected << "}";
    }
    os << "]}\n";
    return os.str();
}

namespace
{

/**
 * Per-cell seed: depends only on (campaign seed, benchmark, config),
 * never on execution history, so an interrupted-and-resumed campaign
 * draws exactly the noise the uninterrupted one would have.
 */
std::uint64_t
cellSeed(std::uint64_t seed, std::size_t b, std::size_t c)
{
    const std::uint64_t cell = b * 4096 + c + 1;
    return seed ^ (cell * 0x9e3779b97f4a7c15ull);
}

/** Sentinel config index for the reference-profiling cells. */
constexpr std::size_t kProfileCell = 4000;

} // namespace

ResilientCampaignResult
runResilientTrainingCampaign(
        MeasurementBackend &backend,
        const std::vector<ubench::Microbenchmark> &suite,
        const ResilientCampaignOptions &opts)
{
    GPUPM_ASSERT(!suite.empty(), "empty microbenchmark suite");
    const gpu::DeviceDescriptor &desc = backend.descriptor();
    const gpu::FreqConfig reference = desc.referenceConfig();
    const std::vector<gpu::FreqConfig> grid =
            campaignGrid(desc, opts.base);
    const std::size_t nb = suite.size();
    const std::size_t nc = grid.size();
    GPUPM_ASSERT(nc < kProfileCell, "grid too large for cell seeding");
    obs::campaignRunsTotal().inc();

    GPUPM_TRACE_SPAN_NAMED(span, "campaign",
                           "campaign.training-resilient");
    span.arg("device", desc.name);
    span.arg("benchmarks", numio::formatLong((long)nb));
    span.arg("configs", numio::formatLong((long)nc));

    ResilientBackend shield(backend, opts.resilience);
    const auto *injector =
            dynamic_cast<const FaultInjectingBackend *>(&backend);

    // Working state: the full dense grid plus per-cell done flags.
    CampaignCheckpoint ck;
    ck.seed = opts.base.seed;
    ck.device = desc.kind;
    ck.reference = reference;
    ck.configs = grid;
    for (const auto &mb : suite)
        ck.benchmark_names.push_back(mb.name);
    ck.utils_done.assign(nb, 0);
    ck.utils.assign(nb, gpu::ComponentArray{});
    ck.power_done.assign(nb, std::vector<char>(nc, 0));
    ck.power_w.assign(nb, std::vector<double>(nc, 0.0));
    ck.report.benchmarks.resize(nb);
    for (std::size_t b = 0; b < nb; ++b)
        ck.report.benchmarks[b].name = suite[b].name;
    ck.report.cells_total = static_cast<long>(nb * (nc + 1));

    // Resume from an existing checkpoint when asked to.
    const bool checkpointing = !opts.checkpoint_path.empty();
    if (checkpointing &&
        std::filesystem::exists(opts.checkpoint_path)) {
        // A torn or corrupt checkpoint (crash mid-write, bit rot) is
        // a recoverable condition: the campaign restarts from scratch
        // rather than aborting, and cells are only ever counted from
        // a checkpoint that passed the envelope's size and CRC32
        // checks — a valid prefix resumes, anything else re-runs, and
        // no cell can be double-counted either way.
        auto prev_res =
                tryLoadCampaignCheckpoint(opts.checkpoint_path);
        if (!prev_res.ok()) {
            warn("ignoring unusable checkpoint '",
                       opts.checkpoint_path, "' [",
                       ioErrcName(prev_res.error().code),
                       "]: ", prev_res.error().message);
        } else if (prev_res.value().seed != ck.seed ||
                   prev_res.value().device != ck.device ||
                   prev_res.value().configs != ck.configs ||
                   prev_res.value().benchmark_names !=
                           ck.benchmark_names) {
            // A checkpoint that LOADS but belongs to a different
            // campaign is a user error (wrong --resume path), not a
            // recoverable fault: proceeding would overwrite it.
            GPUPM_FATAL("checkpoint '", opts.checkpoint_path,
                        "' does not match this campaign (different "
                        "seed, device, grid or suite)");
        } else {
        CampaignCheckpoint prev = std::move(prev_res.value());
        long resumed = 0;
        for (char d : prev.utils_done)
            resumed += d ? 1 : 0;
        for (const auto &row : prev.power_done)
            for (char d : row)
                resumed += d ? 1 : 0;
        ck = std::move(prev);
        ck.report.cells_resumed = resumed;
        obs::campaignCellsResumedTotal().inc(resumed);
        inform("resuming campaign from '", opts.checkpoint_path,
               "': ", resumed, " cells already measured");
        }
    }

    long measured_this_run = 0;
    long since_checkpoint = 0;
    bool stopped = false;
    const auto out_of_budget = [&] {
        return opts.max_cells > 0 &&
               measured_this_run >= opts.max_cells;
    };
    const auto save = [&] {
        if (checkpointing)
            saveCampaignCheckpoint(ck, opts.checkpoint_path);
        since_checkpoint = 0;
    };
    const auto after_cell = [&] {
        ++measured_this_run;
        obs::campaignCellsDoneTotal().inc();
        if (++since_checkpoint >= std::max(1, opts.checkpoint_every))
            save();
    };

    // Accounting helpers: ascribe counter deltas to one benchmark.
    ResilienceCounters before = shield.counters();
    long faults_before = injector ? injector->injected().total() : 0;
    const auto charge = [&](std::size_t b) {
        const ResilienceCounters &now = shield.counters();
        BenchmarkReport &br = ck.report.benchmarks[b];
        br.retries += now.retries - before.retries;
        br.call_failures += now.call_failures - before.call_failures;
        br.timeouts += now.timeouts - before.timeouts;
        br.outliers_rejected +=
                now.outliers_rejected - before.outliers_rejected;
        br.corrupt_samples +=
                now.corrupt_samples - before.corrupt_samples;
        if (injector) {
            const long f = injector->injected().total();
            br.faults_injected += f - faults_before;
            faults_before = f;
        }
        before = now;
    };

    // Pass 1: performance events at the reference configuration.
    {
    GPUPM_TRACE_SPAN("campaign", "campaign.pass.profile");
    for (std::size_t b = 0; b < nb && !stopped; ++b) {
        if (ck.utils_done[b])
            continue;
        if (out_of_budget()) {
            stopped = true;
            break;
        }
        if (!suite[b].demand.empty()) {
            GPUPM_TRACE_SPAN_NAMED(pspan, "campaign",
                                   "campaign.profile");
            pspan.arg("benchmark", suite[b].name);
            shield.reseed(cellSeed(ck.seed, b, kProfileCell));
            auto e = shield.tryProfileKernel(suite[b].demand,
                                             reference);
            charge(b);
            // Reference profiling feeds every utilization (Eq. 8-10);
            // a campaign that cannot profile at the reference cannot
            // train anything.
            GPUPM_FATAL_IF(!e.ok(), "cannot profile '", suite[b].name,
                           "' at the reference configuration: ",
                           e.error().message);
            ck.utils[b] = utilizationsFromMetrics(e.value(), desc,
                                                  reference);
        }
        ck.utils_done[b] = 1;
        after_cell();
    }
    }

    // Pass 2: power at every configuration.
    {
    GPUPM_TRACE_SPAN("campaign", "campaign.pass.power");
    for (std::size_t b = 0; b < nb && !stopped; ++b) {
        GPUPM_TRACE_SPAN_NAMED(bspan, "campaign", "campaign.power");
        bspan.arg("benchmark", suite[b].name);
        for (std::size_t c = 0; c < nc && !stopped; ++c) {
            if (ck.power_done[b][c])
                continue;
            if (out_of_budget()) {
                stopped = true;
                break;
            }
            const gpu::FreqConfig &cfg = grid[c];
            if (shield.isQuarantined(cfg))
                continue; // column is dropped at assembly
            shield.reseed(cellSeed(ck.seed, b, c));
            bool ok;
            if (suite[b].demand.empty()) {
                auto e = shield.tryMeasureIdlePower(
                        cfg, opts.base.power_repetitions);
                ok = e.ok();
                if (ok)
                    ck.power_w[b][c] = e.value();
            } else {
                auto e = shield.tryMeasurePower(
                        suite[b].demand, cfg,
                        opts.base.power_repetitions,
                        opts.base.min_duration_s);
                ok = e.ok();
                if (ok)
                    ck.power_w[b][c] = e.value().power_w;
            }
            charge(b);
            if (ok) {
                ck.power_done[b][c] = 1;
                after_cell();
            } else {
                ++ck.report.cells_failed;
                obs::campaignCellsFailedTotal().inc();
            }
        }
    }
    }

    // Totals and quarantine state into the report.
    {
        const ResilienceCounters &now = shield.counters();
        ResilienceCounters &t = ck.report.totals;
        t.attempts += now.attempts;
        t.retries += now.retries;
        t.timeouts += now.timeouts;
        t.call_failures += now.call_failures;
        t.corrupt_samples += now.corrupt_samples;
        t.outliers_rejected += now.outliers_rejected;
        t.quarantined_calls += now.quarantined_calls;
        t.backoff_total_s += now.backoff_total_s;
        if (injector) {
            ck.report.faults_injected +=
                    injector->injected().total();
            obs::campaignFaultsInjectedTotal().inc(
                    injector->injected().total());
        }
        for (const auto &cfg : shield.quarantined()) {
            if (std::find(ck.report.quarantined.begin(),
                          ck.report.quarantined.end(),
                          cfg) == ck.report.quarantined.end())
                ck.report.quarantined.push_back(cfg);
        }
    }
    long done = 0;
    for (char d : ck.utils_done)
        done += d ? 1 : 0;
    for (const auto &row : ck.power_done)
        for (char d : row)
            done += d ? 1 : 0;
    ck.report.cells_done = done;

    ResilientCampaignResult res;
    res.complete = !stopped;
    res.report = ck.report;

    if (stopped) {
        save();
        inform("campaign stopped after ", measured_this_run,
               " cells this run (checkpointed)");
        return res;
    }

    // Assemble the training data over the surviving grid: drop any
    // configuration that is quarantined or has an unmeasured cell.
    std::vector<std::size_t> keep;
    for (std::size_t c = 0; c < nc; ++c) {
        bool column_ok = !shield.isQuarantined(grid[c]);
        for (std::size_t b = 0; b < nb && column_ok; ++b)
            column_ok = ck.power_done[b][c] != 0;
        if (column_ok)
            keep.push_back(c);
    }
    const bool reference_ok =
            std::any_of(keep.begin(), keep.end(), [&](std::size_t c) {
                return grid[c] == reference;
            });
    GPUPM_FATAL_IF(!reference_ok,
                   "the reference configuration failed persistently; "
                   "no model can be trained from this campaign");
    if (keep.size() < nc) {
        warn("dropping ", nc - keep.size(), " of ", nc,
             " configurations from the training grid");
    }

    res.data.device = desc.kind;
    res.data.reference = reference;
    for (std::size_t c : keep)
        res.data.configs.push_back(grid[c]);
    res.data.utils = ck.utils;
    res.data.power_w.assign(nb, {});
    for (std::size_t b = 0; b < nb; ++b) {
        res.data.power_w[b].reserve(keep.size());
        for (std::size_t c : keep)
            res.data.power_w[b].push_back(ck.power_w[b][c]);
    }

    if (checkpointing)
        save();
    return res;
}

AppMeasurement
measureApp(const sim::PhysicalGpu &board,
           const sim::KernelDemand &demand,
           const std::vector<gpu::FreqConfig> &configs,
           const CampaignOptions &opts)
{
    GPUPM_ASSERT(!demand.empty(), "cannot measure an empty kernel");
    const gpu::DeviceDescriptor &desc = board.descriptor();

    AppMeasurement m;
    m.name = demand.name;
    m.configs = configs;

    cupti::Profiler profiler(board, opts.seed + 1000);
    const auto rm = profiler.profile(demand, desc.referenceConfig());
    m.util = utilizationsFromMetrics(rm, desc, desc.referenceConfig());

    nvml::Device dev(board, opts.seed + 2000);
    for (const gpu::FreqConfig &cfg : configs) {
        dev.setApplicationClocks(cfg.mem_mhz, cfg.core_mhz);
        const auto pm = dev.measureKernelPower(
                demand, opts.power_repetitions, opts.min_duration_s);
        m.power_w.push_back(pm.power_w);
        m.effective.push_back(pm.effective);
    }
    return m;
}

AppMeasurement
measureKernelSequence(const sim::PhysicalGpu &board,
                      const std::string &name,
                      const std::vector<sim::KernelDemand> &kernels,
                      const std::vector<gpu::FreqConfig> &configs,
                      const CampaignOptions &opts)
{
    GPUPM_ASSERT(!kernels.empty(), "application has no kernels");
    const gpu::DeviceDescriptor &desc = board.descriptor();
    const gpu::FreqConfig ref = desc.referenceConfig();

    AppMeasurement m;
    m.name = name;
    m.configs = configs;

    // Reference-configuration profiling of every kernel; the
    // application-level utilization is the time-weighted combination.
    cupti::Profiler profiler(board, opts.seed + 3000);
    std::vector<double> ref_time(kernels.size());
    double ref_total = 0.0;
    std::vector<gpu::ComponentArray> per_kernel_util(kernels.size());
    for (std::size_t k = 0; k < kernels.size(); ++k) {
        GPUPM_ASSERT(!kernels[k].empty(), "empty kernel in sequence");
        const auto rm = profiler.profile(kernels[k], ref);
        per_kernel_util[k] = utilizationsFromMetrics(rm, desc, ref);
        ref_time[k] = rm.time_s;
        ref_total += rm.time_s;
    }
    for (std::size_t k = 0; k < kernels.size(); ++k)
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
            m.util[i] += per_kernel_util[k][i] * ref_time[k] /
                         ref_total;

    // Power at each configuration: per-kernel measurements weighted by
    // the kernels' relative execution times at that configuration.
    nvml::Device dev(board, opts.seed + 4000);
    for (const gpu::FreqConfig &cfg : configs) {
        dev.setApplicationClocks(cfg.mem_mhz, cfg.core_mhz);
        double weighted_power = 0.0;
        double total_time = 0.0;
        gpu::FreqConfig effective = cfg;
        for (const auto &kernel : kernels) {
            const auto pm = dev.measureKernelPower(
                    kernel, opts.power_repetitions,
                    opts.min_duration_s);
            weighted_power += pm.power_w * pm.kernel_time_s;
            total_time += pm.kernel_time_s;
            if (pm.tdp_limited)
                effective = pm.effective;
        }
        m.power_w.push_back(weighted_power / total_time);
        m.effective.push_back(effective);
    }
    return m;
}

} // namespace model
} // namespace gpupm
