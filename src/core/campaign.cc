#include "campaign.hh"

#include "common/logging.hh"
#include "core/metrics.hh"

namespace gpupm
{
namespace model
{

TrainingData
runTrainingCampaign(MeasurementBackend &backend,
                    const std::vector<ubench::Microbenchmark> &suite,
                    const CampaignOptions &opts)
{
    GPUPM_ASSERT(!suite.empty(), "empty microbenchmark suite");
    const gpu::DeviceDescriptor &desc = backend.descriptor();

    TrainingData data;
    data.device = desc.kind;
    data.reference = desc.referenceConfig();
    data.configs = desc.allConfigs();

    // Performance events at the reference configuration only.
    for (const auto &mb : suite) {
        if (mb.demand.empty()) {
            data.utils.push_back(gpu::ComponentArray{});
            continue;
        }
        const auto rm =
                backend.profileKernel(mb.demand, data.reference);
        data.utils.push_back(
                utilizationsFromMetrics(rm, desc, data.reference));
    }

    // Power at every configuration.
    data.power_w.assign(suite.size(), {});
    for (std::size_t b = 0; b < suite.size(); ++b) {
        data.power_w[b].reserve(data.configs.size());
        for (const gpu::FreqConfig &cfg : data.configs) {
            if (suite[b].demand.empty()) {
                data.power_w[b].push_back(
                        backend.measureIdlePower(cfg));
            } else {
                const auto m = backend.measurePower(
                        suite[b].demand, cfg,
                        opts.power_repetitions, opts.min_duration_s);
                data.power_w[b].push_back(m.power_w);
            }
        }
    }
    return data;
}

TrainingData
runTrainingCampaign(const sim::PhysicalGpu &board,
                    const std::vector<ubench::Microbenchmark> &suite,
                    const CampaignOptions &opts)
{
    SimulatedBackend backend(board, opts.seed);
    return runTrainingCampaign(backend, suite, opts);
}

AppMeasurement
measureApp(const sim::PhysicalGpu &board,
           const sim::KernelDemand &demand,
           const std::vector<gpu::FreqConfig> &configs,
           const CampaignOptions &opts)
{
    GPUPM_ASSERT(!demand.empty(), "cannot measure an empty kernel");
    const gpu::DeviceDescriptor &desc = board.descriptor();

    AppMeasurement m;
    m.name = demand.name;
    m.configs = configs;

    cupti::Profiler profiler(board, opts.seed + 1000);
    const auto rm = profiler.profile(demand, desc.referenceConfig());
    m.util = utilizationsFromMetrics(rm, desc, desc.referenceConfig());

    nvml::Device dev(board, opts.seed + 2000);
    for (const gpu::FreqConfig &cfg : configs) {
        dev.setApplicationClocks(cfg.mem_mhz, cfg.core_mhz);
        const auto pm = dev.measureKernelPower(
                demand, opts.power_repetitions, opts.min_duration_s);
        m.power_w.push_back(pm.power_w);
        m.effective.push_back(pm.effective);
    }
    return m;
}

AppMeasurement
measureKernelSequence(const sim::PhysicalGpu &board,
                      const std::string &name,
                      const std::vector<sim::KernelDemand> &kernels,
                      const std::vector<gpu::FreqConfig> &configs,
                      const CampaignOptions &opts)
{
    GPUPM_ASSERT(!kernels.empty(), "application has no kernels");
    const gpu::DeviceDescriptor &desc = board.descriptor();
    const gpu::FreqConfig ref = desc.referenceConfig();

    AppMeasurement m;
    m.name = name;
    m.configs = configs;

    // Reference-configuration profiling of every kernel; the
    // application-level utilization is the time-weighted combination.
    cupti::Profiler profiler(board, opts.seed + 3000);
    std::vector<double> ref_time(kernels.size());
    double ref_total = 0.0;
    std::vector<gpu::ComponentArray> per_kernel_util(kernels.size());
    for (std::size_t k = 0; k < kernels.size(); ++k) {
        GPUPM_ASSERT(!kernels[k].empty(), "empty kernel in sequence");
        const auto rm = profiler.profile(kernels[k], ref);
        per_kernel_util[k] = utilizationsFromMetrics(rm, desc, ref);
        ref_time[k] = rm.time_s;
        ref_total += rm.time_s;
    }
    for (std::size_t k = 0; k < kernels.size(); ++k)
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
            m.util[i] += per_kernel_util[k][i] * ref_time[k] /
                         ref_total;

    // Power at each configuration: per-kernel measurements weighted by
    // the kernels' relative execution times at that configuration.
    nvml::Device dev(board, opts.seed + 4000);
    for (const gpu::FreqConfig &cfg : configs) {
        dev.setApplicationClocks(cfg.mem_mhz, cfg.core_mhz);
        double weighted_power = 0.0;
        double total_time = 0.0;
        gpu::FreqConfig effective = cfg;
        for (const auto &kernel : kernels) {
            const auto pm = dev.measureKernelPower(
                    kernel, opts.power_repetitions,
                    opts.min_duration_s);
            weighted_power += pm.power_w * pm.kernel_time_s;
            total_time += pm.kernel_time_s;
            if (pm.tdp_limited)
                effective = pm.effective;
        }
        m.power_w.push_back(weighted_power / total_time);
        m.effective.push_back(effective);
    }
    return m;
}

} // namespace model
} // namespace gpupm
