/**
 * @file
 * Deterministic fault injection for measurement backends.
 *
 * Real measurement stacks are flaky in well-documented ways: power
 * sensors return stale or impossible samples, CUPTI collections drop
 * event values, the driver rejects clock requests under contention,
 * and calls occasionally wedge until a watchdog gives up. The
 * FaultInjectingBackend decorator reproduces those failure modes on
 * top of any MeasurementBackend from an explicitly seeded stream, so
 * resilience machinery can be exercised — and its recovery behaviour
 * asserted bit-for-bit — without real broken hardware.
 *
 * All fault decisions derive from the FaultSpec seed (re-derivable via
 * reseed()), never from wall-clock state, keeping every injected
 * campaign reproducible and checkpoint/resume exact.
 */

#ifndef GPUPM_CORE_FAULTS_HH
#define GPUPM_CORE_FAULTS_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "core/backend.hh"

namespace gpupm
{
namespace model
{

/** The injectable failure modes. */
enum class FaultKind
{
    TransientFailure, ///< call throws a recoverable Transient error
    ClockRejection,   ///< call throws ClockRejected
    Hang,             ///< call succeeds but consumes hang_latency_s
    StuckSensor,      ///< power result replaced by the previous one
    PowerSpike,       ///< power result multiplied by spike_factor
    NanSample,        ///< power result replaced by NaN
    DroppedEvents,    ///< some profiled metric fields read back zero
    BrokenConfig,     ///< persistent failure at a listed V-F config
};

/** Number of FaultKind values (for per-kind counters). */
inline constexpr std::size_t kNumFaultKinds = 8;

/** Display name of a fault kind. */
std::string_view faultKindName(FaultKind kind);

/** Per-call injection probabilities; all default to "never". */
struct FaultSpec
{
    /** Seeds the fault-decision stream. */
    std::uint64_t seed = 2026;

    double transient_rate = 0.0;
    double clock_reject_rate = 0.0;
    double hang_rate = 0.0;
    /** Virtual latency a hung call consumes before returning. */
    double hang_latency_s = 60.0;
    double stuck_rate = 0.0;
    double spike_rate = 0.0;
    /** Multiplier a PowerSpike applies to the measured power. */
    double spike_factor = 6.0;
    double nan_rate = 0.0;
    double drop_event_rate = 0.0;

    /**
     * Configurations that fail on every call (a dead sensor rail, a
     * clock pair the board silently cannot hold). These are what the
     * resilient layer's quarantine exists for.
     */
    std::vector<gpu::FreqConfig> broken_configs;

    /**
     * A spec whose per-call probability of *some* fault is
     * approximately `total_rate`, spread over all transient kinds in
     * realistic proportions (mostly transients and bad samples, a few
     * hangs).
     */
    static FaultSpec uniform(double total_rate,
                             std::uint64_t seed = 2026);
};

/** How many faults of each kind a backend has injected. */
struct FaultCounters
{
    long by_kind[kNumFaultKinds] = {};

    long of(FaultKind kind) const
    {
        return by_kind[static_cast<std::size_t>(kind)];
    }

    long total() const
    {
        long s = 0;
        for (long c : by_kind)
            s += c;
        return s;
    }
};

/**
 * Virtual-duration reporting. The simulated substrate has no real
 * wall clock, so a backend that can account for how long its last
 * call "took" (kernel repetitions, sensor sampling windows, injected
 * hangs) exposes it through this interface; the resilient layer
 * enforces per-call deadlines against it.
 */
class CallTimer
{
  public:
    virtual ~CallTimer() = default;

    /** Virtual duration of the most recent backend call, seconds. */
    virtual double lastCallSeconds() const = 0;
};

/** Decorator injecting seeded faults around any backend. */
class FaultInjectingBackend : public MeasurementBackend,
                              public CallTimer
{
  public:
    /** Wraps (does not own) an inner backend. */
    FaultInjectingBackend(MeasurementBackend &inner, FaultSpec spec);

    const gpu::DeviceDescriptor &descriptor() const override;

    cupti::RawMetrics profileKernel(const sim::KernelDemand &kernel,
                                    const gpu::FreqConfig &cfg)
            override;

    nvml::PowerMeasurement measurePower(const sim::KernelDemand &kernel,
                                        const gpu::FreqConfig &cfg,
                                        int repetitions,
                                        double min_duration_s)
            override;

    double measureIdlePower(const gpu::FreqConfig &cfg) override;

    /** Re-derives the fault stream and forwards to the inner stack. */
    void reseed(std::uint64_t seed) override;

    double lastCallSeconds() const override { return last_call_s_; }

    /** Injection tally since construction (reseed preserves it). */
    const FaultCounters &injected() const { return counters_; }

  private:
    /** Throwing faults shared by every call at a configuration. */
    void throwEntryFaults(const gpu::FreqConfig &cfg);

    /** Uniform fault-decision draw. */
    bool roll(double rate);

    void note(FaultKind kind)
    {
        ++counters_.by_kind[static_cast<std::size_t>(kind)];
    }

    MeasurementBackend &inner_;
    FaultSpec spec_;
    Rng rng_;
    FaultCounters counters_;
    double last_call_s_ = 0.0;
    /** Last power the sensor returned, for StuckSensor staleness. */
    double stale_power_w_ = -1.0;
};

} // namespace model
} // namespace gpupm

#endif // GPUPM_CORE_FAULTS_HH
