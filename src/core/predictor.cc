#include "predictor.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpupm
{
namespace model
{

Predictor::Predictor(const DvfsPowerModel &model) : model_(model) {}

PowerPrediction
Predictor::at(const gpu::ComponentArray &util,
              const gpu::FreqConfig &cfg) const
{
    return model_.predict(util, cfg);
}

std::vector<SweepPoint>
Predictor::sweep(const gpu::ComponentArray &util) const
{
    std::vector<SweepPoint> out;
    out.reserve(model_.voltageTable().size());
    for (const auto &[key, v] : model_.voltageTable()) {
        const gpu::FreqConfig cfg{key.first, key.second};
        out.push_back({cfg, model_.predict(util, cfg)});
    }
    return out;
}

SweepPoint
Predictor::lowestPower(const gpu::ComponentArray &util, int min_core_mhz,
                       int min_mem_mhz) const
{
    std::vector<SweepPoint> pts = sweep(util);
    GPUPM_ASSERT(!pts.empty(), "model has no fitted configurations");
    const SweepPoint *best = nullptr;
    for (const SweepPoint &p : pts) {
        if (p.cfg.core_mhz < min_core_mhz ||
            p.cfg.mem_mhz < min_mem_mhz) {
            continue;
        }
        if (!best ||
            p.prediction.total_w < best->prediction.total_w) {
            best = &p;
        }
    }
    GPUPM_ASSERT(best, "no configuration satisfies the clock floors (",
                 min_core_mhz, ", ", min_mem_mhz, ") MHz");
    return *best;
}

std::vector<std::pair<int, double>>
Predictor::coreVoltageCurve(int mem_mhz) const
{
    std::vector<std::pair<int, double>> out;
    for (const auto &[key, v] : model_.voltageTable())
        if (key.second == mem_mhz)
            out.emplace_back(key.first, v.core);
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Predictor::ParetoPoint>
Predictor::paretoFrontier(const gpu::ComponentArray &util) const
{
    const LatencyScaler scaler(model_.reference());
    std::vector<ParetoPoint> pts;
    for (const auto &[key, v] : model_.voltageTable()) {
        const gpu::FreqConfig cfg{key.first, key.second};
        pts.push_back({cfg, model_.predict(util, cfg).total_w,
                       scaler.slowdown(util, cfg)});
    }
    // Sort by power; walk keeping strictly improving slowdown.
    std::sort(pts.begin(), pts.end(),
              [](const ParetoPoint &a, const ParetoPoint &b) {
                  return a.power_w < b.power_w;
              });
    std::vector<ParetoPoint> frontier;
    double best_slowdown = 1e300;
    for (const ParetoPoint &p : pts) {
        if (p.slowdown < best_slowdown - 1e-12) {
            frontier.push_back(p);
            best_slowdown = p.slowdown;
        }
    }
    return frontier;
}

PowerPrediction
Predictor::atWeighted(const std::vector<WeightedKernel> &kernels,
                      const gpu::FreqConfig &cfg) const
{
    GPUPM_ASSERT(!kernels.empty(), "no kernels to predict");
    const LatencyScaler scaler(model_.reference());

    PowerPrediction out;
    double total_time = 0.0;
    for (const WeightedKernel &k : kernels) {
        const double t = scaler.scaledTime(k.time_ref_s, k.util, cfg);
        const PowerPrediction p = model_.predict(k.util, cfg);
        out.total_w += p.total_w * t;
        out.constant_w += p.constant_w * t;
        out.core_w += p.core_w * t;
        out.mem_w += p.mem_w * t;
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
            out.component_w[i] += p.component_w[i] * t;
        total_time += t;
    }
    GPUPM_ASSERT(total_time > 0.0, "zero total predicted time");
    out.total_w /= total_time;
    out.constant_w /= total_time;
    out.core_w /= total_time;
    out.mem_w /= total_time;
    for (double &w : out.component_w)
        w /= total_time;
    return out;
}

} // namespace model
} // namespace gpupm
