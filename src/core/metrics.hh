/**
 * @file
 * Hardware utilization metrics (Sec. III-B/III-C, Eqs. 8-10).
 *
 * Converts the aggregated Table I raw metrics of one profiled kernel
 * into the per-component utilization vector the power model consumes:
 *
 *   U_x = AWarps_x * WarpSize / (ACycles * UnitsPerSM_x)   (Eq. 8)
 *   U_y = ABand_y / PeakBand_y                             (Eq. 9)
 *
 * with the combined SP/INT warp counter disambiguated by the ratio of
 * executed thread-level instructions (Eq. 10).
 */

#ifndef GPUPM_CORE_METRICS_HH
#define GPUPM_CORE_METRICS_HH

#include "cupti/profiler.hh"
#include "gpu/device.hh"

namespace gpupm
{
namespace model
{

/**
 * Compute the Eq. 8-10 utilization vector from profiled raw metrics.
 *
 * @param rm   aggregated Table I metrics of one kernel launch.
 * @param dev  the profiled device.
 * @param cfg  the configuration the kernel was profiled at (the
 *             reference configuration in the paper's methodology).
 * @return  per-component utilizations, clamped to [0, 1].
 */
gpu::ComponentArray utilizationsFromMetrics(
        const cupti::RawMetrics &rm, const gpu::DeviceDescriptor &dev,
        const gpu::FreqConfig &cfg);

} // namespace model
} // namespace gpupm

#endif // GPUPM_CORE_METRICS_HH
