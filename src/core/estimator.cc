#include "estimator.hh"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/logging.hh"
#include "common/numio.hh"
#include "gpu/components.hh"
#include "linalg/isotonic.hh"
#include "linalg/lstsq.hh"
#include "obs/standard.hh"
#include "obs/trace.hh"

namespace gpupm
{
namespace model
{

using gpu::Component;
using gpu::componentIndex;
using linalg::Matrix;
using linalg::Vector;

namespace
{

/** Feature layout of the coefficient fit. */
constexpr std::size_t kFeatBeta0 = 0;
constexpr std::size_t kFeatBeta1 = 1;
constexpr std::size_t kFeatBeta2 = 2;
constexpr std::size_t kFeatBeta3 = 3;
constexpr std::size_t kFeatOmega = 4; // 6 core components, then DRAM
constexpr std::size_t kNumFeatures = kFeatOmega + gpu::kNumComponents;

/** Core-domain components in feature order (everything but DRAM). */
constexpr std::array<Component, 6> kCoreComponents = {
    Component::Int, Component::SP, Component::DP,
    Component::SF, Component::Shared, Component::L2,
};

/** Golden-section minimization of a unimodal 1-D function. */
template <typename F>
double
minimize1d(F f, double lo, double hi, int iters = 80)
{
    constexpr double phi = 0.6180339887498949;
    double a = lo, b = hi;
    double x1 = b - phi * (b - a);
    double x2 = a + phi * (b - a);
    double f1 = f(x1), f2 = f(x2);
    for (int i = 0; i < iters; ++i) {
        if (f1 < f2) {
            b = x2;
            x2 = x1;
            f2 = f1;
            x1 = b - phi * (b - a);
            f1 = f(x1);
        } else {
            a = x1;
            x1 = x2;
            f1 = f2;
            x2 = a + phi * (b - a);
            f2 = f(x2);
        }
    }
    return 0.5 * (a + b);
}

} // namespace

std::optional<std::size_t>
TrainingData::configIndex(const gpu::FreqConfig &cfg) const
{
    for (std::size_t i = 0; i < configs.size(); ++i)
        if (configs[i] == cfg)
            return i;
    return std::nullopt;
}

std::string_view
fitErrcName(FitErrc code)
{
    switch (code) {
      case FitErrc::BadInput: return "BadInput";
      case FitErrc::DegenerateGrid: return "DegenerateGrid";
      case FitErrc::NumericalFailure: return "NumericalFailure";
    }
    return "Unknown";
}

ModelEstimator::ModelEstimator(EstimatorOptions opts) : opts_(opts)
{
    GPUPM_ASSERT(opts_.max_iterations >= 1, "need >= 1 iteration");
    GPUPM_ASSERT(opts_.v_min > 0.0 && opts_.v_max > opts_.v_min,
                 "bad voltage search range");
}

namespace
{

/** Idle rows are the all-zero-utilization microbenchmarks. */
bool
isIdleRow(const gpu::ComponentArray &util)
{
    for (double u : util)
        if (u != 0.0)
            return false;
    return true;
}

} // namespace

ModelParams
ModelEstimator::fitCoefficients(
        const TrainingData &data,
        const std::vector<VoltagePair> &voltages,
        const std::vector<std::size_t> &config_subset,
        linalg::LstsqDiagnostics *diag) const
{
    const std::size_t nb = data.utils.size();
    Matrix a(nb * config_subset.size(), kNumFeatures);
    Vector rhs(nb * config_subset.size());

    std::size_t row = 0;
    for (std::size_t b = 0; b < nb; ++b) {
        const double rw = std::sqrt(
                isIdleRow(data.utils[b]) ? opts_.idle_row_weight : 1.0);
        for (std::size_t ci : config_subset) {
            const gpu::FreqConfig &cfg = data.configs[ci];
            const VoltagePair &v = voltages[ci];
            const double fc = 1e-3 * cfg.core_mhz;
            const double fm = 1e-3 * cfg.mem_mhz;
            const double vc2fc = v.core * v.core * fc;
            const double vm2fm = v.mem * v.mem * fm;

            a(row, kFeatBeta0) = rw * v.core;
            a(row, kFeatBeta1) = rw * vc2fc;
            a(row, kFeatBeta2) = rw * v.mem;
            a(row, kFeatBeta3) = rw * vm2fm;
            for (std::size_t k = 0; k < kCoreComponents.size(); ++k) {
                const std::size_t u =
                        componentIndex(kCoreComponents[k]);
                a(row, kFeatOmega + k) = rw * vc2fc * data.utils[b][u];
            }
            a(row, kFeatOmega + kCoreComponents.size()) =
                    rw * vm2fm *
                    data.utils[b][componentIndex(Component::Dram)];
            rhs[row] = rw * data.power_w[b][ci];
            ++row;
        }
    }

    if (diag)
        *diag = linalg::designDiagnostics(a);

    Vector x;
    if (opts_.nonnegative) {
        x = linalg::nnlsRidge(a, rhs, opts_.ridge);
    } else {
        x = linalg::leastSquares(a, rhs);
    }

    ModelParams p;
    p.beta0 = x[kFeatBeta0];
    p.beta1 = x[kFeatBeta1];
    p.beta2 = x[kFeatBeta2];
    p.beta3 = x[kFeatBeta3];
    for (std::size_t k = 0; k < kCoreComponents.size(); ++k)
        p.omega[componentIndex(kCoreComponents[k])] =
                x[kFeatOmega + k];
    p.omega[componentIndex(Component::Dram)] =
            x[kFeatOmega + kCoreComponents.size()];
    return p;
}

std::vector<VoltagePair>
ModelEstimator::fitVoltages(const TrainingData &data,
                            const ModelParams &params,
                            const std::vector<VoltagePair> &start,
                            std::size_t ref_ci) const
{
    const std::size_t nb = data.utils.size();
    const std::size_t nc = data.configs.size();

    // Per-microbenchmark aggregates: A_b (core) and B_b (memory).
    std::vector<double> core_agg(nb), mem_agg(nb);
    for (std::size_t b = 0; b < nb; ++b) {
        double s = params.beta1;
        for (Component c : kCoreComponents)
            s += params.omega[componentIndex(c)] *
                 data.utils[b][componentIndex(c)];
        core_agg[b] = s;
        mem_agg[b] = params.beta3 +
                     params.omega[componentIndex(Component::Dram)] *
                     data.utils[b][componentIndex(Component::Dram)];
    }

    std::vector<VoltagePair> v(nc);

    for (std::size_t ci = 0; ci < nc; ++ci) {
        if (ci == ref_ci)
            continue; // pinned at (1, 1): the Eq. 5 normalization
        const gpu::FreqConfig &cfg = data.configs[ci];
        const double fc = 1e-3 * cfg.core_mhz;
        const double fm = 1e-3 * cfg.mem_mhz;

        const auto config_sse = [&](double vc, double vm) {
            double s = 0.0;
            for (std::size_t b = 0; b < nb; ++b) {
                const double pred = params.beta0 * vc +
                                    vc * vc * fc * core_agg[b] +
                                    params.beta2 * vm +
                                    vm * vm * fm * mem_agg[b];
                const double r = data.power_w[b][ci] - pred;
                const double w = isIdleRow(data.utils[b])
                                         ? opts_.idle_row_weight
                                         : 1.0;
                s += w * r * r;
            }
            return s;
        };

        // Coordinate descent over the (vc, vm) quartic, warm-started
        // from the previous outer iterate.
        double vc = start[ci].core, vm = start[ci].mem;
        for (int round = 0; round < 4; ++round) {
            vc = minimize1d(
                    [&](double x) { return config_sse(x, vm); },
                    opts_.v_min, opts_.v_max);
            if (opts_.fit_mem_voltage) {
                vm = minimize1d(
                        [&](double x) { return config_sse(vc, x); },
                        opts_.v_min, opts_.v_max);
            }
        }
        v[ci] = {vc, vm};
    }

    if (!opts_.monotonic_voltages)
        return v;

    // Eq. 12 projection: V̄ must be non-decreasing in its domain's
    // frequency. The reference configuration is given an overwhelming
    // weight so pooling cannot move its pinned value.
    const auto weight_of = [&](std::size_t ci) {
        return ci == ref_ci ? 1e9 : 1.0;
    };

    // Core voltage along fcore, separately for each memory frequency.
    std::map<int, std::vector<std::size_t>> by_mem;
    for (std::size_t ci = 0; ci < nc; ++ci)
        by_mem[data.configs[ci].mem_mhz].push_back(ci);
    for (auto &[fm, group] : by_mem) {
        std::sort(group.begin(), group.end(),
                  [&](std::size_t x, std::size_t y) {
                      return data.configs[x].core_mhz <
                             data.configs[y].core_mhz;
                  });
        std::vector<double> vals, w;
        for (std::size_t ci : group) {
            vals.push_back(v[ci].core);
            w.push_back(weight_of(ci));
        }
        const auto fitted = linalg::isotonicNonDecreasing(vals, w);
        for (std::size_t k = 0; k < group.size(); ++k)
            v[group[k]].core = fitted[k];
    }

    // Memory voltage along fmem, separately for each core frequency.
    std::map<int, std::vector<std::size_t>> by_core;
    for (std::size_t ci = 0; ci < nc; ++ci)
        by_core[data.configs[ci].core_mhz].push_back(ci);
    for (auto &[fc, group] : by_core) {
        std::sort(group.begin(), group.end(),
                  [&](std::size_t x, std::size_t y) {
                      return data.configs[x].mem_mhz <
                             data.configs[y].mem_mhz;
                  });
        std::vector<double> vals, w;
        for (std::size_t ci : group) {
            vals.push_back(v[ci].mem);
            w.push_back(weight_of(ci));
        }
        const auto fitted = linalg::isotonicNonDecreasing(vals, w);
        for (std::size_t k = 0; k < group.size(); ++k)
            v[group[k]].mem = fitted[k];
    }

    // Keep the reference exactly pinned.
    v[ref_ci] = {1.0, 1.0};
    return v;
}

double
ModelEstimator::sse(const TrainingData &data, const ModelParams &params,
                    const std::vector<VoltagePair> &voltages) const
{
    DvfsPowerModel m(data.device, data.reference, params);
    double s = 0.0;
    for (std::size_t b = 0; b < data.utils.size(); ++b) {
        for (std::size_t ci = 0; ci < data.configs.size(); ++ci) {
            const auto pred = m.predictWithVoltages(
                    data.utils[b], data.configs[ci], voltages[ci]);
            const double r = data.power_w[b][ci] - pred.total_w;
            s += r * r;
        }
    }
    return s;
}

namespace
{

bool
finiteParams(const ModelParams &p)
{
    if (!std::isfinite(p.beta0) || !std::isfinite(p.beta1) ||
        !std::isfinite(p.beta2) || !std::isfinite(p.beta3))
        return false;
    for (double w : p.omega)
        if (!std::isfinite(w))
            return false;
    return true;
}

bool
finiteVoltages(const std::vector<VoltagePair> &v)
{
    for (const auto &p : v)
        if (!std::isfinite(p.core) || !std::isfinite(p.mem))
            return false;
    return true;
}

/** BadInput checks on the raw training data. */
std::optional<FitError>
checkInput(const TrainingData &data)
{
    const auto bad = [](std::string msg) {
        return FitError{FitErrc::BadInput, std::move(msg), {}, 0};
    };
    if (data.utils.empty())
        return bad("no training microbenchmarks");
    if (data.configs.empty())
        return bad("no measured configurations");
    if (data.power_w.size() != data.utils.size())
        return bad(detail::concat("power rows (", data.power_w.size(),
                                  ") != microbenchmarks (",
                                  data.utils.size(), ")"));
    for (const auto &row : data.power_w)
        if (row.size() != data.configs.size())
            return bad("power row size mismatch");
    for (const auto &u : data.utils)
        for (double x : u)
            if (!std::isfinite(x))
                return bad("non-finite utilization in training data");
    for (const auto &row : data.power_w)
        for (double p : row)
            if (!std::isfinite(p))
                return bad("non-finite power in training data");
    if (!data.configIndex(data.reference))
        return bad(detail::concat("reference configuration (",
                                  data.reference.core_mhz, ", ",
                                  data.reference.mem_mhz,
                                  ") not in training data"));
    return std::nullopt;
}

} // namespace

namespace
{

/** Largest per-domain voltage move between two outer iterates. */
double
maxVoltageDelta(const std::vector<VoltagePair> &prev,
                const std::vector<VoltagePair> &next)
{
    double dv = 0.0;
    for (std::size_t i = 0; i < prev.size(); ++i) {
        dv = std::max(dv, std::abs(next[i].core - prev[i].core));
        dv = std::max(dv, std::abs(next[i].mem - prev[i].mem));
    }
    return dv;
}

} // namespace

FitResult
ModelEstimator::tryEstimate(const TrainingData &data) const
{
    GPUPM_TRACE_SPAN_NAMED(fit_span, "estimator", "estimator.fit");
    fit_span.arg("benchmarks", numio::formatLong(
                                       (long)data.utils.size()));
    fit_span.arg("configs", numio::formatLong(
                                    (long)data.configs.size()));

    const auto fail = [&](FitError err) -> FitResult {
        obs::estimatorFitFailuresTotal().inc();
        if (opts_.observer)
            opts_.observer->onDone(false, err.iterations);
        return err;
    };

    if (auto err = checkInput(data))
        return fail(*err);

    const std::size_t nc = data.configs.size();
    const std::size_t ref_ci = *data.configIndex(data.reference);

    // Step 1: initial coefficient fit on {F1, F2, F3} with V̄ = 1
    // (Eq. 11). F2 perturbs the core clock, F3 the memory clock.
    std::vector<std::size_t> subset = {ref_ci};
    const auto push_if = [&](auto pred) {
        for (std::size_t ci = 0; ci < nc; ++ci) {
            if (ci != ref_ci && pred(data.configs[ci])) {
                subset.push_back(ci);
                return;
            }
        }
    };
    push_if([&](const gpu::FreqConfig &c) {
        return c.mem_mhz == data.reference.mem_mhz &&
               c.core_mhz < data.reference.core_mhz;
    });
    push_if([&](const gpu::FreqConfig &c) {
        return c.core_mhz == data.reference.core_mhz &&
               c.mem_mhz != data.reference.mem_mhz;
    });

    // Identifiability guardrails for the bilinear alternation: with
    // more than one configuration but no axis-aligned perturbation of
    // the reference, the Eq. 11 initialization cannot separate the
    // coefficients from the voltages, and the alternation would
    // polish garbage. Likewise when every row is idle: the dynamic
    // coefficients and the voltages only appear as a product.
    if (opts_.fit_voltages && nc >= 2) {
        if (subset.size() < 2) {
            return fail(FitError{
                FitErrc::DegenerateGrid,
                "no configuration shares a clock domain with the "
                "reference: the Eq. 11 initialization cannot identify "
                "the bilinear voltage/coefficient system",
                {},
                0});
        }
        std::size_t active_rows = 0;
        for (const auto &u : data.utils)
            if (!isIdleRow(u))
                ++active_rows;
        if (active_rows < 2) {
            return fail(FitError{
                FitErrc::DegenerateGrid,
                detail::concat(
                        "only ", active_rows,
                        " non-idle microbenchmark row(s): the "
                        "voltage/coefficient product is "
                        "under-identified"),
                {},
                0});
        }
    }

    std::vector<VoltagePair> voltages(nc); // all (1, 1)
    ModelParams params;
    {
        GPUPM_TRACE_SPAN("estimator", "estimator.init");
        params = fitCoefficients(data, voltages, subset);
    }

    EstimationResult res;
    res.sse_history.push_back(sse(data, params, voltages));

    // Convergence telemetry: one record per outer iteration, plus the
    // Eq. 11 initialization as iteration 0.
    const auto emit = [&](int iteration, double sse_now,
                          double prev_sse, double max_dv,
                          double condition) {
        if (!opts_.observer)
            return;
        obs::IterationRecord rec;
        rec.iteration = iteration;
        rec.sse = sse_now;
        rec.delta_sse = iteration == 0 ? 0.0 : prev_sse - sse_now;
        rec.max_dv = max_dv;
        rec.als_residual =
                iteration == 0
                        ? 0.0
                        : std::abs(prev_sse - sse_now) /
                                  std::max(prev_sse, 1.0);
        rec.condition = condition;
        opts_.observer->onIteration(rec);
    };
    emit(0, res.sse_history.back(), 0.0, 0.0, 0.0);

    const auto numerical_failure = [&](const char *when) {
        return FitError{FitErrc::NumericalFailure,
                        detail::concat("non-finite values while ",
                                       when, " (iteration ",
                                       res.iterations, ")"),
                        res.sse_history, res.iterations};
    };
    if (!finiteParams(params) ||
        !std::isfinite(res.sse_history.back()))
        return fail(numerical_failure("initializing coefficients"));

    // All-config index list for step 3.
    std::vector<std::size_t> all(nc);
    for (std::size_t i = 0; i < nc; ++i)
        all[i] = i;

    linalg::LstsqDiagnostics diag;
    if (!opts_.fit_voltages) {
        // Ablation: single step-3 pass with V̄ ≡ 1.
        params = fitCoefficients(data, voltages, all, &diag);
        res.sse_history.push_back(sse(data, params, voltages));
        res.iterations = 1;
        res.converged = true;
        if (!finiteParams(params) ||
            !std::isfinite(res.sse_history.back()))
            return fail(numerical_failure("fitting coefficients"));
        emit(1, res.sse_history.back(), res.sse_history.front(), 0.0,
             diag.condition);
    } else {
        for (int it = 0; it < opts_.max_iterations; ++it) {
            GPUPM_TRACE_SPAN_NAMED(it_span, "estimator",
                                   "estimator.iteration");
            it_span.arg("iteration", numio::formatLong(it + 1));
            // Step 2: voltages given coefficients.
            const std::vector<VoltagePair> prev_v = voltages;
            voltages = fitVoltages(data, params, voltages, ref_ci);
            if (!finiteVoltages(voltages))
                return fail(numerical_failure("fitting voltages"));
            // Step 3: coefficients given voltages, all configs.
            params = fitCoefficients(data, voltages, all, &diag);
            if (!finiteParams(params))
                return fail(
                        numerical_failure("fitting coefficients"));

            const double s = sse(data, params, voltages);
            if (!std::isfinite(s))
                return fail(numerical_failure("evaluating the fit"));
            const double prev = res.sse_history.back();
            res.sse_history.push_back(s);
            res.iterations = it + 1;
            emit(it + 1, s, prev, maxVoltageDelta(prev_v, voltages),
                 diag.condition);
            // Relative improvement test with an absolute floor of
            // 1 W^2 so near-perfect (noise-free) fits also terminate.
            if (std::abs(prev - s) <=
                opts_.tolerance * std::max(prev, 1.0)) {
                res.converged = true;
                break;
            }
        }
    }
    res.condition_number = diag.condition;
    res.design_rank = diag.rank;

    res.model = DvfsPowerModel(data.device, data.reference, params);
    for (std::size_t ci = 0; ci < nc; ++ci)
        res.model.setVoltages(data.configs[ci], voltages[ci]);

    const double n = static_cast<double>(data.utils.size()) *
                     static_cast<double>(nc);
    res.rmse_w = std::sqrt(res.sse_history.back() / n);

    obs::estimatorFitsTotal().inc();
    obs::estimatorIterationsTotal().inc(res.iterations);
    obs::estimatorIterationsPerFit().observe(res.iterations);
    obs::estimatorLastIterations().set(res.iterations);
    obs::estimatorLastRmseW().set(res.rmse_w);
    obs::estimatorLastCondition().set(res.condition_number);
    fit_span.arg("iterations", numio::formatLong(res.iterations));
    fit_span.arg("converged", res.converged ? "true" : "false");
    if (opts_.observer)
        opts_.observer->onDone(res.converged, res.iterations);
    return res;
}

EstimationResult
ModelEstimator::estimate(const TrainingData &data) const
{
    auto res = tryEstimate(data);
    if (!res.ok()) {
        GPUPM_PANIC("model estimation failed [",
                    fitErrcName(res.error().code), "]: ",
                    res.error().message);
    }
    return res.value();
}

} // namespace model
} // namespace gpupm
