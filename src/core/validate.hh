/**
 * @file
 * Physical-plausibility validation of persisted artifacts.
 *
 * Campaign files and fitted models cross machines (the virtual-sensor
 * use case ships a model to hosts with no sensor; DVFS schedulers
 * consume fitted models they never trained), so a parseable file is
 * not yet a trustworthy one: a hand-edited campaign can smuggle
 * utilizations above 1, a bit-rotted model can carry a negative
 * leakage coefficient, a stale checkpoint can disagree with its own
 * bookkeeping. This subsystem checks the physics and the structure —
 * utilizations in [0, 1], non-negative finite power, a complete and
 * identifiable V-F grid, monotone fitted voltages — and reports every
 * finding in a structured ValidationReport instead of dying on the
 * first one.
 *
 * Severity policy: an *error* means downstream consumers (estimator,
 * predictor) would produce wrong or undefined results; a *warning*
 * means the artifact is usable but suspicious (e.g. a campaign with
 * no idle row, a voltage outside plausible silicon ranges).
 */

#ifndef GPUPM_CORE_VALIDATE_HH
#define GPUPM_CORE_VALIDATE_HH

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "core/campaign.hh"
#include "core/estimator.hh"
#include "core/power_model.hh"
#include "obs/scoreboard.hh"

namespace gpupm
{
namespace model
{

/** How bad one validation finding is. */
enum class ValSeverity
{
    Warning, ///< usable but suspicious
    Error,   ///< downstream consumers would misbehave
};

/** Display name of a severity ("warning" / "error"). */
std::string_view valSeverityName(ValSeverity severity);

/** One validation finding. */
struct ValidationIssue
{
    ValSeverity severity = ValSeverity::Error;
    /** Stable kebab-case identifier, e.g. "util-out-of-range". */
    std::string code;
    /** Human-readable detail with offending values and locations. */
    std::string message;
};

/** Structured outcome of validating one artifact. */
struct ValidationReport
{
    /** What was validated ("model", "campaign", "checkpoint"). */
    std::string subject;
    std::vector<ValidationIssue> issues;

    void addError(std::string code, std::string message);
    void addWarning(std::string code, std::string message);

    std::size_t errorCount() const;
    std::size_t warningCount() const;

    /** True when no error-severity issue was found. */
    bool ok() const { return errorCount() == 0; }

    /** Human-readable multi-line report (one line per issue). */
    std::string summary() const;

    /** Machine-readable JSON form (for `gpupm validate --json`). */
    std::string toJson() const;
};

/**
 * Validate a training campaign: utilization ranges, power
 * plausibility, row completeness, grid structure/identifiability and
 * reference presence.
 */
ValidationReport validateTrainingData(const TrainingData &data);

/**
 * Validate a fitted model: finite non-negative coefficients, a
 * non-empty voltage table containing the reference pinned at (1, 1),
 * and the Eq. 12 monotonicity of V̄(f) along each clock domain.
 */
ValidationReport validateModel(const DvfsPowerModel &model);

/**
 * Validate a campaign checkpoint: internal bookkeeping consistency
 * (done flags vs. grid dimensions, report counters vs. cells).
 */
ValidationReport validateCheckpoint(const CampaignCheckpoint &ck);

/**
 * Validate an accuracy scoreboard: finite non-negative error
 * statistics, plausible clocks, per-app sample counts adding up to
 * the overall count, and — when raw residuals are present — the
 * stored summary agreeing with one recomputed from them (a
 * hand-edited MAE must not survive a --validate load).
 */
ValidationReport validateScoreboard(const obs::Scoreboard &sb);

} // namespace model
} // namespace gpupm

#endif // GPUPM_CORE_VALIDATE_HH
