#include "model_io.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace gpupm
{
namespace model
{

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    GPUPM_FATAL_IF(!in, "cannot open '", path, "' for reading");
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    GPUPM_FATAL_IF(!out, "cannot open '", path, "' for writing");
    out << text;
    GPUPM_FATAL_IF(!out, "write to '", path, "' failed");
}

} // namespace

void
saveModel(const DvfsPowerModel &model, const std::string &path)
{
    writeFile(path, model.serialize());
}

DvfsPowerModel
loadModel(const std::string &path)
{
    return DvfsPowerModel::deserialize(readFile(path));
}

std::string
serializeTrainingData(const TrainingData &data)
{
    std::ostringstream os;
    os.precision(12);
    os << "gpupm-campaign v1\n";
    os << "device " << static_cast<int>(data.device) << "\n";
    os << "reference " << data.reference.core_mhz << " "
       << data.reference.mem_mhz << "\n";
    os << "configs " << data.configs.size() << "\n";
    for (const auto &cfg : data.configs)
        os << cfg.core_mhz << " " << cfg.mem_mhz << "\n";
    os << "benchmarks " << data.utils.size() << "\n";
    for (std::size_t b = 0; b < data.utils.size(); ++b) {
        for (double u : data.utils[b])
            os << u << " ";
        os << "\n";
        for (double p : data.power_w[b])
            os << p << " ";
        os << "\n";
    }
    return os.str();
}

TrainingData
deserializeTrainingData(const std::string &text)
{
    std::istringstream is(text);
    std::string tag, version;
    is >> tag >> version;
    GPUPM_FATAL_IF(tag != "gpupm-campaign" || version != "v1",
                   "not a gpupm campaign file");

    TrainingData data;
    int kind = 0;
    is >> tag >> kind;
    GPUPM_FATAL_IF(tag != "device", "expected 'device'");
    GPUPM_FATAL_IF(kind < 0 || kind > 2, "bad device kind ", kind);
    data.device = static_cast<gpu::DeviceKind>(kind);

    is >> tag >> data.reference.core_mhz >> data.reference.mem_mhz;
    GPUPM_FATAL_IF(tag != "reference", "expected 'reference'");

    std::size_t nc = 0;
    is >> tag >> nc;
    GPUPM_FATAL_IF(tag != "configs", "expected 'configs'");
    data.configs.resize(nc);
    for (auto &cfg : data.configs)
        is >> cfg.core_mhz >> cfg.mem_mhz;

    std::size_t nb = 0;
    is >> tag >> nb;
    GPUPM_FATAL_IF(tag != "benchmarks", "expected 'benchmarks'");
    data.utils.resize(nb);
    data.power_w.assign(nb, std::vector<double>(nc));
    for (std::size_t b = 0; b < nb; ++b) {
        for (double &u : data.utils[b])
            is >> u;
        for (double &p : data.power_w[b])
            is >> p;
    }
    GPUPM_FATAL_IF(is.fail(), "truncated campaign file");
    return data;
}

void
saveTrainingData(const TrainingData &data, const std::string &path)
{
    writeFile(path, serializeTrainingData(data));
}

TrainingData
loadTrainingData(const std::string &path)
{
    return deserializeTrainingData(readFile(path));
}

} // namespace model
} // namespace gpupm
