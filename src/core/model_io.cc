#include "model_io.hh"

#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "common/checksum.hh"
#include "common/logging.hh"
#include "common/numio.hh"
#include "core/validate.hh"
#include "obs/standard.hh"
#include "obs/trace.hh"

namespace gpupm
{
namespace model
{

std::string_view
ioErrcName(IoErrc code)
{
    switch (code) {
      case IoErrc::IoError: return "io-error";
      case IoErrc::ParseError: return "parse-error";
      case IoErrc::VersionMismatch: return "version-mismatch";
      case IoErrc::ChecksumMismatch: return "checksum-mismatch";
      case IoErrc::ValidationError: return "validation-error";
    }
    return "unknown";
}

std::string_view
fileKindName(FileKind kind)
{
    switch (kind) {
      case FileKind::Model: return "model";
      case FileKind::Campaign: return "campaign";
      case FileKind::Checkpoint: return "checkpoint";
      case FileKind::Scoreboard: return "scoreboard";
      case FileKind::FleetShard: return "fleetshard";
      case FileKind::Fleet: return "fleet";
    }
    return "unknown";
}

namespace
{

/**
 * Internal unwinding channel of the parsers: parsing is deeply
 * recursive and almost every step can fail, so the failure travels as
 * an exception and is converted to an IoExpected error exactly once,
 * at the try* boundary. It never escapes this translation unit.
 */
struct ParseFail
{
    IoStatus status;
};

template <typename... Args>
[[noreturn]] void
failParse(IoErrc code, Args &&...args)
{
    throw ParseFail{
        {code, detail::concat(std::forward<Args>(args)...)}};
}

/**
 * Upper bound on any count declared inside a file. Honest artifacts
 * are far below it (83 benchmarks, a few hundred V-F configurations);
 * a fuzzed size field must not be able to drive allocation.
 */
constexpr std::size_t kMaxCount = 100000;
/** Upper bound on benchmarks x configurations cells. */
constexpr std::size_t kMaxCells = 10000000;

/** Whitespace-token scanner for the text payloads. */
class TokenScanner
{
  public:
    explicit TokenScanner(const std::string &text) : text_(text) {}

    bool
    atEnd()
    {
        skipSpace();
        return pos_ == text_.size();
    }

    std::string_view
    next(const char *what)
    {
        skipSpace();
        if (pos_ == text_.size())
            failParse(IoErrc::ParseError,
                      "unexpected end of input while reading ", what);
        const std::size_t start = pos_;
        while (pos_ < text_.size() && !isSpace(text_[pos_]))
            ++pos_;
        return std::string_view(text_).substr(start, pos_ - start);
    }

    void
    expect(std::string_view word)
    {
        const auto tok = next(
                detail::concat("keyword '", word, "'").c_str());
        if (tok != word)
            failParse(IoErrc::ParseError, "expected '", word,
                      "', got '", tok, "'");
    }

    /** A finite double ("nan"/"inf" tokens are a parse error). */
    double
    number(const char *what)
    {
        const auto tok = next(what);
        double v = 0.0;
        if (!numio::parseDouble(tok, v) || !std::isfinite(v))
            failParse(IoErrc::ParseError,
                      "bad or non-finite number for ", what, ": '",
                      tok, "'");
        return v;
    }

    long
    integer(const char *what)
    {
        const auto tok = next(what);
        long v = 0;
        if (!numio::parseLong(tok, v))
            failParse(IoErrc::ParseError, "bad integer for ", what,
                      ": '", tok, "'");
        return v;
    }

    int
    intValue(const char *what)
    {
        const long v = integer(what);
        if (v < -2147483647L || v > 2147483647L)
            failParse(IoErrc::ParseError, what, " out of range: ", v);
        return static_cast<int>(v);
    }

    /** A declared element count, bounded so it cannot drive OOM. */
    std::size_t
    count(const char *what, std::size_t max = kMaxCount)
    {
        const long v = integer(what);
        if (v < 0 || static_cast<std::size_t>(v) > max)
            failParse(IoErrc::ParseError, "implausible ", what, ": ",
                      v);
        return static_cast<std::size_t>(v);
    }

  private:
    static bool
    isSpace(char c)
    {
        return c == ' ' || c == '\t' || c == '\n' || c == '\r';
    }

    void
    skipSpace()
    {
        while (pos_ < text_.size() && isSpace(text_[pos_]))
            ++pos_;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

gpu::DeviceKind
deviceKindOf(long kind)
{
    if (kind < 0 || kind > 2)
        failParse(IoErrc::ParseError, "bad device kind ", kind);
    return static_cast<gpu::DeviceKind>(kind);
}

// -- v2 envelope -----------------------------------------------------

constexpr std::string_view kEnvelopeMagic = "gpupm-file";

struct Envelope
{
    FileKind kind = FileKind::Model;
    std::string payload;
};

bool
hasEnvelope(const std::string &text)
{
    return text.rfind(kEnvelopeMagic, 0) == 0;
}

FileKind
fileKindOf(std::string_view token)
{
    for (FileKind k : {FileKind::Model, FileKind::Campaign,
                       FileKind::Checkpoint, FileKind::Scoreboard,
                       FileKind::FleetShard, FileKind::Fleet})
        if (token == fileKindName(k))
            return k;
    failParse(IoErrc::ParseError, "unknown artifact kind '", token,
              "' in envelope");
}

/**
 * Verify and strip the envelope, in trust order: kind, version,
 * declared payload size (truncation), checksum (corruption). Only
 * then does the payload reach a parser.
 */
Envelope
unwrapEnvelope(const std::string &text)
{
    const std::size_t eol = text.find('\n');
    if (eol == std::string::npos)
        failParse(IoErrc::ParseError,
                  "envelope header line is not terminated");
    const std::string header = text.substr(0, eol);

    TokenScanner s(header);
    s.expect(kEnvelopeMagic);
    Envelope env;
    env.kind = fileKindOf(s.next("artifact kind"));
    const auto version = s.next("format version");
    if (version != "v2")
        failParse(IoErrc::VersionMismatch, "unsupported ",
                  fileKindName(env.kind), " file version '", version,
                  "' (this build reads v2 and legacy v0)");
    s.expect("crc32");
    std::uint32_t declared_crc = 0;
    const auto crc_tok = s.next("crc32 value");
    if (!checksum::parseCrc32Hex(crc_tok, declared_crc))
        failParse(IoErrc::ParseError, "bad crc32 field '", crc_tok,
                  "'");
    s.expect("bytes");
    const long declared_bytes = s.integer("payload size");
    if (!s.atEnd())
        failParse(IoErrc::ParseError,
                  "trailing tokens in envelope header");

    env.payload = text.substr(eol + 1);
    if (declared_bytes < 0 ||
        static_cast<std::size_t>(declared_bytes) != env.payload.size())
        failParse(IoErrc::ParseError, "envelope declares ",
                  declared_bytes, " payload bytes but ",
                  env.payload.size(), " are present (truncated or "
                  "trailing data)");

    const std::uint32_t actual_crc = checksum::crc32(env.payload);
    if (actual_crc != declared_crc)
        failParse(IoErrc::ChecksumMismatch, "payload crc32 ",
                  checksum::crc32Hex(actual_crc),
                  " does not match declared ",
                  checksum::crc32Hex(declared_crc));
    return env;
}

// -- File access -----------------------------------------------------

IoExpected<std::string>
tryReadFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return IoStatus{IoErrc::IoError,
                        detail::concat("cannot open '", path,
                                       "' for reading")};
    std::ostringstream os;
    os << in.rdbuf();
    if (in.bad())
        return IoStatus{IoErrc::IoError,
                        detail::concat("read from '", path,
                                       "' failed")};
    return os.str();
}

IoExpected<bool>
tryWriteFile(const std::string &path, const std::string &text)
{
    GPUPM_TRACE_SPAN_NAMED(span, "io", "io.write");
    span.arg("path", path);
    span.arg("bytes", numio::formatLong((long)text.size()));
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        obs::ioSaveFailuresTotal().inc();
        return IoStatus{IoErrc::IoError,
                        detail::concat("cannot open '", path,
                                       "' for writing")};
    }
    out << text;
    out.flush();
    if (!out) {
        obs::ioSaveFailuresTotal().inc();
        return IoStatus{IoErrc::IoError,
                        detail::concat("write to '", path,
                                       "' failed")};
    }
    obs::ioSavesTotal().inc();
    return true;
}

// -- Model payload ---------------------------------------------------

DvfsPowerModel
parseModelPayload(const std::string &payload)
{
    TokenScanner s(payload);
    s.expect("gpupm-model");
    const auto version = s.next("model payload version");
    if (version != "v1")
        failParse(IoErrc::VersionMismatch,
                  "unsupported model payload version '", version,
                  "'");

    s.expect("device");
    const gpu::DeviceKind kind =
            deviceKindOf(s.integer("device kind"));

    s.expect("reference");
    gpu::FreqConfig ref;
    ref.core_mhz = s.intValue("reference core MHz");
    ref.mem_mhz = s.intValue("reference memory MHz");

    s.expect("beta");
    ModelParams p;
    p.beta0 = s.number("beta0");
    p.beta1 = s.number("beta1");
    p.beta2 = s.number("beta2");
    p.beta3 = s.number("beta3");

    s.expect("omega");
    for (double &w : p.omega)
        w = s.number("omega coefficient");

    s.expect("voltages");
    const std::size_t n = s.count("voltage pair count");
    DvfsPowerModel m(kind, ref, p);
    for (std::size_t i = 0; i < n; ++i) {
        gpu::FreqConfig cfg;
        cfg.core_mhz = s.intValue("voltage-table core MHz");
        cfg.mem_mhz = s.intValue("voltage-table memory MHz");
        VoltagePair v;
        v.core = s.number("core voltage");
        v.mem = s.number("memory voltage");
        if (v.core <= 0.0 || v.mem <= 0.0)
            failParse(IoErrc::ParseError,
                      "non-positive voltage at (", cfg.core_mhz,
                      ", ", cfg.mem_mhz, ") MHz");
        m.setVoltages(cfg, v);
    }
    if (!s.atEnd())
        failParse(IoErrc::ParseError,
                  "trailing content after the voltage table");
    return m;
}

// -- Campaign payload ------------------------------------------------

TrainingData
parseCampaignPayload(const std::string &payload)
{
    TokenScanner s(payload);
    s.expect("gpupm-campaign");
    const auto version = s.next("campaign payload version");
    if (version != "v1")
        failParse(IoErrc::VersionMismatch,
                  "unsupported campaign payload version '", version,
                  "'");

    TrainingData data;
    s.expect("device");
    data.device = deviceKindOf(s.integer("device kind"));

    s.expect("reference");
    data.reference.core_mhz = s.intValue("reference core MHz");
    data.reference.mem_mhz = s.intValue("reference memory MHz");

    s.expect("configs");
    const std::size_t nc = s.count("configuration count");
    data.configs.resize(nc);
    for (auto &cfg : data.configs) {
        cfg.core_mhz = s.intValue("config core MHz");
        cfg.mem_mhz = s.intValue("config memory MHz");
    }

    s.expect("benchmarks");
    const std::size_t nb = s.count("benchmark count");
    if (nb != 0 && nc > kMaxCells / nb)
        failParse(IoErrc::ParseError, "implausible campaign size: ",
                  nb, " benchmarks x ", nc, " configurations");
    data.utils.resize(nb);
    data.power_w.assign(nb, std::vector<double>(nc));
    for (std::size_t b = 0; b < nb; ++b) {
        for (double &u : data.utils[b])
            u = s.number("utilization");
        for (double &p : data.power_w[b])
            p = s.number("power sample");
    }
    if (!s.atEnd())
        failParse(IoErrc::ParseError,
                  "trailing content after the benchmark rows");
    return data;
}

// ---------------------------------------------------------------------
// Campaign checkpoints: JSON, hand-rolled (no external dependencies).
// The writer emits a fixed schema; the reader is a small
// recursive-descent parser over general JSON, so checkpoints stay
// readable by standard tooling (`tail -n +2 ck | jq .`) and edits by
// such tooling stay readable by us.
// ---------------------------------------------------------------------

namespace json
{

/** One parsed JSON value (tagged union over the JSON types). */
struct Value
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    const Value &
    at(const std::string &field) const
    {
        if (type != Type::Object)
            failParse(IoErrc::ParseError,
                      "checkpoint: expected object around '", field,
                      "'");
        auto it = object.find(field);
        if (it == object.end())
            failParse(IoErrc::ParseError,
                      "checkpoint: missing field '", field, "'");
        return it->second;
    }

    double
    num() const
    {
        if (type != Type::Number)
            failParse(IoErrc::ParseError,
                      "checkpoint: expected a number");
        return number;
    }

    long
    integer() const
    {
        const double d = num();
        if (!(d >= -9.2e18 && d <= 9.2e18))
            failParse(IoErrc::ParseError,
                      "checkpoint: integer field out of range");
        return static_cast<long>(d);
    }

    const std::string &
    str() const
    {
        if (type != Type::String)
            failParse(IoErrc::ParseError,
                      "checkpoint: expected a string");
        return string;
    }

    const std::vector<Value> &
    arr() const
    {
        if (type != Type::Array)
            failParse(IoErrc::ParseError,
                      "checkpoint: expected an array");
        return array;
    }
};

/** Recursive-descent JSON parser (throws ParseFail on bad input). */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parse()
    {
        Value v = parseValue();
        skipSpace();
        if (pos_ != text_.size())
            failParse(IoErrc::ParseError,
                      "checkpoint: trailing characters at offset ",
                      pos_);
        return v;
    }

  private:
    /** Fuzzed "[[[[[..." must not overflow the parser's stack. */
    static constexpr int kMaxDepth = 64;

    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        if (pos_ >= text_.size())
            failParse(IoErrc::ParseError,
                      "checkpoint: unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            failParse(IoErrc::ParseError, "checkpoint: expected '",
                      c, "' at offset ", pos_, ", got '",
                      text_[pos_], "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expectWord(std::string_view word)
    {
        if (text_.compare(pos_, word.size(), word) != 0)
            failParse(IoErrc::ParseError,
                      "checkpoint: bad literal at offset ", pos_);
        pos_ += word.size();
    }

    std::string
    parseString()
    {
        expect('"');
        std::string s;
        while (true) {
            if (pos_ >= text_.size())
                failParse(IoErrc::ParseError,
                          "checkpoint: unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return s;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    failParse(IoErrc::ParseError,
                              "checkpoint: unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"': s += '"'; break;
                  case '\\': s += '\\'; break;
                  case '/': s += '/'; break;
                  case 'n': s += '\n'; break;
                  case 't': s += '\t'; break;
                  case 'r': s += '\r'; break;
                  default:
                    failParse(IoErrc::ParseError,
                              "checkpoint: unsupported escape '\\",
                              e, "'");
                }
            } else {
                s += c;
            }
        }
    }

    double
    parseNumber()
    {
        const std::size_t start = pos_;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if ((c >= '0' && c <= '9') || c == '+' || c == '-' ||
                c == '.' || c == 'e' || c == 'E')
                ++pos_;
            else
                break;
        }
        const std::string_view tok =
                std::string_view(text_).substr(start, pos_ - start);
        double v = 0.0;
        if (tok.empty() || !numio::parseDouble(tok, v) ||
            !std::isfinite(v))
            failParse(IoErrc::ParseError,
                      "checkpoint: bad number at offset ", start);
        return v;
    }

    Value
    parseValue()
    {
        if (++depth_ > kMaxDepth)
            failParse(IoErrc::ParseError,
                      "checkpoint: nesting deeper than ", kMaxDepth,
                      " levels");
        const char c = peek();
        Value v;
        if (c == '{') {
            ++pos_;
            v.type = Value::Type::Object;
            if (!consume('}')) {
                do {
                    skipSpace();
                    std::string field = parseString();
                    expect(':');
                    v.object.emplace(std::move(field), parseValue());
                } while (consume(','));
                expect('}');
            }
        } else if (c == '[') {
            ++pos_;
            v.type = Value::Type::Array;
            if (!consume(']')) {
                do {
                    v.array.push_back(parseValue());
                } while (consume(','));
                expect(']');
            }
        } else if (c == '"') {
            v.type = Value::Type::String;
            v.string = parseString();
        } else if (c == 't') {
            expectWord("true");
            v.type = Value::Type::Bool;
            v.boolean = true;
        } else if (c == 'f') {
            expectWord("false");
            v.type = Value::Type::Bool;
        } else if (c == 'n') {
            expectWord("null");
        } else {
            v.type = Value::Type::Number;
            v.number = parseNumber();
        }
        --depth_;
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    int depth_ = 0;
};

void
putNumber(std::ostringstream &os, double x)
{
    os << numio::formatDouble(x);
}

void
putString(std::ostringstream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default: os << c;
        }
    }
    os << '"';
}

void
putConfig(std::ostringstream &os, const gpu::FreqConfig &cfg)
{
    os << "[" << std::to_string(cfg.core_mhz) << ","
       << std::to_string(cfg.mem_mhz) << "]";
}

gpu::FreqConfig
configOf(const Value &v)
{
    if (v.arr().size() != 2)
        failParse(IoErrc::ParseError,
                  "checkpoint: a config is a [core, mem] pair");
    const long core = v.arr()[0].integer();
    const long mem = v.arr()[1].integer();
    if (core < -2147483647L || core > 2147483647L ||
        mem < -2147483647L || mem > 2147483647L)
        failParse(IoErrc::ParseError,
                  "checkpoint: clock value out of range");
    return {static_cast<int>(core), static_cast<int>(mem)};
}

} // namespace json

CampaignCheckpoint
parseCheckpointPayload(const std::string &payload)
{
    const json::Value root = json::Parser(payload).parse();
    if (root.at("format").str() != "gpupm-checkpoint" ||
        root.at("version").integer() != 1)
        failParse(IoErrc::VersionMismatch,
                  "not a gpupm campaign checkpoint (or unsupported "
                  "checkpoint schema version)");

    CampaignCheckpoint ck;
    const double seed = root.at("seed").num();
    if (!(seed >= 0.0 && seed < 18446744073709551616.0))
        failParse(IoErrc::ParseError, "checkpoint: bad seed");
    ck.seed = static_cast<std::uint64_t>(seed);
    ck.device = deviceKindOf(root.at("device").integer());
    ck.reference = json::configOf(root.at("reference"));
    if (root.at("configs").arr().size() > kMaxCount)
        failParse(IoErrc::ParseError,
                  "checkpoint: implausible configuration count");
    for (const auto &v : root.at("configs").arr())
        ck.configs.push_back(json::configOf(v));
    for (const auto &v : root.at("benchmarks").arr())
        ck.benchmark_names.push_back(v.str());

    const std::size_t nb = ck.benchmark_names.size();
    const std::size_t nc = ck.configs.size();
    if (nb > kMaxCount || (nb != 0 && nc > kMaxCells / nb))
        failParse(IoErrc::ParseError,
                  "checkpoint: implausible campaign size");

    for (const auto &v : root.at("utils_done").arr())
        ck.utils_done.push_back(v.num() != 0.0 ? 1 : 0);
    if (ck.utils_done.size() != nb)
        failParse(IoErrc::ParseError,
                  "checkpoint: utils_done size mismatch");

    for (const auto &row : root.at("utils").arr()) {
        if (row.arr().size() != gpu::kNumComponents)
            failParse(IoErrc::ParseError,
                      "checkpoint: bad utilization row");
        gpu::ComponentArray u{};
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
            u[i] = row.arr()[i].num();
        ck.utils.push_back(u);
    }
    if (ck.utils.size() != nb)
        failParse(IoErrc::ParseError,
                  "checkpoint: utils size mismatch");

    for (const auto &row : root.at("power_done").arr()) {
        std::vector<char> flags;
        for (const auto &v : row.arr())
            flags.push_back(v.num() != 0.0 ? 1 : 0);
        if (flags.size() != nc)
            failParse(IoErrc::ParseError,
                      "checkpoint: power_done row size mismatch");
        ck.power_done.push_back(std::move(flags));
    }
    if (ck.power_done.size() != nb)
        failParse(IoErrc::ParseError,
                  "checkpoint: power_done size mismatch");

    for (const auto &row : root.at("power_w").arr()) {
        std::vector<double> vals;
        for (const auto &v : row.arr())
            vals.push_back(v.num());
        if (vals.size() != nc)
            failParse(IoErrc::ParseError,
                      "checkpoint: power row size mismatch");
        ck.power_w.push_back(std::move(vals));
    }
    if (ck.power_w.size() != nb)
        failParse(IoErrc::ParseError,
                  "checkpoint: power size mismatch");

    const json::Value &r = root.at("report");
    ck.report.cells_total = r.at("cells_total").integer();
    ck.report.cells_done = r.at("cells_done").integer();
    ck.report.cells_resumed = r.at("cells_resumed").integer();
    ck.report.cells_failed = r.at("cells_failed").integer();
    ck.report.faults_injected = r.at("faults_injected").integer();
    ck.report.totals.attempts = r.at("attempts").integer();
    ck.report.totals.retries = r.at("retries").integer();
    ck.report.totals.timeouts = r.at("timeouts").integer();
    ck.report.totals.call_failures = r.at("call_failures").integer();
    ck.report.totals.corrupt_samples =
            r.at("corrupt_samples").integer();
    ck.report.totals.outliers_rejected =
            r.at("outliers_rejected").integer();
    ck.report.totals.quarantined_calls =
            r.at("quarantined_calls").integer();
    ck.report.totals.backoff_total_s = r.at("backoff_total_s").num();
    for (const auto &v : r.at("quarantined").arr())
        ck.report.quarantined.push_back(json::configOf(v));
    for (const auto &v : r.at("benchmark_reports").arr()) {
        BenchmarkReport br;
        br.name = v.at("name").str();
        br.retries = v.at("retries").integer();
        br.call_failures = v.at("call_failures").integer();
        br.timeouts = v.at("timeouts").integer();
        br.outliers_rejected = v.at("outliers_rejected").integer();
        br.corrupt_samples = v.at("corrupt_samples").integer();
        br.faults_injected = v.at("faults_injected").integer();
        ck.report.benchmarks.push_back(std::move(br));
    }
    if (ck.report.benchmarks.size() != nb)
        failParse(IoErrc::ParseError,
                  "checkpoint: benchmark report size mismatch");
    return ck;
}

// -- Scoreboard payload (JSON, schema gpupm_scoreboard_version 1) ----

int
intOf(const json::Value &v, const char *what)
{
    const long x = v.integer();
    if (x < -2147483647L || x > 2147483647L)
        failParse(IoErrc::ParseError, "scoreboard: ", what,
                  " out of range");
    return static_cast<int>(x);
}

obs::ScoreStats
scoreStatsOf(const json::Value &v)
{
    obs::ScoreStats st;
    const long n = v.at("samples").integer();
    if (n < 0 || static_cast<std::size_t>(n) > kMaxCells)
        failParse(IoErrc::ParseError,
                  "scoreboard: implausible sample count ", n);
    st.samples = n;
    st.mae_pct = v.at("mae_pct").num();
    st.rmse_w = v.at("rmse_w").num();
    st.max_err_pct = v.at("max_err_pct").num();
    st.mean_measured_w = v.at("mean_measured_w").num();
    return st;
}

obs::Scoreboard
parseScoreboardPayload(const std::string &payload)
{
    const json::Value root = json::Parser(payload).parse();
    if (root.at("gpupm_scoreboard_version").integer() != 1)
        failParse(IoErrc::VersionMismatch,
                  "unsupported scoreboard schema version (this build "
                  "reads version 1)");

    obs::Scoreboard sb;
    const json::Value &prov = root.at("provenance");
    sb.provenance.version = prov.at("version").str();
    sb.provenance.build_type = prov.at("build_type").str();
    sb.provenance.device = prov.at("device").str();
    sb.provenance.timestamp = prov.at("timestamp").str();
    // Optional: scoreboards written before the build-info extension
    // carry neither field.
    const auto git = prov.object.find("git_sha");
    if (git != prov.object.end())
        sb.provenance.git_sha = git->second.str();
    const auto cxx = prov.object.find("compiler");
    if (cxx != prov.object.end())
        sb.provenance.compiler = cxx->second.str();

    sb.device = static_cast<int>(
            deviceKindOf(root.at("device").integer()));
    sb.device_name = root.at("device_name").str();
    sb.reference = json::configOf(root.at("reference"));
    sb.overall = scoreStatsOf(root.at("summary"));

    const auto &apps = root.at("per_app").arr();
    if (apps.size() > kMaxCount)
        failParse(IoErrc::ParseError,
                  "scoreboard: implausible per-app row count");
    for (const auto &v : apps)
        sb.per_app.push_back({v.at("app").str(), scoreStatsOf(v)});

    const auto &cfgs = root.at("per_config").arr();
    if (cfgs.size() > kMaxCount)
        failParse(IoErrc::ParseError,
                  "scoreboard: implausible per-config row count");
    for (const auto &v : cfgs)
        sb.per_config.push_back(
                {gpu::FreqConfig{intOf(v.at("core_mhz"), "core clock"),
                                 intOf(v.at("mem_mhz"), "mem clock")},
                 scoreStatsOf(v)});

    for (const auto &[key, out] :
         {std::pair<const char *, std::vector<obs::MarginalScore> *>{
                  "core_marginal", &sb.core_marginal},
          std::pair<const char *, std::vector<obs::MarginalScore> *>{
                  "mem_marginal", &sb.mem_marginal}}) {
        const auto &rows = root.at(key).arr();
        if (rows.size() > kMaxCount)
            failParse(IoErrc::ParseError,
                      "scoreboard: implausible marginal row count");
        for (const auto &v : rows)
            out->push_back({intOf(v.at("mhz"), "marginal clock"),
                            scoreStatsOf(v)});
    }

    const auto &bases = root.at("baselines").arr();
    if (bases.size() > kMaxCount)
        failParse(IoErrc::ParseError,
                  "scoreboard: implausible baseline count");
    for (const auto &v : bases)
        sb.baselines.push_back(
                {v.at("name").str(), v.at("mae_pct").num()});

    // Raw residuals are optional: golden scoreboards are summary-only.
    const auto it = root.object.find("samples");
    if (it != root.object.end()) {
        const auto &rows = it->second.arr();
        if (rows.size() > kMaxCells)
            failParse(IoErrc::ParseError,
                      "scoreboard: implausible residual count");
        for (const auto &v : rows) {
            obs::ResidualSample s;
            s.app = v.at("app").str();
            s.cfg = {intOf(v.at("core_mhz"), "core clock"),
                     intOf(v.at("mem_mhz"), "mem clock")};
            s.measured_w = v.at("measured_w").num();
            s.predicted_w = v.at("predicted_w").num();
            s.constant_w = v.at("constant_w").num();
            const auto &comp = v.at("component_w").arr();
            if (comp.size() != gpu::kNumComponents)
                failParse(IoErrc::ParseError,
                          "scoreboard: bad component vector size ",
                          comp.size());
            for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
                s.component_w[i] = comp[i].num();
            const auto bw = v.object.find("baseline_w");
            if (v.type == json::Value::Type::Object &&
                bw != v.object.end())
                for (const auto &b : bw->second.arr())
                    s.baseline_w.emplace_back(b.at("name").str(),
                                              b.at("w").num());
            sb.samples.push_back(std::move(s));
        }
    }
    return sb;
}

// -- Shared load policy ----------------------------------------------

/**
 * The one place the loading policy lives: unwrap (or accept legacy),
 * parse, optionally validate, and convert the internal unwinding
 * channel into a typed result.
 */
template <typename T>
IoExpected<T>
parseWithPolicy(const std::string &text, FileKind want,
                const LoadOptions &opts,
                T (*parse_payload)(const std::string &),
                ValidationReport (*validate)(const T &))
{
    try {
        std::string payload;
        if (hasEnvelope(text)) {
            Envelope env = unwrapEnvelope(text);
            if (env.kind != want)
                failParse(IoErrc::ParseError, "file holds a ",
                          fileKindName(env.kind), ", expected a ",
                          fileKindName(want));
            payload = std::move(env.payload);
        } else {
            if (!opts.allow_legacy)
                failParse(IoErrc::VersionMismatch,
                          "legacy (pre-envelope) ",
                          fileKindName(want),
                          " file: no version or checksum to verify");
            payload = text;
        }
        T value = parse_payload(payload);
        if (opts.validate) {
            GPUPM_TRACE_SPAN("io", "io.validate");
            const ValidationReport report = validate(value);
            if (!report.ok())
                failParse(IoErrc::ValidationError, report.summary());
        }
        return value;
    } catch (const ParseFail &f) {
        return f.status;
    } catch (const std::exception &e) {
        // A parser slipping through on hostile input (e.g. an assert
        // in a constructor) still surfaces as a typed error, never as
        // an aborted process.
        return IoStatus{IoErrc::ParseError, e.what()};
    }
}

template <typename T>
IoExpected<T>
loadWithPolicy(const std::string &path, FileKind want,
               const LoadOptions &opts,
               T (*parse_payload)(const std::string &),
               ValidationReport (*validate)(const T &))
{
    GPUPM_TRACE_SPAN_NAMED(span, "io", "io.load");
    span.arg("path", path);
    span.arg("kind", std::string(fileKindName(want)));
    auto text = tryReadFile(path);
    if (!text.ok()) {
        obs::ioLoadFailuresTotal().inc();
        return text.error();
    }
    auto res = parseWithPolicy<T>(text.value(), want, opts,
                                  parse_payload, validate);
    if (!res.ok()) {
        obs::ioLoadFailuresTotal().inc();
        return IoStatus{res.error().code,
                        detail::concat("'", path, "': ",
                                       res.error().message)};
    }
    obs::ioLoadsTotal().inc();
    return res;
}

} // namespace

std::string
wrapEnvelope(FileKind kind, const std::string &payload)
{
    std::string out(kEnvelopeMagic);
    out += " ";
    out += fileKindName(kind);
    out += " v2 crc32 ";
    out += checksum::crc32Hex(checksum::crc32(payload));
    out += " bytes ";
    out += std::to_string(payload.size());
    out += "\n";
    out += payload;
    return out;
}

IoExpected<std::string>
tryUnwrapEnvelope(const std::string &text, FileKind want)
{
    try {
        Envelope env = unwrapEnvelope(text);
        if (env.kind != want)
            failParse(IoErrc::ParseError, "file holds a ",
                      fileKindName(env.kind), ", expected a ",
                      fileKindName(want));
        return std::move(env.payload);
    } catch (const ParseFail &f) {
        return f.status;
    } catch (const std::exception &e) {
        return IoStatus{IoErrc::ParseError, e.what()};
    }
}

IoExpected<std::string>
tryReadFileText(const std::string &path)
{
    return tryReadFile(path);
}

IoExpected<bool>
tryWriteFileAtomic(const std::string &path, const std::string &text)
{
    const std::string tmp = path + ".tmp";
    const auto written = tryWriteFile(tmp, text);
    if (!written.ok())
        return written;
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        return IoStatus{IoErrc::IoError,
                        detail::concat("cannot move '", tmp,
                                       "' into place at '", path,
                                       "': ", ec.message())};
    return true;
}

IoExpected<FileKind>
detectFileKind(const std::string &text)
{
    try {
        if (hasEnvelope(text)) {
            const std::size_t eol = text.find('\n');
            const std::string header =
                    eol == std::string::npos ? text
                                             : text.substr(0, eol);
            TokenScanner s(header);
            s.expect(kEnvelopeMagic);
            return fileKindOf(s.next("artifact kind"));
        }
        if (text.rfind("gpupm-model", 0) == 0)
            return FileKind::Model;
        if (text.rfind("gpupm-campaign", 0) == 0)
            return FileKind::Campaign;
        const std::size_t first =
                text.find_first_not_of(" \t\r\n");
        if (first != std::string::npos && text[first] == '{') {
            // Both legacy JSON payloads start with '{'; a scoreboard
            // leads with its version key, a checkpoint with "format".
            const auto probe = text.find(
                    "\"gpupm_scoreboard_version\"", first);
            if (probe != std::string::npos && probe < first + 40)
                return FileKind::Scoreboard;
            return FileKind::Checkpoint;
        }
        failParse(IoErrc::ParseError,
                  "unrecognized file content (neither a v2 envelope "
                  "nor a legacy gpupm artifact)");
    } catch (const ParseFail &f) {
        return f.status;
    }
}

// -- Models ----------------------------------------------------------

std::string
serializeModel(const DvfsPowerModel &model)
{
    return wrapEnvelope(FileKind::Model, model.serialize());
}

IoExpected<DvfsPowerModel>
tryParseModel(const std::string &text, const LoadOptions &opts)
{
    return parseWithPolicy<DvfsPowerModel>(
            text, FileKind::Model, opts, parseModelPayload,
            validateModel);
}

IoExpected<DvfsPowerModel>
tryLoadModel(const std::string &path, const LoadOptions &opts)
{
    return loadWithPolicy<DvfsPowerModel>(
            path, FileKind::Model, opts, parseModelPayload,
            validateModel);
}

IoExpected<bool>
trySaveModel(const DvfsPowerModel &model, const std::string &path)
{
    return tryWriteFile(path, serializeModel(model));
}

void
saveModel(const DvfsPowerModel &model, const std::string &path)
{
    const auto res = trySaveModel(model, path);
    GPUPM_FATAL_IF(!res.ok(), res.error().message);
}

DvfsPowerModel
loadModel(const std::string &path)
{
    auto res = tryLoadModel(path);
    GPUPM_FATAL_IF(!res.ok(), "cannot load model [",
                   ioErrcName(res.error().code), "]: ",
                   res.error().message);
    return res.value();
}

// -- Training campaigns ----------------------------------------------

std::string
serializeTrainingData(const TrainingData &data)
{
    std::ostringstream os;
    os << "gpupm-campaign v1\n";
    os << "device " << std::to_string(static_cast<int>(data.device))
       << "\n";
    os << "reference " << std::to_string(data.reference.core_mhz)
       << " " << std::to_string(data.reference.mem_mhz) << "\n";
    os << "configs " << std::to_string(data.configs.size()) << "\n";
    for (const auto &cfg : data.configs)
        os << std::to_string(cfg.core_mhz) << " "
           << std::to_string(cfg.mem_mhz) << "\n";
    os << "benchmarks " << std::to_string(data.utils.size()) << "\n";
    for (std::size_t b = 0; b < data.utils.size(); ++b) {
        for (double u : data.utils[b])
            os << numio::formatDouble(u) << " ";
        os << "\n";
        for (double p : data.power_w[b])
            os << numio::formatDouble(p) << " ";
        os << "\n";
    }
    return wrapEnvelope(FileKind::Campaign, os.str());
}

IoExpected<TrainingData>
tryParseTrainingData(const std::string &text, const LoadOptions &opts)
{
    return parseWithPolicy<TrainingData>(
            text, FileKind::Campaign, opts, parseCampaignPayload,
            validateTrainingData);
}

IoExpected<TrainingData>
tryLoadTrainingData(const std::string &path, const LoadOptions &opts)
{
    return loadWithPolicy<TrainingData>(
            path, FileKind::Campaign, opts, parseCampaignPayload,
            validateTrainingData);
}

IoExpected<bool>
trySaveTrainingData(const TrainingData &data, const std::string &path)
{
    return tryWriteFile(path, serializeTrainingData(data));
}

TrainingData
deserializeTrainingData(const std::string &text)
{
    auto res = tryParseTrainingData(text);
    GPUPM_FATAL_IF(!res.ok(), "cannot parse campaign [",
                   ioErrcName(res.error().code), "]: ",
                   res.error().message);
    return res.value();
}

void
saveTrainingData(const TrainingData &data, const std::string &path)
{
    const auto res = trySaveTrainingData(data, path);
    GPUPM_FATAL_IF(!res.ok(), res.error().message);
}

TrainingData
loadTrainingData(const std::string &path)
{
    auto res = tryLoadTrainingData(path);
    GPUPM_FATAL_IF(!res.ok(), "cannot load campaign [",
                   ioErrcName(res.error().code), "]: ",
                   res.error().message);
    return res.value();
}

// -- Campaign checkpoints --------------------------------------------

std::string
serializeCampaignCheckpoint(const CampaignCheckpoint &ck)
{
    using json::putConfig;
    using json::putNumber;
    using json::putString;

    std::ostringstream os;
    os << "{\n";
    os << "\"format\":\"gpupm-checkpoint\",\n\"version\":1,\n";
    os << "\"seed\":" << std::to_string(ck.seed) << ",\n";
    os << "\"device\":"
       << std::to_string(static_cast<int>(ck.device)) << ",\n";
    os << "\"reference\":";
    putConfig(os, ck.reference);
    os << ",\n\"configs\":[";
    for (std::size_t i = 0; i < ck.configs.size(); ++i) {
        if (i)
            os << ",";
        putConfig(os, ck.configs[i]);
    }
    os << "],\n\"benchmarks\":[";
    for (std::size_t i = 0; i < ck.benchmark_names.size(); ++i) {
        if (i)
            os << ",";
        putString(os, ck.benchmark_names[i]);
    }
    os << "],\n\"utils_done\":[";
    for (std::size_t i = 0; i < ck.utils_done.size(); ++i)
        os << (i ? "," : "") << (ck.utils_done[i] ? 1 : 0);
    os << "],\n\"utils\":[";
    for (std::size_t b = 0; b < ck.utils.size(); ++b) {
        os << (b ? ",[" : "[");
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i) {
            if (i)
                os << ",";
            putNumber(os, ck.utils[b][i]);
        }
        os << "]";
    }
    os << "],\n\"power_done\":[";
    for (std::size_t b = 0; b < ck.power_done.size(); ++b) {
        os << (b ? ",[" : "[");
        for (std::size_t c = 0; c < ck.power_done[b].size(); ++c)
            os << (c ? "," : "") << (ck.power_done[b][c] ? 1 : 0);
        os << "]";
    }
    os << "],\n\"power_w\":[";
    for (std::size_t b = 0; b < ck.power_w.size(); ++b) {
        os << (b ? ",\n[" : "\n[");
        for (std::size_t c = 0; c < ck.power_w[b].size(); ++c) {
            if (c)
                os << ",";
            putNumber(os, ck.power_w[b][c]);
        }
        os << "]";
    }
    const CampaignReport &r = ck.report;
    os << "],\n\"report\":{";
    os << "\"cells_total\":" << r.cells_total << ",";
    os << "\"cells_done\":" << r.cells_done << ",";
    os << "\"cells_resumed\":" << r.cells_resumed << ",";
    os << "\"cells_failed\":" << r.cells_failed << ",";
    os << "\"faults_injected\":" << r.faults_injected << ",\n";
    os << "\"attempts\":" << r.totals.attempts << ",";
    os << "\"retries\":" << r.totals.retries << ",";
    os << "\"timeouts\":" << r.totals.timeouts << ",";
    os << "\"call_failures\":" << r.totals.call_failures << ",";
    os << "\"corrupt_samples\":" << r.totals.corrupt_samples << ",";
    os << "\"outliers_rejected\":" << r.totals.outliers_rejected
       << ",";
    os << "\"quarantined_calls\":" << r.totals.quarantined_calls
       << ",";
    os << "\"backoff_total_s\":";
    putNumber(os, r.totals.backoff_total_s);
    os << ",\n\"quarantined\":[";
    for (std::size_t i = 0; i < r.quarantined.size(); ++i) {
        if (i)
            os << ",";
        putConfig(os, r.quarantined[i]);
    }
    os << "],\n\"benchmark_reports\":[";
    for (std::size_t b = 0; b < r.benchmarks.size(); ++b) {
        const BenchmarkReport &br = r.benchmarks[b];
        os << (b ? ",\n{" : "\n{");
        os << "\"name\":";
        putString(os, br.name);
        os << ",\"retries\":" << br.retries;
        os << ",\"call_failures\":" << br.call_failures;
        os << ",\"timeouts\":" << br.timeouts;
        os << ",\"outliers_rejected\":" << br.outliers_rejected;
        os << ",\"corrupt_samples\":" << br.corrupt_samples;
        os << ",\"faults_injected\":" << br.faults_injected;
        os << "}";
    }
    os << "]}\n}\n";
    return wrapEnvelope(FileKind::Checkpoint, os.str());
}

IoExpected<CampaignCheckpoint>
tryParseCampaignCheckpoint(const std::string &text,
                           const LoadOptions &opts)
{
    return parseWithPolicy<CampaignCheckpoint>(
            text, FileKind::Checkpoint, opts, parseCheckpointPayload,
            validateCheckpoint);
}

IoExpected<CampaignCheckpoint>
tryLoadCampaignCheckpoint(const std::string &path,
                          const LoadOptions &opts)
{
    return loadWithPolicy<CampaignCheckpoint>(
            path, FileKind::Checkpoint, opts, parseCheckpointPayload,
            validateCheckpoint);
}

IoExpected<bool>
trySaveCampaignCheckpoint(const CampaignCheckpoint &ck,
                          const std::string &path)
{
    // Write-then-rename so an interrupted write never corrupts an
    // existing checkpoint (rename within a directory is atomic on
    // POSIX filesystems).
    return tryWriteFileAtomic(path, serializeCampaignCheckpoint(ck));
}

CampaignCheckpoint
deserializeCampaignCheckpoint(const std::string &text)
{
    auto res = tryParseCampaignCheckpoint(text);
    GPUPM_FATAL_IF(!res.ok(), "cannot parse checkpoint [",
                   ioErrcName(res.error().code), "]: ",
                   res.error().message);
    return res.value();
}

void
saveCampaignCheckpoint(const CampaignCheckpoint &ck,
                       const std::string &path)
{
    const auto res = trySaveCampaignCheckpoint(ck, path);
    GPUPM_FATAL_IF(!res.ok(), res.error().message);
}

CampaignCheckpoint
loadCampaignCheckpoint(const std::string &path)
{
    auto res = tryLoadCampaignCheckpoint(path);
    GPUPM_FATAL_IF(!res.ok(), "cannot load checkpoint [",
                   ioErrcName(res.error().code), "]: ",
                   res.error().message);
    return res.value();
}

// -- Accuracy scoreboards --------------------------------------------

std::string
serializeScoreboard(const obs::Scoreboard &sb, bool include_samples)
{
    return wrapEnvelope(FileKind::Scoreboard,
                        sb.toJson(include_samples));
}

IoExpected<obs::Scoreboard>
tryParseScoreboard(const std::string &text, const LoadOptions &opts)
{
    return parseWithPolicy<obs::Scoreboard>(
            text, FileKind::Scoreboard, opts, parseScoreboardPayload,
            validateScoreboard);
}

IoExpected<obs::Scoreboard>
tryLoadScoreboard(const std::string &path, const LoadOptions &opts)
{
    return loadWithPolicy<obs::Scoreboard>(
            path, FileKind::Scoreboard, opts, parseScoreboardPayload,
            validateScoreboard);
}

IoExpected<bool>
trySaveScoreboard(const obs::Scoreboard &sb, const std::string &path,
                  bool include_samples)
{
    return tryWriteFile(path, serializeScoreboard(sb, include_samples));
}

} // namespace model
} // namespace gpupm
