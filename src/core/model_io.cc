#include "model_io.hh"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "common/logging.hh"

namespace gpupm
{
namespace model
{

namespace
{

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    GPUPM_FATAL_IF(!in, "cannot open '", path, "' for reading");
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

void
writeFile(const std::string &path, const std::string &text)
{
    std::ofstream out(path);
    GPUPM_FATAL_IF(!out, "cannot open '", path, "' for writing");
    out << text;
    GPUPM_FATAL_IF(!out, "write to '", path, "' failed");
}

} // namespace

void
saveModel(const DvfsPowerModel &model, const std::string &path)
{
    writeFile(path, model.serialize());
}

DvfsPowerModel
loadModel(const std::string &path)
{
    return DvfsPowerModel::deserialize(readFile(path));
}

std::string
serializeTrainingData(const TrainingData &data)
{
    std::ostringstream os;
    os.precision(12);
    os << "gpupm-campaign v1\n";
    os << "device " << static_cast<int>(data.device) << "\n";
    os << "reference " << data.reference.core_mhz << " "
       << data.reference.mem_mhz << "\n";
    os << "configs " << data.configs.size() << "\n";
    for (const auto &cfg : data.configs)
        os << cfg.core_mhz << " " << cfg.mem_mhz << "\n";
    os << "benchmarks " << data.utils.size() << "\n";
    for (std::size_t b = 0; b < data.utils.size(); ++b) {
        for (double u : data.utils[b])
            os << u << " ";
        os << "\n";
        for (double p : data.power_w[b])
            os << p << " ";
        os << "\n";
    }
    return os.str();
}

TrainingData
deserializeTrainingData(const std::string &text)
{
    std::istringstream is(text);
    std::string tag, version;
    is >> tag >> version;
    GPUPM_FATAL_IF(tag != "gpupm-campaign" || version != "v1",
                   "not a gpupm campaign file");

    TrainingData data;
    int kind = 0;
    is >> tag >> kind;
    GPUPM_FATAL_IF(tag != "device", "expected 'device'");
    GPUPM_FATAL_IF(kind < 0 || kind > 2, "bad device kind ", kind);
    data.device = static_cast<gpu::DeviceKind>(kind);

    is >> tag >> data.reference.core_mhz >> data.reference.mem_mhz;
    GPUPM_FATAL_IF(tag != "reference", "expected 'reference'");

    std::size_t nc = 0;
    is >> tag >> nc;
    GPUPM_FATAL_IF(tag != "configs", "expected 'configs'");
    data.configs.resize(nc);
    for (auto &cfg : data.configs)
        is >> cfg.core_mhz >> cfg.mem_mhz;

    std::size_t nb = 0;
    is >> tag >> nb;
    GPUPM_FATAL_IF(tag != "benchmarks", "expected 'benchmarks'");
    data.utils.resize(nb);
    data.power_w.assign(nb, std::vector<double>(nc));
    for (std::size_t b = 0; b < nb; ++b) {
        for (double &u : data.utils[b])
            is >> u;
        for (double &p : data.power_w[b])
            is >> p;
    }
    GPUPM_FATAL_IF(is.fail(), "truncated campaign file");
    return data;
}

void
saveTrainingData(const TrainingData &data, const std::string &path)
{
    writeFile(path, serializeTrainingData(data));
}

TrainingData
loadTrainingData(const std::string &path)
{
    return deserializeTrainingData(readFile(path));
}

// ---------------------------------------------------------------------
// Campaign checkpoints: JSON, hand-rolled (no external dependencies).
// The writer emits a fixed schema; the reader is a small
// recursive-descent parser over general JSON, so checkpoints stay
// readable by standard tooling (jq, python) and edits by such tooling
// stay readable by us.
// ---------------------------------------------------------------------

namespace json
{

/** One parsed JSON value (taggged union over the JSON types). */
struct Value
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Value> array;
    std::map<std::string, Value> object;

    const Value &
    at(const std::string &field) const
    {
        GPUPM_FATAL_IF(type != Type::Object,
                       "checkpoint: expected object around '", field,
                       "'");
        auto it = object.find(field);
        GPUPM_FATAL_IF(it == object.end(),
                       "checkpoint: missing field '", field, "'");
        return it->second;
    }

    double
    num() const
    {
        GPUPM_FATAL_IF(type != Type::Number,
                       "checkpoint: expected a number");
        return number;
    }

    long
    integer() const
    {
        return static_cast<long>(num());
    }

    const std::string &
    str() const
    {
        GPUPM_FATAL_IF(type != Type::String,
                       "checkpoint: expected a string");
        return string;
    }

    const std::vector<Value> &
    arr() const
    {
        GPUPM_FATAL_IF(type != Type::Array,
                       "checkpoint: expected an array");
        return array;
    }
};

/** Recursive-descent JSON parser (fatal on malformed input). */
class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    Value
    parse()
    {
        Value v = parseValue();
        skipSpace();
        GPUPM_FATAL_IF(pos_ != text_.size(),
                       "checkpoint: trailing characters at offset ",
                       pos_);
        return v;
    }

  private:
    void
    skipSpace()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        skipSpace();
        GPUPM_FATAL_IF(pos_ >= text_.size(),
                       "checkpoint: unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        GPUPM_FATAL_IF(peek() != c, "checkpoint: expected '", c,
                       "' at offset ", pos_, ", got '", text_[pos_],
                       "'");
        ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && peek() == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    expectWord(std::string_view word)
    {
        GPUPM_FATAL_IF(text_.compare(pos_, word.size(), word) != 0,
                       "checkpoint: bad literal at offset ", pos_);
        pos_ += word.size();
    }

    std::string
    parseString()
    {
        expect('"');
        std::string s;
        while (true) {
            GPUPM_FATAL_IF(pos_ >= text_.size(),
                           "checkpoint: unterminated string");
            const char c = text_[pos_++];
            if (c == '"')
                return s;
            if (c == '\\') {
                GPUPM_FATAL_IF(pos_ >= text_.size(),
                               "checkpoint: unterminated escape");
                const char e = text_[pos_++];
                switch (e) {
                  case '"': s += '"'; break;
                  case '\\': s += '\\'; break;
                  case '/': s += '/'; break;
                  case 'n': s += '\n'; break;
                  case 't': s += '\t'; break;
                  case 'r': s += '\r'; break;
                  default:
                    GPUPM_FATAL("checkpoint: unsupported escape '\\",
                                e, "'");
                }
            } else {
                s += c;
            }
        }
    }

    Value
    parseValue()
    {
        const char c = peek();
        Value v;
        if (c == '{') {
            ++pos_;
            v.type = Value::Type::Object;
            if (!consume('}')) {
                do {
                    skipSpace();
                    std::string field = parseString();
                    expect(':');
                    v.object.emplace(std::move(field), parseValue());
                } while (consume(','));
                expect('}');
            }
        } else if (c == '[') {
            ++pos_;
            v.type = Value::Type::Array;
            if (!consume(']')) {
                do {
                    v.array.push_back(parseValue());
                } while (consume(','));
                expect(']');
            }
        } else if (c == '"') {
            v.type = Value::Type::String;
            v.string = parseString();
        } else if (c == 't') {
            expectWord("true");
            v.type = Value::Type::Bool;
            v.boolean = true;
        } else if (c == 'f') {
            expectWord("false");
            v.type = Value::Type::Bool;
        } else if (c == 'n') {
            expectWord("null");
        } else {
            v.type = Value::Type::Number;
            char *end = nullptr;
            v.number = std::strtod(text_.c_str() + pos_, &end);
            GPUPM_FATAL_IF(end == text_.c_str() + pos_,
                           "checkpoint: bad number at offset ", pos_);
            pos_ = static_cast<std::size_t>(end - text_.c_str());
        }
        return v;
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

/** Emit a double at round-trip precision. */
void
putNumber(std::ostringstream &os, double x)
{
    os << std::setprecision(17) << x;
}

void
putString(std::ostringstream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\t': os << "\\t"; break;
          case '\r': os << "\\r"; break;
          default: os << c;
        }
    }
    os << '"';
}

void
putConfig(std::ostringstream &os, const gpu::FreqConfig &cfg)
{
    os << "[" << cfg.core_mhz << "," << cfg.mem_mhz << "]";
}

gpu::FreqConfig
configOf(const Value &v)
{
    GPUPM_FATAL_IF(v.arr().size() != 2,
                   "checkpoint: a config is a [core, mem] pair");
    return {static_cast<int>(v.arr()[0].num()),
            static_cast<int>(v.arr()[1].num())};
}

} // namespace json

std::string
serializeCampaignCheckpoint(const CampaignCheckpoint &ck)
{
    using json::putConfig;
    using json::putNumber;
    using json::putString;

    std::ostringstream os;
    os << "{\n";
    os << "\"format\":\"gpupm-checkpoint\",\n\"version\":1,\n";
    os << "\"seed\":" << ck.seed << ",\n";
    os << "\"device\":" << static_cast<int>(ck.device) << ",\n";
    os << "\"reference\":";
    putConfig(os, ck.reference);
    os << ",\n\"configs\":[";
    for (std::size_t i = 0; i < ck.configs.size(); ++i) {
        if (i)
            os << ",";
        putConfig(os, ck.configs[i]);
    }
    os << "],\n\"benchmarks\":[";
    for (std::size_t i = 0; i < ck.benchmark_names.size(); ++i) {
        if (i)
            os << ",";
        putString(os, ck.benchmark_names[i]);
    }
    os << "],\n\"utils_done\":[";
    for (std::size_t i = 0; i < ck.utils_done.size(); ++i)
        os << (i ? "," : "") << (ck.utils_done[i] ? 1 : 0);
    os << "],\n\"utils\":[";
    for (std::size_t b = 0; b < ck.utils.size(); ++b) {
        os << (b ? ",[" : "[");
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i) {
            if (i)
                os << ",";
            putNumber(os, ck.utils[b][i]);
        }
        os << "]";
    }
    os << "],\n\"power_done\":[";
    for (std::size_t b = 0; b < ck.power_done.size(); ++b) {
        os << (b ? ",[" : "[");
        for (std::size_t c = 0; c < ck.power_done[b].size(); ++c)
            os << (c ? "," : "") << (ck.power_done[b][c] ? 1 : 0);
        os << "]";
    }
    os << "],\n\"power_w\":[";
    for (std::size_t b = 0; b < ck.power_w.size(); ++b) {
        os << (b ? ",\n[" : "\n[");
        for (std::size_t c = 0; c < ck.power_w[b].size(); ++c) {
            if (c)
                os << ",";
            putNumber(os, ck.power_w[b][c]);
        }
        os << "]";
    }
    const CampaignReport &r = ck.report;
    os << "],\n\"report\":{";
    os << "\"cells_total\":" << r.cells_total << ",";
    os << "\"cells_done\":" << r.cells_done << ",";
    os << "\"cells_resumed\":" << r.cells_resumed << ",";
    os << "\"cells_failed\":" << r.cells_failed << ",";
    os << "\"faults_injected\":" << r.faults_injected << ",\n";
    os << "\"attempts\":" << r.totals.attempts << ",";
    os << "\"retries\":" << r.totals.retries << ",";
    os << "\"timeouts\":" << r.totals.timeouts << ",";
    os << "\"call_failures\":" << r.totals.call_failures << ",";
    os << "\"corrupt_samples\":" << r.totals.corrupt_samples << ",";
    os << "\"outliers_rejected\":" << r.totals.outliers_rejected
       << ",";
    os << "\"quarantined_calls\":" << r.totals.quarantined_calls
       << ",";
    os << "\"backoff_total_s\":";
    putNumber(os, r.totals.backoff_total_s);
    os << ",\n\"quarantined\":[";
    for (std::size_t i = 0; i < r.quarantined.size(); ++i) {
        if (i)
            os << ",";
        putConfig(os, r.quarantined[i]);
    }
    os << "],\n\"benchmark_reports\":[";
    for (std::size_t b = 0; b < r.benchmarks.size(); ++b) {
        const BenchmarkReport &br = r.benchmarks[b];
        os << (b ? ",\n{" : "\n{");
        os << "\"name\":";
        putString(os, br.name);
        os << ",\"retries\":" << br.retries;
        os << ",\"call_failures\":" << br.call_failures;
        os << ",\"timeouts\":" << br.timeouts;
        os << ",\"outliers_rejected\":" << br.outliers_rejected;
        os << ",\"corrupt_samples\":" << br.corrupt_samples;
        os << ",\"faults_injected\":" << br.faults_injected;
        os << "}";
    }
    os << "]}\n}\n";
    return os.str();
}

CampaignCheckpoint
deserializeCampaignCheckpoint(const std::string &text)
{
    const json::Value root = json::Parser(text).parse();
    GPUPM_FATAL_IF(root.at("format").str() != "gpupm-checkpoint" ||
                           root.at("version").integer() != 1,
                   "not a gpupm campaign checkpoint");

    CampaignCheckpoint ck;
    ck.seed = static_cast<std::uint64_t>(root.at("seed").num());
    const long kind = root.at("device").integer();
    GPUPM_FATAL_IF(kind < 0 || kind > 2, "bad device kind ", kind);
    ck.device = static_cast<gpu::DeviceKind>(kind);
    ck.reference = json::configOf(root.at("reference"));
    for (const auto &v : root.at("configs").arr())
        ck.configs.push_back(json::configOf(v));
    for (const auto &v : root.at("benchmarks").arr())
        ck.benchmark_names.push_back(v.str());

    const std::size_t nb = ck.benchmark_names.size();
    const std::size_t nc = ck.configs.size();

    for (const auto &v : root.at("utils_done").arr())
        ck.utils_done.push_back(v.num() != 0.0 ? 1 : 0);
    GPUPM_FATAL_IF(ck.utils_done.size() != nb,
                   "checkpoint: utils_done size mismatch");

    for (const auto &row : root.at("utils").arr()) {
        GPUPM_FATAL_IF(row.arr().size() != gpu::kNumComponents,
                       "checkpoint: bad utilization row");
        gpu::ComponentArray u{};
        for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
            u[i] = row.arr()[i].num();
        ck.utils.push_back(u);
    }
    GPUPM_FATAL_IF(ck.utils.size() != nb,
                   "checkpoint: utils size mismatch");

    for (const auto &row : root.at("power_done").arr()) {
        std::vector<char> flags;
        for (const auto &v : row.arr())
            flags.push_back(v.num() != 0.0 ? 1 : 0);
        GPUPM_FATAL_IF(flags.size() != nc,
                       "checkpoint: power_done row size mismatch");
        ck.power_done.push_back(std::move(flags));
    }
    GPUPM_FATAL_IF(ck.power_done.size() != nb,
                   "checkpoint: power_done size mismatch");

    for (const auto &row : root.at("power_w").arr()) {
        std::vector<double> vals;
        for (const auto &v : row.arr())
            vals.push_back(v.num());
        GPUPM_FATAL_IF(vals.size() != nc,
                       "checkpoint: power row size mismatch");
        ck.power_w.push_back(std::move(vals));
    }
    GPUPM_FATAL_IF(ck.power_w.size() != nb,
                   "checkpoint: power size mismatch");

    const json::Value &r = root.at("report");
    ck.report.cells_total = r.at("cells_total").integer();
    ck.report.cells_done = r.at("cells_done").integer();
    ck.report.cells_resumed = r.at("cells_resumed").integer();
    ck.report.cells_failed = r.at("cells_failed").integer();
    ck.report.faults_injected = r.at("faults_injected").integer();
    ck.report.totals.attempts = r.at("attempts").integer();
    ck.report.totals.retries = r.at("retries").integer();
    ck.report.totals.timeouts = r.at("timeouts").integer();
    ck.report.totals.call_failures = r.at("call_failures").integer();
    ck.report.totals.corrupt_samples =
            r.at("corrupt_samples").integer();
    ck.report.totals.outliers_rejected =
            r.at("outliers_rejected").integer();
    ck.report.totals.quarantined_calls =
            r.at("quarantined_calls").integer();
    ck.report.totals.backoff_total_s = r.at("backoff_total_s").num();
    for (const auto &v : r.at("quarantined").arr())
        ck.report.quarantined.push_back(json::configOf(v));
    for (const auto &v : r.at("benchmark_reports").arr()) {
        BenchmarkReport br;
        br.name = v.at("name").str();
        br.retries = v.at("retries").integer();
        br.call_failures = v.at("call_failures").integer();
        br.timeouts = v.at("timeouts").integer();
        br.outliers_rejected = v.at("outliers_rejected").integer();
        br.corrupt_samples = v.at("corrupt_samples").integer();
        br.faults_injected = v.at("faults_injected").integer();
        ck.report.benchmarks.push_back(std::move(br));
    }
    GPUPM_FATAL_IF(ck.report.benchmarks.size() != nb,
                   "checkpoint: benchmark report size mismatch");
    return ck;
}

void
saveCampaignCheckpoint(const CampaignCheckpoint &ck,
                       const std::string &path)
{
    // Write-then-rename so an interrupted write never corrupts an
    // existing checkpoint (rename within a directory is atomic on
    // POSIX filesystems).
    const std::string tmp = path + ".tmp";
    writeFile(tmp, serializeCampaignCheckpoint(ck));
    std::error_code ec;
    std::filesystem::rename(tmp, path, ec);
    GPUPM_FATAL_IF(ec, "cannot move checkpoint into place at '", path,
                   "': ", ec.message());
}

CampaignCheckpoint
loadCampaignCheckpoint(const std::string &path)
{
    return deserializeCampaignCheckpoint(readFile(path));
}

} // namespace model
} // namespace gpupm
