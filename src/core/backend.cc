#include "backend.hh"

namespace gpupm
{
namespace model
{

SimulatedBackend::SimulatedBackend(const sim::PhysicalGpu &board,
                                   std::uint64_t seed)
    : board_(board), profiler_(board, seed), device_(board, seed + 1)
{}

const gpu::DeviceDescriptor &
SimulatedBackend::descriptor() const
{
    return board_.descriptor();
}

cupti::RawMetrics
SimulatedBackend::profileKernel(const sim::KernelDemand &kernel,
                                const gpu::FreqConfig &cfg)
{
    return profiler_.profile(kernel, cfg);
}

nvml::PowerMeasurement
SimulatedBackend::measurePower(const sim::KernelDemand &kernel,
                               const gpu::FreqConfig &cfg,
                               int repetitions, double min_duration_s)
{
    device_.setApplicationClocks(cfg.mem_mhz, cfg.core_mhz);
    return device_.measureKernelPower(kernel, repetitions,
                                      min_duration_s);
}

double
SimulatedBackend::measureIdlePower(const gpu::FreqConfig &cfg)
{
    device_.setApplicationClocks(cfg.mem_mhz, cfg.core_mhz);
    return device_.measureIdlePower();
}

} // namespace model
} // namespace gpupm
