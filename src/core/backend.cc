#include "backend.hh"

#include "common/logging.hh"

namespace gpupm
{
namespace model
{

std::string_view
measureErrcName(MeasureErrc code)
{
    switch (code) {
      case MeasureErrc::Transient: return "Transient";
      case MeasureErrc::ClockRejected: return "ClockRejected";
      case MeasureErrc::Timeout: return "Timeout";
      case MeasureErrc::CorruptSample: return "CorruptSample";
      case MeasureErrc::Quarantined: return "Quarantined";
      case MeasureErrc::Fatal: return "Fatal";
    }
    GPUPM_PANIC("unknown MeasureErrc");
}

bool
isRecoverable(MeasureErrc code)
{
    return code != MeasureErrc::Fatal;
}

SimulatedBackend::SimulatedBackend(const sim::PhysicalGpu &board,
                                   std::uint64_t seed)
    : board_(board), profiler_(board, seed), device_(board, seed + 1)
{}

const gpu::DeviceDescriptor &
SimulatedBackend::descriptor() const
{
    return board_.descriptor();
}

void
SimulatedBackend::applyClocks(const gpu::FreqConfig &cfg)
{
    const nvml::NvmlStatus st =
            device_.trySetApplicationClocks(cfg.mem_mhz, cfg.core_mhz);
    if (st != nvml::NvmlStatus::Success) {
        throw MeasurementError(
                MeasureErrc::ClockRejected,
                detail::concat("driver rejected clocks (", cfg.core_mhz,
                               ", ", cfg.mem_mhz, ") MHz: ",
                               nvml::nvmlStatusName(st)));
    }
}

cupti::RawMetrics
SimulatedBackend::profileKernel(const sim::KernelDemand &kernel,
                                const gpu::FreqConfig &cfg)
{
    return profiler_.profile(kernel, cfg);
}

nvml::PowerMeasurement
SimulatedBackend::measurePower(const sim::KernelDemand &kernel,
                               const gpu::FreqConfig &cfg,
                               int repetitions, double min_duration_s)
{
    applyClocks(cfg);
    return device_.measureKernelPower(kernel, repetitions,
                                      min_duration_s);
}

double
SimulatedBackend::measureIdlePower(const gpu::FreqConfig &cfg)
{
    applyClocks(cfg);
    return device_.measureIdlePower();
}

void
SimulatedBackend::reseed(std::uint64_t seed)
{
    profiler_.reseed(seed);
    device_.reseed(seed + 1);
}

} // namespace model
} // namespace gpupm
