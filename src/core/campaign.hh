/**
 * @file
 * Measurement campaigns: the host-side procedure of Sec. V-A.
 *
 * A training campaign executes the whole microbenchmark suite on the
 * simulated board: performance events are collected through the CUPTI
 * facade at the reference configuration only, and average power is
 * measured through the NVML facade at every supported V-F
 * configuration (kernels repeated to at least one second at the
 * fastest configuration, samples averaged, median of repeated runs).
 * A validation measurement does the same for a single application.
 */

#ifndef GPUPM_CORE_CAMPAIGN_HH
#define GPUPM_CORE_CAMPAIGN_HH

#include <string>
#include <vector>

#include "core/backend.hh"
#include "core/estimator.hh"
#include "core/resilient.hh"
#include "cupti/profiler.hh"
#include "nvml/device.hh"
#include "sim/physical_gpu.hh"
#include "ubench/suite.hh"

namespace gpupm
{
namespace model
{

/** Campaign knobs. */
struct CampaignOptions
{
    /** Measurement repetitions per configuration (paper: 10). */
    int power_repetitions = 10;
    /** Minimum run duration at the fastest configuration, seconds. */
    double min_duration_s = 1.0;
    /** Seed of the sensor / counter noise streams. */
    std::uint64_t seed = 42;
    /**
     * When non-empty, restrict the measured grid to these
     * configurations (the reference configuration is always kept, and
     * device grid order is preserved); empty measures the full grid.
     * Fleet campaigns use small subsets to bound per-device cost.
     */
    std::vector<gpu::FreqConfig> config_subset;
};

/** Ground-truth-free view of one measured application. */
struct AppMeasurement
{
    std::string name;
    /** Eq. 8-10 utilizations profiled at the reference config. */
    gpu::ComponentArray util{};
    /** Configurations measured (requested clocks). */
    std::vector<gpu::FreqConfig> configs;
    /** Median measured average power per configuration, W. */
    std::vector<double> power_w;
    /** Clocks the board actually ran (TDP fallback), per config. */
    std::vector<gpu::FreqConfig> effective;
};

/** Run the full training campaign for a suite on a board. */
TrainingData runTrainingCampaign(
        const sim::PhysicalGpu &board,
        const std::vector<ubench::Microbenchmark> &suite,
        const CampaignOptions &opts = {});

/**
 * Backend-generic training campaign: the same procedure over any
 * MeasurementBackend (simulated or a real CUDA/CUPTI/NVML stack).
 */
TrainingData runTrainingCampaign(
        MeasurementBackend &backend,
        const std::vector<ubench::Microbenchmark> &suite,
        const CampaignOptions &opts = {});

/** Per-microbenchmark resilience accounting. */
struct BenchmarkReport
{
    std::string name;
    long retries = 0;           ///< retried attempts for this row
    long call_failures = 0;     ///< calls that exhausted retries
    long timeouts = 0;          ///< deadline-abandoned attempts
    long outliers_rejected = 0; ///< MAD-rejected power repetitions
    long corrupt_samples = 0;   ///< NaN / non-finite repetitions
    long faults_injected = 0;   ///< faults hit (when injection is on)
};

/** What a resilient campaign had to survive. */
struct CampaignReport
{
    long cells_total = 0;    ///< profiling + power cells in the grid
    long cells_done = 0;     ///< measured (this run or a prior one)
    long cells_resumed = 0;  ///< restored from a checkpoint, not re-run
    long cells_failed = 0;   ///< unrecoverable after the full policy
    long faults_injected = 0;
    ResilienceCounters totals;
    /** Configurations excluded from the training data. */
    std::vector<gpu::FreqConfig> quarantined;
    std::vector<BenchmarkReport> benchmarks;

    /**
     * Human-readable multi-line summary, including the resilience
     * totals (retries, timeouts, outliers, corrupt samples,
     * exhausted calls, quarantine refusals) and the per-benchmark
     * rows that needed recovery.
     */
    std::string summary() const;

    /** The same data as a JSON object (CLI --json output). */
    std::string toJson() const;
};

/** Knobs of the fault-tolerant campaign runner. */
struct ResilientCampaignOptions
{
    CampaignOptions base;
    ResilientOptions resilience;
    /**
     * When non-empty, progress is periodically checkpointed to this
     * file and a pre-existing checkpoint there is resumed from.
     * Because the backend is re-seeded per measurement cell, a
     * resumed campaign produces bit-identical training data to an
     * uninterrupted one.
     */
    std::string checkpoint_path;
    /** Cells between periodic checkpoint writes. */
    int checkpoint_every = 256;
    /**
     * Stop (checkpointing) after this many cells measured in this
     * process; 0 = run to completion. Lets operators split a long
     * campaign across sessions, and lets tests exercise
     * interruption/resume deterministically.
     */
    long max_cells = 0;
};

/** Outcome of a resilient campaign run. */
struct ResilientCampaignResult
{
    /**
     * Training data over the surviving grid: quarantined or
     * persistently failing configurations are dropped (the estimator's
     * per-configuration voltage fit tolerates the sparser grid).
     * Meaningful only when `complete` is true.
     */
    TrainingData data;
    CampaignReport report;
    /** False when max_cells stopped the run before the grid was done. */
    bool complete = true;
};

/**
 * Persistent snapshot of a partially executed campaign. The full
 * dense grid is stored alongside per-cell done flags; values of
 * not-yet-measured cells are zero and ignored. Serialized as JSON by
 * model_io so interrupted campaigns can continue where they stopped.
 */
struct CampaignCheckpoint
{
    std::uint64_t seed = 0;
    gpu::DeviceKind device = gpu::DeviceKind::GtxTitanX;
    gpu::FreqConfig reference{};
    std::vector<gpu::FreqConfig> configs;
    std::vector<std::string> benchmark_names;
    std::vector<char> utils_done;            ///< per benchmark
    std::vector<gpu::ComponentArray> utils;
    std::vector<std::vector<char>> power_done; ///< [benchmark][config]
    std::vector<std::vector<double>> power_w;
    CampaignReport report;
};

/**
 * Fault-tolerant training campaign over any backend. The backend is
 * wrapped in a ResilientBackend (retries, backoff, deadlines, MAD
 * outlier rejection, quarantine); failures degrade the grid instead
 * of aborting the campaign. Fatal only when the *reference*
 * configuration cannot be measured — without it there is nothing to
 * normalize against (Eq. 5) and no model can be trained.
 */
ResilientCampaignResult runResilientTrainingCampaign(
        MeasurementBackend &backend,
        const std::vector<ubench::Microbenchmark> &suite,
        const ResilientCampaignOptions &opts = {});

/** Measure one application over a set of configurations. */
AppMeasurement measureApp(const sim::PhysicalGpu &board,
                          const sim::KernelDemand &demand,
                          const std::vector<gpu::FreqConfig> &configs,
                          const CampaignOptions &opts = {});

/**
 * Measure a multi-kernel application. Following Sec. V-A, the
 * application's power at each configuration is the average of the
 * kernels' powers weighted by their relative execution times, and the
 * reported utilization vector is the same time-weighted combination
 * of the per-kernel utilizations at the reference configuration.
 */
AppMeasurement measureKernelSequence(
        const sim::PhysicalGpu &board, const std::string &name,
        const std::vector<sim::KernelDemand> &kernels,
        const std::vector<gpu::FreqConfig> &configs,
        const CampaignOptions &opts = {});

} // namespace model
} // namespace gpupm

#endif // GPUPM_CORE_CAMPAIGN_HH
