/**
 * @file
 * Measurement campaigns: the host-side procedure of Sec. V-A.
 *
 * A training campaign executes the whole microbenchmark suite on the
 * simulated board: performance events are collected through the CUPTI
 * facade at the reference configuration only, and average power is
 * measured through the NVML facade at every supported V-F
 * configuration (kernels repeated to at least one second at the
 * fastest configuration, samples averaged, median of repeated runs).
 * A validation measurement does the same for a single application.
 */

#ifndef GPUPM_CORE_CAMPAIGN_HH
#define GPUPM_CORE_CAMPAIGN_HH

#include <string>
#include <vector>

#include "core/backend.hh"
#include "core/estimator.hh"
#include "cupti/profiler.hh"
#include "nvml/device.hh"
#include "sim/physical_gpu.hh"
#include "ubench/suite.hh"

namespace gpupm
{
namespace model
{

/** Campaign knobs. */
struct CampaignOptions
{
    /** Measurement repetitions per configuration (paper: 10). */
    int power_repetitions = 10;
    /** Minimum run duration at the fastest configuration, seconds. */
    double min_duration_s = 1.0;
    /** Seed of the sensor / counter noise streams. */
    std::uint64_t seed = 42;
};

/** Ground-truth-free view of one measured application. */
struct AppMeasurement
{
    std::string name;
    /** Eq. 8-10 utilizations profiled at the reference config. */
    gpu::ComponentArray util{};
    /** Configurations measured (requested clocks). */
    std::vector<gpu::FreqConfig> configs;
    /** Median measured average power per configuration, W. */
    std::vector<double> power_w;
    /** Clocks the board actually ran (TDP fallback), per config. */
    std::vector<gpu::FreqConfig> effective;
};

/** Run the full training campaign for a suite on a board. */
TrainingData runTrainingCampaign(
        const sim::PhysicalGpu &board,
        const std::vector<ubench::Microbenchmark> &suite,
        const CampaignOptions &opts = {});

/**
 * Backend-generic training campaign: the same procedure over any
 * MeasurementBackend (simulated or a real CUDA/CUPTI/NVML stack).
 */
TrainingData runTrainingCampaign(
        MeasurementBackend &backend,
        const std::vector<ubench::Microbenchmark> &suite,
        const CampaignOptions &opts = {});

/** Measure one application over a set of configurations. */
AppMeasurement measureApp(const sim::PhysicalGpu &board,
                          const sim::KernelDemand &demand,
                          const std::vector<gpu::FreqConfig> &configs,
                          const CampaignOptions &opts = {});

/**
 * Measure a multi-kernel application. Following Sec. V-A, the
 * application's power at each configuration is the average of the
 * kernels' powers weighted by their relative execution times, and the
 * reported utilization vector is the same time-weighted combination
 * of the per-kernel utilizations at the reference configuration.
 */
AppMeasurement measureKernelSequence(
        const sim::PhysicalGpu &board, const std::string &name,
        const std::vector<sim::KernelDemand> &kernels,
        const std::vector<gpu::FreqConfig> &configs,
        const CampaignOptions &opts = {});

} // namespace model
} // namespace gpupm

#endif // GPUPM_CORE_CAMPAIGN_HH
