/**
 * @file
 * Application-level prediction front end (Sec. III-E).
 *
 * Given a fitted model and one profiling pass at the reference
 * configuration, the predictor produces the application's power at
 * every supported V-F configuration and its per-component breakdown —
 * the quantities behind Figs. 7-10 and the paper's DVFS-management use
 * case.
 */

#ifndef GPUPM_CORE_PREDICTOR_HH
#define GPUPM_CORE_PREDICTOR_HH

#include <vector>

#include "core/latency_scaler.hh"
#include "core/power_model.hh"

namespace gpupm
{
namespace model
{

/** Power predicted at one configuration. */
struct SweepPoint
{
    gpu::FreqConfig cfg;
    PowerPrediction prediction;
};

/** Sweep and ranking helpers over a fitted model. */
class Predictor
{
  public:
    explicit Predictor(const DvfsPowerModel &model);

    /** Predict at a single configuration. */
    PowerPrediction at(const gpu::ComponentArray &util,
                       const gpu::FreqConfig &cfg) const;

    /** Predict over every configuration in the model's table. */
    std::vector<SweepPoint> sweep(const gpu::ComponentArray &util) const;

    /**
     * Lowest-power configuration whose core and memory clocks are at
     * least the given floors — the paper's DVFS-management use case
     * searches this space without executing the kernel anywhere but at
     * the reference configuration.
     */
    SweepPoint lowestPower(const gpu::ComponentArray &util,
                           int min_core_mhz = 0,
                           int min_mem_mhz = 0) const;

    /** Fitted core-voltage curve at a memory clock (Fig. 6 series). */
    std::vector<std::pair<int, double>>
    coreVoltageCurve(int mem_mhz) const;

    /** One point of the power/performance Pareto frontier. */
    struct ParetoPoint
    {
        gpu::FreqConfig cfg{};
        double power_w = 0.0;
        double slowdown = 1.0; ///< predicted, vs the reference config
    };

    /**
     * Non-dominated (power, slowdown) configurations for a kernel:
     * every point is strictly better than any other configuration in
     * at least one of the two objectives. Sorted by ascending power
     * (descending slowdown). The DVFS-management use case picks from
     * this set directly.
     */
    std::vector<ParetoPoint>
    paretoFrontier(const gpu::ComponentArray &util) const;

    /** One kernel of a multi-kernel application. */
    struct WeightedKernel
    {
        gpu::ComponentArray util{}; ///< reference-config utilizations
        double time_ref_s = 0.0;    ///< reference-config duration
    };

    /**
     * Predict a multi-kernel application's power (Sec. V-A): the
     * kernels' predictions weighted by their predicted relative
     * execution times at the target configuration.
     */
    PowerPrediction atWeighted(
            const std::vector<WeightedKernel> &kernels,
            const gpu::FreqConfig &cfg) const;

    const DvfsPowerModel &model() const { return model_; }

  private:
    const DvfsPowerModel &model_;
};

} // namespace model
} // namespace gpupm

#endif // GPUPM_CORE_PREDICTOR_HH
