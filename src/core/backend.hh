/**
 * @file
 * Host-side measurement backend abstraction.
 *
 * The training campaign needs exactly three capabilities from the
 * machine it runs on: profile a kernel's Table I events at a
 * configuration, measure a kernel's average power at a configuration
 * (Sec. V-A methodology), and measure idle power. This interface
 * isolates those capabilities so the same campaign code drives either
 * the simulated substrate (SimulatedBackend, used throughout this
 * repository) or a real CUDA/CUPTI/NVML stack (a deployment
 * implements MeasurementBackend over the vendor libraries and
 * dispatches kernels by their KernelDemand name).
 */

#ifndef GPUPM_CORE_BACKEND_HH
#define GPUPM_CORE_BACKEND_HH

#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>

#include "cupti/profiler.hh"
#include "nvml/device.hh"

namespace gpupm
{
namespace model
{

/**
 * Failure taxonomy of the measurement contract. Real stacks fail in
 * recoverable ways (a flaky counter collection, a driver-rejected
 * clock request, a wedged sampling thread) that a campaign must
 * survive; only Fatal marks conditions where retrying is pointless.
 */
enum class MeasureErrc
{
    Transient,       ///< one-off failure; retrying is reasonable
    ClockRejected,   ///< the driver refused the V-F request
    Timeout,         ///< the call exceeded its deadline
    CorruptSample,   ///< data came back unusable (NaN / impossible)
    Quarantined,     ///< configuration already quarantined; fail fast
    Fatal,           ///< unrecoverable; do not retry
};

/** Display name of a measurement error code. */
std::string_view measureErrcName(MeasureErrc code);

/** True when a retry of the failed call could plausibly succeed. */
bool isRecoverable(MeasureErrc code);

/** Typed failure thrown by measurement backends. */
class MeasurementError : public std::runtime_error
{
  public:
    MeasurementError(MeasureErrc code, const std::string &what)
        : std::runtime_error(what), code_(code)
    {}

    MeasureErrc code() const { return code_; }
    bool recoverable() const { return isRecoverable(code_); }

  private:
    MeasureErrc code_;
};

/** Abstract host measurement stack. */
class MeasurementBackend
{
  public:
    virtual ~MeasurementBackend() = default;

    /** Device under measurement. */
    virtual const gpu::DeviceDescriptor &descriptor() const = 0;

    /** Collect the aggregated Table I metrics of one kernel launch. */
    virtual cupti::RawMetrics
    profileKernel(const sim::KernelDemand &kernel,
                  const gpu::FreqConfig &cfg) = 0;

    /**
     * Median average power of the kernel at the configuration,
     * following the Sec. V-A repetition/sampling methodology.
     */
    virtual nvml::PowerMeasurement
    measurePower(const sim::KernelDemand &kernel,
                 const gpu::FreqConfig &cfg, int repetitions,
                 double min_duration_s) = 0;

    /** Average idle power at the configuration. */
    virtual double measureIdlePower(const gpu::FreqConfig &cfg) = 0;

    /**
     * Reset every stochastic stream of the stack (sensor noise,
     * counter noise, injected faults) to the state a fresh backend
     * constructed with this seed would have. Checkpointable campaigns
     * call this before every measurement cell so results depend only
     * on (seed, cell) — never on how much of the campaign already ran
     * in this process — which is what makes an interrupted-and-resumed
     * run bit-identical to an uninterrupted one. The default is a
     * no-op: real hardware has no replayable entropy.
     */
    virtual void reseed(std::uint64_t seed) { (void)seed; }
};

/** The backend over the simulated substrate. */
class SimulatedBackend : public MeasurementBackend
{
  public:
    /**
     * @param board  simulated device.
     * @param seed   seeds the profiling and sensor noise streams.
     */
    explicit SimulatedBackend(const sim::PhysicalGpu &board,
                              std::uint64_t seed = 42);

    const gpu::DeviceDescriptor &descriptor() const override;

    cupti::RawMetrics profileKernel(const sim::KernelDemand &kernel,
                                    const gpu::FreqConfig &cfg)
            override;

    nvml::PowerMeasurement measurePower(const sim::KernelDemand &kernel,
                                        const gpu::FreqConfig &cfg,
                                        int repetitions,
                                        double min_duration_s)
            override;

    double measureIdlePower(const gpu::FreqConfig &cfg) override;

    void reseed(std::uint64_t seed) override;

  private:
    /** Apply clocks or throw a typed ClockRejected error. */
    void applyClocks(const gpu::FreqConfig &cfg);

    const sim::PhysicalGpu &board_;
    cupti::Profiler profiler_;
    nvml::Device device_;
};

} // namespace model
} // namespace gpupm

#endif // GPUPM_CORE_BACKEND_HH
