/**
 * @file
 * Host-side measurement backend abstraction.
 *
 * The training campaign needs exactly three capabilities from the
 * machine it runs on: profile a kernel's Table I events at a
 * configuration, measure a kernel's average power at a configuration
 * (Sec. V-A methodology), and measure idle power. This interface
 * isolates those capabilities so the same campaign code drives either
 * the simulated substrate (SimulatedBackend, used throughout this
 * repository) or a real CUDA/CUPTI/NVML stack (a deployment
 * implements MeasurementBackend over the vendor libraries and
 * dispatches kernels by their KernelDemand name).
 */

#ifndef GPUPM_CORE_BACKEND_HH
#define GPUPM_CORE_BACKEND_HH

#include <memory>

#include "cupti/profiler.hh"
#include "nvml/device.hh"

namespace gpupm
{
namespace model
{

/** Abstract host measurement stack. */
class MeasurementBackend
{
  public:
    virtual ~MeasurementBackend() = default;

    /** Device under measurement. */
    virtual const gpu::DeviceDescriptor &descriptor() const = 0;

    /** Collect the aggregated Table I metrics of one kernel launch. */
    virtual cupti::RawMetrics
    profileKernel(const sim::KernelDemand &kernel,
                  const gpu::FreqConfig &cfg) = 0;

    /**
     * Median average power of the kernel at the configuration,
     * following the Sec. V-A repetition/sampling methodology.
     */
    virtual nvml::PowerMeasurement
    measurePower(const sim::KernelDemand &kernel,
                 const gpu::FreqConfig &cfg, int repetitions,
                 double min_duration_s) = 0;

    /** Average idle power at the configuration. */
    virtual double measureIdlePower(const gpu::FreqConfig &cfg) = 0;
};

/** The backend over the simulated substrate. */
class SimulatedBackend : public MeasurementBackend
{
  public:
    /**
     * @param board  simulated device.
     * @param seed   seeds the profiling and sensor noise streams.
     */
    explicit SimulatedBackend(const sim::PhysicalGpu &board,
                              std::uint64_t seed = 42);

    const gpu::DeviceDescriptor &descriptor() const override;

    cupti::RawMetrics profileKernel(const sim::KernelDemand &kernel,
                                    const gpu::FreqConfig &cfg)
            override;

    nvml::PowerMeasurement measurePower(const sim::KernelDemand &kernel,
                                        const gpu::FreqConfig &cfg,
                                        int repetitions,
                                        double min_duration_s)
            override;

    double measureIdlePower(const gpu::FreqConfig &cfg) override;

  private:
    const sim::PhysicalGpu &board_;
    cupti::Profiler profiler_;
    nvml::Device device_;
};

} // namespace model
} // namespace gpupm

#endif // GPUPM_CORE_BACKEND_HH
