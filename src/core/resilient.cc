#include "resilient.hh"

#include <algorithm>
#include <cmath>

#include "common/numio.hh"
#include "common/stats.hh"
#include "obs/standard.hh"
#include "obs/trace.hh"

namespace gpupm
{
namespace model
{

namespace
{

std::pair<int, int>
key(const gpu::FreqConfig &cfg)
{
    return {cfg.core_mhz, cfg.mem_mhz};
}

/** All the double fields of a RawMetrics, for field-wise medians. */
constexpr double cupti::RawMetrics::*kMetricFields[] = {
    &cupti::RawMetrics::acycles,
    &cupti::RawMetrics::l2_rd_bytes,
    &cupti::RawMetrics::l2_wr_bytes,
    &cupti::RawMetrics::shared_ld_bytes,
    &cupti::RawMetrics::shared_st_bytes,
    &cupti::RawMetrics::dram_rd_bytes,
    &cupti::RawMetrics::dram_wr_bytes,
    &cupti::RawMetrics::warps_sp_int,
    &cupti::RawMetrics::warps_dp,
    &cupti::RawMetrics::warps_sf,
    &cupti::RawMetrics::inst_int,
    &cupti::RawMetrics::inst_sp,
    &cupti::RawMetrics::time_s,
};

} // namespace

ResilientBackend::ResilientBackend(MeasurementBackend &inner,
                                   ResilientOptions opts)
    : inner_(inner),
      timer_(dynamic_cast<const CallTimer *>(&inner)),
      opts_(std::move(opts)),
      jitter_rng_(opts_.jitter_seed)
{
    GPUPM_ASSERT(opts_.max_retries >= 0, "negative retry budget");
    GPUPM_ASSERT(opts_.backoff_factor >= 1.0, "backoff must not decay");
    GPUPM_ASSERT(opts_.jitter_frac >= 0.0 && opts_.jitter_frac < 1.0,
                 "jitter fraction outside [0, 1)");
    GPUPM_ASSERT(opts_.min_valid_repetitions >= 1,
                 "need at least one valid repetition");
    GPUPM_ASSERT(opts_.profile_repetitions >= 1,
                 "need at least one profile collection");
}

const gpu::DeviceDescriptor &
ResilientBackend::descriptor() const
{
    return inner_.descriptor();
}

void
ResilientBackend::reseed(std::uint64_t seed)
{
    inner_.reseed(seed);
    jitter_rng_ =
            Rng(opts_.jitter_seed ^ (seed * 0x9e3779b97f4a7c15ull));
}

bool
ResilientBackend::isQuarantined(const gpu::FreqConfig &cfg) const
{
    auto it = quarantine_.find(key(cfg));
    return it != quarantine_.end() && it->second;
}

void
ResilientBackend::notePersistentFailure(const gpu::FreqConfig &cfg)
{
    const int n = ++persistent_failures_[key(cfg)];
    if (n >= opts_.quarantine_threshold && !isQuarantined(cfg)) {
        quarantine_[key(cfg)] = true;
        quarantine_order_.push_back(cfg);
        obs::resilientQuarantinedConfigsTotal().inc();
        warn("quarantining configuration (", cfg.core_mhz, ", ",
             cfg.mem_mhz, ") MHz after ", n,
             " persistent measurement failures");
    }
}

std::vector<double>
ResilientBackend::backoffSchedule(const ResilientOptions &opts,
                                  std::uint64_t seed, int n)
{
    Rng rng(opts.jitter_seed ^ (seed * 0x9e3779b97f4a7c15ull));
    std::vector<double> delays;
    delays.reserve(static_cast<std::size_t>(std::max(0, n)));
    for (int i = 0; i < n; ++i) {
        double d = std::min(opts.backoff_max_s,
                            opts.backoff_base_s *
                                    std::pow(opts.backoff_factor, i));
        d *= 1.0 + opts.jitter_frac * (2.0 * rng.uniform() - 1.0);
        delays.push_back(d);
    }
    return delays;
}

template <typename T>
Expected<T>
ResilientBackend::runWithRetries(const gpu::FreqConfig &cfg,
                                 const std::function<T()> &call)
{
    if (isQuarantined(cfg)) {
        ++counters_.quarantined_calls;
        obs::resilientQuarantinedCallsTotal().inc();
        return Status{MeasureErrc::Quarantined,
                      detail::concat("configuration (", cfg.core_mhz,
                                     ", ", cfg.mem_mhz,
                                     ") MHz is quarantined")};
    }

    Status last{MeasureErrc::Transient, "no attempt made"};
    for (int attempt = 0; attempt <= opts_.max_retries; ++attempt) {
        if (attempt > 0) {
            // Exponential backoff with seeded jitter; the delay is
            // virtual (accounted, not slept) — the simulated substrate
            // has no wall clock to wait on.
            ++counters_.retries;
            obs::resilientRetriesTotal().inc();
            double d = std::min(
                    opts_.backoff_max_s,
                    opts_.backoff_base_s *
                            std::pow(opts_.backoff_factor,
                                     attempt - 1));
            d *= 1.0 +
                 opts_.jitter_frac * (2.0 * jitter_rng_.uniform() - 1.0);
            counters_.backoff_total_s += d;
            obs::resilientBackoffSecondsTotal().inc(d);
        }
        ++counters_.attempts;
        obs::resilientAttemptsTotal().inc();
        try {
            T result = call();
            if (timer_ &&
                timer_->lastCallSeconds() > opts_.call_timeout_s) {
                // The call wedged past its deadline; a real harness
                // would have killed it, so its result is discarded.
                ++counters_.timeouts;
                obs::resilientTimeoutsTotal().inc();
                last = Status{
                    MeasureErrc::Timeout,
                    detail::concat("call exceeded the ",
                                   opts_.call_timeout_s,
                                   " s deadline")};
                continue;
            }
            return result;
        } catch (const MeasurementError &e) {
            last = Status{e.code(), e.what()};
            if (!e.recoverable())
                return last;
        }
    }
    ++counters_.call_failures;
    obs::resilientCallFailuresTotal().inc();
    notePersistentFailure(cfg);
    return last;
}

Expected<cupti::RawMetrics>
ResilientBackend::tryProfileKernel(const sim::KernelDemand &kernel,
                                   const gpu::FreqConfig &cfg)
{
    GPUPM_TRACE_SPAN_NAMED(span, "backend", "backend.profile");
    span.arg("kernel", kernel.name);
    span.arg("config", numio::formatLong(cfg.core_mhz) + "/" +
                               numio::formatLong(cfg.mem_mhz));
    std::vector<cupti::RawMetrics> collections;
    Status last{MeasureErrc::Transient, "no collection succeeded"};
    for (int r = 0; r < opts_.profile_repetitions; ++r) {
        auto e = runWithRetries<cupti::RawMetrics>(cfg, [&] {
            return inner_.profileKernel(kernel, cfg);
        });
        if (e.ok()) {
            collections.push_back(e.value());
        } else {
            last = e.error();
            if (!last.recoverable() ||
                last.code == MeasureErrc::Quarantined)
                return last;
        }
    }
    if (collections.empty())
        return last;

    // Field-wise median across collections: a dropped event group
    // zeroes fields in one collection only, and the median ignores it
    // as long as most collections are intact.
    cupti::RawMetrics combined;
    std::vector<double> vals(collections.size());
    for (auto field : kMetricFields) {
        for (std::size_t i = 0; i < collections.size(); ++i)
            vals[i] = collections[i].*field;
        combined.*field = stats::median(vals);
    }
    return combined;
}

Expected<nvml::PowerMeasurement>
ResilientBackend::tryMeasurePower(const sim::KernelDemand &kernel,
                                  const gpu::FreqConfig &cfg,
                                  int repetitions,
                                  double min_duration_s)
{
    GPUPM_TRACE_SPAN_NAMED(span, "backend", "backend.power");
    span.arg("kernel", kernel.name);
    span.arg("config", numio::formatLong(cfg.core_mhz) + "/" +
                               numio::formatLong(cfg.mem_mhz));
    const int reps =
            std::max(repetitions, opts_.min_valid_repetitions);
    std::vector<nvml::PowerMeasurement> runs;
    Status last{MeasureErrc::Transient, "no repetition succeeded"};
    for (int r = 0; r < reps; ++r) {
        // One run per call (the inner backend's own median-of-one is
        // the run mean); robustness comes from this layer's MAD
        // rejection across runs, which the inner plain median lacks.
        auto e = runWithRetries<nvml::PowerMeasurement>(cfg, [&] {
            return inner_.measurePower(kernel, cfg, 1,
                                       min_duration_s);
        });
        if (e.ok()) {
            runs.push_back(e.value());
        } else {
            last = e.error();
            if (!last.recoverable() ||
                last.code == MeasureErrc::Quarantined)
                return last;
        }
    }
    if (runs.empty())
        return last;

    std::vector<double> powers(runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i)
        powers[i] = runs[i].power_w;
    const auto outlier =
            stats::madOutlierMask(powers, opts_.mad_threshold);

    std::vector<double> survivors;
    std::size_t representative = runs.size();
    for (std::size_t i = 0; i < runs.size(); ++i) {
        if (outlier[i]) {
            if (std::isfinite(powers[i])) {
                ++counters_.outliers_rejected;
                obs::resilientOutliersRejectedTotal().inc();
            } else {
                ++counters_.corrupt_samples;
                obs::resilientCorruptSamplesTotal().inc();
            }
        } else {
            if (representative == runs.size())
                representative = i;
            survivors.push_back(powers[i]);
        }
    }
    if (static_cast<int>(survivors.size()) <
        opts_.min_valid_repetitions) {
        notePersistentFailure(cfg);
        return Status{MeasureErrc::CorruptSample,
                      detail::concat("only ", survivors.size(), " of ",
                                     runs.size(),
                                     " repetitions survived outlier "
                                     "rejection")};
    }

    nvml::PowerMeasurement result = runs[representative];
    result.power_w = stats::median(survivors);
    return result;
}

Expected<double>
ResilientBackend::tryMeasureIdlePower(const gpu::FreqConfig &cfg,
                                      int repetitions)
{
    GPUPM_TRACE_SPAN_NAMED(span, "backend", "backend.idle-power");
    span.arg("config", numio::formatLong(cfg.core_mhz) + "/" +
                               numio::formatLong(cfg.mem_mhz));
    const int reps =
            std::max(repetitions, opts_.min_valid_repetitions);
    std::vector<double> samples;
    Status last{MeasureErrc::Transient, "no repetition succeeded"};
    for (int r = 0; r < reps; ++r) {
        auto e = runWithRetries<double>(cfg, [&] {
            return inner_.measureIdlePower(cfg);
        });
        if (e.ok()) {
            samples.push_back(e.value());
        } else {
            last = e.error();
            if (!last.recoverable() ||
                last.code == MeasureErrc::Quarantined)
                return last;
        }
    }
    if (samples.empty())
        return last;

    const auto outlier =
            stats::madOutlierMask(samples, opts_.mad_threshold);
    std::vector<double> survivors;
    for (std::size_t i = 0; i < samples.size(); ++i) {
        if (outlier[i]) {
            if (std::isfinite(samples[i])) {
                ++counters_.outliers_rejected;
                obs::resilientOutliersRejectedTotal().inc();
            } else {
                ++counters_.corrupt_samples;
                obs::resilientCorruptSamplesTotal().inc();
            }
        } else {
            survivors.push_back(samples[i]);
        }
    }
    if (static_cast<int>(survivors.size()) <
        opts_.min_valid_repetitions) {
        notePersistentFailure(cfg);
        return Status{MeasureErrc::CorruptSample,
                      detail::concat("only ", survivors.size(), " of ",
                                     samples.size(),
                                     " idle repetitions survived "
                                     "outlier rejection")};
    }
    return stats::median(survivors);
}

cupti::RawMetrics
ResilientBackend::profileKernel(const sim::KernelDemand &kernel,
                                const gpu::FreqConfig &cfg)
{
    auto e = tryProfileKernel(kernel, cfg);
    if (!e.ok())
        throw MeasurementError(e.error().code, e.error().message);
    return e.value();
}

nvml::PowerMeasurement
ResilientBackend::measurePower(const sim::KernelDemand &kernel,
                               const gpu::FreqConfig &cfg,
                               int repetitions, double min_duration_s)
{
    auto e = tryMeasurePower(kernel, cfg, repetitions, min_duration_s);
    if (!e.ok())
        throw MeasurementError(e.error().code, e.error().message);
    return e.value();
}

double
ResilientBackend::measureIdlePower(const gpu::FreqConfig &cfg)
{
    auto e = tryMeasureIdlePower(
            cfg, std::max(3, opts_.min_valid_repetitions));
    if (!e.ok())
        throw MeasurementError(e.error().code, e.error().message);
    return e.value();
}

} // namespace model
} // namespace gpupm
