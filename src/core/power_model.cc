#include "power_model.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "common/numio.hh"
#include "core/model_io.hh"

namespace gpupm
{
namespace model
{

using gpu::Component;
using gpu::componentIndex;

DvfsPowerModel::DvfsPowerModel(gpu::DeviceKind kind,
                               gpu::FreqConfig reference,
                               ModelParams params)
    : kind_(kind), reference_(reference), params_(params)
{}

void
DvfsPowerModel::setVoltages(const gpu::FreqConfig &cfg, VoltagePair v)
{
    GPUPM_ASSERT(v.core > 0.0 && v.mem > 0.0, "non-positive voltage");
    voltages_[{cfg.core_mhz, cfg.mem_mhz}] = v;
}

VoltagePair
DvfsPowerModel::voltages(const gpu::FreqConfig &cfg) const
{
    auto it = voltages_.find({cfg.core_mhz, cfg.mem_mhz});
    GPUPM_ASSERT(it != voltages_.end(), "no fitted voltages for (",
                 cfg.core_mhz, ", ", cfg.mem_mhz, ") MHz");
    return it->second;
}

bool
DvfsPowerModel::hasVoltages(const gpu::FreqConfig &cfg) const
{
    return voltages_.count({cfg.core_mhz, cfg.mem_mhz}) > 0;
}

namespace
{

/** Linear interpolation of y(x) over sorted (x, y) samples, clamped
 *  at the ends. */
double
interp(const std::vector<std::pair<int, double>> &pts, int x)
{
    GPUPM_ASSERT(!pts.empty(), "empty interpolation table");
    if (x <= pts.front().first)
        return pts.front().second;
    if (x >= pts.back().first)
        return pts.back().second;
    for (std::size_t i = 1; i < pts.size(); ++i) {
        if (x <= pts[i].first) {
            const double t =
                    static_cast<double>(x - pts[i - 1].first) /
                    (pts[i].first - pts[i - 1].first);
            return pts[i - 1].second +
                   t * (pts[i].second - pts[i - 1].second);
        }
    }
    return pts.back().second;
}

} // namespace

VoltagePair
DvfsPowerModel::voltagesInterpolated(const gpu::FreqConfig &cfg) const
{
    GPUPM_ASSERT(!voltages_.empty(), "model has no fitted voltages");
    if (hasVoltages(cfg))
        return voltages(cfg);

    // Nearest fitted memory clock for the core-voltage row, nearest
    // fitted core clock for the memory-voltage column.
    int best_fm = voltages_.begin()->first.second;
    int best_fc = voltages_.begin()->first.first;
    for (const auto &[key, v] : voltages_) {
        if (std::abs(key.second - cfg.mem_mhz) <
            std::abs(best_fm - cfg.mem_mhz))
            best_fm = key.second;
        if (std::abs(key.first - cfg.core_mhz) <
            std::abs(best_fc - cfg.core_mhz))
            best_fc = key.first;
    }

    std::vector<std::pair<int, double>> core_row, mem_col;
    for (const auto &[key, v] : voltages_) {
        if (key.second == best_fm)
            core_row.emplace_back(key.first, v.core);
        if (key.first == best_fc)
            mem_col.emplace_back(key.second, v.mem);
    }
    std::sort(core_row.begin(), core_row.end());
    std::sort(mem_col.begin(), mem_col.end());

    VoltagePair out;
    out.core = interp(core_row, cfg.core_mhz);
    out.mem = interp(mem_col, cfg.mem_mhz);
    return out;
}

PowerPrediction
DvfsPowerModel::predictInterpolated(const gpu::ComponentArray &util,
                                    const gpu::FreqConfig &cfg) const
{
    return predictWithVoltages(util, cfg, voltagesInterpolated(cfg));
}

PowerPrediction
DvfsPowerModel::predictWithVoltages(const gpu::ComponentArray &util,
                                    const gpu::FreqConfig &cfg,
                                    const VoltagePair &v) const
{
    const double fc = 1e-3 * cfg.core_mhz; // GHz
    const double fm = 1e-3 * cfg.mem_mhz;  // GHz
    const double vc2fc = v.core * v.core * fc;
    const double vm2fm = v.mem * v.mem * fm;

    PowerPrediction p;
    p.constant_w = params_.beta0 * v.core + vc2fc * params_.beta1 +
                   params_.beta2 * v.mem + vm2fm * params_.beta3;

    for (std::size_t i = 0; i < gpu::kNumComponents; ++i) {
        const bool is_dram = i == componentIndex(Component::Dram);
        const double vsq_f = is_dram ? vm2fm : vc2fc;
        p.component_w[i] = vsq_f * params_.omega[i] * util[i];
    }

    p.core_w = params_.beta0 * v.core + vc2fc * params_.beta1;
    for (std::size_t i = 0; i < gpu::kNumComponents; ++i)
        if (i != componentIndex(Component::Dram))
            p.core_w += p.component_w[i];
    p.mem_w = params_.beta2 * v.mem + vm2fm * params_.beta3 +
              p.component_w[componentIndex(Component::Dram)];
    p.total_w = p.core_w + p.mem_w;
    return p;
}

PowerPrediction
DvfsPowerModel::predict(const gpu::ComponentArray &util,
                        const gpu::FreqConfig &cfg) const
{
    return predictWithVoltages(util, cfg, voltages(cfg));
}

std::string
DvfsPowerModel::serialize() const
{
    // Legacy-shaped payload (no envelope); model_io::serializeModel
    // wraps it in the versioned, checksummed envelope for files.
    // Numbers go through numio so the encoding does not depend on the
    // process locale and doubles round-trip bit-exactly.
    std::ostringstream os;
    os << "gpupm-model v1\n";
    os << "device " << std::to_string(static_cast<int>(kind_))
       << "\n";
    os << "reference " << std::to_string(reference_.core_mhz) << " "
       << std::to_string(reference_.mem_mhz) << "\n";
    os << "beta " << numio::formatDouble(params_.beta0) << " "
       << numio::formatDouble(params_.beta1) << " "
       << numio::formatDouble(params_.beta2) << " "
       << numio::formatDouble(params_.beta3) << "\n";
    os << "omega";
    for (double w : params_.omega)
        os << " " << numio::formatDouble(w);
    os << "\n";
    os << "voltages " << std::to_string(voltages_.size()) << "\n";
    for (const auto &[key, v] : voltages_) {
        os << std::to_string(key.first) << " "
           << std::to_string(key.second) << " "
           << numio::formatDouble(v.core) << " "
           << numio::formatDouble(v.mem) << "\n";
    }
    return os.str();
}

DvfsPowerModel
DvfsPowerModel::deserialize(const std::string &text)
{
    auto res = tryParseModel(text);
    GPUPM_FATAL_IF(!res.ok(), "cannot parse model [",
                   ioErrcName(res.error().code), "]: ",
                   res.error().message);
    return res.value();
}

} // namespace model
} // namespace gpupm
