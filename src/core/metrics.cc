#include "metrics.hh"

#include <algorithm>

#include "common/logging.hh"

namespace gpupm
{
namespace model
{

using gpu::Component;
using gpu::componentIndex;

gpu::ComponentArray
utilizationsFromMetrics(const cupti::RawMetrics &rm,
                        const gpu::DeviceDescriptor &dev,
                        const gpu::FreqConfig &cfg)
{
    GPUPM_ASSERT(rm.time_s > 0.0, "metrics carry no kernel time");

    gpu::ComponentArray u{};

    if (rm.acycles > 0.0) {
        // Eq. 10: split the combined SP/INT warp count by the executed
        // instruction mix.
        const double inst_total = rm.inst_int + rm.inst_sp;
        const double warps_int =
                inst_total > 0.0
                        ? rm.warps_sp_int * rm.inst_int / inst_total
                        : 0.0;
        const double warps_sp =
                inst_total > 0.0
                        ? rm.warps_sp_int * rm.inst_sp / inst_total
                        : 0.0;

        // Eq. 8 for the four compute-unit classes.
        const auto eq8 = [&](Component c, double warps) {
            return warps * dev.warp_size /
                   (rm.acycles * dev.unitsPerSm(c));
        };
        u[componentIndex(Component::Int)] =
                eq8(Component::Int, warps_int);
        u[componentIndex(Component::SP)] = eq8(Component::SP, warps_sp);
        u[componentIndex(Component::DP)] =
                eq8(Component::DP, rm.warps_dp);
        u[componentIndex(Component::SF)] =
                eq8(Component::SF, rm.warps_sf);
    }

    // Eq. 9 for the memory levels: achieved vs peak bandwidth.
    const auto eq9 = [&](Component c, double bytes) {
        return bytes / rm.time_s / dev.peakBandwidth(c, cfg);
    };
    u[componentIndex(Component::Shared)] =
            eq9(Component::Shared,
                rm.shared_ld_bytes + rm.shared_st_bytes);
    u[componentIndex(Component::L2)] =
            eq9(Component::L2, rm.l2_rd_bytes + rm.l2_wr_bytes);
    u[componentIndex(Component::Dram)] =
            eq9(Component::Dram, rm.dram_rd_bytes + rm.dram_wr_bytes);

    // Counter noise can nudge a saturated component past 1.
    for (double &x : u)
        x = std::clamp(x, 0.0, 1.0);
    return u;
}

} // namespace model
} // namespace gpupm
