/**
 * @file
 * Online DVFS governor — the Sec. VII future-work direction,
 * implemented: "taking advantage of the iterative nature of many of
 * the most common GPU applications, by measuring the performance
 * events during the first call to a GPU kernel and then using the
 * power prediction to determine the frequency/voltage configuration
 * that best suits that kernel."
 *
 * The governor owns a fitted model. On the first invocation of a
 * kernel it profiles the events (at the reference configuration),
 * derives the utilization vector, sweeps the model over every
 * supported configuration under the chosen objective, and applies the
 * winner through the NVML facade; subsequent invocations run at the
 * chosen configuration with no further profiling cost.
 */

#ifndef GPUPM_CORE_GOVERNOR_HH
#define GPUPM_CORE_GOVERNOR_HH

#include <map>
#include <optional>
#include <string>

#include "core/latency_scaler.hh"
#include "core/power_model.hh"
#include "cupti/profiler.hh"
#include "nvml/device.hh"

namespace gpupm
{
namespace model
{

/** Optimization objective of the governor. */
enum class GovernorObjective
{
    MinPower,      ///< lowest predicted power, any slowdown
    MinEnergy,     ///< lowest predicted power x time
    MinEnergyDelay,///< lowest predicted power x time^2
    PowerCap,      ///< fastest configuration under a power budget
};

/** Per-kernel decision record. */
struct GovernorDecision
{
    gpu::FreqConfig cfg{};          ///< chosen configuration
    double predicted_power_w = 0.0;
    double predicted_slowdown = 1.0; ///< vs the reference config
    bool from_cache = false;        ///< repeat invocation
};

/** Governor policy knobs. */
struct GovernorPolicy
{
    GovernorObjective objective = GovernorObjective::MinEnergy;
    /** Budget for the PowerCap objective, watts. */
    double power_cap_w = 0.0;
    /** Maximum acceptable slowdown vs the reference (e.g. 1.10). */
    double max_slowdown = 1e9;
    /**
     * Re-profile a kernel after this many cached launches (0 = never).
     * Iterative applications drift between phases; periodic
     * re-profiling lets the governor follow them at a bounded cost.
     */
    int reprofile_period = 0;
};

/** The online per-kernel DVFS governor. */
class OnlineGovernor
{
  public:
    /**
     * @param model  fitted DVFS-aware power model for the device.
     * @param device  NVML handle used to apply the chosen clocks.
     * @param profiler  CUPTI session used for first-call profiling.
     * @param policy  optimization objective and constraints.
     */
    OnlineGovernor(const DvfsPowerModel &model, nvml::Device &device,
                   cupti::Profiler &profiler, GovernorPolicy policy);

    /**
     * Handle one kernel invocation: profile on first sight (the
     * device is switched to the reference configuration for that one
     * call), decide, apply the chosen clocks, and report the
     * decision. Keyed by the kernel's name.
     */
    GovernorDecision onKernelLaunch(const sim::KernelDemand &demand);

    /** Decision currently cached for a kernel, if any. */
    std::optional<GovernorDecision>
    cachedDecision(const std::string &kernel_name) const;

    /** Forget all cached decisions (e.g. after a phase change). */
    void reset() { cache_.clear(); }

    const GovernorPolicy &policy() const { return policy_; }

  private:
    GovernorDecision decide(const gpu::ComponentArray &util) const;

    struct CacheEntry
    {
        GovernorDecision decision;
        int launches_since_profile = 0;
    };

    const DvfsPowerModel &model_;
    nvml::Device &device_;
    cupti::Profiler &profiler_;
    GovernorPolicy policy_;
    LatencyScaler scaler_;
    std::map<std::string, CacheEntry> cache_;
};

} // namespace model
} // namespace gpupm

#endif // GPUPM_CORE_GOVERNOR_HH
